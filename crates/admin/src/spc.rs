//! Statistical process control for data manufacturing.
//!
//! §4: inspection specifications "may be included such as those for
//! statistical process control" — the quality-control lineage the paper
//! inherits from Shewhart \[20\] and Deming \[8\]. Implemented here:
//!
//! * [`IndividualsChart`] — Shewhart individuals chart with the four
//!   classic Western Electric run rules,
//! * [`XBarRChart`] — x̄/R chart for subgrouped measurements,
//! * [`PChart`] — proportion-nonconforming chart for error rates
//!   (e.g. the per-batch violation rate from the inspection engine),
//! * [`Ewma`] — exponentially weighted moving average chart, more
//!   sensitive to small sustained shifts.

use serde::{Deserialize, Serialize};

/// A point judged by a chart.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Signal {
    /// Index of the offending point in the monitored series.
    pub index: usize,
    /// Which rule fired.
    pub rule: String,
    /// Explanation.
    pub detail: String,
}

/// Feeds one chart evaluation into the global metrics registry: how many
/// sample points were judged and how many signals fired.
fn record_evaluation(samples: usize, signals: usize) {
    dq_obs::counter!("admin.spc.samples").add(samples as u64);
    dq_obs::counter!("admin.spc.signals").add(signals as u64);
}

/// Records a batch of SPC signals on an audit trail as
/// [`crate::audit::AuditAction::Inspect`] events — the §4 "prompting for
/// data inspection" made durable in the data's manufacturing history.
pub fn record_signals(
    trail: &mut crate::audit::AuditTrail,
    date: relstore::Date,
    actor: &str,
    table: &str,
    column: &str,
    signals: &[Signal],
) {
    for s in signals {
        trail.record(
            date,
            actor,
            crate::audit::AuditAction::Inspect,
            table,
            Vec::new(),
            Some(column),
            format!("SPC rule {} at point {}: {}", s.rule, s.index, s.detail),
        );
    }
}

/// Shewhart individuals chart with Western Electric rules.
#[derive(Debug, Clone)]
pub struct IndividualsChart {
    mean: f64,
    sigma: f64,
}

impl IndividualsChart {
    /// Fits center line and sigma from a baseline sample using the moving
    /// range (MR̄ / 1.128), the standard individuals-chart estimator.
    pub fn fit(baseline: &[f64]) -> Option<Self> {
        if baseline.len() < 2 {
            return None;
        }
        let mean = baseline.iter().sum::<f64>() / baseline.len() as f64;
        let mr: f64 = baseline
            .windows(2)
            .map(|w| (w[1] - w[0]).abs())
            .sum::<f64>()
            / (baseline.len() - 1) as f64;
        Some(IndividualsChart {
            mean,
            sigma: mr / 1.128,
        })
    }

    /// Explicit parameters.
    pub fn with_params(mean: f64, sigma: f64) -> Self {
        IndividualsChart { mean, sigma }
    }

    /// Center line.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Estimated process sigma.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Control limits `(lcl, ucl)` at 3σ.
    pub fn limits(&self) -> (f64, f64) {
        (self.mean - 3.0 * self.sigma, self.mean + 3.0 * self.sigma)
    }

    /// Applies Western Electric rules 1–4 to a monitored series:
    /// 1. one point beyond 3σ;
    /// 2. two of three consecutive beyond 2σ (same side);
    /// 3. four of five consecutive beyond 1σ (same side);
    /// 4. eight consecutive on one side of the center line.
    pub fn evaluate(&self, series: &[f64]) -> Vec<Signal> {
        let mut signals = Vec::new();
        if self.sigma <= 0.0 {
            // a zero-variance baseline: any deviation is rule 1
            for (i, &x) in series.iter().enumerate() {
                if x != self.mean {
                    signals.push(Signal {
                        index: i,
                        rule: "WE1".into(),
                        detail: format!("{x} deviates from a zero-variance baseline"),
                    });
                }
            }
            record_evaluation(series.len(), signals.len());
            return signals;
        }
        let z: Vec<f64> = series.iter().map(|x| (x - self.mean) / self.sigma).collect();
        for (i, &zi) in z.iter().enumerate() {
            if zi.abs() > 3.0 {
                signals.push(Signal {
                    index: i,
                    rule: "WE1".into(),
                    detail: format!("point at {:.2}σ beyond the 3σ limit", zi),
                });
            }
            if i >= 2 {
                let w = &z[i - 2..=i];
                for sign in [1.0, -1.0] {
                    if w.iter().filter(|&&v| v * sign > 2.0).count() >= 2 {
                        signals.push(Signal {
                            index: i,
                            rule: "WE2".into(),
                            detail: "two of three consecutive points beyond 2σ".into(),
                        });
                        break;
                    }
                }
            }
            if i >= 4 {
                let w = &z[i - 4..=i];
                for sign in [1.0, -1.0] {
                    if w.iter().filter(|&&v| v * sign > 1.0).count() >= 4 {
                        signals.push(Signal {
                            index: i,
                            rule: "WE3".into(),
                            detail: "four of five consecutive points beyond 1σ".into(),
                        });
                        break;
                    }
                }
            }
            if i >= 7 {
                let w = &z[i - 7..=i];
                if w.iter().all(|&v| v > 0.0) || w.iter().all(|&v| v < 0.0) {
                    signals.push(Signal {
                        index: i,
                        rule: "WE4".into(),
                        detail: "eight consecutive points on one side of center".into(),
                    });
                }
            }
        }
        record_evaluation(series.len(), signals.len());
        signals
    }

    /// True iff the series raises no signal.
    pub fn in_control(&self, series: &[f64]) -> bool {
        self.evaluate(series).is_empty()
    }
}

/// A2/D3/D4 constants for x̄/R charts, subgroup sizes 2–10.
fn xbar_constants(n: usize) -> Option<(f64, f64, f64)> {
    let table = [
        (2, 1.880, 0.0, 3.267),
        (3, 1.023, 0.0, 2.574),
        (4, 0.729, 0.0, 2.282),
        (5, 0.577, 0.0, 2.114),
        (6, 0.483, 0.0, 2.004),
        (7, 0.419, 0.076, 1.924),
        (8, 0.373, 0.136, 1.864),
        (9, 0.337, 0.184, 1.816),
        (10, 0.308, 0.223, 1.777),
    ];
    table
        .iter()
        .find(|(k, ..)| *k == n)
        .map(|&(_, a2, d3, d4)| (a2, d3, d4))
}

/// x̄/R chart over fixed-size subgroups.
#[derive(Debug, Clone)]
pub struct XBarRChart {
    /// Subgroup size.
    pub n: usize,
    xbar_bar: f64,
    r_bar: f64,
    a2: f64,
    d3: f64,
    d4: f64,
}

impl XBarRChart {
    /// Fits from baseline subgroups (all of size `n`, 2 ≤ n ≤ 10).
    pub fn fit(subgroups: &[Vec<f64>]) -> Option<Self> {
        let n = subgroups.first()?.len();
        let (a2, d3, d4) = xbar_constants(n)?;
        if subgroups.iter().any(|s| s.len() != n) {
            return None;
        }
        let means: Vec<f64> = subgroups
            .iter()
            .map(|s| s.iter().sum::<f64>() / n as f64)
            .collect();
        let ranges: Vec<f64> = subgroups
            .iter()
            .map(|s| {
                let mx = s.iter().cloned().fold(f64::MIN, f64::max);
                let mn = s.iter().cloned().fold(f64::MAX, f64::min);
                mx - mn
            })
            .collect();
        Some(XBarRChart {
            n,
            xbar_bar: means.iter().sum::<f64>() / means.len() as f64,
            r_bar: ranges.iter().sum::<f64>() / ranges.len() as f64,
            a2,
            d3,
            d4,
        })
    }

    /// x̄-chart limits `(lcl, center, ucl)`.
    pub fn xbar_limits(&self) -> (f64, f64, f64) {
        (
            self.xbar_bar - self.a2 * self.r_bar,
            self.xbar_bar,
            self.xbar_bar + self.a2 * self.r_bar,
        )
    }

    /// R-chart limits `(lcl, center, ucl)`.
    pub fn r_limits(&self) -> (f64, f64, f64) {
        (self.d3 * self.r_bar, self.r_bar, self.d4 * self.r_bar)
    }

    /// Evaluates new subgroups against both charts.
    pub fn evaluate(&self, subgroups: &[Vec<f64>]) -> Vec<Signal> {
        let (xl, _, xu) = self.xbar_limits();
        let (rl, _, ru) = self.r_limits();
        let mut signals = Vec::new();
        for (i, s) in subgroups.iter().enumerate() {
            if s.len() != self.n {
                signals.push(Signal {
                    index: i,
                    rule: "size".into(),
                    detail: format!("subgroup size {} != {}", s.len(), self.n),
                });
                continue;
            }
            let mean = s.iter().sum::<f64>() / self.n as f64;
            let mx = s.iter().cloned().fold(f64::MIN, f64::max);
            let mn = s.iter().cloned().fold(f64::MAX, f64::min);
            let range = mx - mn;
            if mean < xl || mean > xu {
                signals.push(Signal {
                    index: i,
                    rule: "xbar".into(),
                    detail: format!("subgroup mean {mean:.3} outside [{xl:.3}, {xu:.3}]"),
                });
            }
            if range < rl || range > ru {
                signals.push(Signal {
                    index: i,
                    rule: "range".into(),
                    detail: format!("subgroup range {range:.3} outside [{rl:.3}, {ru:.3}]"),
                });
            }
        }
        record_evaluation(subgroups.len(), signals.len());
        signals
    }
}

/// p-chart: proportion of nonconforming items per batch.
#[derive(Debug, Clone)]
pub struct PChart {
    p_bar: f64,
    batch_size: usize,
}

impl PChart {
    /// Fits from baseline `(nonconforming, batch_size)` counts with a
    /// common batch size.
    pub fn fit(nonconforming: &[usize], batch_size: usize) -> Option<Self> {
        if batch_size == 0 || nonconforming.is_empty() {
            return None;
        }
        let total: usize = nonconforming.iter().sum();
        let p_bar = total as f64 / (batch_size * nonconforming.len()) as f64;
        Some(PChart { p_bar, batch_size })
    }

    /// Explicit parameters.
    pub fn with_params(p_bar: f64, batch_size: usize) -> Self {
        PChart { p_bar, batch_size }
    }

    /// Control limits `(lcl, ucl)` (LCL floored at 0, UCL capped at 1).
    pub fn limits(&self) -> (f64, f64) {
        let s = (self.p_bar * (1.0 - self.p_bar) / self.batch_size as f64).sqrt();
        ((self.p_bar - 3.0 * s).max(0.0), (self.p_bar + 3.0 * s).min(1.0))
    }

    /// Evaluates batches of nonconforming counts.
    pub fn evaluate(&self, nonconforming: &[usize]) -> Vec<Signal> {
        let (lcl, ucl) = self.limits();
        let signals: Vec<Signal> = nonconforming
            .iter()
            .enumerate()
            .filter_map(|(i, &x)| {
                let p = x as f64 / self.batch_size as f64;
                (p < lcl || p > ucl).then(|| Signal {
                    index: i,
                    rule: "p".into(),
                    detail: format!("error rate {p:.4} outside [{lcl:.4}, {ucl:.4}]"),
                })
            })
            .collect();
        record_evaluation(nonconforming.len(), signals.len());
        signals
    }
}

/// EWMA chart — detects small persistent shifts sooner than Shewhart.
#[derive(Debug, Clone)]
pub struct Ewma {
    mean: f64,
    sigma: f64,
    /// Smoothing weight λ ∈ (0, 1].
    pub lambda: f64,
    /// Limit width multiplier (typically 2.7–3).
    pub l: f64,
}

impl Ewma {
    /// Builds with explicit process parameters.
    pub fn new(mean: f64, sigma: f64, lambda: f64, l: f64) -> Self {
        Ewma {
            mean,
            sigma,
            lambda: lambda.clamp(f64::EPSILON, 1.0),
            l,
        }
    }

    /// Evaluates a series; returns signals where the EWMA statistic exits
    /// its time-varying limits.
    pub fn evaluate(&self, series: &[f64]) -> Vec<Signal> {
        let mut signals = Vec::new();
        let mut z = self.mean;
        for (i, &x) in series.iter().enumerate() {
            z = self.lambda * x + (1.0 - self.lambda) * z;
            let t = (i + 1) as f64;
            let var_factor =
                self.lambda / (2.0 - self.lambda) * (1.0 - (1.0 - self.lambda).powf(2.0 * t));
            let width = self.l * self.sigma * var_factor.sqrt();
            if (z - self.mean).abs() > width {
                signals.push(Signal {
                    index: i,
                    rule: "ewma".into(),
                    detail: format!(
                        "EWMA {z:.4} outside {:.4} ± {width:.4}",
                        self.mean
                    ),
                });
            }
        }
        record_evaluation(series.len(), signals.len());
        signals
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_signals_writes_inspect_events() {
        use crate::audit::{AuditAction, AuditTrail};
        let c = IndividualsChart::with_params(10.0, 0.2);
        let before = dq_obs::registry().snapshot();
        let signals = c.evaluate(&[10.1, 9.9, 13.0, 10.0]);
        assert!(!signals.is_empty());
        let after = dq_obs::registry().snapshot();
        assert!(after.counter("admin.spc.samples") >= before.counter("admin.spc.samples") + 4);
        assert!(after.counter("admin.spc.signals") > before.counter("admin.spc.signals"));
        let mut trail = AuditTrail::new();
        record_signals(
            &mut trail,
            relstore::Date::parse("10-24-91").unwrap(),
            "spc",
            "stocks",
            "price",
            &signals,
        );
        assert_eq!(trail.len(), signals.len());
        let e = &trail.events()[0];
        assert_eq!(e.action, AuditAction::Inspect);
        assert_eq!(e.column.as_deref(), Some("price"));
        assert!(e.detail.contains("SPC rule WE1"));
    }

    #[test]
    fn individuals_fit_and_limits() {
        let baseline = [10.0, 10.2, 9.8, 10.1, 9.9, 10.0, 10.1, 9.9];
        let c = IndividualsChart::fit(&baseline).unwrap();
        assert!((c.mean() - 10.0).abs() < 0.1);
        let (lcl, ucl) = c.limits();
        assert!(lcl < 10.0 && ucl > 10.0);
        assert!(IndividualsChart::fit(&[1.0]).is_none());
    }

    #[test]
    fn we1_spike_detected() {
        let c = IndividualsChart::with_params(10.0, 0.2);
        let series = [10.1, 9.9, 13.0, 10.0];
        let sig = c.evaluate(&series);
        assert!(sig.iter().any(|s| s.rule == "WE1" && s.index == 2));
        assert!(!c.in_control(&series));
        assert!(c.in_control(&[10.0, 10.1, 9.9]));
    }

    #[test]
    fn we2_two_of_three_beyond_two_sigma() {
        let c = IndividualsChart::with_params(0.0, 1.0);
        let series = [2.5, 0.0, 2.6];
        let sig = c.evaluate(&series);
        assert!(sig.iter().any(|s| s.rule == "WE2"));
        // opposite sides do not trigger
        let sig = c.evaluate(&[2.5, 0.0, -2.6]);
        assert!(!sig.iter().any(|s| s.rule == "WE2"));
    }

    #[test]
    fn we3_four_of_five_beyond_one_sigma() {
        let c = IndividualsChart::with_params(0.0, 1.0);
        let series = [1.5, 1.4, 0.0, 1.2, 1.3];
        let sig = c.evaluate(&series);
        assert!(sig.iter().any(|s| s.rule == "WE3"));
    }

    #[test]
    fn we4_run_of_eight() {
        let c = IndividualsChart::with_params(0.0, 1.0);
        let series = [0.3, 0.2, 0.4, 0.1, 0.5, 0.2, 0.3, 0.4];
        let sig = c.evaluate(&series);
        assert!(sig.iter().any(|s| s.rule == "WE4" && s.index == 7));
        // mixed signs break the run
        let series = [0.3, 0.2, -0.4, 0.1, 0.5, 0.2, 0.3, 0.4];
        assert!(!c.evaluate(&series).iter().any(|s| s.rule == "WE4"));
    }

    #[test]
    fn zero_variance_baseline() {
        let c = IndividualsChart::with_params(5.0, 0.0);
        assert!(c.in_control(&[5.0, 5.0]));
        assert!(!c.in_control(&[5.0, 5.1]));
    }

    #[test]
    fn xbar_r_chart() {
        let baseline: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let base = 10.0 + (i % 3) as f64 * 0.1;
                vec![base, base + 0.2, base - 0.2, base + 0.1]
            })
            .collect();
        let c = XBarRChart::fit(&baseline).unwrap();
        let (xl, xc, xu) = c.xbar_limits();
        assert!(xl < xc && xc < xu);
        // in-control subgroup passes
        assert!(c.evaluate(&[vec![10.0, 10.1, 9.9, 10.2]]).is_empty());
        // shifted subgroup mean caught
        let sig = c.evaluate(&[vec![12.0, 12.1, 11.9, 12.2]]);
        assert!(sig.iter().any(|s| s.rule == "xbar"));
        // exploded range caught
        let sig = c.evaluate(&[vec![8.0, 12.0, 10.0, 10.0]]);
        assert!(sig.iter().any(|s| s.rule == "range"));
        // wrong size flagged
        let sig = c.evaluate(&[vec![10.0, 10.0]]);
        assert!(sig.iter().any(|s| s.rule == "size"));
        // bad fits
        assert!(XBarRChart::fit(&[]).is_none());
        assert!(XBarRChart::fit(&[vec![1.0]]).is_none()); // n=1 unsupported
        assert!(XBarRChart::fit(&[vec![1.0, 2.0], vec![1.0]]).is_none());
    }

    #[test]
    fn p_chart_error_rates() {
        // baseline: ~2% error rate in batches of 500
        let baseline = [10, 9, 11, 10, 12, 8, 10, 10];
        let c = PChart::fit(&baseline, 500).unwrap();
        let (lcl, ucl) = c.limits();
        assert!(lcl >= 0.0 && ucl <= 1.0 && ucl > 0.02);
        assert!(c.evaluate(&[10, 11, 9]).is_empty());
        // a defective batch (8% errors) signals
        let sig = c.evaluate(&[40]);
        assert_eq!(sig.len(), 1);
        assert!(PChart::fit(&[], 500).is_none());
        assert!(PChart::fit(&[1], 0).is_none());
    }

    #[test]
    fn ewma_detects_small_shift_shewhart_misses() {
        let shew = IndividualsChart::with_params(0.0, 1.0);
        let ewma = Ewma::new(0.0, 1.0, 0.2, 2.7);
        // persistent +1σ shift: never beyond 3σ (WE1 silent) but EWMA fires
        let series = vec![1.0; 20];
        assert!(!shew.evaluate(&series).iter().any(|s| s.rule == "WE1"));
        assert!(!ewma.evaluate(&series).is_empty());
        // in-control noise stays quiet
        let noise = [0.1, -0.2, 0.05, -0.1, 0.15, -0.05];
        assert!(ewma.evaluate(&noise).is_empty());
    }
}
