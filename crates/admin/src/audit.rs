//! The "electronic trail" (§4): an append-only log of data-manufacturing
//! events supporting the administrator's exception handling — "in handling
//! an exceptional situation, such as tracking an erred transaction, the
//! administrator may want to track aspects of the data manufacturing
//! process, such as the time of entry or intermediate processing steps."

use relstore::{Date, Value};
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened to the datum.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AuditAction {
    /// Initial manufacture.
    Create,
    /// Value replaced.
    Update,
    /// Derived from other data (intermediate processing step).
    Transform,
    /// Inspected by a person or rule.
    Inspect,
    /// Certified by the quality administrator.
    Certify,
    /// Removed.
    Delete,
}

impl fmt::Display for AuditAction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            AuditAction::Create => "create",
            AuditAction::Update => "update",
            AuditAction::Transform => "transform",
            AuditAction::Inspect => "inspect",
            AuditAction::Certify => "certify",
            AuditAction::Delete => "delete",
        };
        f.write_str(s)
    }
}

/// One event on the trail.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AuditEvent {
    /// Monotone sequence number (assigned by the trail).
    pub seq: u64,
    /// Business date of the event.
    pub date: Date,
    /// Who performed it (person, department, or system).
    pub actor: String,
    /// What happened.
    pub action: AuditAction,
    /// Affected table.
    pub table: String,
    /// Key of the affected row (application key values).
    pub row_key: Vec<Value>,
    /// Affected column, when cell-scoped.
    pub column: Option<String>,
    /// Free-form detail (old/new values, rule name, ...).
    pub detail: String,
}

/// Append-only audit trail with lineage queries.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct AuditTrail {
    events: Vec<AuditEvent>,
    next_seq: u64,
}

impl AuditTrail {
    /// Empty trail.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends an event, assigning its sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn record(
        &mut self,
        date: Date,
        actor: impl Into<String>,
        action: AuditAction,
        table: impl Into<String>,
        row_key: Vec<Value>,
        column: Option<&str>,
        detail: impl Into<String>,
    ) -> u64 {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.events.push(AuditEvent {
            seq,
            date,
            actor: actor.into(),
            action,
            table: table.into(),
            row_key,
            column: column.map(str::to_owned),
            detail: detail.into(),
        });
        seq
    }

    /// Re-appends an event recovered from durable storage, keeping its
    /// original sequence number (the trail must come back byte-identical
    /// after a restart, not renumbered). Future [`AuditTrail::record`]
    /// calls continue after the highest replayed sequence.
    pub fn replay(&mut self, event: AuditEvent) {
        self.next_seq = self.next_seq.max(event.seq + 1);
        self.events.push(event);
    }

    /// All events, in order.
    pub fn events(&self) -> &[AuditEvent] {
        &self.events
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// True iff no events recorded.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Lineage of one row: every event whose `(table, row_key)` matches,
    /// in occurrence order — the paper's "paper trail" for a transaction.
    pub fn lineage(&self, table: &str, row_key: &[Value]) -> Vec<&AuditEvent> {
        self.events
            .iter()
            .filter(|e| e.table == table && e.row_key == row_key)
            .collect()
    }

    /// Cell-scoped lineage.
    pub fn cell_lineage(&self, table: &str, row_key: &[Value], column: &str) -> Vec<&AuditEvent> {
        self.lineage(table, row_key)
            .into_iter()
            .filter(|e| e.column.as_deref() == Some(column) || e.column.is_none())
            .collect()
    }

    /// Events by an actor.
    pub fn by_actor(&self, actor: &str) -> Vec<&AuditEvent> {
        self.events.iter().filter(|e| e.actor == actor).collect()
    }

    /// Events within a date window (inclusive).
    pub fn between(&self, from: Date, to: Date) -> Vec<&AuditEvent> {
        self.events
            .iter()
            .filter(|e| e.date >= from && e.date <= to)
            .collect()
    }

    /// Renders a row's trail as text (the administrator's report).
    pub fn render_lineage(&self, table: &str, row_key: &[Value]) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "electronic trail for {table} [{}]\n",
            row_key
                .iter()
                .map(|v| v.to_string())
                .collect::<Vec<_>>()
                .join(", ")
        ));
        for e in self.lineage(table, row_key) {
            out.push_str(&format!(
                "  #{:<4} {} {:<9} by {:<12} {}{}\n",
                e.seq,
                e.date,
                e.action.to_string(),
                e.actor,
                e.column
                    .as_deref()
                    .map(|c| format!("[{c}] "))
                    .unwrap_or_default(),
                e.detail
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn sample() -> AuditTrail {
        let mut t = AuditTrail::new();
        let key = vec![Value::text("Nut Co")];
        t.record(
            d("10-24-91"),
            "acct'g",
            AuditAction::Create,
            "customer",
            key.clone(),
            Some("address"),
            "recorded 62 Lois Av",
        );
        t.record(
            d("10-25-91"),
            "quality_admin",
            AuditAction::Inspect,
            "customer",
            key.clone(),
            Some("address"),
            "double-entry check passed",
        );
        t.record(
            d("10-26-91"),
            "sales",
            AuditAction::Update,
            "customer",
            key,
            Some("employees"),
            "700 -> 710",
        );
        t.record(
            d("10-26-91"),
            "sales",
            AuditAction::Create,
            "customer",
            vec![Value::text("Fruit Co")],
            None,
            "row created",
        );
        t
    }

    #[test]
    fn sequence_numbers_monotone() {
        let t = sample();
        let seqs: Vec<u64> = t.events().iter().map(|e| e.seq).collect();
        assert_eq!(seqs, vec![0, 1, 2, 3]);
    }

    #[test]
    fn lineage_filters_by_row() {
        let t = sample();
        let l = t.lineage("customer", &[Value::text("Nut Co")]);
        assert_eq!(l.len(), 3);
        assert!(t.lineage("customer", &[Value::text("Ghost Co")]).is_empty());
        assert!(t.lineage("orders", &[Value::text("Nut Co")]).is_empty());
    }

    #[test]
    fn cell_lineage_includes_row_level_events() {
        let t = sample();
        let l = t.cell_lineage("customer", &[Value::text("Nut Co")], "address");
        assert_eq!(l.len(), 2); // create + inspect on address; update was employees
        let l = t.cell_lineage("customer", &[Value::text("Fruit Co")], "address");
        assert_eq!(l.len(), 1); // row-level create applies to every cell
    }

    #[test]
    fn actor_and_window_queries() {
        let t = sample();
        assert_eq!(t.by_actor("sales").len(), 2);
        assert_eq!(t.between(d("10-25-91"), d("10-26-91")).len(), 3);
        assert!(t.between(d("1-1-92"), d("2-1-92")).is_empty());
    }

    #[test]
    fn replay_preserves_sequence_numbers() {
        let src = sample();
        let mut back = AuditTrail::new();
        for e in src.events() {
            back.replay(e.clone());
        }
        assert_eq!(back.events(), src.events());
        // recording continues after the replayed tail
        let seq = back.record(
            d("10-27-91"),
            "quality_admin",
            AuditAction::Inspect,
            "customer",
            vec![Value::text("Nut Co")],
            None,
            "post-recovery check",
        );
        assert_eq!(seq, 4);
    }

    #[test]
    fn rendering_contains_all_steps() {
        let t = sample();
        let r = t.render_lineage("customer", &[Value::text("Nut Co")]);
        assert!(r.contains("recorded 62 Lois Av"));
        assert!(r.contains("inspect"));
        assert!(r.contains("700 -> 710"));
        assert!(r.contains("[address]"));
    }
}
