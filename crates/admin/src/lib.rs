//! `dq-admin` — the data quality administrator's toolkit.
//!
//! §1.3 defines the administrator as "a person (or system) whose
//! responsibility it is to ensure that data in the database conform to
//! the quality requirements"; §4 sketches the toolkit this crate builds:
//!
//! * [`audit`] — the "electronic trail" for tracking erred transactions
//!   through the data manufacturing process;
//! * [`inspection`] — the rule engine behind the "✓ inspection" quality
//!   parameter (required tags, freshness, tag domains, front-end rules,
//!   double entry);
//! * [`spc`] — statistical process control over data-manufacturing error
//!   rates (Shewhart individuals + Western Electric rules, x̄/R, p-chart,
//!   EWMA);
//! * [`assess`] — estimators for completeness, coverage, timeliness,
//!   accuracy, and interpretability;
//! * [`certify`] — the certification workflow, stamping `inspection` tags
//!   and recording every transition on the audit trail;
//! * [`mod@allocate`] — Ballou–Tayi resource allocation for data quality
//!   enhancement (exact knapsack + greedy baseline);
//! * [`impact`] — pricing measured shortfalls ("analysis of impacts on
//!   the organization") and feeding the allocator;
//! * [`monitor`] — process-based inspection triggers: periodic schedules
//!   and the peculiar-data detector;
//! * [`linkage`] — Fellegi–Sunter record linkage / duplicate detection,
//!   the §1.1 record-linking lineage.

#![warn(missing_docs)]

pub mod allocate;
pub mod assess;
pub mod audit;
pub mod certify;
pub mod impact;
pub mod inspection;
pub mod linkage;
pub mod monitor;
pub mod spc;

pub use allocate::{allocate, allocate_greedy, Allocation, Project};
pub use assess::{
    accuracy_vs_reference, completeness, coverage_vs_reference, interpretability, timeliness,
    AssessmentReport, DimensionScore,
};
pub use audit::{AuditAction, AuditEvent, AuditTrail};
pub use certify::{CertState, Certification};
pub use impact::{analyze_impact, to_projects, ImpactItem, ImpactModel};
pub use inspection::{InspectionReport, InspectionRule, Inspector, Violation};
pub use linkage::{
    jaro, jaro_winkler, Comparator, FellegiSunter, FieldSpec, LinkClass, LinkedPair,
};
pub use monitor::{
    InspectionPrompt, InspectionSchedule, PeculiarDataDetector, PeculiarRow, QualityMonitor,
};
pub use spc::{record_signals, Ewma, IndividualsChart, PChart, Signal, XBarRChart};
