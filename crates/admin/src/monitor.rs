//! Process-based inspection triggers.
//!
//! §4: inspection specifications may "include process-based mechanisms
//! such as prompting for data inspection on a periodic basis or in the
//! event of peculiar data." Two triggers implement that sentence:
//!
//! * [`InspectionSchedule`] — the periodic prompt;
//! * [`PeculiarDataDetector`] — a robust z-score outlier detector that
//!   flags rows whose values are statistically peculiar relative to a
//!   baseline, prompting targeted inspection.

use relstore::{Date, DbResult, Value};
use serde::{Deserialize, Serialize};
use tagstore::TaggedRelation;

/// Periodic inspection schedule.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct InspectionSchedule {
    /// Inspect every this-many days.
    pub every_days: i64,
    /// When the last inspection ran (None → never).
    pub last_run: Option<Date>,
}

impl InspectionSchedule {
    /// New schedule that has never run.
    pub fn every(days: i64) -> Self {
        InspectionSchedule {
            every_days: days.max(1),
            last_run: None,
        }
    }

    /// True iff an inspection is due on `today`.
    ///
    /// A `last_run` in the *future* of `today` (clock skew, a corrected
    /// system date, or a restored backup) makes the elapsed day count
    /// negative; that is treated as immediately due rather than pushing
    /// the next inspection past its period indefinitely.
    pub fn due(&self, today: Date) -> bool {
        match self.last_run {
            None => true,
            Some(last) => {
                let elapsed = today.days_between(&last);
                elapsed < 0 || elapsed >= self.every_days
            }
        }
    }

    /// Records that an inspection ran on `today`.
    pub fn mark_run(&mut self, today: Date) {
        self.last_run = Some(today);
    }

    /// Days until the next inspection is due (0 when overdue, and 0 for
    /// a future-dated `last_run` — see [`InspectionSchedule::due`]; the
    /// value is always in `0..=every_days`).
    pub fn days_until_due(&self, today: Date) -> i64 {
        match self.last_run {
            None => 0,
            Some(last) => {
                let elapsed = today.days_between(&last);
                if elapsed < 0 {
                    0
                } else {
                    (self.every_days - elapsed).max(0)
                }
            }
        }
    }
}

/// A row flagged as peculiar.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PeculiarRow {
    /// Row index in the monitored relation.
    pub row: usize,
    /// The peculiar value.
    pub value: Value,
    /// Its robust z-score.
    pub z: f64,
}

/// Flags numeric values far from the baseline median (robust z-score via
/// the median absolute deviation, so a burst of bad data cannot mask
/// itself by inflating the mean).
#[derive(Debug, Clone)]
pub struct PeculiarDataDetector {
    median: f64,
    /// MAD scaled to be sigma-comparable (×1.4826).
    scale: f64,
    /// Flag |z| above this.
    pub z_threshold: f64,
}

fn median_of(mut xs: Vec<f64>) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    xs.sort_by(f64::total_cmp);
    let n = xs.len();
    Some(if n % 2 == 1 {
        xs[n / 2]
    } else {
        (xs[n / 2 - 1] + xs[n / 2]) / 2.0
    })
}

impl PeculiarDataDetector {
    /// Fits on a numeric baseline; returns `None` for an empty baseline.
    pub fn fit(baseline: &[f64], z_threshold: f64) -> Option<Self> {
        let median = median_of(baseline.to_vec())?;
        let deviations: Vec<f64> = baseline.iter().map(|x| (x - median).abs()).collect();
        let mad = median_of(deviations)?;
        Some(PeculiarDataDetector {
            median,
            scale: mad * 1.4826,
            z_threshold,
        })
    }

    /// Robust z-score of one value. With zero spread, any deviation is
    /// infinitely peculiar.
    pub fn z(&self, x: f64) -> f64 {
        if self.scale == 0.0 {
            if x == self.median {
                0.0
            } else {
                f64::INFINITY
            }
        } else {
            (x - self.median) / self.scale
        }
    }

    /// Scans a numeric column of a tagged relation; NULL and non-numeric
    /// values are skipped (missingness is the completeness dimension's
    /// business, not peculiarity's).
    pub fn scan(&self, rel: &TaggedRelation, column: &str) -> DbResult<Vec<PeculiarRow>> {
        let ci = rel.schema().resolve(column)?;
        let mut out = Vec::new();
        for (i, row) in rel.iter().enumerate() {
            let x = match &row[ci].value {
                Value::Int(v) => *v as f64,
                Value::Float(v) => *v,
                _ => continue,
            };
            let z = self.z(x);
            if z.abs() > self.z_threshold {
                out.push(PeculiarRow {
                    row: i,
                    value: row[ci].value.clone(),
                    z,
                });
            }
        }
        Ok(out)
    }
}

/// Why the monitor prompted for inspection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InspectionPrompt {
    /// The periodic schedule came due.
    Periodic,
    /// Peculiar data appeared.
    PeculiarData {
        /// The flagged rows.
        rows: Vec<PeculiarRow>,
    },
}

/// Combines the two §4 triggers over one monitored column.
#[derive(Debug, Clone)]
pub struct QualityMonitor {
    /// Periodic trigger.
    pub schedule: InspectionSchedule,
    /// Peculiarity trigger.
    pub detector: PeculiarDataDetector,
    /// Monitored column.
    pub column: String,
}

impl QualityMonitor {
    /// Evaluates both triggers; prompts are returned in priority order
    /// (peculiar data first — it is actionable immediately).
    pub fn check(&mut self, rel: &TaggedRelation, today: Date) -> DbResult<Vec<InspectionPrompt>> {
        dq_obs::counter!("admin.monitor.checks").incr();
        let mut prompts = Vec::new();
        let peculiar = self.detector.scan(rel, &self.column)?;
        if !peculiar.is_empty() {
            dq_obs::counter!("admin.monitor.peculiar_rows").add(peculiar.len() as u64);
            prompts.push(InspectionPrompt::PeculiarData { rows: peculiar });
        }
        if self.schedule.due(today) {
            prompts.push(InspectionPrompt::Periodic);
            self.schedule.mark_run(today);
        }
        dq_obs::counter!("admin.monitor.prompts").add(prompts.len() as u64);
        Ok(prompts)
    }

    /// Like [`QualityMonitor::check`], additionally recording each prompt
    /// on `trail` as an [`crate::audit::AuditAction::Inspect`] event, so
    /// inspection triggers become part of the data's recorded
    /// manufacturing history.
    pub fn check_with_trail(
        &mut self,
        rel: &TaggedRelation,
        today: Date,
        trail: &mut crate::audit::AuditTrail,
        actor: &str,
        table: &str,
    ) -> DbResult<Vec<InspectionPrompt>> {
        use crate::audit::AuditAction;
        let prompts = self.check(rel, today)?;
        for prompt in &prompts {
            match prompt {
                InspectionPrompt::Periodic => {
                    trail.record(
                        today,
                        actor,
                        AuditAction::Inspect,
                        table,
                        Vec::new(),
                        Some(&self.column),
                        format!(
                            "periodic inspection due (every {} days)",
                            self.schedule.every_days
                        ),
                    );
                }
                InspectionPrompt::PeculiarData { rows } => {
                    for r in rows {
                        trail.record(
                            today,
                            actor,
                            AuditAction::Inspect,
                            table,
                            vec![r.value.clone()],
                            Some(&self.column),
                            format!("peculiar value {} (z={:.2}) at row {}", r.value, r.z, r.row),
                        );
                    }
                }
            }
        }
        Ok(prompts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, Schema};
    use tagstore::{IndicatorDictionary, QualityCell};

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn rel(values: &[i64]) -> TaggedRelation {
        let schema = Schema::of(&[("v", DataType::Int)]);
        TaggedRelation::new(
            schema,
            IndicatorDictionary::with_paper_defaults(),
            values.iter().map(|&v| vec![QualityCell::bare(v)]).collect(),
        )
        .unwrap()
    }

    #[test]
    fn schedule_periodicity() {
        let mut s = InspectionSchedule::every(7);
        assert!(s.due(d("10-1-91"))); // never ran
        assert_eq!(s.days_until_due(d("10-1-91")), 0);
        s.mark_run(d("10-1-91"));
        assert!(!s.due(d("10-5-91")));
        assert_eq!(s.days_until_due(d("10-5-91")), 3);
        assert!(s.due(d("10-8-91")));
        assert!(s.due(d("11-1-91")));
    }

    #[test]
    fn schedule_clamps_zero_period() {
        let s = InspectionSchedule::every(0);
        assert_eq!(s.every_days, 1);
    }

    /// Regression: a `last_run` in the future of `today` (clock skew, a
    /// corrected system date) used to make `due` never fire — the
    /// negative elapsed count stayed below `every_days` until the wall
    /// clock caught up — and `days_until_due` to report more days than
    /// the period itself. Both now clamp: skewed schedules are due now.
    #[test]
    fn schedule_survives_future_dated_last_run() {
        let mut s = InspectionSchedule::every(7);
        s.mark_run(d("11-15-91"));
        let today = d("10-1-91"); // 45 days before last_run
        assert!(s.due(today));
        assert_eq!(s.days_until_due(today), 0);
        // re-running today repairs the schedule
        s.mark_run(today);
        assert!(!s.due(d("10-2-91")));
        assert_eq!(s.days_until_due(d("10-2-91")), 6);
        // days_until_due never exceeds the period
        let mut s = InspectionSchedule::every(7);
        s.mark_run(d("10-2-91"));
        for day in 1..=28 {
            let today = d("10-1-91").plus_days(day);
            let left = s.days_until_due(today);
            assert!((0..=s.every_days).contains(&left), "day {day}: {left}");
        }
    }

    #[test]
    fn check_with_trail_records_inspect_events() {
        use crate::audit::{AuditAction, AuditTrail};
        let baseline: Vec<f64> = (0..50).map(|i| 700.0 + (i % 5) as f64).collect();
        let mut mon = QualityMonitor {
            schedule: InspectionSchedule::every(30),
            detector: PeculiarDataDetector::fit(&baseline, 3.5).unwrap(),
            column: "v".into(),
        };
        let mut trail = AuditTrail::new();
        let prompts = mon
            .check_with_trail(&rel(&[701, 9999]), d("10-1-91"), &mut trail, "monitor", "t")
            .unwrap();
        assert_eq!(prompts.len(), 2); // peculiar + periodic (never ran)
        // one event per peculiar row, one for the periodic prompt
        assert_eq!(trail.len(), 2);
        assert!(trail
            .events()
            .iter()
            .all(|e| e.action == AuditAction::Inspect && e.column.as_deref() == Some("v")));
        assert!(trail.events()[0].detail.contains("peculiar value 9999"));
        assert!(trail.events()[1].detail.contains("periodic"));
    }

    #[test]
    fn detector_flags_outliers_robustly() {
        let baseline: Vec<f64> = (0..100).map(|i| 100.0 + (i % 7) as f64).collect();
        let det = PeculiarDataDetector::fit(&baseline, 3.5).unwrap();
        let data = rel(&[101, 103, 4004, 99, 105, -50]);
        let flagged = det.scan(&data, "v").unwrap();
        let rows: Vec<usize> = flagged.iter().map(|p| p.row).collect();
        assert_eq!(rows, vec![2, 5]);
        assert!(flagged[0].z > 0.0 && flagged[1].z < 0.0);
    }

    #[test]
    fn detector_zero_spread() {
        let det = PeculiarDataDetector::fit(&[5.0, 5.0, 5.0], 3.0).unwrap();
        assert_eq!(det.z(5.0), 0.0);
        assert!(det.z(5.1).is_infinite());
        let flagged = det.scan(&rel(&[5, 5, 6]), "v").unwrap();
        assert_eq!(flagged.len(), 1);
    }

    #[test]
    fn detector_ignores_nulls_and_text() {
        let schema = Schema::of(&[("v", DataType::Any)]);
        let data = TaggedRelation::new(
            schema,
            IndicatorDictionary::with_paper_defaults(),
            vec![
                vec![QualityCell::bare(Value::Null)],
                vec![QualityCell::bare("text")],
                vec![QualityCell::bare(1_000_000i64)],
            ],
        )
        .unwrap();
        let det = PeculiarDataDetector::fit(&[1.0, 2.0, 3.0, 2.0], 3.5).unwrap();
        let flagged = det.scan(&data, "v").unwrap();
        assert_eq!(flagged.len(), 1);
        assert_eq!(flagged[0].row, 2);
    }

    #[test]
    fn detector_empty_baseline() {
        assert!(PeculiarDataDetector::fit(&[], 3.0).is_none());
    }

    #[test]
    fn monitor_combines_triggers() {
        let baseline: Vec<f64> = (0..50).map(|i| 700.0 + (i % 5) as f64).collect();
        let mut mon = QualityMonitor {
            schedule: InspectionSchedule::every(30),
            detector: PeculiarDataDetector::fit(&baseline, 3.5).unwrap(),
            column: "v".into(),
        };
        // first check: periodic due (never ran) + one peculiar row
        let prompts = mon.check(&rel(&[701, 702, 9999]), d("10-1-91")).unwrap();
        assert_eq!(prompts.len(), 2);
        assert!(matches!(prompts[0], InspectionPrompt::PeculiarData { .. }));
        assert!(matches!(prompts[1], InspectionPrompt::Periodic));
        // clean data soon after: nothing fires
        let prompts = mon.check(&rel(&[700, 703]), d("10-5-91")).unwrap();
        assert!(prompts.is_empty());
        // period elapses: periodic fires again
        let prompts = mon.check(&rel(&[700]), d("11-5-91")).unwrap();
        assert_eq!(prompts.len(), 1);
        assert!(matches!(prompts[0], InspectionPrompt::Periodic));
    }

    #[test]
    fn unknown_column_errors() {
        let det = PeculiarDataDetector::fit(&[1.0, 2.0], 3.0).unwrap();
        assert!(det.scan(&rel(&[1]), "ghost").is_err());
    }
}
