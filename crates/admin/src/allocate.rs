//! Resource allocation for data quality enhancement — the paper's
//! reference \[1\] (Ballou & Tayi, CACM 1989): given a set of candidate
//! quality-enhancement projects (each improving one dataset at a cost,
//! with an estimated benefit) and a budget, choose the subset that
//! maximizes total benefit. Solved exactly by 0/1-knapsack dynamic
//! programming over integer costs.

use serde::{Deserialize, Serialize};

/// One candidate enhancement project.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Project {
    /// The dataset/table the project improves.
    pub dataset: String,
    /// What the project does (re-keying, re-survey, dedup, ...).
    pub description: String,
    /// Cost in budget units (integer).
    pub cost: u64,
    /// Estimated benefit (e.g. expected error-cost reduction).
    pub benefit: f64,
}

/// The chosen allocation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Allocation {
    /// Indices of selected projects (in input order).
    pub selected: Vec<usize>,
    /// Total cost of the selection.
    pub total_cost: u64,
    /// Total benefit of the selection.
    pub total_benefit: f64,
}

/// Exact 0/1-knapsack: maximize Σ benefit subject to Σ cost ≤ budget.
///
/// Zero-cost projects with positive benefit are always selected.
/// Runs in O(n·budget) time and O(budget) space.
pub fn allocate(projects: &[Project], budget: u64) -> Allocation {
    let b = budget as usize;
    // dp[w] = (best benefit at capacity w, chosen set as bitmask indices)
    let mut best = vec![0.0f64; b + 1];
    let mut choice: Vec<Vec<bool>> = vec![vec![false; projects.len()]; b + 1];
    for (i, p) in projects.iter().enumerate() {
        if p.benefit <= 0.0 {
            continue;
        }
        let cost = p.cost as usize;
        if cost == 0 {
            // free benefit: add to every capacity
            for w in 0..=b {
                best[w] += p.benefit;
                choice[w][i] = true;
            }
            continue;
        }
        for w in (cost..=b).rev() {
            let candidate = best[w - cost] + p.benefit;
            if candidate > best[w] {
                best[w] = candidate;
                choice[w] = choice[w - cost].clone();
                choice[w][i] = true;
            }
        }
    }
    let selected: Vec<usize> = choice[b]
        .iter()
        .enumerate()
        .filter_map(|(i, &c)| c.then_some(i))
        .collect();
    let total_cost = selected.iter().map(|&i| projects[i].cost).sum();
    let total_benefit = selected.iter().map(|&i| projects[i].benefit).sum();
    Allocation {
        selected,
        total_cost,
        total_benefit,
    }
}

/// Greedy benefit/cost heuristic, for comparison (and as the baseline in
/// the allocation bench — the DP dominates it on crafted instances).
pub fn allocate_greedy(projects: &[Project], budget: u64) -> Allocation {
    let mut order: Vec<usize> = (0..projects.len())
        .filter(|&i| projects[i].benefit > 0.0)
        .collect();
    order.sort_by(|&a, &b| {
        let ra = projects[a].benefit / projects[a].cost.max(1) as f64;
        let rb = projects[b].benefit / projects[b].cost.max(1) as f64;
        rb.total_cmp(&ra)
    });
    let mut remaining = budget;
    let mut selected = Vec::new();
    for i in order {
        if projects[i].cost <= remaining {
            remaining -= projects[i].cost;
            selected.push(i);
        }
    }
    selected.sort_unstable();
    let total_cost = selected.iter().map(|&i| projects[i].cost).sum();
    let total_benefit = selected.iter().map(|&i| projects[i].benefit).sum();
    Allocation {
        selected,
        total_cost,
        total_benefit,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(dataset: &str, cost: u64, benefit: f64) -> Project {
        Project {
            dataset: dataset.into(),
            description: String::new(),
            cost,
            benefit,
        }
    }

    #[test]
    fn picks_optimal_subset() {
        // classic instance where greedy fails: ratio favors the small item
        let projects = vec![p("a", 6, 30.0), p("b", 5, 24.0), p("c", 5, 24.0)];
        let alloc = allocate(&projects, 10);
        assert_eq!(alloc.selected, vec![1, 2]);
        assert_eq!(alloc.total_benefit, 48.0);
        assert_eq!(alloc.total_cost, 10);
        // greedy takes `a` first (ratio 5.0 > 4.8) and gets stuck
        let greedy = allocate_greedy(&projects, 10);
        assert!(greedy.total_benefit < alloc.total_benefit);
    }

    #[test]
    fn respects_budget() {
        let projects = vec![p("a", 100, 1000.0)];
        let alloc = allocate(&projects, 50);
        assert!(alloc.selected.is_empty());
        assert_eq!(alloc.total_cost, 0);
    }

    #[test]
    fn zero_cost_positive_benefit_always_selected() {
        let projects = vec![p("free", 0, 5.0), p("paid", 10, 7.0)];
        let alloc = allocate(&projects, 10);
        assert_eq!(alloc.selected, vec![0, 1]);
        assert_eq!(alloc.total_benefit, 12.0);
        // even with zero budget
        let alloc = allocate(&projects, 0);
        assert_eq!(alloc.selected, vec![0]);
    }

    #[test]
    fn negative_benefit_never_selected() {
        let projects = vec![p("harmful", 1, -5.0), p("good", 1, 5.0)];
        let alloc = allocate(&projects, 10);
        assert_eq!(alloc.selected, vec![1]);
    }

    #[test]
    fn empty_inputs() {
        let alloc = allocate(&[], 100);
        assert!(alloc.selected.is_empty());
        let alloc = allocate(&[p("a", 1, 1.0)], 0);
        assert!(alloc.selected.is_empty());
    }

    #[test]
    fn dp_never_worse_than_greedy() {
        // pseudo-random instances via an LCG (no external entropy needed)
        let mut state: u64 = 42;
        let mut next = || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as u32
        };
        for _ in 0..25 {
            let n = 3 + (next() % 8) as usize;
            let projects: Vec<Project> = (0..n)
                .map(|i| {
                    p(
                        &format!("d{i}"),
                        1 + (next() % 20) as u64,
                        (next() % 100) as f64,
                    )
                })
                .collect();
            let budget = 10 + (next() % 40) as u64;
            let dp = allocate(&projects, budget);
            let gr = allocate_greedy(&projects, budget);
            assert!(dp.total_benefit + 1e-9 >= gr.total_benefit);
            assert!(dp.total_cost <= budget);
            assert!(gr.total_cost <= budget);
        }
    }
}
