//! Record linkage — the §1.1 lineage the paper builds on: "Record linking
//! methodologies can be traced to the late 1950's \[19\], and have focused
//! on matching records in different files where primary identifiers may
//! not match for the same individual \[10\]\[18\]."
//!
//! This module implements the Fellegi–Sunter model \[10\]: each compared
//! field contributes an agreement weight `log2(m/u)` or disagreement
//! weight `log2((1−m)/(1−u))` (m = P(agree | match), u = P(agree |
//! non-match)); the summed weight is thresholded into
//! Match / Possible / NonMatch. Fuzzy field agreement uses Jaro–Winkler
//! similarity (Newcombe-style tolerance for typos in identifiers).
//! Duplicate detection is the quality administrator's use: linked
//! records in one file are consistency violations.

use relstore::{DbError, DbResult, Relation, Row, Value};
use serde::{Deserialize, Serialize};

/// Jaro similarity in `[0, 1]`.
pub fn jaro(a: &str, b: &str) -> f64 {
    let a: Vec<char> = a.chars().collect();
    let b: Vec<char> = b.chars().collect();
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    if a.is_empty() || b.is_empty() {
        return 0.0;
    }
    let window = (a.len().max(b.len()) / 2).saturating_sub(1);
    let mut b_used = vec![false; b.len()];
    let mut matches = 0usize;
    let mut a_matched: Vec<char> = Vec::new();
    for (i, &ca) in a.iter().enumerate() {
        let lo = i.saturating_sub(window);
        let hi = (i + window + 1).min(b.len());
        for j in lo..hi {
            if !b_used[j] && b[j] == ca {
                b_used[j] = true;
                matches += 1;
                a_matched.push(ca);
                break;
            }
        }
    }
    if matches == 0 {
        return 0.0;
    }
    let b_matched: Vec<char> = b
        .iter()
        .zip(b_used.iter())
        .filter(|(_, &u)| u)
        .map(|(&c, _)| c)
        .collect();
    let transpositions = a_matched
        .iter()
        .zip(b_matched.iter())
        .filter(|(x, y)| x != y)
        .count()
        / 2;
    let m = matches as f64;
    (m / a.len() as f64 + m / b.len() as f64 + (m - transpositions as f64) / m) / 3.0
}

/// Jaro–Winkler: Jaro boosted by a shared prefix (up to 4 chars).
pub fn jaro_winkler(a: &str, b: &str) -> f64 {
    let j = jaro(a, b);
    let prefix = a
        .chars()
        .zip(b.chars())
        .take(4)
        .take_while(|(x, y)| x == y)
        .count() as f64;
    j + prefix * 0.1 * (1.0 - j)
}

/// How two field values are compared for agreement.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Comparator {
    /// Values must be equal (NULLs never agree).
    Exact,
    /// Text agreement when Jaro–Winkler similarity ≥ `threshold`.
    JaroWinkler {
        /// Similarity cutoff in `[0, 1]`.
        threshold: f64,
    },
    /// Numeric agreement when `|a − b| ≤ tolerance`.
    NumericTolerance {
        /// Absolute tolerance.
        tolerance: f64,
    },
}

impl Comparator {
    /// Do the two values agree under this comparator?
    pub fn agrees(&self, a: &Value, b: &Value) -> bool {
        if a.is_null() || b.is_null() {
            return false;
        }
        match self {
            Comparator::Exact => a == b,
            Comparator::JaroWinkler { threshold } => match (a, b) {
                (Value::Text(x), Value::Text(y)) => jaro_winkler(x, y) >= *threshold,
                _ => a == b,
            },
            Comparator::NumericTolerance { tolerance } => {
                match (a.as_float(), b.as_float()) {
                    (Ok(x), Ok(y)) => (x - y).abs() <= *tolerance,
                    _ => a == b,
                }
            }
        }
    }
}

/// One compared field with its Fellegi–Sunter probabilities.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FieldSpec {
    /// Column compared (must exist in both relations).
    pub column: String,
    /// P(fields agree | records match). Clamped into (0, 1).
    pub m: f64,
    /// P(fields agree | records do not match). Clamped into (0, 1).
    pub u: f64,
    /// Agreement test.
    pub comparator: Comparator,
}

impl FieldSpec {
    /// Shorthand constructor.
    pub fn new(column: impl Into<String>, m: f64, u: f64, comparator: Comparator) -> Self {
        FieldSpec {
            column: column.into(),
            m: m.clamp(1e-6, 1.0 - 1e-6),
            u: u.clamp(1e-6, 1.0 - 1e-6),
            comparator,
        }
    }

    /// Weight contributed when the field agrees: `log2(m/u)`.
    pub fn agreement_weight(&self) -> f64 {
        (self.m / self.u).log2()
    }

    /// Weight contributed when it disagrees: `log2((1−m)/(1−u))`.
    pub fn disagreement_weight(&self) -> f64 {
        ((1.0 - self.m) / (1.0 - self.u)).log2()
    }
}

/// Classification of a record pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkClass {
    /// Weight ≥ upper threshold.
    Match,
    /// Between the thresholds — route to clerical review.
    Possible,
    /// Weight ≤ lower threshold.
    NonMatch,
}

/// A scored record pair.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LinkedPair {
    /// Row index in the left relation.
    pub left: usize,
    /// Row index in the right relation.
    pub right: usize,
    /// Summed Fellegi–Sunter weight.
    pub weight: f64,
    /// Decision.
    pub class: LinkClass,
}

/// The Fellegi–Sunter linkage model.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FellegiSunter {
    /// Compared fields.
    pub fields: Vec<FieldSpec>,
    /// Weight at or above which a pair is a Match.
    pub upper: f64,
    /// Weight at or below which a pair is a NonMatch.
    pub lower: f64,
    /// Optional blocking column: only pairs agreeing exactly on it are
    /// compared (the classical scalability device).
    pub blocking: Option<String>,
}

impl FellegiSunter {
    /// Builds a model; `upper ≥ lower` is required.
    pub fn new(fields: Vec<FieldSpec>, lower: f64, upper: f64) -> DbResult<Self> {
        if upper < lower {
            return Err(DbError::InvalidExpression(
                "upper threshold must be ≥ lower threshold".into(),
            ));
        }
        if fields.is_empty() {
            return Err(DbError::InvalidExpression(
                "linkage needs at least one compared field".into(),
            ));
        }
        Ok(FellegiSunter {
            fields,
            upper,
            lower,
            blocking: None,
        })
    }

    /// Sets the blocking column (builder style).
    pub fn blocked_on(mut self, column: impl Into<String>) -> Self {
        self.blocking = Some(column.into());
        self
    }

    /// Weight of one record pair.
    pub fn weight(&self, left: &Relation, lrow: &Row, right: &Relation, rrow: &Row) -> DbResult<f64> {
        let mut total = 0.0;
        for f in &self.fields {
            let li = left.schema().resolve(&f.column)?;
            let ri = right.schema().resolve(&f.column)?;
            total += if f.comparator.agrees(&lrow[li], &rrow[ri]) {
                f.agreement_weight()
            } else {
                f.disagreement_weight()
            };
        }
        Ok(total)
    }

    /// Classifies a weight.
    pub fn classify(&self, weight: f64) -> LinkClass {
        if weight >= self.upper {
            LinkClass::Match
        } else if weight <= self.lower {
            LinkClass::NonMatch
        } else {
            LinkClass::Possible
        }
    }

    /// Links two files, returning every pair classified above NonMatch,
    /// sorted by descending weight.
    pub fn link(&self, left: &Relation, right: &Relation) -> DbResult<Vec<LinkedPair>> {
        let block = match &self.blocking {
            Some(c) => Some((left.schema().resolve(c)?, right.schema().resolve(c)?)),
            None => None,
        };
        let mut out = Vec::new();
        for (i, lrow) in left.iter().enumerate() {
            for (j, rrow) in right.iter().enumerate() {
                if let Some((bl, br)) = block {
                    if lrow[bl].is_null() || lrow[bl] != rrow[br] {
                        continue;
                    }
                }
                let w = self.weight(left, lrow, right, rrow)?;
                let class = self.classify(w);
                if class != LinkClass::NonMatch {
                    out.push(LinkedPair {
                        left: i,
                        right: j,
                        weight: w,
                        class,
                    });
                }
            }
        }
        out.sort_by(|a, b| b.weight.total_cmp(&a.weight));
        Ok(out)
    }

    /// Duplicate detection within one file: pairs `(i, j)` with `i < j`.
    pub fn deduplicate(&self, rel: &Relation) -> DbResult<Vec<LinkedPair>> {
        Ok(self
            .link(rel, rel)?
            .into_iter()
            .filter(|p| p.left < p.right)
            .collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, Schema};

    #[test]
    fn jaro_basics() {
        assert_eq!(jaro("", ""), 1.0);
        assert_eq!(jaro("abc", ""), 0.0);
        assert_eq!(jaro("abc", "abc"), 1.0);
        assert_eq!(jaro("abc", "xyz"), 0.0);
        // classic example: MARTHA vs MARHTA ≈ 0.944
        let j = jaro("MARTHA", "MARHTA");
        assert!((j - 0.944).abs() < 0.01, "got {j}");
    }

    #[test]
    fn jaro_winkler_prefix_boost() {
        let j = jaro("MARTHA", "MARHTA");
        let jw = jaro_winkler("MARTHA", "MARHTA");
        assert!(jw > j);
        assert!((jw - 0.961).abs() < 0.01, "got {jw}");
        // identical strings unaffected
        assert_eq!(jaro_winkler("same", "same"), 1.0);
        // DWAYNE vs DUANE ≈ 0.84
        let jw = jaro_winkler("DWAYNE", "DUANE");
        assert!((jw - 0.84).abs() < 0.01, "got {jw}");
    }

    #[test]
    fn comparators() {
        let e = Comparator::Exact;
        assert!(e.agrees(&Value::Int(1), &Value::Int(1)));
        assert!(!e.agrees(&Value::Int(1), &Value::Int(2)));
        assert!(!e.agrees(&Value::Null, &Value::Null)); // NULLs never agree
        let jw = Comparator::JaroWinkler { threshold: 0.9 };
        assert!(jw.agrees(&Value::text("MARTHA"), &Value::text("MARHTA")));
        assert!(!jw.agrees(&Value::text("MARTHA"), &Value::text("XYZ")));
        let nt = Comparator::NumericTolerance { tolerance: 0.5 };
        assert!(nt.agrees(&Value::Float(1.2), &Value::Int(1)));
        assert!(!nt.agrees(&Value::Int(1), &Value::Int(3)));
    }

    #[test]
    fn field_weights_signs() {
        let f = FieldSpec::new("name", 0.9, 0.01, Comparator::Exact);
        assert!(f.agreement_weight() > 0.0);
        assert!(f.disagreement_weight() < 0.0);
        // clamping keeps weights finite even with degenerate inputs
        let f = FieldSpec::new("x", 1.0, 0.0, Comparator::Exact);
        assert!(f.agreement_weight().is_finite());
        assert!(f.disagreement_weight().is_finite());
    }

    fn people(rows: Vec<(&str, &str, i64)>) -> Relation {
        let schema = Schema::of(&[
            ("name", DataType::Text),
            ("street", DataType::Text),
            ("birth_year", DataType::Int),
        ]);
        Relation::new(
            schema,
            rows.into_iter()
                .map(|(n, s, y)| vec![Value::text(n), Value::text(s), Value::Int(y)])
                .collect(),
        )
        .unwrap()
    }

    fn model() -> FellegiSunter {
        FellegiSunter::new(
            vec![
                FieldSpec::new("name", 0.95, 0.02, Comparator::JaroWinkler { threshold: 0.92 }),
                FieldSpec::new("street", 0.85, 0.05, Comparator::JaroWinkler { threshold: 0.92 }),
                FieldSpec::new("birth_year", 0.98, 0.05, Comparator::NumericTolerance { tolerance: 1.0 }),
            ],
            0.0,
            8.0,
        )
        .unwrap()
    }

    #[test]
    fn links_same_individual_across_files() {
        // "primary identifiers may not match for the same individual"
        let a = people(vec![
            ("Jonathan Smith", "12 Jay St", 1955),
            ("Mary Jones", "62 Lois Av", 1962),
        ]);
        let b = people(vec![
            ("Jonathon Smith", "12 Jay Street", 1955), // same person, typos
            ("Robert Brown", "9 Oak Av", 1970),
        ]);
        let links = model().link(&a, &b).unwrap();
        assert_eq!(links.len(), 1);
        assert_eq!((links[0].left, links[0].right), (0, 0));
        assert_eq!(links[0].class, LinkClass::Match);
    }

    #[test]
    fn possible_band_routes_to_review() {
        let a = people(vec![("Mary Jones", "62 Lois Av", 1962)]);
        // name agrees, street and year disagree → middling weight
        let b = people(vec![("Mary Jones", "9 Oak Av", 1971)]);
        let m = model();
        let w = m.weight(&a, &a.rows()[0].clone(), &b, &b.rows()[0].clone()).unwrap();
        let links = m.link(&a, &b).unwrap();
        if w > m.lower && w < m.upper {
            assert_eq!(links[0].class, LinkClass::Possible);
        }
        // and a total stranger scores below the lower threshold
        let c = people(vec![("Zed Qux", "1 Elm St", 1990)]);
        assert!(m.link(&a, &c).unwrap().is_empty());
    }

    #[test]
    fn deduplication_finds_near_duplicates() {
        let rel = people(vec![
            ("Fruit Co", "12 Jay St", 1950),
            ("Friut Co", "12 Jay St", 1950), // transposed duplicate
            ("Nut Co", "62 Lois Av", 1960),
        ]);
        let dups = model().deduplicate(&rel).unwrap();
        assert_eq!(dups.len(), 1);
        assert_eq!((dups[0].left, dups[0].right), (0, 1));
    }

    #[test]
    fn blocking_restricts_comparisons() {
        let rel = people(vec![
            ("A Person", "12 Jay St", 1950),
            ("A Person", "12 Jay St", 1960), // same name, different year
        ]);
        // block on birth_year: the pair is never compared
        let blocked = model().blocked_on("birth_year");
        assert!(blocked.deduplicate(&rel).unwrap().is_empty());
        // without blocking the near-duplicate surfaces
        assert!(!model().deduplicate(&rel).unwrap().is_empty());
    }

    #[test]
    fn model_validation() {
        assert!(FellegiSunter::new(vec![], 0.0, 1.0).is_err());
        let f = vec![FieldSpec::new("x", 0.9, 0.1, Comparator::Exact)];
        assert!(FellegiSunter::new(f.clone(), 5.0, 1.0).is_err());
        assert!(FellegiSunter::new(f, 1.0, 5.0).is_ok());
        // unknown column surfaces at link time
        let m = FellegiSunter::new(
            vec![FieldSpec::new("ghost", 0.9, 0.1, Comparator::Exact)],
            0.0,
            1.0,
        )
        .unwrap();
        let rel = people(vec![("A", "B", 1)]);
        assert!(m.link(&rel, &rel).is_err());
    }

    #[test]
    fn results_sorted_by_weight() {
        let a = people(vec![
            ("Exact Match", "Same St", 1950),
            ("Fuzzy Match", "Same St", 1950),
        ]);
        let b = people(vec![
            ("Exact Match", "Same St", 1950),
            ("Fuzzy Mtach", "Same St", 1950),
        ]);
        let links = model().link(&a, &b).unwrap();
        assert!(links.len() >= 2);
        for w in links.windows(2) {
            assert!(w[0].weight >= w[1].weight);
        }
    }
}
