//! The inspection-rule engine behind the "✓ inspection" quality parameter.
//!
//! §3.3: the indicators derived from "✓ inspection" "indicate the
//! inspection mechanism desired to maintain data reliability ... These
//! procedures might include double entry of important data, front-end
//! rules to enforce domain or update constraints, or manual processes for
//! performing certification on the data." This module implements those
//! procedures over tagged relations.

use relstore::{Date, DbResult, Expr, Value};
use serde::{Deserialize, Serialize};
use tagstore::TaggedRelation;

/// One inspection rule.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum InspectionRule {
    /// Every cell of `column` must carry tag `indicator` — the quality
    /// schema said so, the data must comply.
    RequiredTag {
        /// Column to inspect.
        column: String,
        /// Indicator that must be present.
        indicator: String,
    },
    /// Cells of `column` must have been created within `max_age_days` of
    /// `as_of` (via their `creation_time` tag).
    Freshness {
        /// Column to inspect.
        column: String,
        /// Maximum tolerated age in days.
        max_age_days: i64,
        /// Inspection date.
        as_of: Date,
    },
    /// Tag `indicator` on `column` must take one of the allowed values —
    /// e.g. `collection_method ∈ {"over the phone", "from an information
    /// service"}`.
    TagDomain {
        /// Column to inspect.
        column: String,
        /// Constrained indicator.
        indicator: String,
        /// Admissible tag values.
        allowed: Vec<Value>,
    },
    /// A row-level predicate (front-end rule); may reference
    /// `col@indicator` pseudo-columns. Rows where it is *false or NULL*
    /// are violations.
    FrontEnd {
        /// Rule name for reports.
        name: String,
        /// Predicate each row must satisfy.
        predicate: Expr,
    },
    /// Double entry: `column` and `reentry_column` must agree row-wise.
    DoubleEntry {
        /// Primary entry column.
        column: String,
        /// Independent re-entry column.
        reentry_column: String,
    },
}

impl InspectionRule {
    /// Short rule label for reports.
    pub fn label(&self) -> String {
        match self {
            InspectionRule::RequiredTag { column, indicator } => {
                format!("required_tag({column}@{indicator})")
            }
            InspectionRule::Freshness {
                column,
                max_age_days,
                ..
            } => format!("freshness({column} <= {max_age_days}d)"),
            InspectionRule::TagDomain {
                column, indicator, ..
            } => format!("tag_domain({column}@{indicator})"),
            InspectionRule::FrontEnd { name, .. } => format!("front_end({name})"),
            InspectionRule::DoubleEntry {
                column,
                reentry_column,
            } => format!("double_entry({column} vs {reentry_column})"),
        }
    }
}

/// One violation found by the inspector.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Violation {
    /// Row index in the inspected relation.
    pub row: usize,
    /// Which rule fired.
    pub rule: String,
    /// What was wrong.
    pub detail: String,
}

/// Result of an inspection run.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct InspectionReport {
    /// Rows inspected.
    pub rows_inspected: usize,
    /// Violations found.
    pub violations: Vec<Violation>,
}

impl InspectionReport {
    /// True iff the data passed every rule.
    pub fn passed(&self) -> bool {
        self.violations.is_empty()
    }

    /// Violation rate in `[0, 1]` (violations may exceed rows when several
    /// rules fire on one row; capped at 1).
    pub fn violation_rate(&self) -> f64 {
        if self.rows_inspected == 0 {
            return 0.0;
        }
        let distinct_rows: std::collections::HashSet<usize> =
            self.violations.iter().map(|v| v.row).collect();
        distinct_rows.len() as f64 / self.rows_inspected as f64
    }
}

/// An inspector: a named bundle of rules (the operational content of the
/// quality schema's `inspection` indicator).
#[derive(Debug, Clone, Default)]
pub struct Inspector {
    rules: Vec<InspectionRule>,
}

impl Inspector {
    /// Empty inspector.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a rule (builder style).
    pub fn with_rule(mut self, rule: InspectionRule) -> Self {
        self.rules.push(rule);
        self
    }

    /// The rules in force.
    pub fn rules(&self) -> &[InspectionRule] {
        &self.rules
    }

    /// Runs every rule over the relation.
    pub fn inspect(&self, rel: &TaggedRelation) -> DbResult<InspectionReport> {
        let mut report = InspectionReport {
            rows_inspected: rel.len(),
            violations: Vec::new(),
        };
        for rule in &self.rules {
            self.apply(rule, rel, &mut report)?;
        }
        Ok(report)
    }

    fn apply(
        &self,
        rule: &InspectionRule,
        rel: &TaggedRelation,
        report: &mut InspectionReport,
    ) -> DbResult<()> {
        match rule {
            InspectionRule::RequiredTag { column, indicator } => {
                let ci = rel.schema().resolve(column)?;
                for (i, row) in rel.iter().enumerate() {
                    if row[ci].tag(indicator).is_none() {
                        report.violations.push(Violation {
                            row: i,
                            rule: rule.label(),
                            detail: format!("cell `{}` lacks tag `{indicator}`", row[ci].value),
                        });
                    }
                }
            }
            InspectionRule::Freshness {
                column,
                max_age_days,
                as_of,
            } => {
                let ci = rel.schema().resolve(column)?;
                for (i, row) in rel.iter().enumerate() {
                    match row[ci].tag_value("creation_time") {
                        Value::Date(d) => {
                            let age = as_of.days_between(&d);
                            if age > *max_age_days {
                                report.violations.push(Violation {
                                    row: i,
                                    rule: rule.label(),
                                    detail: format!("age {age}d exceeds {max_age_days}d"),
                                });
                            }
                        }
                        _ => report.violations.push(Violation {
                            row: i,
                            rule: rule.label(),
                            detail: "no creation_time tag — freshness unverifiable".into(),
                        }),
                    }
                }
            }
            InspectionRule::TagDomain {
                column,
                indicator,
                allowed,
            } => {
                let ci = rel.schema().resolve(column)?;
                for (i, row) in rel.iter().enumerate() {
                    let v = row[ci].tag_value(indicator);
                    if !v.is_null() && !allowed.contains(&v) {
                        report.violations.push(Violation {
                            row: i,
                            rule: rule.label(),
                            detail: format!("tag value `{v}` outside the allowed domain"),
                        });
                    }
                }
            }
            InspectionRule::FrontEnd { predicate, .. } => {
                // evaluate against the expanded pseudo-schema
                let filtered = tagstore::algebra::select(rel, predicate)?;
                // identify failing rows by position: a row fails if it is
                // not among the survivors (bag semantics on identical rows
                // handled by counting).
                let mut surviving: Vec<&tagstore::TaggedRow> = filtered.rows().iter().collect();
                for (i, row) in rel.iter().enumerate() {
                    if let Some(pos) = surviving.iter().position(|s| *s == row) {
                        surviving.remove(pos);
                    } else {
                        report.violations.push(Violation {
                            row: i,
                            rule: rule.label(),
                            detail: "front-end predicate not satisfied".into(),
                        });
                    }
                }
            }
            InspectionRule::DoubleEntry {
                column,
                reentry_column,
            } => {
                let a = rel.schema().resolve(column)?;
                let b = rel.schema().resolve(reentry_column)?;
                for (i, row) in rel.iter().enumerate() {
                    if row[a].value != row[b].value {
                        report.violations.push(Violation {
                            row: i,
                            rule: rule.label(),
                            detail: format!(
                                "entries disagree: `{}` vs `{}`",
                                row[a].value, row[b].value
                            ),
                        });
                    }
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, Schema};
    use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell};

    fn d(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    fn rel() -> TaggedRelation {
        let schema = Schema::of(&[
            ("phone", DataType::Text),
            ("phone_reentry", DataType::Text),
        ]);
        TaggedRelation::new(
            schema,
            IndicatorDictionary::with_paper_defaults(),
            vec![
                vec![
                    QualityCell::bare("555-0100")
                        .with_tag(IndicatorValue::new("collection_method", "over the phone"))
                        .with_tag(IndicatorValue::new("creation_time", d("10-20-91"))),
                    QualityCell::bare("555-0100"),
                ],
                vec![
                    QualityCell::bare("555-0199")
                        .with_tag(IndicatorValue::new("collection_method", "carrier pigeon"))
                        .with_tag(IndicatorValue::new("creation_time", d("1-1-90"))),
                    QualityCell::bare("555-0198"), // double-entry mismatch
                ],
                vec![QualityCell::bare("555-0142"), QualityCell::bare("555-0142")],
            ],
        )
        .unwrap()
    }

    #[test]
    fn required_tag_rule() {
        let insp = Inspector::new().with_rule(InspectionRule::RequiredTag {
            column: "phone".into(),
            indicator: "collection_method".into(),
        });
        let r = insp.inspect(&rel()).unwrap();
        assert_eq!(r.violations.len(), 1); // row 2 untagged
        assert_eq!(r.violations[0].row, 2);
        assert!(!r.passed());
    }

    #[test]
    fn freshness_rule() {
        let insp = Inspector::new().with_rule(InspectionRule::Freshness {
            column: "phone".into(),
            max_age_days: 30,
            as_of: Date::parse("10-24-91").unwrap(),
        });
        let r = insp.inspect(&rel()).unwrap();
        // row 1 is ~662 days old; row 2 has no creation_time
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn tag_domain_rule() {
        let insp = Inspector::new().with_rule(InspectionRule::TagDomain {
            column: "phone".into(),
            indicator: "collection_method".into(),
            allowed: vec![
                Value::text("over the phone"),
                Value::text("from an information service"),
            ],
        });
        let r = insp.inspect(&rel()).unwrap();
        assert_eq!(r.violations.len(), 1); // carrier pigeon
        assert!(r.violations[0].detail.contains("carrier pigeon"));
    }

    #[test]
    fn double_entry_rule() {
        let insp = Inspector::new().with_rule(InspectionRule::DoubleEntry {
            column: "phone".into(),
            reentry_column: "phone_reentry".into(),
        });
        let r = insp.inspect(&rel()).unwrap();
        assert_eq!(r.violations.len(), 1);
        assert_eq!(r.violations[0].row, 1);
    }

    #[test]
    fn front_end_rule_with_quality_predicate() {
        let insp = Inspector::new().with_rule(InspectionRule::FrontEnd {
            name: "recent_or_bust".into(),
            predicate: Expr::col("phone@creation_time").ge(Expr::lit(d("1-1-91"))),
        });
        let r = insp.inspect(&rel()).unwrap();
        // row 1 too old, row 2 untagged (NULL → violation)
        assert_eq!(r.violations.len(), 2);
    }

    #[test]
    fn combined_rules_and_rate() {
        let insp = Inspector::new()
            .with_rule(InspectionRule::RequiredTag {
                column: "phone".into(),
                indicator: "collection_method".into(),
            })
            .with_rule(InspectionRule::DoubleEntry {
                column: "phone".into(),
                reentry_column: "phone_reentry".into(),
            });
        let r = insp.inspect(&rel()).unwrap();
        assert_eq!(r.rows_inspected, 3);
        assert_eq!(r.violations.len(), 2);
        // two distinct violating rows out of three
        assert!((r.violation_rate() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn empty_relation_passes() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let empty = TaggedRelation::empty(schema, IndicatorDictionary::with_paper_defaults());
        let insp = Inspector::new().with_rule(InspectionRule::RequiredTag {
            column: "x".into(),
            indicator: "source".into(),
        });
        let r = insp.inspect(&empty).unwrap();
        assert!(r.passed());
        assert_eq!(r.violation_rate(), 0.0);
    }

    #[test]
    fn unknown_column_errors() {
        let insp = Inspector::new().with_rule(InspectionRule::RequiredTag {
            column: "ghost".into(),
            indicator: "source".into(),
        });
        assert!(insp.inspect(&rel()).is_err());
    }
}
