//! Organizational impact analysis — the bridge from *measuring* quality
//! to *improving* it.
//!
//! §4: "Organizational and managerial issues in data quality control
//! involve the measurement or assessment of data quality, analysis of
//! impacts on the organization, and improvement of data quality through
//! process and systems redesign." This module performs the middle step:
//! it prices each measured quality shortfall (via per-dimension
//! cost-of-poor-quality rates) and turns the priced shortfalls into
//! candidate enhancement [`Project`]s for the Ballou–Tayi allocator —
//! closing the loop assess → impact → allocate.

use crate::allocate::Project;
use crate::assess::{AssessmentReport, DimensionScore};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Cost model: money lost per unit of shortfall per affected item, by
/// dimension. (A shortfall of 0.2 on completeness over 1000 rows with a
/// rate of 0.5 costs 0.2 × 1000 × 0.5 = 100.)
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ImpactModel {
    rates: BTreeMap<String, f64>,
    /// Rate applied to dimensions not in the table.
    pub default_rate: f64,
}

impl ImpactModel {
    /// Empty model (default rate 0: unknown dimensions cost nothing).
    pub fn new() -> Self {
        Self::default()
    }

    /// Sets the cost rate of one dimension (builder style).
    pub fn rate(mut self, dimension: impl Into<String>, cost_per_unit: f64) -> Self {
        self.rates.insert(dimension.into(), cost_per_unit.max(0.0));
        self
    }

    /// Sets the fallback rate (builder style).
    pub fn with_default_rate(mut self, rate: f64) -> Self {
        self.default_rate = rate.max(0.0);
        self
    }

    fn rate_of(&self, dimension: &str) -> f64 {
        self.rates.get(dimension).copied().unwrap_or(self.default_rate)
    }
}

/// One priced shortfall.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ImpactItem {
    /// Dimension that fell short.
    pub dimension: String,
    /// Affected column.
    pub column: String,
    /// `1 − score`: how far below perfect.
    pub shortfall: f64,
    /// Items affected (the score's support).
    pub affected: usize,
    /// Estimated organizational cost of the shortfall.
    pub cost: f64,
}

/// Prices every score in an assessment report, sorted most-costly first.
pub fn analyze_impact(report: &AssessmentReport, model: &ImpactModel) -> Vec<ImpactItem> {
    let mut items: Vec<ImpactItem> = report
        .scores
        .iter()
        .map(|s: &DimensionScore| {
            let shortfall = (1.0 - s.score).max(0.0);
            ImpactItem {
                dimension: s.dimension.clone(),
                column: s.column.clone(),
                shortfall,
                affected: s.support,
                cost: shortfall * s.support as f64 * model.rate_of(&s.dimension),
            }
        })
        .collect();
    items.sort_by(|a, b| b.cost.total_cmp(&a.cost));
    items
}

/// Converts priced shortfalls into candidate enhancement projects.
/// `remediation_cost` estimates the cost of fixing one item of a given
/// dimension; the project's benefit is the eliminated impact, assuming
/// `effectiveness` ∈ (0, 1] of the shortfall is actually removed.
pub fn to_projects(
    items: &[ImpactItem],
    remediation_cost: impl Fn(&ImpactItem) -> u64,
    effectiveness: f64,
) -> Vec<Project> {
    let eff = effectiveness.clamp(0.0, 1.0);
    items
        .iter()
        .filter(|i| i.cost > 0.0)
        .map(|i| Project {
            dataset: format!("{}:{}", i.column, i.dimension),
            description: format!(
                "remediate {} on `{}` (shortfall {:.2}, {} items affected)",
                i.dimension, i.column, i.shortfall, i.affected
            ),
            cost: remediation_cost(i),
            benefit: i.cost * eff,
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::allocate::allocate;

    fn report() -> AssessmentReport {
        AssessmentReport {
            scores: vec![
                DimensionScore {
                    dimension: "completeness".into(),
                    column: "address".into(),
                    score: 0.8, // 20% shortfall over 1000 rows
                    support: 1000,
                },
                DimensionScore {
                    dimension: "timeliness".into(),
                    column: "share_price".into(),
                    score: 0.5, // 50% shortfall over 200 rows
                    support: 200,
                },
                DimensionScore {
                    dimension: "accuracy".into(),
                    column: "telephone".into(),
                    score: 1.0, // perfect: no impact
                    support: 500,
                },
            ],
        }
    }

    #[test]
    fn impact_prices_shortfalls() {
        let model = ImpactModel::new()
            .rate("completeness", 0.5)
            .rate("timeliness", 2.0);
        let items = analyze_impact(&report(), &model);
        assert_eq!(items.len(), 3);
        // timeliness: 0.5 × 200 × 2.0 = 200; completeness: 0.2 × 1000 × 0.5 = 100
        assert_eq!(items[0].dimension, "timeliness");
        assert!((items[0].cost - 200.0).abs() < 1e-9);
        assert!((items[1].cost - 100.0).abs() < 1e-9);
        assert_eq!(items[2].cost, 0.0); // accuracy is perfect
    }

    #[test]
    fn default_rate_applies_to_unknown_dimensions() {
        let model = ImpactModel::new().with_default_rate(1.0);
        let items = analyze_impact(&report(), &model);
        let c = items.iter().find(|i| i.dimension == "completeness").unwrap();
        assert!((c.cost - 200.0).abs() < 1e-9); // 0.2 × 1000 × 1.0
        // zero default prices everything at 0
        let model = ImpactModel::new();
        assert!(analyze_impact(&report(), &model)
            .iter()
            .all(|i| i.cost == 0.0));
    }

    #[test]
    fn projects_feed_the_allocator() {
        let model = ImpactModel::new()
            .rate("completeness", 0.5)
            .rate("timeliness", 2.0);
        let items = analyze_impact(&report(), &model);
        // fixing costs 1 budget unit per 100 affected items
        let projects = to_projects(&items, |i| (i.affected as u64 / 100).max(1), 0.9);
        assert_eq!(projects.len(), 2); // zero-impact accuracy excluded
        assert!(projects[0].benefit > projects[1].benefit);
        // constrained budget picks the higher-benefit project set
        let alloc = allocate(&projects, 2);
        assert!(!alloc.selected.is_empty());
        assert!(alloc.total_cost <= 2);
        // the timeliness remediation (cost 2, benefit 180) beats
        // completeness (cost 10, benefit 90) under this budget
        assert_eq!(projects[alloc.selected[0]].dataset, "share_price:timeliness");
    }

    #[test]
    fn effectiveness_scales_benefit() {
        let model = ImpactModel::new().rate("timeliness", 2.0);
        let items = analyze_impact(&report(), &model);
        let full = to_projects(&items, |_| 1, 1.0);
        let half = to_projects(&items, |_| 1, 0.5);
        assert!((full[0].benefit - 2.0 * half[0].benefit).abs() < 1e-9);
        // clamped
        let over = to_projects(&items, |_| 1, 7.0);
        assert!((over[0].benefit - full[0].benefit).abs() < 1e-9);
    }
}
