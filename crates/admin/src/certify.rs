//! Certification workflow: "manual processes for performing certification
//! on the data" (§3.3), with outcomes recorded on the audit trail and as
//! `inspection` tags on the certified column.

use crate::audit::{AuditAction, AuditTrail};
use crate::inspection::{InspectionReport, Inspector};
use relstore::{Date, DbError, DbResult, Value};
use serde::{Deserialize, Serialize};
use tagstore::{IndicatorValue, TaggedRelation};

/// Lifecycle state of a certification.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum CertState {
    /// Created, inspection not yet run.
    Draft,
    /// Inspection ran; awaiting the administrator's decision.
    UnderReview {
        /// The inspection evidence.
        report: InspectionReport,
    },
    /// Approved.
    Certified {
        /// Approving administrator.
        by: String,
        /// Approval date.
        on: Date,
    },
    /// Withdrawn after approval.
    Revoked {
        /// Why.
        reason: String,
    },
}

/// A certification case for one `(table, column)`.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Certification {
    /// Certified table.
    pub table: String,
    /// Certified column.
    pub column: String,
    /// Current state.
    pub state: CertState,
}

impl Certification {
    /// Opens a draft certification.
    pub fn open(table: impl Into<String>, column: impl Into<String>) -> Self {
        Certification {
            table: table.into(),
            column: column.into(),
            state: CertState::Draft,
        }
    }

    /// Runs the inspection, moving Draft → UnderReview. Records an
    /// `Inspect` event.
    pub fn inspect(
        &mut self,
        inspector: &Inspector,
        rel: &TaggedRelation,
        trail: &mut AuditTrail,
        on: Date,
        actor: &str,
    ) -> DbResult<&InspectionReport> {
        if !matches!(self.state, CertState::Draft) {
            return Err(DbError::TransactionError(format!(
                "certification of {}.{} is not in Draft",
                self.table, self.column
            )));
        }
        let report = inspector.inspect(rel)?;
        trail.record(
            on,
            actor,
            AuditAction::Inspect,
            self.table.clone(),
            Vec::new(),
            Some(&self.column),
            format!(
                "inspection: {} rows, {} violations",
                report.rows_inspected,
                report.violations.len()
            ),
        );
        self.state = CertState::UnderReview { report };
        match &self.state {
            CertState::UnderReview { report } => Ok(report),
            _ => unreachable!(),
        }
    }

    /// Approves a clean inspection, moving UnderReview → Certified and
    /// stamping every cell of the column with an `inspection` tag.
    pub fn approve(
        &mut self,
        rel: &mut TaggedRelation,
        trail: &mut AuditTrail,
        on: Date,
        by: &str,
    ) -> DbResult<()> {
        match &self.state {
            CertState::UnderReview { report } if report.passed() => {
                rel.tag_column(
                    &self.column,
                    IndicatorValue::new(
                        "inspection",
                        Value::Text(format!("certified by {by} on {on}")),
                    ),
                )?;
                trail.record(
                    on,
                    by,
                    AuditAction::Certify,
                    self.table.clone(),
                    Vec::new(),
                    Some(&self.column),
                    "certification approved",
                );
                self.state = CertState::Certified {
                    by: by.to_owned(),
                    on,
                };
                Ok(())
            }
            CertState::UnderReview { report } => Err(DbError::ConstraintViolation {
                constraint: "certification".into(),
                detail: format!(
                    "cannot certify with {} open violations",
                    report.violations.len()
                ),
            }),
            _ => Err(DbError::TransactionError(
                "certification is not under review".into(),
            )),
        }
    }

    /// Revokes a certification, recording the reason.
    pub fn revoke(&mut self, trail: &mut AuditTrail, on: Date, reason: &str) -> DbResult<()> {
        match &self.state {
            CertState::Certified { .. } => {
                trail.record(
                    on,
                    "quality_admin",
                    AuditAction::Update,
                    self.table.clone(),
                    Vec::new(),
                    Some(&self.column),
                    format!("certification revoked: {reason}"),
                );
                self.state = CertState::Revoked {
                    reason: reason.to_owned(),
                };
                Ok(())
            }
            _ => Err(DbError::TransactionError(
                "only a certified column can be revoked".into(),
            )),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::inspection::InspectionRule;
    use relstore::{DataType, Schema};
    use tagstore::{IndicatorDictionary, QualityCell};

    fn d(s: &str) -> Date {
        Date::parse(s).unwrap()
    }

    fn clean_rel() -> TaggedRelation {
        let schema = Schema::of(&[("v", DataType::Int)]);
        TaggedRelation::new(
            schema,
            IndicatorDictionary::with_paper_defaults(),
            vec![
                vec![QualityCell::bare(1i64)
                    .with_tag(IndicatorValue::new("source", "acct'g"))],
                vec![QualityCell::bare(2i64)
                    .with_tag(IndicatorValue::new("source", "acct'g"))],
            ],
        )
        .unwrap()
    }

    fn inspector() -> Inspector {
        Inspector::new().with_rule(InspectionRule::RequiredTag {
            column: "v".into(),
            indicator: "source".into(),
        })
    }

    #[test]
    fn happy_path_certifies_and_tags() {
        let mut rel = clean_rel();
        let mut trail = AuditTrail::new();
        let mut cert = Certification::open("t", "v");
        let report = cert
            .inspect(&inspector(), &rel, &mut trail, d("10-24-91"), "admin")
            .unwrap();
        assert!(report.passed());
        cert.approve(&mut rel, &mut trail, d("10-25-91"), "admin")
            .unwrap();
        assert!(matches!(cert.state, CertState::Certified { .. }));
        // inspection tags stamped
        for i in 0..rel.len() {
            let tag = rel.cell(i, "v").unwrap().tag_value("inspection");
            assert!(tag.to_string().contains("certified by admin"));
        }
        // trail has inspect + certify
        assert_eq!(trail.len(), 2);
    }

    #[test]
    fn dirty_data_cannot_be_certified() {
        let schema = Schema::of(&[("v", DataType::Int)]);
        let mut rel = TaggedRelation::new(
            schema,
            IndicatorDictionary::with_paper_defaults(),
            vec![vec![QualityCell::bare(1i64)]], // missing source tag
        )
        .unwrap();
        let mut trail = AuditTrail::new();
        let mut cert = Certification::open("t", "v");
        let report = cert
            .inspect(&inspector(), &rel, &mut trail, d("10-24-91"), "admin")
            .unwrap();
        assert!(!report.passed());
        let e = cert
            .approve(&mut rel, &mut trail, d("10-25-91"), "admin")
            .unwrap_err();
        assert!(matches!(e, DbError::ConstraintViolation { .. }));
    }

    #[test]
    fn state_machine_discipline() {
        let mut rel = clean_rel();
        let mut trail = AuditTrail::new();
        let mut cert = Certification::open("t", "v");
        // cannot approve from Draft
        assert!(cert
            .approve(&mut rel, &mut trail, d("10-25-91"), "admin")
            .is_err());
        // cannot revoke from Draft
        assert!(cert.revoke(&mut trail, d("10-25-91"), "because").is_err());
        cert.inspect(&inspector(), &rel, &mut trail, d("10-24-91"), "admin")
            .unwrap();
        // cannot inspect twice
        assert!(cert
            .inspect(&inspector(), &rel, &mut trail, d("10-24-91"), "admin")
            .is_err());
        cert.approve(&mut rel, &mut trail, d("10-25-91"), "admin")
            .unwrap();
        cert.revoke(&mut trail, d("11-1-91"), "upstream feed recalled")
            .unwrap();
        assert!(matches!(cert.state, CertState::Revoked { .. }));
        // revocation recorded
        assert!(trail
            .events()
            .iter()
            .any(|e| e.detail.contains("revoked")));
    }
}
