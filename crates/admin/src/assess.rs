//! Quality assessment: estimating the paper's "universally important"
//! dimensions — completeness, timeliness, accuracy, interpretability
//! (§4) — from stored data and its tags.

use relstore::{DataType, Date, DbResult, Relation, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use tagstore::TaggedRelation;

/// Assessment of one dimension over one column (or relation).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct DimensionScore {
    /// Dimension name.
    pub dimension: String,
    /// Subject column (empty for relation-level scores).
    pub column: String,
    /// Score in `[0, 1]`.
    pub score: f64,
    /// How many items informed the score.
    pub support: usize,
}

/// Column completeness: fraction of non-null values.
pub fn completeness(rel: &Relation, column: &str) -> DbResult<DimensionScore> {
    let i = rel.schema().resolve(column)?;
    let non_null = rel.iter().filter(|r| !r[i].is_null()).count();
    Ok(DimensionScore {
        dimension: "completeness".into(),
        column: column.into(),
        score: if rel.is_empty() {
            1.0
        } else {
            non_null as f64 / rel.len() as f64
        },
        support: rel.len(),
    })
}

/// Closed-world completeness: fraction of reference keys present.
/// The reference relation enumerates the real-world population.
pub fn coverage_vs_reference(
    rel: &Relation,
    key: &str,
    reference: &Relation,
    ref_key: &str,
) -> DbResult<DimensionScore> {
    let i = rel.schema().resolve(key)?;
    let j = reference.schema().resolve(ref_key)?;
    let have: std::collections::HashSet<&Value> = rel
        .iter()
        .map(|r| &r[i])
        .filter(|v| !v.is_null())
        .collect();
    let expected: std::collections::HashSet<&Value> = reference
        .iter()
        .map(|r| &r[j])
        .filter(|v| !v.is_null())
        .collect();
    let hit = expected.iter().filter(|k| have.contains(*k)).count();
    Ok(DimensionScore {
        dimension: "coverage".into(),
        column: key.into(),
        score: if expected.is_empty() {
            1.0
        } else {
            hit as f64 / expected.len() as f64
        },
        support: expected.len(),
    })
}

/// Mean Ballou–Pazer timeliness over a tagged column:
/// `mean(max(0, 1 − age/volatility)^sensitivity)`. Cells without a
/// `creation_time` (or `age`) tag score 0 — unknown manufacture date is
/// the worst case for a timeliness-sensitive user.
pub fn timeliness(
    rel: &TaggedRelation,
    column: &str,
    as_of: Date,
    volatility_days: f64,
    sensitivity: f64,
) -> DbResult<DimensionScore> {
    let i = rel.schema().resolve(column)?;
    let mut total = 0.0;
    for row in rel.iter() {
        let age = match row[i].tag_value("age") {
            Value::Int(a) => Some(a as f64),
            _ => match row[i].tag_value("creation_time") {
                Value::Date(d) => Some(as_of.days_between(&d) as f64),
                _ => None,
            },
        };
        if let Some(a) = age {
            if volatility_days > 0.0 {
                total += (1.0 - a / volatility_days).max(0.0).powf(sensitivity);
            }
        }
    }
    Ok(DimensionScore {
        dimension: "timeliness".into(),
        column: column.into(),
        score: if rel.is_empty() {
            1.0
        } else {
            total / rel.len() as f64
        },
        support: rel.len(),
    })
}

/// Accuracy against a trusted reference: fraction of keyed rows whose
/// value matches the reference value. Rows missing from the reference
/// are not counted either way.
pub fn accuracy_vs_reference(
    rel: &Relation,
    key: &str,
    column: &str,
    reference: &Relation,
    ref_key: &str,
    ref_column: &str,
) -> DbResult<DimensionScore> {
    let ki = rel.schema().resolve(key)?;
    let ci = rel.schema().resolve(column)?;
    let rki = reference.schema().resolve(ref_key)?;
    let rci = reference.schema().resolve(ref_column)?;
    let truth: HashMap<&Value, &Value> = reference
        .iter()
        .filter(|r| !r[rki].is_null())
        .map(|r| (&r[rki], &r[rci]))
        .collect();
    let mut checked = 0usize;
    let mut correct = 0usize;
    for row in rel.iter() {
        if let Some(expected) = truth.get(&row[ki]) {
            checked += 1;
            if &&row[ci] == expected {
                correct += 1;
            }
        }
    }
    Ok(DimensionScore {
        dimension: "accuracy".into(),
        column: column.into(),
        score: if checked == 0 {
            1.0
        } else {
            correct as f64 / checked as f64
        },
        support: checked,
    })
}

/// Interpretability proxy: fraction of cells in `column` whose value
/// conforms to the declared type *and* that carry the tags listed in
/// `required_context` (e.g. `media`, `language`, `unit of measure` — the
/// context a user needs to read the value correctly).
pub fn interpretability(
    rel: &TaggedRelation,
    column: &str,
    required_context: &[&str],
) -> DbResult<DimensionScore> {
    let i = rel.schema().resolve(column)?;
    let dtype = rel.schema().column(i).expect("resolved").dtype;
    let mut ok = 0usize;
    for row in rel.iter() {
        let typed = dtype == DataType::Any || row[i].value.conforms_to(dtype);
        let ctx = required_context
            .iter()
            .all(|ind| row[i].tag(ind).is_some());
        if typed && ctx && !row[i].value.is_null() {
            ok += 1;
        }
    }
    Ok(DimensionScore {
        dimension: "interpretability".into(),
        column: column.into(),
        score: if rel.is_empty() {
            1.0
        } else {
            ok as f64 / rel.len() as f64
        },
        support: rel.len(),
    })
}

/// A full assessment report over a tagged relation.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct AssessmentReport {
    /// Per-dimension, per-column scores.
    pub scores: Vec<DimensionScore>,
}

impl AssessmentReport {
    /// Weakest score in the report (the binding quality constraint).
    pub fn weakest(&self) -> Option<&DimensionScore> {
        self.scores
            .iter()
            .min_by(|a, b| a.score.total_cmp(&b.score))
    }

    /// Mean score.
    pub fn overall(&self) -> f64 {
        if self.scores.is_empty() {
            return 1.0;
        }
        self.scores.iter().map(|s| s.score).sum::<f64>() / self.scores.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Schema;
    use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell};

    fn d(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    #[test]
    fn completeness_counts_nulls() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let r = Relation::new(
            schema.clone(),
            vec![vec![Value::Int(1)], vec![Value::Null], vec![Value::Int(3)], vec![Value::Null]],
        )
        .unwrap();
        let s = completeness(&r, "x").unwrap();
        assert!((s.score - 0.5).abs() < 1e-9);
        assert_eq!(s.support, 4);
        // empty relation is vacuously complete
        let e = Relation::empty(schema);
        assert_eq!(completeness(&e, "x").unwrap().score, 1.0);
        assert!(completeness(&r, "ghost").is_err());
    }

    #[test]
    fn coverage_against_reference() {
        let schema = Schema::of(&[("k", DataType::Int)]);
        let have = Relation::new(schema.clone(), vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        let want = Relation::new(
            schema,
            vec![vec![Value::Int(1)], vec![Value::Int(2)], vec![Value::Int(3)], vec![Value::Int(4)]],
        )
        .unwrap();
        let s = coverage_vs_reference(&have, "k", &want, "k").unwrap();
        assert!((s.score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn timeliness_from_tags() {
        let schema = Schema::of(&[("p", DataType::Float)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let rel = TaggedRelation::new(
            schema,
            dict,
            vec![
                vec![QualityCell::bare(1.0)
                    .with_tag(IndicatorValue::new("creation_time", d("10-24-91")))],
                vec![QualityCell::bare(2.0)
                    .with_tag(IndicatorValue::new("creation_time", d("10-9-91")))],
                vec![QualityCell::bare(3.0)], // untagged: scores 0
            ],
        )
        .unwrap();
        let s = timeliness(&rel, "p", Date::parse("10-24-91").unwrap(), 30.0, 1.0).unwrap();
        // scores: 1.0, 0.5, 0.0 → mean 0.5
        assert!((s.score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn timeliness_prefers_age_tag() {
        let schema = Schema::of(&[("p", DataType::Float)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let rel = TaggedRelation::new(
            schema,
            dict,
            vec![vec![QualityCell::bare(1.0)
                .with_tag(IndicatorValue::new("age", 15i64))
                // stale creation_time would give a different answer — age wins
                .with_tag(IndicatorValue::new("creation_time", d("1-1-80")))]],
        )
        .unwrap();
        let s = timeliness(&rel, "p", Date::parse("10-24-91").unwrap(), 30.0, 1.0).unwrap();
        assert!((s.score - 0.5).abs() < 1e-9);
    }

    #[test]
    fn accuracy_against_truth() {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Text)]);
        let data = Relation::new(
            schema.clone(),
            vec![
                vec![Value::Int(1), Value::text("right")],
                vec![Value::Int(2), Value::text("wrong")],
                vec![Value::Int(9), Value::text("unknowable")], // not in reference
            ],
        )
        .unwrap();
        let truth = Relation::new(
            schema,
            vec![
                vec![Value::Int(1), Value::text("right")],
                vec![Value::Int(2), Value::text("correct")],
            ],
        )
        .unwrap();
        let s = accuracy_vs_reference(&data, "k", "v", &truth, "k", "v").unwrap();
        assert!((s.score - 0.5).abs() < 1e-9);
        assert_eq!(s.support, 2); // only keyed rows counted
    }

    #[test]
    fn interpretability_requires_context_tags() {
        let schema = Schema::of(&[("doc", DataType::Text)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let rel = TaggedRelation::new(
            schema,
            dict,
            vec![
                vec![QualityCell::bare("report A")
                    .with_tag(IndicatorValue::new("media", "ASCII"))],
                vec![QualityCell::bare("report B")], // no media tag
            ],
        )
        .unwrap();
        let s = interpretability(&rel, "doc", &["media"]).unwrap();
        assert!((s.score - 0.5).abs() < 1e-9);
        // no required context → both pass
        let s = interpretability(&rel, "doc", &[]).unwrap();
        assert_eq!(s.score, 1.0);
    }

    #[test]
    fn report_aggregation() {
        let report = AssessmentReport {
            scores: vec![
                DimensionScore {
                    dimension: "completeness".into(),
                    column: "a".into(),
                    score: 0.9,
                    support: 10,
                },
                DimensionScore {
                    dimension: "timeliness".into(),
                    column: "a".into(),
                    score: 0.3,
                    support: 10,
                },
            ],
        };
        assert_eq!(report.weakest().unwrap().dimension, "timeliness");
        assert!((report.overall() - 0.6).abs() < 1e-9);
        assert_eq!(AssessmentReport::default().overall(), 1.0);
    }
}
