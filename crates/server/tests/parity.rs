//! Concurrent-session parity: N client threads issuing randomized
//! quality-filtered queries against the server must get byte-identical
//! results to the same queries run embedded and serially — at 1, 2, and
//! 8 server worker threads (more clients than workers exercises the
//! multiplexing pump; more workers than cores exercises timesharing).

use dq_query::{run, QueryCatalog};
use dq_server::{render_result, start, Client, ServerConfig, WriteMode};
use proptest::prelude::*;
use relstore::{DataType, Schema};
use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};

fn arb_rel() -> impl Strategy<Value = TaggedRelation> {
    prop::collection::vec((0i64..15, 0i64..15, prop::option::of(0i64..40)), 0..25).prop_map(
        |rows| {
            let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
            let dict = IndicatorDictionary::with_paper_defaults();
            let rows = rows
                .into_iter()
                .map(|(k, v, age)| {
                    let mut cell = QualityCell::bare(v);
                    if let Some(a) = age {
                        cell.set_tag(IndicatorValue::new("age", a));
                    }
                    vec![QualityCell::bare(k), cell]
                })
                .collect();
            TaggedRelation::new(schema, dict, rows).unwrap()
        },
    )
}

/// The randomized workload: a mix of scans, quality filters, value
/// filters, and inspections parameterized by `a`/`b`.
fn workload(a: i64, b: i64) -> Vec<String> {
    vec![
        "SELECT * FROM t".to_string(),
        format!("SELECT * FROM t WHERE k >= {a}"),
        format!("SELECT * FROM t WITH QUALITY (v@age <= {b})"),
        format!("SELECT * FROM t WHERE k >= {a} WITH QUALITY (v@age <= {b})"),
        format!("SELECT k FROM t WITH QUALITY (v@age >= {b}) ORDER BY k"),
        "INSPECT FROM t".to_string(),
    ]
}

fn assert_parity(rel: &TaggedRelation, a: i64, b: i64, workers: usize, clients: usize) {
    let mut catalog = QueryCatalog::new();
    catalog.register("t", rel.clone());
    // embedded, serial reference
    let queries = workload(a, b);
    let expected: Vec<String> = queries
        .iter()
        .map(|q| render_result(&run(&catalog, q).unwrap()))
        .collect();

    let server = start(
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers,
            stmt_cache_capacity: 32,
            write_mode: WriteMode::default(),
        },
        catalog,
    )
    .unwrap();
    let addr = server.addr();

    let handles: Vec<_> = (0..clients)
        .map(|ci| {
            let queries = queries.clone();
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                // each client walks the workload at a different phase so
                // different statements are in flight simultaneously
                for i in 0..queries.len() * 2 {
                    let qi = (i + ci) % queries.len();
                    let got = client.query(&queries[qi]).unwrap();
                    assert_eq!(
                        got, expected[qi],
                        "client {ci} diverged on `{}` (workers={workers})",
                        queries[qi]
                    );
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

proptest! {
    /// 4 concurrent clients, workers ∈ {1, 2, 8}: every response equals
    /// the embedded serial rendering byte-for-byte.
    #[test]
    fn concurrent_sessions_match_embedded_serial(
        rel in arb_rel(),
        a in 0i64..15,
        b in 0i64..40,
    ) {
        for workers in [1usize, 2, 8] {
            assert_parity(&rel, a, b, workers, 4);
        }
    }
}
