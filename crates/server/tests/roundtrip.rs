//! End-to-end client/server round-trips over a real socket.

use dq_core::profiles::{QualityStandard, StandardOp, UserProfile};
use dq_query::{run, QueryCatalog};
use dq_server::{render_result, start, start_durable, Client, ClientError, ServerConfig, WriteMode};
use dq_storage::{DurableDb, DurableOptions, MemFs};
use relstore::{DataType, Date, Schema, Value};
use std::sync::Arc;
use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};

fn stocks() -> TaggedRelation {
    let schema = Schema::of(&[("ticker", DataType::Text), ("share_price", DataType::Float)]);
    let dict = IndicatorDictionary::with_paper_defaults();
    let d = |s: &str| Value::Date(Date::parse(s).unwrap());
    let mk = |t: &str, p: f64, ct: &str, src: &str| {
        vec![
            QualityCell::bare(t),
            QualityCell::bare(p)
                .with_tag(IndicatorValue::new("creation_time", d(ct)))
                .with_tag(IndicatorValue::new("source", src)),
        ]
    };
    TaggedRelation::new(
        schema,
        dict,
        vec![
            mk("FRT", 10.0, "10-20-91", "NYSE feed"),
            mk("NUT", 20.0, "10-1-91", "NYSE feed"),
            mk("BLT", 30.0, "9-1-91", "manual entry"),
        ],
    )
    .unwrap()
}

fn catalog() -> QueryCatalog {
    let mut c = QueryCatalog::new();
    c.register("stocks", stocks());
    c
}

fn test_config() -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers: 2,
        stmt_cache_capacity: 64,
        write_mode: WriteMode::default(),
    }
}

#[test]
fn ping_query_and_errors() {
    let server = start(test_config(), catalog()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();

    let sql = "SELECT ticker FROM stocks WITH QUALITY (share_price@source = 'NYSE feed')";
    let over_wire = client.query(sql).unwrap();
    let embedded = render_result(&run(&catalog(), sql).unwrap());
    assert_eq!(over_wire, embedded);
    assert!(over_wire.contains("FRT") && over_wire.contains("NUT"));
    assert!(!over_wire.contains("BLT"));

    // engine errors come back as Server errors, session stays usable
    match client.query("SELECT * FROM ghost") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("ghost")),
        other => panic!("expected server error, got {other:?}"),
    }
    client.ping().unwrap();
}

#[test]
fn repeated_query_hits_stmt_cache() {
    let server = start(test_config(), catalog()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let hits = dq_obs::counter!("server.stmt_cache.hits");
    let h0 = hits.get();
    let sql = "SELECT * FROM stocks WHERE ticker = 'FRT'";
    let first = client.query(sql).unwrap();
    // textual variant still hits the normalized cache entry
    let second = client.query("SELECT  *   FROM stocks\nWHERE ticker = 'FRT'").unwrap();
    assert_eq!(first, second);
    assert!(hits.get() > h0, "second send must be a stmt-cache hit");
}

#[test]
fn tag_write_is_visible_to_other_sessions() {
    let server = start(test_config(), catalog()).unwrap();
    let mut writer = Client::connect(server.addr()).unwrap();
    let mut reader = Client::connect(server.addr()).unwrap();
    let sql = "SELECT ticker FROM stocks WITH QUALITY (share_price@inspection = 'A')";

    // warm the reader's snapshot and statement cache pre-write
    assert!(!reader.query(sql).unwrap().contains("FRT"));
    writer
        .query("TAG stocks SET share_price@inspection = 'A' WHERE ticker = 'FRT'")
        .unwrap();
    // the write bumped the published generation: the reader re-snapshots
    // and its cached plan is invalidated, so the tag is visible
    let after = reader.query(sql).unwrap();
    assert!(after.contains("FRT"), "got: {after}");
}

#[test]
fn profile_supplies_quality_defaults() {
    let server = start(test_config(), catalog()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    let fund_raising = UserProfile::new("fund_raising", "strict sources").with_standard(
        QualityStandard::new("share_price", "source", StandardOp::Ne, "manual entry"),
    );
    client.hello(Some(&fund_raising)).unwrap();

    // no WITH QUALITY spelled: the profile's standard applies
    let defaulted = client.query("SELECT ticker FROM stocks").unwrap();
    assert!(defaulted.contains("FRT") && defaulted.contains("NUT"));
    assert!(!defaulted.contains("BLT"));

    // explicit WITH QUALITY overrides the ambient default
    let explicit = client
        .query("SELECT ticker FROM stocks WITH QUALITY (share_price@source = 'manual entry')")
        .unwrap();
    assert!(explicit.contains("BLT") && !explicit.contains("FRT"));

    // rebinding the unconstrained profile restores pass-through
    client.hello(None).unwrap();
    let open = client.query("SELECT ticker FROM stocks").unwrap();
    assert!(open.contains("BLT"));
}

#[test]
fn many_clients_on_few_workers() {
    let server = start(
        ServerConfig {
            workers: 2,
            ..test_config()
        },
        catalog(),
    )
    .unwrap();
    let addr = server.addr();
    let expected = render_result(&run(&catalog(), "SELECT * FROM stocks").unwrap());
    let handles: Vec<_> = (0..16)
        .map(|_| {
            let expected = expected.clone();
            std::thread::spawn(move || {
                let mut c = Client::connect(addr).unwrap();
                for _ in 0..5 {
                    assert_eq!(c.query("SELECT * FROM stocks").unwrap(), expected);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

#[test]
fn paged_tables_are_served_like_resident_ones() {
    let fs: Arc<MemFs> = Arc::new(MemFs::default());
    let opts = DurableOptions {
        group_commit: true,
        page_size: 512,
        pool_pages: 8,
        ..Default::default()
    };
    let schema = Schema::of(&[("id", DataType::Int), ("sym", DataType::Text)]);
    let dict = IndicatorDictionary::with_paper_defaults();
    let mut twin = TaggedRelation::empty(schema.clone(), dict.clone());
    {
        let (mut db, _) = DurableDb::open(fs.clone(), opts.clone()).unwrap();
        db.create_paged("trades", schema, dict).unwrap();
        for i in 0..120i64 {
            let mut cell = QualityCell::bare(format!("sym{}", i % 7));
            if i % 40 == 0 {
                cell.set_tag(IndicatorValue::new("source", "audit"));
            }
            let row = vec![QualityCell::bare(i), cell];
            db.paged_push("trades", row.clone()).unwrap();
            twin.push(row).unwrap();
        }
        db.commit().unwrap();
    }
    let (db, _) = DurableDb::open(fs, opts).unwrap();
    let server = start_durable(test_config(), db).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();

    // the on-disk relation renders exactly like its in-memory twin
    let sql = "SELECT id FROM trades WITH QUALITY (sym@source = 'audit')";
    let over_wire = client.query(sql).unwrap();
    let mut cat = QueryCatalog::new();
    cat.register("trades", twin);
    assert_eq!(over_wire, render_result(&run(&cat, sql).unwrap()));
    assert!(over_wire.contains("80"), "got: {over_wire}");

    // the planner picks the bitmap path and annotates the pool I/O
    let plan = client.query(&format!("EXPLAIN {sql}")).unwrap();
    assert!(plan.contains("PagedIndexScan"), "plan: {plan}");
    let analyzed = client.query(&format!("EXPLAIN ANALYZE {sql}")).unwrap();
    assert!(
        analyzed.contains("layout=paged") && analyzed.contains("pages_read="),
        "analyzed: {analyzed}"
    );

    // repeated sends hit the statement cache like any resident table
    let hits = dq_obs::counter!("server.stmt_cache.hits");
    let h0 = hits.get();
    assert_eq!(client.query(sql).unwrap(), over_wire);
    assert!(hits.get() > h0, "re-send must be a stmt-cache hit");

    // TAG is routed to the durable writer, not the query layer
    match client.query("TAG trades SET sym@inspection = 'A' WHERE id = 1") {
        Err(ClientError::Server(msg)) => assert!(msg.contains("paged storage"), "{msg}"),
        other => panic!("expected server error, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn out_of_band_registration_reaches_live_sessions() {
    let server = start(test_config(), catalog()).unwrap();
    let mut client = Client::connect(server.addr()).unwrap();
    client.ping().unwrap();
    assert!(client.query("SELECT * FROM extra").is_err());
    let schema = Schema::of(&[("x", DataType::Int)]);
    let rel = TaggedRelation::new(
        schema,
        IndicatorDictionary::with_paper_defaults(),
        vec![vec![QualityCell::bare(7i64)]],
    )
    .unwrap();
    server.catalog().publish(|c| c.register("extra", rel));
    let out = client.query("SELECT * FROM extra").unwrap();
    assert!(out.contains('7'), "got: {out}");
}
