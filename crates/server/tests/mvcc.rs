//! Snapshot-isolation guarantees under concurrent TAG bursts, and the
//! epoch line surviving a durable-server restart.
//!
//! The live-prefix property: with one writer applying a random TAG
//! burst and readers probing concurrently, every response a reader
//! gets must render exactly some *committed prefix* of the burst —
//! never a torn in-between state — and each reader's view must move
//! monotonically forward through those prefixes.

use dq_query::{run, run_mut, QueryCatalog};
use dq_server::{
    render_result, start, start_durable, Client, ServerConfig, ServerHandle, WriteMode,
};
use dq_storage::{DurableDb, DurableOptions, MemFs};
use proptest::prelude::*;
use relstore::{DataType, Date, Schema, Value};
use std::sync::Arc;
use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};

const TICKERS: [&str; 3] = ["FRT", "NUT", "BLT"];
const GRADES: [&str; 4] = ["A", "B", "C", "D"];

/// The probe renders the full Table-2 manufacturing view, so any two
/// distinct tag states render differently and a torn state renders
/// like neither neighbor.
const PROBE: &str = "INSPECT FROM stocks";

fn stocks() -> TaggedRelation {
    let schema = Schema::of(&[("ticker", DataType::Text), ("share_price", DataType::Float)]);
    let dict = IndicatorDictionary::with_paper_defaults();
    let d = |s: &str| Value::Date(Date::parse(s).unwrap());
    let mk = |t: &str, p: f64, ct: &str, src: &str| {
        vec![
            QualityCell::bare(t),
            QualityCell::bare(p)
                .with_tag(IndicatorValue::new("creation_time", d(ct)))
                .with_tag(IndicatorValue::new("source", src)),
        ]
    };
    TaggedRelation::new(
        schema,
        dict,
        vec![
            mk("FRT", 10.0, "10-20-91", "NYSE feed"),
            mk("NUT", 20.0, "10-1-91", "NYSE feed"),
            mk("BLT", 30.0, "9-1-91", "manual entry"),
        ],
    )
    .unwrap()
}

fn catalog() -> QueryCatalog {
    let mut c = QueryCatalog::new();
    c.register("stocks", stocks());
    c
}

fn tag_sql(ticker: &str, grade: &str) -> String {
    format!("TAG stocks SET share_price@inspection = '{grade}' WHERE ticker = '{ticker}'")
}

/// Serially replays the burst on a private catalog, collecting the
/// probe rendering after each committed prefix (index 0 = no ops).
fn committed_renderings(ops: &[String]) -> Vec<String> {
    let mut cat = catalog();
    let mut out = vec![render_result(&run(&cat, PROBE).unwrap())];
    for sql in ops {
        run_mut(&mut cat, sql).unwrap();
        out.push(render_result(&run(&cat, PROBE).unwrap()));
    }
    out
}

/// Runs the burst against a live server while `readers` concurrent
/// clients probe, asserting every observed rendering is a committed
/// prefix and each reader only moves forward.
fn assert_live_prefix(server: &ServerHandle, ops: &[String], readers: usize) {
    let committed = committed_renderings(ops);
    let done = Arc::new(std::sync::atomic::AtomicBool::new(false));

    std::thread::scope(|scope| {
        let mut probes = Vec::new();
        for _ in 0..readers {
            let done = Arc::clone(&done);
            let addr = server.addr();
            let committed = &committed;
            probes.push(scope.spawn(move || {
                let mut client = Client::connect(addr).unwrap();
                let mut last = 0usize; // smallest prefix still admissible
                let mut seen = 0usize;
                loop {
                    let got = client.query(PROBE).unwrap();
                    let at = committed
                        .iter()
                        .enumerate()
                        .skip(last)
                        .find(|(_, r)| **r == got)
                        .map(|(i, _)| i);
                    match at {
                        Some(i) => last = i,
                        None => {
                            // Either a torn/uncommitted state, or a
                            // state this reader had already moved past.
                            let anywhere = committed.iter().position(|r| *r == got);
                            panic!(
                                "reader saw non-prefix state (matches index {anywhere:?}, \
                                 already at {last}):\n{got}"
                            );
                        }
                    }
                    seen += 1;
                    if done.load(std::sync::atomic::Ordering::SeqCst) {
                        break;
                    }
                }
                (last, seen)
            }));
        }

        let mut writer = Client::connect(server.addr()).unwrap();
        for sql in ops {
            writer.query(sql).unwrap();
        }
        // The writer session re-pins after its own write, so this is
        // read-your-writes: the final state must be visible to it.
        assert_eq!(
            writer.query(PROBE).unwrap(),
            *committed.last().unwrap(),
            "writer must see its own final write"
        );
        done.store(true, std::sync::atomic::Ordering::SeqCst);

        for p in probes {
            let (last, seen) = p.join().unwrap();
            assert!(seen > 0, "reader made no probes");
            assert!(last < committed.len());
        }
    });
}

fn config(workers: usize, write_mode: WriteMode) -> ServerConfig {
    ServerConfig {
        addr: "127.0.0.1:0".into(),
        workers,
        stmt_cache_capacity: 32,
        write_mode,
    }
}

proptest! {
    /// A concurrent reader during a random TAG burst always observes a
    /// committed epoch prefix, and only ever moves forward — at 1, 2,
    /// and 8 workers.
    #[test]
    fn readers_observe_only_committed_prefixes(
        burst in prop::collection::vec((0usize..3, 0usize..4), 1..8),
    ) {
        let ops: Vec<String> = burst
            .iter()
            .map(|&(t, g)| tag_sql(TICKERS[t], GRADES[g]))
            .collect();
        for workers in [1usize, 2, 8] {
            let server = start(config(workers, WriteMode::Mvcc), catalog()).unwrap();
            assert_live_prefix(&server, &ops, 2);
            server.shutdown();
        }
    }
}

/// The same live-prefix property holds on the legacy serialized-master
/// path (it publishes whole epochs too, just under a wider lock).
#[test]
fn serialized_master_also_publishes_whole_epochs() {
    let ops: Vec<String> = vec![
        tag_sql("FRT", "A"),
        tag_sql("NUT", "B"),
        tag_sql("BLT", "C"),
        tag_sql("FRT", "D"),
    ];
    let server = start(config(2, WriteMode::SerializedMaster), catalog()).unwrap();
    assert_live_prefix(&server, &ops, 2);
    server.shutdown();
}

/// A long-lived pin really is a snapshot: a catalog pinned before a
/// write keeps rendering the old state after the write publishes.
#[test]
fn pinned_snapshot_is_immutable_across_publishes() {
    let server = start(config(1, WriteMode::Mvcc), catalog()).unwrap();
    let before = server.catalog().pin();
    let before_render = render_result(&run(before.value(), PROBE).unwrap());

    let mut writer = Client::connect(server.addr()).unwrap();
    writer.query(&tag_sql("FRT", "A")).unwrap();

    assert!(server.catalog().published_epoch() > before.epoch());
    // the old pin still renders the pre-write state
    assert_eq!(
        render_result(&run(before.value(), PROBE).unwrap()),
        before_render
    );
    // while a fresh pin sees the tag
    let after = server.catalog().pin();
    assert_ne!(
        render_result(&run(after.value(), PROBE).unwrap()),
        before_render
    );
    server.shutdown();
}

/// Tags written through a durable server survive a restart, and the
/// published epoch resumes from (at least) where it left off.
#[test]
fn durable_server_restart_preserves_tags_and_epoch() {
    let fs: Arc<MemFs> = Arc::new(MemFs::default());

    // Seed the database (autocommit: every op durable immediately).
    {
        let (mut db, _) = DurableDb::open(fs.clone(), DurableOptions::default()).unwrap();
        let rel = stocks();
        db.create_tagged("stocks", rel.schema().clone(), rel.dictionary().clone())
            .unwrap();
        for row in rel.rows() {
            db.push("stocks", row.clone()).unwrap();
        }
    }

    let serving = DurableOptions {
        group_commit: true, // one fsync + one epoch per TAG statement
        ..DurableOptions::default()
    };
    let epoch_after_write;
    let tagged_render;
    {
        let (db, _) = DurableDb::open(fs.clone(), serving.clone()).unwrap();
        let server = start_durable(config(2, WriteMode::Mvcc), db).unwrap();
        let mut client = Client::connect(server.addr()).unwrap();
        client.query(&tag_sql("NUT", "A")).unwrap();
        tagged_render = client.query(PROBE).unwrap();
        assert!(tagged_render.contains('A'), "probe: {tagged_render}");
        epoch_after_write = server.catalog().published_epoch();
        server.shutdown();
    }

    // Restart from the same filesystem: the tag is still there and the
    // epoch line continues rather than restarting from zero.
    let (db, report) = DurableDb::open(fs, serving).unwrap();
    assert!(
        report.epoch >= epoch_after_write,
        "recovered epoch {} must not regress below published {}",
        report.epoch,
        epoch_after_write
    );
    let server = start_durable(config(2, WriteMode::Mvcc), db).unwrap();
    assert!(server.catalog().published_epoch() >= epoch_after_write);
    let mut client = Client::connect(server.addr()).unwrap();
    assert_eq!(client.query(PROBE).unwrap(), tagged_render);
    server.shutdown();
}
