//! `dq-server` — the concurrent quality-query server.
//!
//! Puts `dq-query` behind a TCP socket for the paper's "quality
//! indicators travel with the data to the application interface"
//! premise at serving scale: many consumers, each with their own
//! quality requirements (Premise 2.1/2.2 — per-session `dq-core` user
//! profiles supply `WITH QUALITY` defaults), all reading shared
//! snapshots of the same tagged relations.
//!
//! Architecture (see DESIGN.md §13):
//!
//! * **Protocol** — length-prefixed CRC-framed request/response
//!   messages, the WAL codec's framing applied to a socket.
//! * **Sessions** — per-connection state (catalog snapshot, bound
//!   profile, prepared-statement cache) multiplexed nonblockingly on a
//!   fixed worker pool.
//! * **Prepared-statement cache** — parse + plan once per (profile,
//!   normalized text), re-execute the cached plan; invalidated by the
//!   catalog generation that every registration bumps.
//! * **MVCC epoch snapshots** — the catalog is published as immutable
//!   epoch-stamped snapshots (DESIGN.md §14); readers pin an epoch at
//!   statement start and take zero locks, writers prepare outside the
//!   master lock and serialize only apply + WAL commit + publish.
//!   [`start_durable`] fronts a `dq-storage` WAL so tags survive
//!   restarts and the epoch line continues across them.
//!
//! ```no_run
//! use dq_query::QueryCatalog;
//! use dq_server::{start, Client, ServerConfig};
//!
//! let catalog = QueryCatalog::new(); // register tables first
//! let server = start(ServerConfig::default(), catalog).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let rendered = client.query("SELECT * FROM stocks").unwrap();
//! println!("{rendered}");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
mod session;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response};
pub use server::{start, start_durable, ServerConfig, ServerHandle, SharedCatalog, WriteMode};
pub use session::{is_write_statement, render_result};
