//! `dq-server` — the concurrent quality-query server.
//!
//! Puts `dq-query` behind a TCP socket for the paper's "quality
//! indicators travel with the data to the application interface"
//! premise at serving scale: many consumers, each with their own
//! quality requirements (Premise 2.1/2.2 — per-session `dq-core` user
//! profiles supply `WITH QUALITY` defaults), all reading shared
//! snapshots of the same tagged relations.
//!
//! Architecture (see DESIGN.md §13):
//!
//! * **Protocol** — length-prefixed CRC-framed request/response
//!   messages, the WAL codec's framing applied to a socket.
//! * **Sessions** — per-connection state (catalog snapshot, bound
//!   profile, prepared-statement cache) multiplexed nonblockingly on a
//!   fixed worker pool.
//! * **Prepared-statement cache** — parse + plan once per (profile,
//!   normalized text), re-execute the cached plan; invalidated by the
//!   catalog generation that every registration bumps.
//! * **Shared read snapshots** — the catalog is `Arc`-shared
//!   clone-on-publish; the read hot path takes zero locks.
//!
//! ```no_run
//! use dq_query::QueryCatalog;
//! use dq_server::{start, Client, ServerConfig};
//!
//! let catalog = QueryCatalog::new(); // register tables first
//! let server = start(ServerConfig::default(), catalog).unwrap();
//! let mut client = Client::connect(server.addr()).unwrap();
//! let rendered = client.query("SELECT * FROM stocks").unwrap();
//! println!("{rendered}");
//! ```

#![warn(missing_docs)]

pub mod client;
pub mod protocol;
pub mod server;
mod session;

pub use client::{Client, ClientError};
pub use protocol::{Request, Response};
pub use server::{start, ServerConfig, ServerHandle, SharedCatalog};
pub use session::{is_write_statement, render_result};
