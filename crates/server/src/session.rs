//! Per-connection session state and the nonblocking request pump.
//!
//! Each session owns a *read snapshot* of the catalog (a cheap
//! [`QueryCatalog`] clone — one `Arc`), its own prepared-statement
//! cache, and the quality profile bound by the client's `Hello`. The
//! hot path for a request is: pop frame → cache-hit plan → execute
//! against the snapshot — no lock is taken anywhere; the only shared
//! access is one atomic load of the published catalog generation to
//! decide whether the snapshot is current. Sessions re-snapshot (one
//! short mutex acquisition) only when a writer has published a new
//! generation.

use crate::protocol::{self, Request, Response};
use crate::server::SharedCatalog;
use dq_core::profiles::UserProfile;
use dq_query::{PlanCache, QualityDefaultsProvider, QueryCatalog, QueryResult, SchemaProvider};
use relstore::Expr;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;

/// Renders a [`QueryResult`] to the string the protocol ships — the
/// same deterministic rendering an embedded caller gets from
/// `to_paper_table()`, which is what makes byte-identical
/// client/embedded parity testable.
pub fn render_result(result: &QueryResult) -> String {
    match result {
        QueryResult::Table(rel) => rel.to_paper_table(),
        QueryResult::Inspection { report, .. } => report.clone(),
        QueryResult::Explain { report, rows: None } => report.clone(),
        QueryResult::Explain {
            report,
            rows: Some(rel),
        } => format!("{report}\n{}", rel.to_paper_table()),
    }
}

/// True when the statement must run on the master catalog copy (it
/// mutates): currently only `TAG`.
pub fn is_write_statement(sql: &str) -> bool {
    sql.trim_start()
        .get(..4)
        .map(|p| p.eq_ignore_ascii_case("TAG "))
        .unwrap_or(false)
        || sql.trim().eq_ignore_ascii_case("TAG")
}

/// The session's [`QualityDefaultsProvider`]: resolves the bound
/// profile's standards against each table's schema at prepare time
/// (standards over columns the table lacks are skipped).
#[derive(Debug, Default)]
struct SessionDefaults {
    profile: Option<UserProfile>,
}

impl QualityDefaultsProvider for SessionDefaults {
    fn default_quality(&self, catalog: &QueryCatalog, table: &str) -> Option<Expr> {
        let profile = self.profile.as_ref()?;
        let schema = catalog.schema_of(table).ok()?;
        profile.default_quality_for(&schema)
    }

    fn cache_key(&self) -> &str {
        self.profile.as_ref().map(|p| p.user.as_str()).unwrap_or("")
    }
}

/// One client connection multiplexed on a worker thread.
pub(crate) struct Session {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already flushed to the socket.
    written: usize,
    catalog: QueryCatalog,
    cache: PlanCache,
    defaults: SessionDefaults,
    /// Set on EOF or protocol error; the worker drops the session.
    pub(crate) closed: bool,
}

impl Session {
    pub(crate) fn new(
        stream: TcpStream,
        shared: &SharedCatalog,
        stmt_cache_capacity: usize,
    ) -> std::io::Result<Session> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        dq_obs::counter!("server.connections").incr();
        Ok(Session {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            catalog: shared.snapshot(),
            cache: PlanCache::new(stmt_cache_capacity),
            defaults: SessionDefaults::default(),
            closed: false,
        })
    }

    /// One multiplexing step: flush pending output, read what's
    /// available, answer every complete frame. Returns `true` when any
    /// byte moved (the worker sleeps only when every session is idle).
    pub(crate) fn pump(&mut self, shared: &SharedCatalog) -> bool {
        let mut progress = self.flush();
        progress |= self.fill();
        loop {
            match protocol::try_unframe(&mut self.read_buf) {
                Ok(Some(payload)) => {
                    progress = true;
                    let response = self.handle_payload(&payload, shared);
                    self.write_buf
                        .extend_from_slice(&protocol::frame(&response.encode()));
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is unrecoverable on a byte stream: report
                    // once (best effort) and drop the connection.
                    dq_obs::counter!("server.protocol_errors").incr();
                    let resp = Response::Err {
                        message: format!("protocol error: {err}"),
                    };
                    self.write_buf
                        .extend_from_slice(&protocol::frame(&resp.encode()));
                    self.flush();
                    self.closed = true;
                    return true;
                }
            }
        }
        progress |= self.flush();
        progress
    }

    /// Decode a request, refresh the snapshot if a writer published a
    /// newer catalog, execute, and render.
    fn handle_payload(&mut self, payload: &[u8], shared: &SharedCatalog) -> Response {
        let request = match Request::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                return Response::Err {
                    message: format!("bad request: {e}"),
                }
            }
        };
        dq_obs::counter!("server.requests").incr();
        match request {
            Request::Ping => Response::Pong,
            Request::Hello { profile_json } => {
                if profile_json.is_empty() {
                    self.defaults = SessionDefaults::default();
                    // a rebind changes the ambient defaults → cached
                    // plans keyed on the old profile no longer apply
                    self.cache.clear();
                    return Response::Pong;
                }
                match serde_json::from_str::<UserProfile>(&profile_json) {
                    Ok(profile) => {
                        self.defaults = SessionDefaults {
                            profile: Some(profile),
                        };
                        self.cache.clear();
                        Response::Pong
                    }
                    Err(e) => Response::Err {
                        message: format!("bad profile: {e}"),
                    },
                }
            }
            Request::Query { sql } => {
                let span = dq_obs::histogram!("server.request_us").start();
                let resp = self.run_query(&sql, shared);
                drop(span);
                if matches!(resp, Response::Err { .. }) {
                    dq_obs::counter!("server.errors").incr();
                }
                resp
            }
        }
    }

    fn run_query(&mut self, sql: &str, shared: &SharedCatalog) -> Response {
        if is_write_statement(sql) {
            // Writes serialize on the master copy and publish a new
            // generation for every session to pick up.
            let result = shared.publish(|catalog| dq_query::run_mut(catalog, sql));
            self.catalog = shared.snapshot();
            return match result {
                Ok(res) => Response::Ok {
                    body: render_result(&res),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            };
        }
        // Zero-lock hot path: one atomic load; re-snapshot only when a
        // writer moved the generation since this session last looked.
        if self.catalog.generation() != shared.published_generation() {
            self.catalog = shared.snapshot();
        }
        match self.cache.execute(&self.catalog, sql, &self.defaults) {
            Ok(res) => Response::Ok {
                body: render_result(&res),
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        }
    }

    /// Nonblocking write of buffered output.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.written == self.write_buf.len() && self.written > 0 {
            self.write_buf.clear();
            self.written = 0;
        }
        progress
    }

    /// Nonblocking read of whatever the socket has.
    fn fill(&mut self) -> bool {
        let mut progress = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        progress
    }
}
