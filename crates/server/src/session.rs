//! Per-connection session state and the nonblocking request pump.
//!
//! Each session *pins* an epoch-stamped catalog snapshot (an `Arc`
//! into the [`EpochCell`][tagstore::EpochCell]), owns its own
//! prepared-statement cache, and holds the quality profile bound by
//! the client's `Hello`. The hot path for a request is: pop frame →
//! cache-hit plan → execute against the pinned snapshot — no lock is
//! taken anywhere; the only shared access is one lock-free atomic
//! load of the published epoch to decide whether the pin is current.
//! Sessions re-pin (one `Arc` clone under a short read lock) only
//! when a writer has published a new epoch, recording how many epochs
//! behind they were as `mvcc.snapshot_lag`.

use crate::protocol::{self, Request, Response};
use crate::server::{SharedCatalog, WriteMode};
use dq_core::profiles::UserProfile;
use dq_query::{PlanCache, QualityDefaultsProvider, QueryCatalog, QueryResult, SchemaProvider};
use relstore::Expr;
use std::io::{ErrorKind, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tagstore::Stamped;

/// Renders a [`QueryResult`] to the string the protocol ships — the
/// same deterministic rendering an embedded caller gets from
/// `to_paper_table()`, which is what makes byte-identical
/// client/embedded parity testable.
pub fn render_result(result: &QueryResult) -> String {
    match result {
        QueryResult::Table(rel) => rel.to_paper_table(),
        QueryResult::Inspection { report, .. } => report.clone(),
        QueryResult::Explain { report, rows: None } => report.clone(),
        QueryResult::Explain {
            report,
            rows: Some(rel),
        } => format!("{report}\n{}", rel.to_paper_table()),
    }
}

/// True when the statement must run on the master catalog copy (it
/// mutates): currently only `TAG`.
pub fn is_write_statement(sql: &str) -> bool {
    sql.trim_start()
        .get(..4)
        .map(|p| p.eq_ignore_ascii_case("TAG "))
        .unwrap_or(false)
        || sql.trim().eq_ignore_ascii_case("TAG")
}

/// The session's [`QualityDefaultsProvider`]: resolves the bound
/// profile's standards against each table's schema at prepare time
/// (standards over columns the table lacks are skipped).
#[derive(Debug, Default)]
struct SessionDefaults {
    profile: Option<UserProfile>,
}

impl QualityDefaultsProvider for SessionDefaults {
    fn default_quality(&self, catalog: &QueryCatalog, table: &str) -> Option<Expr> {
        let profile = self.profile.as_ref()?;
        let schema = catalog.schema_of(table).ok()?;
        profile.default_quality_for(&schema)
    }

    fn cache_key(&self) -> &str {
        self.profile.as_ref().map(|p| p.user.as_str()).unwrap_or("")
    }
}

/// One client connection multiplexed on a worker thread.
pub(crate) struct Session {
    stream: TcpStream,
    read_buf: Vec<u8>,
    write_buf: Vec<u8>,
    /// Bytes of `write_buf` already flushed to the socket.
    written: usize,
    /// The pinned epoch snapshot this session reads from.
    pin: Arc<Stamped<QueryCatalog>>,
    cache: PlanCache,
    defaults: SessionDefaults,
    write_mode: WriteMode,
    /// Set on EOF or protocol error; the worker drops the session.
    pub(crate) closed: bool,
}

impl Session {
    pub(crate) fn new(
        stream: TcpStream,
        shared: &SharedCatalog,
        stmt_cache_capacity: usize,
        write_mode: WriteMode,
    ) -> std::io::Result<Session> {
        stream.set_nonblocking(true)?;
        stream.set_nodelay(true).ok();
        dq_obs::counter!("server.connections").incr();
        Ok(Session {
            stream,
            read_buf: Vec::new(),
            write_buf: Vec::new(),
            written: 0,
            pin: shared.pin(),
            cache: PlanCache::new(stmt_cache_capacity),
            defaults: SessionDefaults::default(),
            write_mode,
            closed: false,
        })
    }

    /// Re-pins the published snapshot when a writer has moved the
    /// epoch since this session last looked (one lock-free atomic
    /// load on the already-current path).
    fn refresh_pin(&mut self, shared: &SharedCatalog) {
        let published = shared.published_epoch();
        if self.pin.epoch() != published {
            let fresh = match self.write_mode {
                WriteMode::Mvcc => shared.pin(),
                // the legacy path re-snapshots behind the master
                // mutex, waiting out any in-flight TAG statement
                WriteMode::SerializedMaster => shared.pin_behind_master(),
            };
            dq_obs::histogram!("mvcc.snapshot_lag")
                .record_us(fresh.epoch().saturating_sub(self.pin.epoch()));
            self.pin = fresh;
        }
    }

    /// One multiplexing step: flush pending output, read what's
    /// available, answer every complete frame. Returns `true` when any
    /// byte moved (the worker sleeps only when every session is idle).
    pub(crate) fn pump(&mut self, shared: &SharedCatalog) -> bool {
        let mut progress = self.flush();
        progress |= self.fill();
        loop {
            match protocol::try_unframe(&mut self.read_buf) {
                Ok(Some(payload)) => {
                    progress = true;
                    let response = self.handle_payload(&payload, shared);
                    self.write_buf
                        .extend_from_slice(&protocol::frame(&response.encode()));
                }
                Ok(None) => break,
                Err(err) => {
                    // Framing is unrecoverable on a byte stream: report
                    // once (best effort) and drop the connection.
                    dq_obs::counter!("server.protocol_errors").incr();
                    let resp = Response::Err {
                        message: format!("protocol error: {err}"),
                    };
                    self.write_buf
                        .extend_from_slice(&protocol::frame(&resp.encode()));
                    self.flush();
                    self.closed = true;
                    return true;
                }
            }
        }
        progress |= self.flush();
        progress
    }

    /// Decode a request, refresh the snapshot if a writer published a
    /// newer catalog, execute, and render.
    fn handle_payload(&mut self, payload: &[u8], shared: &SharedCatalog) -> Response {
        let request = match Request::decode(payload) {
            Ok(r) => r,
            Err(e) => {
                return Response::Err {
                    message: format!("bad request: {e}"),
                }
            }
        };
        dq_obs::counter!("server.requests").incr();
        match request {
            Request::Ping => Response::Pong,
            Request::Hello { profile_json } => {
                if profile_json.is_empty() {
                    self.defaults = SessionDefaults::default();
                    // a rebind changes the ambient defaults → cached
                    // plans keyed on the old profile no longer apply
                    self.cache.clear();
                    return Response::Pong;
                }
                match serde_json::from_str::<UserProfile>(&profile_json) {
                    Ok(profile) => {
                        self.defaults = SessionDefaults {
                            profile: Some(profile),
                        };
                        self.cache.clear();
                        Response::Pong
                    }
                    Err(e) => Response::Err {
                        message: format!("bad profile: {e}"),
                    },
                }
            }
            Request::Query { sql } => {
                let span = dq_obs::histogram!("server.request_us").start();
                let resp = self.run_query(&sql, shared);
                drop(span);
                if matches!(resp, Response::Err { .. }) {
                    dq_obs::counter!("server.errors").incr();
                }
                resp
            }
        }
    }

    fn run_query(&mut self, sql: &str, shared: &SharedCatalog) -> Response {
        if is_write_statement(sql) {
            let result = match self.write_mode {
                WriteMode::Mvcc => {
                    // Prepare (parse, mask evaluation, copy-on-write
                    // tag columns) against this session's pin outside
                    // any lock; only apply+WAL+publish serialize.
                    self.refresh_pin(shared);
                    dq_query::prepare_write(self.pin.value(), sql)
                        .and_then(|w| shared.commit_write(w))
                }
                WriteMode::SerializedMaster => {
                    // Legacy baseline: the whole statement runs under
                    // the master mutex.
                    shared.publish(|catalog| dq_query::run_mut(catalog, sql))
                }
            };
            // Read-your-writes: pick up the epoch just published.
            self.refresh_pin(shared);
            return match result {
                Ok(res) => Response::Ok {
                    body: render_result(&res),
                },
                Err(e) => Response::Err {
                    message: e.to_string(),
                },
            };
        }
        // Zero-lock hot path: one atomic load; re-pin only when a
        // writer moved the epoch since this session last looked.
        self.refresh_pin(shared);
        match self.cache.execute(self.pin.value(), sql, &self.defaults) {
            Ok(res) => Response::Ok {
                body: render_result(&res),
            },
            Err(e) => Response::Err {
                message: e.to_string(),
            },
        }
    }

    /// Nonblocking write of buffered output.
    fn flush(&mut self) -> bool {
        let mut progress = false;
        while self.written < self.write_buf.len() {
            match self.stream.write(&self.write_buf[self.written..]) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.written += n;
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        if self.written == self.write_buf.len() && self.written > 0 {
            self.write_buf.clear();
            self.written = 0;
        }
        progress
    }

    /// Nonblocking read of whatever the socket has.
    fn fill(&mut self) -> bool {
        let mut progress = false;
        let mut chunk = [0u8; 16 * 1024];
        loop {
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    self.closed = true;
                    break;
                }
                Ok(n) => {
                    self.read_buf.extend_from_slice(&chunk[..n]);
                    progress = true;
                }
                Err(e) if e.kind() == ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == ErrorKind::Interrupted => continue,
                Err(_) => {
                    self.closed = true;
                    break;
                }
            }
        }
        progress
    }
}
