//! A minimal blocking client for the dq-server protocol — what the
//! load generator, the examples, and the parity tests speak.

use crate::protocol::{self, ProtocolError, Request, Response};
use dq_core::profiles::UserProfile;
use std::net::{TcpStream, ToSocketAddrs};

/// Client-side failure: transport/protocol trouble, or a server-side
/// statement error relayed verbatim.
#[derive(Debug)]
pub enum ClientError {
    /// Framing / socket / decoding failure.
    Protocol(ProtocolError),
    /// The server answered `Err` — the message is the engine's.
    Server(String),
    /// The server answered with a response kind the call didn't expect
    /// (e.g. `Pong` to a query).
    Unexpected(String),
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Protocol(e) => write!(f, "protocol: {e}"),
            ClientError::Server(m) => write!(f, "server: {m}"),
            ClientError::Unexpected(m) => write!(f, "unexpected response: {m}"),
        }
    }
}

impl std::error::Error for ClientError {}

impl From<ProtocolError> for ClientError {
    fn from(e: ProtocolError) -> Self {
        ClientError::Protocol(e)
    }
}

impl From<std::io::Error> for ClientError {
    fn from(e: std::io::Error) -> Self {
        ClientError::Protocol(ProtocolError::Io(e))
    }
}

/// One blocking connection. Every call is a strict request/response
/// round-trip.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects (TCP, Nagle off).
    pub fn connect(addr: impl ToSocketAddrs) -> Result<Client, ClientError> {
        let stream = TcpStream::connect(addr)?;
        stream.set_nodelay(true).ok();
        Ok(Client { stream })
    }

    fn round_trip(&mut self, request: &Request) -> Result<Response, ClientError> {
        protocol::write_frame(&mut self.stream, &request.encode())?;
        let payload = protocol::read_frame(&mut self.stream)?;
        Ok(Response::decode(&payload)?)
    }

    /// Binds `profile` as the session's quality profile (its standards
    /// become the `WITH QUALITY` defaults for statements that don't
    /// spell their own); `None` rebinds the unconstrained profile.
    pub fn hello(&mut self, profile: Option<&UserProfile>) -> Result<(), ClientError> {
        let profile_json = match profile {
            Some(p) => serde_json::to_string(p)
                .map_err(|e| ClientError::Unexpected(format!("profile serialize: {e}")))?,
            None => String::new(),
        };
        match self.round_trip(&Request::Hello { profile_json })? {
            Response::Pong => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            Response::Ok { body } => Err(ClientError::Unexpected(body)),
        }
    }

    /// Executes one QQL statement, returning the rendered result.
    pub fn query(&mut self, sql: &str) -> Result<String, ClientError> {
        match self.round_trip(&Request::Query { sql: sql.into() })? {
            Response::Ok { body } => Ok(body),
            Response::Err { message } => Err(ClientError::Server(message)),
            Response::Pong => Err(ClientError::Unexpected("pong to a query".into())),
        }
    }

    /// Liveness probe.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.round_trip(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Err { message } => Err(ClientError::Server(message)),
            Response::Ok { body } => Err(ClientError::Unexpected(body)),
        }
    }
}
