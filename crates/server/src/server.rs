//! The accept loop, worker pool, and shared-catalog publication.
//!
//! Topology: one accept thread hands fresh connections round-robin to
//! `workers` session threads over channels; each worker multiplexes all
//! of its sessions with a nonblocking pump (read → frame → execute →
//! write), sleeping briefly only when every one of its sessions is
//! idle. This serves many more connections than threads — 64 simulated
//! clients run fine on a 2-worker pool — without an async runtime,
//! which the offline build cannot pull in.
//!
//! Writers (`TAG`) serialize through [`SharedCatalog::publish`]; readers
//! never take that lock mid-query — they run against their session's
//! own catalog snapshot and check one published-generation atomic per
//! request to decide whether to re-snapshot.

use crate::session::Session;
use dq_query::QueryCatalog;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::Duration;

/// How long an idle worker / accept thread sleeps before re-polling.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads multiplexing sessions.
    pub workers: usize,
    /// Per-session prepared-statement cache capacity.
    pub stmt_cache_capacity: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            stmt_cache_capacity: 256,
        }
    }
}

/// The master catalog plus its published generation.
///
/// `master` is the single mutable copy writers update; `generation`
/// mirrors `master.generation()` and is the only thing the read hot
/// path touches (one `Relaxed`-ordering atomic load per request —
/// snapshot publication happens under the mutex, so a session that
/// observes a new generation and then locks to re-snapshot always sees
/// at least that generation's catalog).
#[derive(Debug)]
pub struct SharedCatalog {
    master: Mutex<QueryCatalog>,
    generation: AtomicU64,
}

impl SharedCatalog {
    /// Wraps a catalog for serving.
    pub fn new(catalog: QueryCatalog) -> Self {
        let generation = AtomicU64::new(catalog.generation());
        SharedCatalog {
            master: Mutex::new(catalog),
            generation,
        }
    }

    /// The generation of the most recently published catalog.
    pub fn published_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// A read snapshot of the current catalog (cheap: one `Arc` clone).
    pub fn snapshot(&self) -> QueryCatalog {
        self.master.lock().unwrap().snapshot()
    }

    /// Runs a mutation against the master copy and publishes the new
    /// generation. All writers serialize here; readers keep executing
    /// against their snapshots throughout.
    pub fn publish<R>(&self, mutate: impl FnOnce(&mut QueryCatalog) -> R) -> R {
        let mut master = self.master.lock().unwrap();
        let out = mutate(&mut master);
        self.generation
            .store(master.generation(), Ordering::Release);
        out
    }
}

/// A running server; dropping it shuts the server down and joins every
/// thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<SharedCatalog>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog, e.g. for out-of-band registration:
    /// `handle.catalog().publish(|c| c.register("t", rel))`.
    pub fn catalog(&self) -> &SharedCatalog {
        &self.shared
    }

    /// Signals shutdown and joins the accept + worker threads. Open
    /// connections are dropped.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds and serves `catalog` until the handle is shut down.
pub fn start(config: ServerConfig, catalog: QueryCatalog) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shared = Arc::new(SharedCatalog::new(catalog));
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);
    let mut threads = Vec::with_capacity(workers + 1);
    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);

    for i in 0..workers {
        let (tx, rx) = channel::<TcpStream>();
        senders.push(tx);
        let shared = Arc::clone(&shared);
        let shutdown = Arc::clone(&shutdown);
        let capacity = config.stmt_cache_capacity;
        threads.push(
            std::thread::Builder::new()
                .name(format!("dq-server-worker-{i}"))
                .spawn(move || worker_loop(rx, shared, shutdown, capacity))?,
        );
    }

    {
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name("dq-server-accept".into())
                .spawn(move || accept_loop(listener, senders, shutdown))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        shutdown,
        threads,
    })
}

fn accept_loop(listener: TcpListener, senders: Vec<Sender<TcpStream>>, shutdown: Arc<AtomicBool>) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Round-robin: each worker multiplexes its share.
                if senders[next % senders.len()].send(stream).is_err() {
                    break; // worker gone — server is tearing down
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_SLEEP);
            }
            Err(_) => std::thread::sleep(IDLE_SLEEP),
        }
    }
}

fn worker_loop(
    incoming: Receiver<TcpStream>,
    shared: Arc<SharedCatalog>,
    shutdown: Arc<AtomicBool>,
    stmt_cache_capacity: usize,
) {
    let mut sessions: Vec<Session> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        while let Ok(stream) = incoming.try_recv() {
            match Session::new(stream, &shared, stmt_cache_capacity) {
                Ok(s) => sessions.push(s),
                Err(_) => dq_obs::counter!("server.accept_errors").incr(),
            }
        }
        let mut progress = false;
        sessions.retain_mut(|s| {
            progress |= s.pump(&shared);
            !s.closed
        });
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}
