//! The accept loop, worker pool, and MVCC catalog publication.
//!
//! Topology: one accept thread hands fresh connections round-robin to
//! `workers` session threads over channels; each worker multiplexes all
//! of its sessions with a nonblocking pump (read → frame → execute →
//! write), sleeping briefly only when every one of its sessions is
//! idle. This serves many more connections than threads — 64 simulated
//! clients run fine on a 2-worker pool — without an async runtime,
//! which the offline build cannot pull in.
//!
//! Concurrency model (see DESIGN.md §14): the catalog lives in an
//! epoch-stamped [`EpochCell`]. Readers pin the published snapshot at
//! statement start — one lock-free atomic load to detect staleness,
//! one short read-lock `Arc` clone to re-pin — and never observe a
//! torn write. Writers prepare the whole statement against their own
//! pinned snapshot *outside* any lock, then serialize only the
//! apply+publish tail through [`SharedCatalog::commit_write`]. When
//! the server fronts a [`DurableDb`], the WAL commit happens inside
//! that same tail and the WAL's epoch counter is the floor for the
//! published epoch, so a restart resumes the same epoch line.

use crate::session::Session;
use dq_query::{PagedProvider, PagedScanStats, QueryCatalog, QueryResult, TagWrite};
use dq_storage::DurableDb;
use relstore::{DbResult, Expr, Schema};
use tagstore::TaggedRelation;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};
use tagstore::{EpochCell, Stamped};

/// How long an idle worker / accept thread sleeps before re-polling.
const IDLE_SLEEP: Duration = Duration::from_micros(200);

/// How `TAG` statements reach the master catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum WriteMode {
    /// Prepare the write against the session's pinned snapshot outside
    /// any lock, then serialize only apply+publish (the default).
    #[default]
    Mvcc,
    /// Run the whole statement under the master mutex — the legacy
    /// path, kept as the B12 bench baseline.
    SerializedMaster,
}

/// Server tunables.
#[derive(Debug, Clone)]
pub struct ServerConfig {
    /// Bind address; port 0 picks an ephemeral port (tests).
    pub addr: String,
    /// Worker threads multiplexing sessions.
    pub workers: usize,
    /// Per-session prepared-statement cache capacity.
    pub stmt_cache_capacity: usize,
    /// How writers reach the master catalog.
    pub write_mode: WriteMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:0".into(),
            workers: std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1)
                .min(8),
            stmt_cache_capacity: 256,
            write_mode: WriteMode::default(),
        }
    }
}

/// The single mutable state writers serialize on: the master catalog
/// copy and, for durable servers, the WAL-backed database it mirrors.
///
/// The database sits behind its own mutex (shared with every
/// registered [`PagedTable`] provider) so paged reads need only the
/// db lock, never the master lock. Writers take master → db in that
/// order; providers take db alone, so the ordering is acyclic.
#[derive(Debug)]
struct WriterState {
    catalog: QueryCatalog,
    db: Option<Arc<Mutex<DurableDb>>>,
}

/// A paged relation served straight off the durable database's buffer
/// pool. Registered into the catalog by [`SharedCatalog::with_db`] for
/// every `db.paged_names()` entry; each call locks the shared database
/// for exactly one storage operation, so sessions on other workers
/// interleave page-at-a-time rather than query-at-a-time.
#[derive(Debug)]
struct PagedTable {
    name: String,
    db: Arc<Mutex<DurableDb>>,
}

impl PagedProvider for PagedTable {
    fn schema(&self) -> DbResult<Schema> {
        Ok(self.db.lock().unwrap().paged_schema(&self.name)?.clone())
    }

    fn row_count(&self) -> DbResult<u64> {
        self.db.lock().unwrap().paged_len(&self.name)
    }

    fn scan(&self) -> DbResult<TaggedRelation> {
        self.db.lock().unwrap().paged_to_relation(&self.name)
    }

    fn select(&self, predicate: &Expr) -> DbResult<TaggedRelation> {
        self.db.lock().unwrap().paged_select(&self.name, predicate)
    }

    fn select_indexed(&self, predicate: &Expr) -> DbResult<(TaggedRelation, PagedScanStats)> {
        let mut db = self.db.lock().unwrap();
        let (rel, stats) = db.paged_select_indexed(&self.name, predicate)?;
        Ok((
            rel,
            PagedScanStats {
                pages_read: stats.pages_read,
                pool_hits: stats.pool_hits,
                candidate_pages: stats.candidate_pages,
            },
        ))
    }

    fn access_estimate(&self, predicate: &Expr) -> Option<(Vec<String>, f64)> {
        self.db
            .lock()
            .unwrap()
            .paged_access_estimate(&self.name, predicate)
            .ok()
            .flatten()
    }
}

/// The master catalog plus its published epoch snapshot.
///
/// `master` is the single mutable copy writers update; `published` is
/// the immutable epoch-stamped snapshot every reader pins. The read
/// hot path touches one lock-free atomic ([`published_epoch`]) per
/// request to decide whether to re-pin; re-pinning is one `Arc` clone
/// under a short read lock. `generation` mirrors
/// `master.generation()` for prepared-statement-cache invalidation.
///
/// [`published_epoch`]: SharedCatalog::published_epoch
#[derive(Debug)]
pub struct SharedCatalog {
    master: Mutex<WriterState>,
    published: EpochCell<QueryCatalog>,
    generation: AtomicU64,
}

impl SharedCatalog {
    /// Wraps an in-memory catalog for serving.
    pub fn new(catalog: QueryCatalog) -> Self {
        let generation = AtomicU64::new(catalog.generation());
        let published = EpochCell::new(catalog.snapshot());
        SharedCatalog {
            master: Mutex::new(WriterState { catalog, db: None }),
            published,
            generation,
        }
    }

    /// Wraps a recovered durable database: the served catalog is built
    /// from every tagged relation in `db`, and the published epoch
    /// starts at the WAL's recovered epoch so the snapshot line
    /// continues across restarts.
    pub fn with_db(db: DurableDb) -> DbResult<Self> {
        let mut catalog = QueryCatalog::new();
        let names: Vec<String> = db.tagged_names().iter().map(|n| n.to_string()).collect();
        for name in names {
            let rel = db.tagged(&name)?.relation().clone();
            catalog.register(name, rel);
        }
        let epoch = db.epoch();
        let db = Arc::new(Mutex::new(db));
        // Paged relations stay on disk: the catalog gets a provider
        // that routes each access through the shared buffer pool.
        let paged: Vec<String> = db
            .lock()
            .unwrap()
            .paged_names()
            .iter()
            .map(|n| n.to_string())
            .collect();
        for name in paged {
            let provider = PagedTable {
                name: name.clone(),
                db: Arc::clone(&db),
            };
            catalog.register_paged(name, Arc::new(provider));
        }
        let generation = AtomicU64::new(catalog.generation());
        let published = EpochCell::with_epoch(epoch, catalog.snapshot());
        Ok(SharedCatalog {
            master: Mutex::new(WriterState {
                catalog,
                db: Some(db),
            }),
            published,
            generation,
        })
    }

    /// The generation of the most recently published catalog.
    pub fn published_generation(&self) -> u64 {
        self.generation.load(Ordering::Acquire)
    }

    /// The epoch of the most recently published snapshot (lock-free).
    pub fn published_epoch(&self) -> u64 {
        self.published.published_epoch()
    }

    /// Pins the published snapshot: the returned `Arc` keeps that
    /// epoch's catalog alive for as long as the caller holds it,
    /// regardless of how many writers publish after.
    pub fn pin(&self) -> Arc<Stamped<QueryCatalog>> {
        self.published.pin()
    }

    /// A read snapshot of the published catalog (cheap: `Arc` clones).
    pub fn snapshot(&self) -> QueryCatalog {
        self.pin().value().snapshot()
    }

    /// The legacy re-snapshot path, kept for
    /// [`WriteMode::SerializedMaster`]: acquiring the master mutex
    /// first means a reader arriving mid-`TAG` waits out the whole
    /// statement — exactly the stall MVCC pinning removes, preserved
    /// here so the B12 baseline measures what PR-era readers paid.
    pub fn pin_behind_master(&self) -> Arc<Stamped<QueryCatalog>> {
        let _master = self.master.lock().unwrap();
        self.published.pin()
    }

    /// Runs a mutation against the master copy and publishes a new
    /// epoch. This is the out-of-band registration door (`publish(|c|
    /// c.register(..))`) and the `SerializedMaster` write path; `TAG`
    /// statements in MVCC mode go through [`commit_write`] instead.
    ///
    /// Mutations here reach only the in-memory catalog, not the WAL.
    ///
    /// [`commit_write`]: SharedCatalog::commit_write
    pub fn publish<R>(&self, mutate: impl FnOnce(&mut QueryCatalog) -> R) -> R {
        let wait = Instant::now();
        let mut ws = self.master.lock().unwrap();
        dq_obs::histogram!("mvcc.writer_wait_us").record(wait.elapsed());
        let out = mutate(&mut ws.catalog);
        self.publish_locked(&ws);
        out
    }

    /// Applies a prepared [`TagWrite`] and publishes the result — the
    /// narrow MVCC writer tail. Everything expensive (parse, mask
    /// evaluation, tag-column copy-on-write) already happened in
    /// [`dq_query::prepare_write`] against the writer's pinned
    /// snapshot; this holds the master lock only for apply + WAL
    /// commit + publish.
    pub fn commit_write(&self, write: TagWrite) -> DbResult<QueryResult> {
        let wait = Instant::now();
        let mut ws = self.master.lock().unwrap();
        dq_obs::histogram!("mvcc.writer_wait_us").record(wait.elapsed());
        let result = match ws.db.clone() {
            Some(db) => {
                // Durable path: stage the catalog apply on a scratch
                // copy first, then WAL-log the same cell tags, so a
                // WAL error publishes nothing.
                let table = write.table().to_owned();
                let tags: Vec<_> = write.tags().to_vec();
                let mut next = ws.catalog.clone();
                let staged = write.apply(&mut next);
                let logged = staged.and_then(|res| {
                    let mut db = db.lock().unwrap();
                    let len = db.tagged(&table)?.relation().len();
                    for (row, column, tag) in tags {
                        // Rows past the end were skipped by the
                        // catalog-side conflict re-apply too.
                        if row < len {
                            db.tag_cell(&table, row, &column, tag)?;
                        }
                    }
                    db.commit()?;
                    Ok(res)
                });
                if logged.is_ok() {
                    ws.catalog = next;
                }
                logged
            }
            None => write.apply(&mut ws.catalog),
        };
        if result.is_ok() {
            self.publish_locked(&ws);
        }
        result
    }

    /// Publishes the master catalog as a new epoch snapshot. The WAL
    /// epoch (when present) floors the published epoch so the two
    /// counters stay on one line across restarts.
    fn publish_locked(&self, ws: &WriterState) {
        let floor = ws
            .db
            .as_ref()
            .map(|db| db.lock().unwrap().epoch())
            .unwrap_or(0);
        self.published.publish_at(ws.catalog.snapshot(), floor);
        self.generation
            .store(ws.catalog.generation(), Ordering::Release);
    }
}

/// A running server; dropping it shuts the server down and joins every
/// thread.
#[derive(Debug)]
pub struct ServerHandle {
    addr: SocketAddr,
    shared: Arc<SharedCatalog>,
    shutdown: Arc<AtomicBool>,
    threads: Vec<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address (resolves port 0 to the actual ephemeral port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The shared catalog, e.g. for out-of-band registration:
    /// `handle.catalog().publish(|c| c.register("t", rel))`.
    pub fn catalog(&self) -> &SharedCatalog {
        &self.shared
    }

    /// Signals shutdown and joins the accept + worker threads. Open
    /// connections are dropped.
    pub fn shutdown(mut self) {
        self.stop();
    }

    fn stop(&mut self) {
        self.shutdown.store(true, Ordering::SeqCst);
        for t in self.threads.drain(..) {
            let _ = t.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Binds and serves `catalog` until the handle is shut down.
pub fn start(config: ServerConfig, catalog: QueryCatalog) -> std::io::Result<ServerHandle> {
    start_shared(config, Arc::new(SharedCatalog::new(catalog)))
}

/// Binds and serves a recovered durable database: `TAG` statements
/// reach the WAL (group-committed per statement) and the published
/// epoch resumes from the recovered one.
pub fn start_durable(config: ServerConfig, db: DurableDb) -> std::io::Result<ServerHandle> {
    let shared = SharedCatalog::with_db(db)
        .map_err(|e| std::io::Error::other(format!("durable catalog: {e}")))?;
    start_shared(config, Arc::new(shared))
}

fn start_shared(config: ServerConfig, shared: Arc<SharedCatalog>) -> std::io::Result<ServerHandle> {
    let listener = TcpListener::bind(&config.addr)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let shutdown = Arc::new(AtomicBool::new(false));
    let workers = config.workers.max(1);
    let mut threads = Vec::with_capacity(workers + 1);
    let mut senders: Vec<Sender<TcpStream>> = Vec::with_capacity(workers);

    for i in 0..workers {
        let (tx, rx) = channel::<TcpStream>();
        senders.push(tx);
        let shared = Arc::clone(&shared);
        let shutdown = Arc::clone(&shutdown);
        let capacity = config.stmt_cache_capacity;
        let write_mode = config.write_mode;
        threads.push(
            std::thread::Builder::new()
                .name(format!("dq-server-worker-{i}"))
                .spawn(move || worker_loop(rx, shared, shutdown, capacity, write_mode))?,
        );
    }

    {
        let shutdown = Arc::clone(&shutdown);
        threads.push(
            std::thread::Builder::new()
                .name("dq-server-accept".into())
                .spawn(move || accept_loop(listener, senders, shutdown))?,
        );
    }

    Ok(ServerHandle {
        addr,
        shared,
        shutdown,
        threads,
    })
}

fn accept_loop(listener: TcpListener, senders: Vec<Sender<TcpStream>>, shutdown: Arc<AtomicBool>) {
    let mut next = 0usize;
    while !shutdown.load(Ordering::SeqCst) {
        match listener.accept() {
            Ok((stream, _peer)) => {
                // Round-robin: each worker multiplexes its share.
                if senders[next % senders.len()].send(stream).is_err() {
                    break; // worker gone — server is tearing down
                }
                next = next.wrapping_add(1);
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(IDLE_SLEEP);
            }
            Err(_) => std::thread::sleep(IDLE_SLEEP),
        }
    }
}

fn worker_loop(
    incoming: Receiver<TcpStream>,
    shared: Arc<SharedCatalog>,
    shutdown: Arc<AtomicBool>,
    stmt_cache_capacity: usize,
    write_mode: WriteMode,
) {
    let mut sessions: Vec<Session> = Vec::new();
    while !shutdown.load(Ordering::SeqCst) {
        while let Ok(stream) = incoming.try_recv() {
            match Session::new(stream, &shared, stmt_cache_capacity, write_mode) {
                Ok(s) => sessions.push(s),
                Err(_) => dq_obs::counter!("server.accept_errors").incr(),
            }
        }
        let mut progress = false;
        sessions.retain_mut(|s| {
            progress |= s.pump(&shared);
            !s.closed
        });
        if !progress {
            std::thread::sleep(IDLE_SLEEP);
        }
    }
}
