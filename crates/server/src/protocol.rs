//! Wire protocol: length-prefixed, CRC-framed request/response messages.
//!
//! Framing is byte-identical in shape to the WAL codec (`dq-storage`):
//!
//! ```text
//! [payload_len: u32 LE][crc32(payload): u32 LE][payload bytes]
//! ```
//!
//! The CRC is the same CRC-32/ISO-HDLC the WAL uses; a mismatch means
//! the stream is corrupt and the session is closed (there is no way to
//! resynchronize a byte stream after a torn frame). Payloads start with
//! a one-byte opcode; strings are `u32 LE` length + UTF-8 bytes.
//!
//! Requests:
//!
//! | op | name  | body                                   |
//! |----|-------|----------------------------------------|
//! | 1  | Hello | profile JSON string (empty = no profile)|
//! | 2  | Query | QQL statement text                     |
//! | 3  | Ping  | —                                      |
//!
//! Responses (status byte first):
//!
//! | status | name | body                                 |
//! |--------|------|--------------------------------------|
//! | 0      | Ok   | rendered result string               |
//! | 1      | Err  | error message string                 |
//! | 2      | Pong | —                                    |

use std::io::{self, Read, Write};

/// Frames larger than this are rejected — a length prefix beyond it
/// means a corrupt or hostile stream, not a big result.
pub const MAX_FRAME: u32 = 64 * 1024 * 1024;

/// Reflected polynomial for CRC-32/ISO-HDLC — the WAL's checksum,
/// reimplemented here so the protocol crate stays dependency-light.
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (single-shot, CRC-32/ISO-HDLC).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

/// Protocol-level failure: framing, checksum, or encoding.
#[derive(Debug)]
pub enum ProtocolError {
    /// Underlying socket error.
    Io(io::Error),
    /// Frame length prefix exceeds [`MAX_FRAME`].
    FrameTooLarge(u32),
    /// Payload checksum mismatch — stream corrupt.
    BadCrc {
        /// CRC carried in the frame header.
        expected: u32,
        /// CRC computed over the received payload.
        actual: u32,
    },
    /// Unknown opcode / status byte or malformed body.
    Malformed(String),
}

impl std::fmt::Display for ProtocolError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ProtocolError::Io(e) => write!(f, "io: {e}"),
            ProtocolError::FrameTooLarge(n) => {
                write!(f, "frame of {n} bytes exceeds MAX_FRAME ({MAX_FRAME})")
            }
            ProtocolError::BadCrc { expected, actual } => {
                write!(f, "crc mismatch: frame says {expected:#010x}, payload is {actual:#010x}")
            }
            ProtocolError::Malformed(m) => write!(f, "malformed message: {m}"),
        }
    }
}

impl std::error::Error for ProtocolError {}

impl From<io::Error> for ProtocolError {
    fn from(e: io::Error) -> Self {
        ProtocolError::Io(e)
    }
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq)]
pub enum Request {
    /// Opens (or rebinds) the session: `profile_json` is a serialized
    /// `dq-core` `UserProfile` supplying the session's `WITH QUALITY`
    /// defaults; empty means the unconstrained profile.
    Hello {
        /// Serialized profile, or `""`.
        profile_json: String,
    },
    /// One QQL statement.
    Query {
        /// Statement text.
        sql: String,
    },
    /// Liveness probe.
    Ping,
}

/// A server → client message.
#[derive(Debug, Clone, PartialEq)]
pub enum Response {
    /// Statement succeeded; `body` is the rendered result (paper-style
    /// table for SELECT, report for INSPECT/EXPLAIN).
    Ok {
        /// Rendered result.
        body: String,
    },
    /// Statement failed.
    Err {
        /// Error message.
        message: String,
    },
    /// Reply to [`Request::Ping`] and [`Request::Hello`].
    Pong,
}

fn put_str(out: &mut Vec<u8>, s: &str) {
    out.extend_from_slice(&(s.len() as u32).to_le_bytes());
    out.extend_from_slice(s.as_bytes());
}

fn take_str(buf: &[u8], at: &mut usize) -> Result<String, ProtocolError> {
    if buf.len() < *at + 4 {
        return Err(ProtocolError::Malformed("truncated string length".into()));
    }
    let len = u32::from_le_bytes(buf[*at..*at + 4].try_into().unwrap()) as usize;
    *at += 4;
    if buf.len() < *at + len {
        return Err(ProtocolError::Malformed("truncated string body".into()));
    }
    let s = std::str::from_utf8(&buf[*at..*at + len])
        .map_err(|e| ProtocolError::Malformed(format!("invalid utf-8: {e}")))?
        .to_owned();
    *at += len;
    Ok(s)
}

impl Request {
    /// Serializes to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Request::Hello { profile_json } => {
                out.push(1);
                put_str(&mut out, profile_json);
            }
            Request::Query { sql } => {
                out.push(2);
                put_str(&mut out, sql);
            }
            Request::Ping => out.push(3),
        }
        out
    }

    /// Parses a payload.
    pub fn decode(payload: &[u8]) -> Result<Request, ProtocolError> {
        let op = *payload
            .first()
            .ok_or_else(|| ProtocolError::Malformed("empty request".into()))?;
        let mut at = 1;
        match op {
            1 => Ok(Request::Hello {
                profile_json: take_str(payload, &mut at)?,
            }),
            2 => Ok(Request::Query {
                sql: take_str(payload, &mut at)?,
            }),
            3 => Ok(Request::Ping),
            other => Err(ProtocolError::Malformed(format!("unknown request op {other}"))),
        }
    }
}

impl Response {
    /// Serializes to a payload (no frame header).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            Response::Ok { body } => {
                out.push(0);
                put_str(&mut out, body);
            }
            Response::Err { message } => {
                out.push(1);
                put_str(&mut out, message);
            }
            Response::Pong => out.push(2),
        }
        out
    }

    /// Parses a payload.
    pub fn decode(payload: &[u8]) -> Result<Response, ProtocolError> {
        let status = *payload
            .first()
            .ok_or_else(|| ProtocolError::Malformed("empty response".into()))?;
        let mut at = 1;
        match status {
            0 => Ok(Response::Ok {
                body: take_str(payload, &mut at)?,
            }),
            1 => Ok(Response::Err {
                message: take_str(payload, &mut at)?,
            }),
            2 => Ok(Response::Pong),
            other => Err(ProtocolError::Malformed(format!(
                "unknown response status {other}"
            ))),
        }
    }
}

/// Wraps a payload in a `[len][crc][payload]` frame.
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    out
}

/// Tries to pop one complete frame's payload off the front of `buf`.
/// Returns `Ok(None)` when more bytes are needed; on success the frame
/// bytes are drained from `buf`.
pub fn try_unframe(buf: &mut Vec<u8>) -> Result<Option<Vec<u8>>, ProtocolError> {
    if buf.len() < 8 {
        return Ok(None);
    }
    let len = u32::from_le_bytes(buf[0..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let total = 8 + len as usize;
    if buf.len() < total {
        return Ok(None);
    }
    let expected = u32::from_le_bytes(buf[4..8].try_into().unwrap());
    let payload = buf[8..total].to_vec();
    let actual = crc32(&payload);
    if actual != expected {
        return Err(ProtocolError::BadCrc { expected, actual });
    }
    buf.drain(0..total);
    Ok(Some(payload))
}

/// Blocking write of one framed payload.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> Result<(), ProtocolError> {
    w.write_all(&frame(payload))?;
    w.flush()?;
    Ok(())
}

/// Blocking read of one framed payload (for the synchronous client).
pub fn read_frame<R: Read>(r: &mut R) -> Result<Vec<u8>, ProtocolError> {
    let mut header = [0u8; 8];
    r.read_exact(&mut header)?;
    let len = u32::from_le_bytes(header[0..4].try_into().unwrap());
    if len > MAX_FRAME {
        return Err(ProtocolError::FrameTooLarge(len));
    }
    let expected = u32::from_le_bytes(header[4..8].try_into().unwrap());
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    let actual = crc32(&payload);
    if actual != expected {
        return Err(ProtocolError::BadCrc { expected, actual });
    }
    Ok(payload)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc_matches_wal_vectors() {
        // Same check values the dq-storage CRC pins — one checksum
        // definition across the whole system.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn request_roundtrip() {
        for req in [
            Request::Hello {
                profile_json: "{\"user\":\"trader\"}".into(),
            },
            Request::Query {
                sql: "SELECT * FROM t WITH QUALITY (v@age <= 5)".into(),
            },
            Request::Ping,
        ] {
            assert_eq!(Request::decode(&req.encode()).unwrap(), req);
        }
    }

    #[test]
    fn response_roundtrip() {
        for resp in [
            Response::Ok { body: "k | v\n1 | 2\n".into() },
            Response::Err { message: "unknown table `x`".into() },
            Response::Pong,
        ] {
            assert_eq!(Response::decode(&resp.encode()).unwrap(), resp);
        }
    }

    #[test]
    fn unframe_handles_partial_and_coalesced_frames() {
        let a = Request::Ping.encode();
        let b = Request::Query { sql: "SELECT 1".into() }.encode();
        let mut stream = frame(&a);
        stream.extend_from_slice(&frame(&b));
        // feed the coalesced bytes one at a time
        let mut buf = Vec::new();
        let mut got = Vec::new();
        for byte in stream {
            buf.push(byte);
            while let Some(p) = try_unframe(&mut buf).unwrap() {
                got.push(p);
            }
        }
        assert_eq!(got, vec![a, b]);
        assert!(buf.is_empty());
    }

    #[test]
    fn corrupt_frame_is_rejected() {
        let mut framed = frame(&Request::Ping.encode());
        let last = framed.len() - 1;
        framed[last] ^= 0x40;
        let mut buf = framed;
        assert!(matches!(
            try_unframe(&mut buf),
            Err(ProtocolError::BadCrc { .. })
        ));
        // oversized length prefix
        let mut huge = (MAX_FRAME + 1).to_le_bytes().to_vec();
        huge.extend_from_slice(&[0u8; 12]);
        assert!(matches!(
            try_unframe(&mut huge),
            Err(ProtocolError::FrameTooLarge(_))
        ));
    }

    #[test]
    fn malformed_payloads_are_rejected() {
        assert!(Request::decode(&[]).is_err());
        assert!(Request::decode(&[9]).is_err());
        assert!(Request::decode(&[2, 10, 0, 0, 0, b'x']).is_err()); // truncated body
        assert!(Response::decode(&[7]).is_err());
        let bad_utf8 = {
            let mut v = vec![2u8, 2, 0, 0, 0];
            v.extend_from_slice(&[0xFF, 0xFE]);
            v
        };
        assert!(Request::decode(&bad_utf8).is_err());
    }
}
