//! `dq-server` binary: serves a demo catalog (the paper's stocks
//! example) over TCP.
//!
//! ```text
//! dq-server [--addr HOST:PORT] [--workers N]
//! ```
//!
//! Prints the bound address on stdout (`listening on 127.0.0.1:4040`)
//! and serves until killed. Connect with `dq_server::Client` or the
//! loadgen bench.

use dq_query::QueryCatalog;
use dq_server::{start, ServerConfig};
use relstore::{DataType, Date, Schema, Value};
use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};

/// The paper's Table-1 stocks example, pre-tagged, so a fresh server is
/// immediately queryable.
fn demo_catalog() -> QueryCatalog {
    let schema = Schema::of(&[("ticker", DataType::Text), ("share_price", DataType::Float)]);
    let dict = IndicatorDictionary::with_paper_defaults();
    let d = |s: &str| Value::Date(Date::parse(s).unwrap());
    let mk = |t: &str, p: f64, ct: &str, src: &str| {
        vec![
            QualityCell::bare(t),
            QualityCell::bare(p)
                .with_tag(IndicatorValue::new("creation_time", d(ct)))
                .with_tag(IndicatorValue::new("source", src)),
        ]
    };
    let stocks = TaggedRelation::new(
        schema,
        dict,
        vec![
            mk("FRT", 10.0, "10-20-91", "NYSE feed"),
            mk("NUT", 20.0, "10-1-91", "NYSE feed"),
            mk("BLT", 30.0, "9-1-91", "manual entry"),
        ],
    )
    .expect("demo relation");
    let mut catalog = QueryCatalog::new();
    catalog.register("stocks", stocks);
    catalog
}

fn main() {
    let mut config = ServerConfig {
        addr: "127.0.0.1:4040".into(),
        ..ServerConfig::default()
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--addr" => {
                config.addr = args.next().unwrap_or_else(|| usage("--addr needs a value"))
            }
            "--workers" => {
                config.workers = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| usage("--workers needs a positive integer"))
            }
            "--help" | "-h" => usage(""),
            other => usage(&format!("unknown flag `{other}`")),
        }
    }

    let server = match start(config, demo_catalog()) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("dq-server: bind failed: {e}");
            std::process::exit(1);
        }
    };
    println!("listening on {}", server.addr());
    println!("demo table: stocks (ticker, share_price) — try:");
    println!("  SELECT * FROM stocks WITH QUALITY (share_price@source = 'NYSE feed')");
    loop {
        std::thread::sleep(std::time::Duration::from_secs(3600));
    }
}

fn usage(err: &str) -> ! {
    if !err.is_empty() {
        eprintln!("dq-server: {err}");
    }
    eprintln!("usage: dq-server [--addr HOST:PORT] [--workers N]");
    std::process::exit(if err.is_empty() { 0 } else { 2 });
}
