//! Columnar tagged storage: per-column typed arrays + run-length-encoded
//! tag runs, so vectorized kernels read contiguous memory instead of
//! chasing `Vec<QualityCell>` row pointers.
//!
//! ## Layout
//!
//! A [`ColumnarRelation`] holds one [`Column`] per schema column:
//!
//! * **values** — a dense typed array ([`ColumnData`]): `Vec<i64>` for
//!   Int, `Vec<f64>` for Float, day-numbers for Date, interned `u32` ids
//!   into a shared [`StrPool`] for Text, plus a `Mixed(Vec<Value>)`
//!   escape hatch for `Any`-typed or heterogeneous columns. No per-cell
//!   `Value` enum on the hot path;
//! * **validity** — a [`Bitset`] with bit `i` set iff row `i` is
//!   non-NULL, so 3VL NULL-dropping is one word-AND per batch;
//! * **tags** — [`TagRuns`], a run-length encoding of the per-cell
//!   shared tag vectors: consecutive cells pointing at the *same*
//!   `Arc<Vec<IndicatorValue>>` (PR 1's bulk-tagging representation)
//!   collapse into one run, so tag propagation through σ/π/⋈ is a
//!   refcount bump per surviving run slice, and the columnar index build
//!   indexes whole runs at a time.
//!
//! ## Parity contract
//!
//! [`ColumnarRelation::from_tagged`] → [`ColumnarRelation::to_tagged`]
//! is an exact round trip: values, null validity, relation tags, and
//! per-cell tag sets — including `Arc` identity, so cells that shared a
//! tag allocation still share it after the round trip. Every columnar
//! operator (σ, indexed σ, π, ⋈ probe, index build) produces output
//! `to_tagged()`-equal to its row-at-a-time twin; the property tests pin
//! this at batch sizes 1/7/1024 and 1/2/8 threads. Kernel semantics are
//! inherited from `tagstore::vector` (NULLs drop before any type check,
//! storage total order for `=`/`≠`, [`cmp_check`] errors for ordered
//! cross-class compares) with the same batch-granular error-row caveat.

use crate::algebra::CompiledTagExpr;
use crate::bitmap::{extract_atoms_schema, Bitset, QualityIndex};
use crate::cell::QualityCell;
use crate::indicator::{IndicatorDictionary, IndicatorValue};
use crate::relation::{TaggedRelation, TaggedRow};
use crate::symbol::Symbol;
use crate::algebra::TagAccessPath;
use crate::vector::{compile_kernels, for_each_run, Access, BatchStats, Kernel};
use relstore::expr::{cmp_check, BinOp};
use relstore::index::HashIndex;
use relstore::{par, DataType, Date, DbError, DbResult, Expr, Schema, Value};
use std::cmp::Ordering;
use std::collections::HashMap;
use std::sync::Arc;

/// A shared per-cell tag vector (PR 1's CoW representation).
pub type SharedTags = Arc<Vec<IndicatorValue>>;

/// Deduplicated string storage for one Text column: values are `u32`
/// ids into this pool, and gathers copy ids while sharing the pool
/// behind an `Arc`.
#[derive(Debug, Default, PartialEq)]
pub struct StrPool {
    strings: Vec<String>,
}

impl StrPool {
    /// The string behind `id`.
    ///
    /// # Panics
    /// When `id` was not produced by this pool's conversion pass.
    pub fn get(&self, id: u32) -> &str {
        &self.strings[id as usize]
    }

    /// Number of distinct strings pooled.
    pub fn len(&self) -> usize {
        self.strings.len()
    }

    /// True iff the pool holds no strings (an all-NULL Text column).
    pub fn is_empty(&self) -> bool {
        self.strings.is_empty()
    }

    /// The id of `s`, if pooled. Linear scan — callers resolve literals
    /// once per operator, not per row.
    pub fn id_of(&self, s: &str) -> Option<u32> {
        self.strings.iter().position(|p| p == s).map(|i| i as u32)
    }
}

/// Run-length-encoded per-cell tag sets for one column: consecutive
/// cells sharing one `Arc` (or consecutively untagged) form a run.
/// Merging is by `Arc` *identity*, never content — so runs preserve the
/// exact sharing structure of the row layout through a round trip.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct TagRuns {
    /// `(start_row, tags)` per run; runs are contiguous and ascending,
    /// run `i` covers `runs[i].0 .. runs[i+1].0` (or `len` for the last).
    runs: Vec<(usize, Option<SharedTags>)>,
    len: usize,
}

fn same_tags(a: Option<&SharedTags>, b: Option<&SharedTags>) -> bool {
    match (a, b) {
        (None, None) => true,
        (Some(x), Some(y)) => Arc::ptr_eq(x, y),
        _ => false,
    }
}

impl TagRuns {
    /// Appends one cell's tag set (a refcount bump when a new run is
    /// opened, free when it extends the current run).
    pub fn push(&mut self, tags: Option<&SharedTags>) {
        self.extend_run(tags, 1);
    }

    /// Appends `n` cells all carrying `tags`.
    pub fn extend_run(&mut self, tags: Option<&SharedTags>, n: usize) {
        if n == 0 {
            return;
        }
        if let Some((_, last)) = self.runs.last() {
            if same_tags(last.as_ref(), tags) {
                self.len += n;
                return;
            }
        } else if self.len == 0 && tags.is_none() && self.runs.is_empty() {
            // Leading untagged cells still need an explicit run so
            // `get`/`window` stay total; fall through to push it.
        }
        self.runs.push((self.len, tags.cloned()));
        self.len += n;
    }

    /// Number of cells covered.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff no cells are covered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of runs — the compression ratio signal (`len / runs`).
    pub fn run_count(&self) -> usize {
        self.runs.len()
    }

    /// The tag set of cell `i` (None ⇔ untagged). Binary search over
    /// run starts.
    ///
    /// # Panics
    /// When `i >= len`.
    pub fn get(&self, i: usize) -> Option<&SharedTags> {
        assert!(i < self.len, "TagRuns::get({i}) out of {}", self.len);
        let ri = self.runs.partition_point(|(s, _)| *s <= i) - 1;
        self.runs[ri].1.as_ref()
    }

    /// Iterates the run segments covering `start..start + len` as
    /// `(offset_within_window, segment_len, tags)`, in ascending order.
    pub fn window(&self, start: usize, len: usize) -> TagRunWindow<'_> {
        debug_assert!(start + len <= self.len);
        let ri = if len == 0 {
            self.runs.len()
        } else {
            self.runs.partition_point(|(s, _)| *s <= start) - 1
        };
        TagRunWindow {
            runs: &self.runs,
            total: self.len,
            ri,
            pos: start,
            win_start: start,
            end: start + len,
        }
    }

    /// Appends the segment `start..start + len` of `src` (run merging at
    /// the seam, `Arc` bumps only).
    pub fn append_range(&mut self, src: &TagRuns, start: usize, len: usize) {
        for (_, seg_len, tags) in src.window(start, len) {
            self.extend_run(tags, seg_len);
        }
    }
}

/// Iterator over the run segments intersecting a window — see
/// [`TagRuns::window`].
pub struct TagRunWindow<'a> {
    runs: &'a [(usize, Option<SharedTags>)],
    total: usize,
    ri: usize,
    pos: usize,
    win_start: usize,
    end: usize,
}

impl<'a> Iterator for TagRunWindow<'a> {
    type Item = (usize, usize, Option<&'a SharedTags>);

    fn next(&mut self) -> Option<Self::Item> {
        if self.pos >= self.end {
            return None;
        }
        let (_, tags) = &self.runs[self.ri];
        let run_end = self
            .runs
            .get(self.ri + 1)
            .map(|(s, _)| *s)
            .unwrap_or(self.total);
        let seg_end = run_end.min(self.end);
        let item = (self.pos - self.win_start, seg_end - self.pos, tags.as_ref());
        self.pos = seg_end;
        if seg_end == run_end {
            self.ri += 1;
        }
        Some(item)
    }
}

/// The typed value array of one column. NULL rows hold an arbitrary
/// placeholder; consumers must consult the column's validity bitset
/// before reading (every kernel ANDs validity into its selection vector
/// first).
#[derive(Debug, Clone, PartialEq)]
pub enum ColumnData {
    /// Dense `i64`s (declared `Int`).
    Int(Vec<i64>),
    /// Dense `f64`s (declared `Float`).
    Float(Vec<f64>),
    /// Dense `bool`s (declared `Bool`).
    Bool(Vec<bool>),
    /// Dense day numbers (declared `Date`; see [`Date::days`]).
    Date(Vec<i64>),
    /// Interned string ids into a pool shared across gathers.
    Text {
        /// Per-row pool ids.
        ids: Vec<u32>,
        /// The backing string pool (shared, never rewritten).
        pool: Arc<StrPool>,
    },
    /// Fallback for `Any`-typed or heterogeneous columns: owned values.
    Mixed(Vec<Value>),
}

impl ColumnData {
    fn empty_like(&self) -> ColumnData {
        match self {
            ColumnData::Int(_) => ColumnData::Int(Vec::new()),
            ColumnData::Float(_) => ColumnData::Float(Vec::new()),
            ColumnData::Bool(_) => ColumnData::Bool(Vec::new()),
            ColumnData::Date(_) => ColumnData::Date(Vec::new()),
            ColumnData::Text { pool, .. } => ColumnData::Text {
                ids: Vec::new(),
                pool: pool.clone(),
            },
            ColumnData::Mixed(_) => ColumnData::Mixed(Vec::new()),
        }
    }
}

/// One column: typed values + null validity + tag runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Column {
    /// The typed value array.
    pub data: ColumnData,
    /// Bit `i` set ⇔ row `i` non-NULL.
    pub validity: Bitset,
    /// Run-length-encoded per-cell tag sets.
    pub tags: TagRuns,
}

/// A relation in columnar layout. Constructed from a [`TaggedRelation`]
/// via [`ColumnarRelation::from_tagged`] (or as columnar operator
/// output); converts back losslessly via
/// [`ColumnarRelation::to_tagged`].
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnarRelation {
    schema: Schema,
    dict: IndicatorDictionary,
    columns: Vec<Column>,
    len: usize,
    relation_tags: Vec<IndicatorValue>,
}

fn collect_typed(rows: &[TaggedRow], ci: usize, dtype: DataType) -> Option<ColumnData> {
    match dtype {
        DataType::Int => {
            let mut v = Vec::with_capacity(rows.len());
            for row in rows {
                match &row[ci].value {
                    Value::Null => v.push(0),
                    Value::Int(x) => v.push(*x),
                    _ => return None,
                }
            }
            Some(ColumnData::Int(v))
        }
        DataType::Float => {
            let mut v = Vec::with_capacity(rows.len());
            for row in rows {
                match &row[ci].value {
                    Value::Null => v.push(0.0),
                    Value::Float(x) => v.push(*x),
                    _ => return None,
                }
            }
            Some(ColumnData::Float(v))
        }
        DataType::Bool => {
            let mut v = Vec::with_capacity(rows.len());
            for row in rows {
                match &row[ci].value {
                    Value::Null => v.push(false),
                    Value::Bool(x) => v.push(*x),
                    _ => return None,
                }
            }
            Some(ColumnData::Bool(v))
        }
        DataType::Date => {
            let mut v = Vec::with_capacity(rows.len());
            for row in rows {
                match &row[ci].value {
                    Value::Null => v.push(0),
                    Value::Date(d) => v.push(d.days()),
                    _ => return None,
                }
            }
            Some(ColumnData::Date(v))
        }
        DataType::Text => {
            let mut ids = Vec::with_capacity(rows.len());
            let mut pool = StrPool::default();
            let mut map: HashMap<String, u32> = HashMap::new();
            for row in rows {
                match &row[ci].value {
                    Value::Null => ids.push(0),
                    Value::Text(s) => match map.get(s.as_str()) {
                        Some(&id) => ids.push(id),
                        None => {
                            let id = pool.strings.len() as u32;
                            pool.strings.push(s.clone());
                            map.insert(s.clone(), id);
                            ids.push(id);
                        }
                    },
                    _ => return None,
                }
            }
            Some(ColumnData::Text {
                ids,
                pool: Arc::new(pool),
            })
        }
        DataType::Any => None,
    }
}

fn collect_mixed(rows: &[TaggedRow], ci: usize) -> ColumnData {
    ColumnData::Mixed(rows.iter().map(|r| r[ci].value.clone()).collect())
}

impl ColumnarRelation {
    /// Converts a row-layout relation to columnar. Declared column types
    /// pick the dense layout; columns whose data disagrees with the
    /// declaration (possible only through unchecked operator outputs) and
    /// `Any` columns fall back to [`ColumnData::Mixed`]. Tag `Arc`s are
    /// shared, never cloned.
    pub fn from_tagged(rel: &TaggedRelation) -> Self {
        let _t = dq_obs::histogram!("columnar.convert_us").start();
        dq_obs::counter!("columnar.conversions").incr();
        let rows = rel.rows();
        let n = rows.len();
        let columns = rel
            .schema()
            .columns()
            .iter()
            .enumerate()
            .map(|(ci, cdef)| {
                let data = collect_typed(rows, ci, cdef.dtype)
                    .unwrap_or_else(|| collect_mixed(rows, ci));
                let mut validity = Bitset::new(n);
                let mut tags = TagRuns::default();
                for (i, row) in rows.iter().enumerate() {
                    if !row[ci].value.is_null() {
                        validity.set(i);
                    }
                    tags.push(row[ci].shared_tags());
                }
                Column {
                    data,
                    validity,
                    tags,
                }
            })
            .collect();
        ColumnarRelation {
            schema: rel.schema().clone(),
            dict: rel.dictionary().clone(),
            columns,
            len: n,
            relation_tags: rel.relation_tags().to_vec(),
        }
    }

    /// Converts back to the row layout — the exact inverse of
    /// [`ColumnarRelation::from_tagged`] (values, validity, relation
    /// tags, and per-cell tag `Arc` identity all round-trip).
    pub fn to_tagged(&self) -> TaggedRelation {
        let _t = dq_obs::histogram!("columnar.convert_us").start();
        let rows = (0..self.len).map(|i| self.materialize_row(i)).collect();
        let mut rel =
            TaggedRelation::from_parts_unchecked(self.schema.clone(), self.dict.clone(), rows);
        for t in &self.relation_tags {
            rel.tag_relation(t.clone())
                .expect("relation tag was validated at ingest");
        }
        rel
    }

    /// Application schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Indicator dictionary in force.
    pub fn dictionary(&self) -> &IndicatorDictionary {
        &self.dict
    }

    /// The columns, in schema order.
    pub fn columns(&self) -> &[Column] {
        &self.columns
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True iff there are no rows.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Relation-level quality tags (preserved through conversion).
    pub fn relation_tags(&self) -> &[IndicatorValue] {
        &self.relation_tags
    }

    /// The value of `(row, col)` as an owned [`Value`] (NULL when the
    /// validity bit is clear). Text values allocate; hot paths read the
    /// typed arrays directly instead.
    pub fn value_at(&self, col: usize, row: usize) -> Value {
        let c = &self.columns[col];
        if !c.validity.contains(row) {
            return Value::Null;
        }
        match &c.data {
            ColumnData::Int(v) => Value::Int(v[row]),
            ColumnData::Float(v) => Value::Float(v[row]),
            ColumnData::Bool(v) => Value::Bool(v[row]),
            ColumnData::Date(v) => Value::Date(Date::from_days(v[row])),
            ColumnData::Text { ids, pool } => Value::Text(pool.get(ids[row]).to_owned()),
            ColumnData::Mixed(v) => v[row].clone(),
        }
    }

    /// Materializes one row as [`QualityCell`]s (tag `Arc`s shared).
    pub fn materialize_row(&self, row: usize) -> TaggedRow {
        (0..self.columns.len())
            .map(|ci| {
                let mut cell = QualityCell::bare(self.value_at(ci, row));
                if let Some(tags) = self.columns[ci].tags.get(row) {
                    cell.set_shared_tags(tags.clone());
                }
                cell
            })
            .collect()
    }

    /// Builds the quality bitmap index with a per-column pass over the
    /// tag runs: one posting probe + one [`Bitset::set_range`] per
    /// (run, tag) instead of per (row, tag). Large relations build in
    /// parallel under the same disjoint-word protocol as
    /// [`QualityIndex::build`] ([`par::plan_index`] +
    /// [`par::word_aligned_ranges`]); the result is bit-for-bit equal to
    /// the row build at every thread count.
    pub fn build_index(&self) -> QualityIndex {
        dq_obs::counter!("tagstore.index.rebuilds").incr();
        let fill = |idx: &mut QualityIndex, range: std::ops::Range<usize>| {
            for (ci, col) in self.columns.iter().enumerate() {
                for (off, seg_len, tags) in col.tags.window(range.start, range.end - range.start)
                {
                    if let Some(tags) = tags {
                        idx.note_tags_range(ci, off, seg_len, tags);
                    }
                }
            }
        };
        match par::plan_index(self.len) {
            None => {
                let mut idx = QualityIndex::new();
                fill(&mut idx, 0..self.len);
                idx.finish_rows(self.len);
                idx
            }
            Some(threads) => {
                dq_obs::counter!("tagstore.index.par_builds").incr();
                let _t = dq_obs::histogram!("tagstore.index.par_build_us").start();
                let ranges = par::word_aligned_ranges(self.len, threads);
                let partials = par::run_chunked(&ranges, ranges.len(), |_, rs| {
                    let range = rs[0].clone();
                    let mut partial = QualityIndex::new();
                    fill(&mut partial, range.clone());
                    (range.start, partial)
                });
                QualityIndex::merge_word_aligned(self.len, partials)
            }
        }
    }
}

/// Incremental columnar output assembly: same layouts (and shared Text
/// pools) as the source relation(s), appended run by run.
struct ColumnarBuilder {
    columns: Vec<Column>,
    len: usize,
}

impl ColumnarBuilder {
    fn new(src: &ColumnarRelation) -> Self {
        ColumnarBuilder {
            columns: src
                .columns
                .iter()
                .map(|c| Column {
                    data: c.data.empty_like(),
                    validity: Bitset::new(0),
                    tags: TagRuns::default(),
                })
                .collect(),
            len: 0,
        }
    }

    /// Builder over `left`'s columns followed by `right`'s (join output).
    fn new_join(left: &ColumnarRelation, right: &ColumnarRelation) -> Self {
        ColumnarBuilder {
            columns: left
                .columns
                .iter()
                .chain(right.columns.iter())
                .map(|c| Column {
                    data: c.data.empty_like(),
                    validity: Bitset::new(0),
                    tags: TagRuns::default(),
                })
                .collect(),
            len: 0,
        }
    }

    /// Appends rows `start..start + len` of `src` to every column:
    /// `memcpy` for typed arrays, id copies for Text, `Arc` bumps per
    /// tag-run segment.
    fn append_range(&mut self, src: &ColumnarRelation, start: usize, len: usize) {
        let at = self.len;
        for (dst, s) in self.columns.iter_mut().zip(&src.columns) {
            match (&mut dst.data, &s.data) {
                (ColumnData::Int(d), ColumnData::Int(v)) => d.extend_from_slice(&v[start..start + len]),
                (ColumnData::Float(d), ColumnData::Float(v)) => d.extend_from_slice(&v[start..start + len]),
                (ColumnData::Bool(d), ColumnData::Bool(v)) => d.extend_from_slice(&v[start..start + len]),
                (ColumnData::Date(d), ColumnData::Date(v)) => d.extend_from_slice(&v[start..start + len]),
                (ColumnData::Text { ids: d, .. }, ColumnData::Text { ids: v, .. }) => {
                    d.extend_from_slice(&v[start..start + len])
                }
                (ColumnData::Mixed(d), ColumnData::Mixed(v)) => {
                    d.extend(v[start..start + len].iter().cloned())
                }
                _ => unreachable!("builder layout mismatch"),
            }
            let window = s.validity.extract_range(start, len);
            for i in window.iter_ones() {
                dst.validity.set(at + i);
            }
            dst.tags.append_range(&s.tags, start, len);
        }
        self.len += len;
    }

    /// Appends one row of `src` into columns `col_offset..` without
    /// advancing the row counter (the join gather pushes left then right
    /// then advances).
    fn push_row_from(&mut self, src: &ColumnarRelation, row: usize, col_offset: usize) {
        let at = self.len;
        for (dst, s) in self.columns[col_offset..].iter_mut().zip(&src.columns) {
            match (&mut dst.data, &s.data) {
                (ColumnData::Int(d), ColumnData::Int(v)) => d.push(v[row]),
                (ColumnData::Float(d), ColumnData::Float(v)) => d.push(v[row]),
                (ColumnData::Bool(d), ColumnData::Bool(v)) => d.push(v[row]),
                (ColumnData::Date(d), ColumnData::Date(v)) => d.push(v[row]),
                (ColumnData::Text { ids: d, .. }, ColumnData::Text { ids: v, .. }) => {
                    d.push(v[row])
                }
                (ColumnData::Mixed(d), ColumnData::Mixed(v)) => d.push(v[row].clone()),
                _ => unreachable!("builder layout mismatch"),
            }
            if s.validity.contains(row) {
                dst.validity.set(at);
            }
            dst.tags.push(s.tags.get(row));
        }
    }

    fn finish(
        mut self,
        schema: Schema,
        dict: IndicatorDictionary,
    ) -> ColumnarRelation {
        for c in &mut self.columns {
            c.validity.grow(self.len);
        }
        ColumnarRelation {
            schema,
            dict,
            columns: self.columns,
            len: self.len,
            // Operator outputs drop relation-level tags, matching the
            // row path's `from_parts_unchecked`.
            relation_tags: Vec::new(),
        }
    }
}

// ---------------------------------------------------------------------
// Kernel evaluation over columns
// ---------------------------------------------------------------------

/// Word mask of bit positions `start..end` within word `wi`.
fn range_mask(wi: usize, start: usize, end: usize) -> u64 {
    let lo = start.max(wi * 64);
    let hi = end.min((wi + 1) * 64);
    if lo >= hi {
        return 0;
    }
    let lo_mask = !0u64 << (lo % 64);
    let hi_mask = !0u64 >> (63 - (hi - 1) % 64);
    lo_mask & hi_mask
}

fn any_in_range(sel: &Bitset, start: usize, len: usize) -> bool {
    if len == 0 {
        return false;
    }
    let end = start + len;
    let words = sel.words();
    (start / 64..=(end - 1) / 64)
        .any(|wi| words.get(wi).copied().unwrap_or(0) & range_mask(wi, start, end) != 0)
}

fn clear_range(sel: &mut Bitset, start: usize, len: usize) {
    if len == 0 {
        return;
    }
    let end = start + len;
    let words = sel.words_mut();
    for wi in start / 64..=(end - 1) / 64 {
        if let Some(w) = words.get_mut(wi) {
            *w &= !range_mask(wi, start, end);
        }
    }
}

/// Clears selection bits whose row fails `op` against the per-row
/// [`Ordering`] produced by `ord` (indices are window-relative).
fn retain_by_ord(sel: &mut Bitset, op: BinOp, mut ord: impl FnMut(usize) -> Ordering) {
    for (wi, word) in sel.words_mut().iter_mut().enumerate() {
        let mut bits = *word;
        let mut keep = bits;
        while bits != 0 {
            let tz = bits.trailing_zeros();
            bits &= bits - 1;
            let o = ord(wi * 64 + tz as usize);
            let ok = match op {
                BinOp::Eq => o == Ordering::Equal,
                BinOp::Ne => o != Ordering::Equal,
                BinOp::Lt => o == Ordering::Less,
                BinOp::Le => o != Ordering::Greater,
                BinOp::Gt => o == Ordering::Greater,
                BinOp::Ge => o != Ordering::Less,
                _ => unreachable!("non-comparison op in Cmp kernel"),
            };
            keep &= !(u64::from(!ok) << tz);
        }
        *word = keep;
    }
}

/// Fallible per-live-row retain (Mixed columns, Between, Generic).
fn retain_fallible(
    sel: &mut Bitset,
    mut test: impl FnMut(usize) -> DbResult<bool>,
) -> DbResult<()> {
    for (wi, word) in sel.words_mut().iter_mut().enumerate() {
        let mut bits = *word;
        let mut keep = bits;
        while bits != 0 {
            let tz = bits.trailing_zeros();
            bits &= bits - 1;
            let ok = test(wi * 64 + tz as usize)?;
            keep &= !(u64::from(!ok) << tz);
        }
        *word = keep;
    }
    Ok(())
}

/// Resolves a cross-class comparison decided once per (column, literal):
/// `=` matches nothing, `≠` matches every live (non-NULL) row, ordered
/// ops reproduce the scalar evaluator's [`cmp_check`] error iff any live
/// row exists.
fn cross_class(sel: &mut Bitset, op: BinOp, sample: &Value, lit: &Value) -> DbResult<()> {
    match op {
        BinOp::Eq => {
            for w in sel.words_mut() {
                *w = 0;
            }
            Ok(())
        }
        BinOp::Ne => Ok(()),
        _ => {
            if sel.count() > 0 {
                cmp_check(sample, lit)?;
            }
            Ok(())
        }
    }
}

/// One kernel's worth of testing against an application column already
/// narrowed to non-NULL rows. Typed fast paths reproduce
/// [`Value`]'s total order exactly (Int×Float via `as f64` +
/// `total_cmp`, Text via `str` order, Date via day numbers).
fn apply_cmp_app(
    col: &Column,
    start: usize,
    sel: &mut Bitset,
    op: BinOp,
    lit: &Value,
    kernel: &Kernel,
) -> DbResult<()> {
    match (&col.data, lit) {
        (ColumnData::Int(v), Value::Int(l)) => retain_by_ord(sel, op, |i| v[start + i].cmp(l)),
        (ColumnData::Int(v), Value::Float(f)) => {
            retain_by_ord(sel, op, |i| (v[start + i] as f64).total_cmp(f))
        }
        (ColumnData::Int(_), _) => return cross_class(sel, op, &Value::Int(0), lit),
        (ColumnData::Float(v), Value::Float(f)) => {
            retain_by_ord(sel, op, |i| v[start + i].total_cmp(f))
        }
        (ColumnData::Float(v), Value::Int(l)) => {
            retain_by_ord(sel, op, |i| v[start + i].total_cmp(&(*l as f64)))
        }
        (ColumnData::Float(_), _) => return cross_class(sel, op, &Value::Float(0.0), lit),
        (ColumnData::Bool(v), Value::Bool(b)) => retain_by_ord(sel, op, |i| v[start + i].cmp(b)),
        (ColumnData::Bool(_), _) => return cross_class(sel, op, &Value::Bool(false), lit),
        (ColumnData::Date(v), Value::Date(d)) => {
            let days = d.days();
            retain_by_ord(sel, op, |i| v[start + i].cmp(&days))
        }
        (ColumnData::Date(_), _) => {
            return cross_class(sel, op, &Value::Date(Date::from_days(0)), lit)
        }
        (ColumnData::Text { ids, pool }, Value::Text(s)) => match op {
            // Equality resolves the literal to a pool id once; rows then
            // compare by id, no string compare per row.
            BinOp::Eq | BinOp::Ne => {
                let lit_id = pool.id_of(s);
                retain_by_ord(sel, op, |i| match lit_id {
                    Some(id) => ids[start + i].cmp(&id).then(Ordering::Equal),
                    None => Ordering::Less, // never Equal
                })
            }
            _ => retain_by_ord(sel, op, |i| pool.get(ids[start + i]).cmp(s.as_str())),
        },
        (ColumnData::Text { .. }, _) => {
            return cross_class(sel, op, &Value::Text(String::new()), lit)
        }
        (ColumnData::Mixed(v), _) => {
            return retain_fallible(sel, |i| kernel.test_value(&v[start + i]))
        }
    }
    Ok(())
}

/// Per-live-row kernel test via a temporary [`Value`] — the Between and
/// safety fallback (only Text materialization allocates).
fn test_at(kernel: &Kernel, col: &Column, row: usize) -> DbResult<bool> {
    match &col.data {
        ColumnData::Int(v) => kernel.test_value(&Value::Int(v[row])),
        ColumnData::Float(v) => kernel.test_value(&Value::Float(v[row])),
        ColumnData::Bool(v) => kernel.test_value(&Value::Bool(v[row])),
        ColumnData::Date(v) => kernel.test_value(&Value::Date(Date::from_days(v[row]))),
        ColumnData::Text { ids, pool } => {
            kernel.test_value(&Value::Text(pool.get(ids[row]).to_owned()))
        }
        ColumnData::Mixed(v) => kernel.test_value(&v[row]),
    }
}

/// Missing tags evaluate to NULL, borrowed from this sentinel.
static NULL_SENTINEL: Value = Value::Null;

/// The tag value down `path`, from a run's shared tag vector.
fn tag_path_value<'a>(tags: Option<&'a SharedTags>, path: &[Symbol]) -> &'a Value {
    let Some(tags) = tags else {
        return &NULL_SENTINEL;
    };
    let Some((first, rest)) = path.split_first() else {
        return &NULL_SENTINEL;
    };
    let Some(mut node) = tags.iter().find(|t| t.indicator == *first) else {
        return &NULL_SENTINEL;
    };
    for seg in rest {
        match node.meta_tag_sym(seg) {
            Some(n) => node = n,
            None => return &NULL_SENTINEL,
        }
    }
    &node.value
}

/// Tag-access kernels evaluate **once per run segment**: every row of a
/// run shares one tag vector, so the verdict applies to the whole
/// segment (cleared word-at-a-time when it fails). This is where run
/// encoding beats both the row path and the row-gather vectorized path
/// on bulk-tagged columns.
fn apply_tag_kernel(
    col: &Column,
    path: &[Symbol],
    kernel: &Kernel,
    start: usize,
    sel: &mut Bitset,
) -> DbResult<()> {
    let len = sel.len();
    for (off, seg_len, tags) in col.tags.window(start, len) {
        if !any_in_range(sel, off, seg_len) {
            continue;
        }
        let v = tag_path_value(tags, path);
        if !kernel.test_value(v)? {
            clear_range(sel, off, seg_len);
        }
    }
    Ok(())
}

fn filter_batch_columnar(
    crel: &ColumnarRelation,
    start: usize,
    sel: &mut Bitset,
    kernels: &[Kernel],
    compiled: &CompiledTagExpr,
) -> DbResult<()> {
    for kernel in kernels {
        match kernel {
            Kernel::Cmp {
                access: Access::App(ci),
                op,
                lit,
            } => {
                let col = &crel.columns[*ci];
                sel.and_assign(&col.validity.extract_range(start, sel.len()));
                apply_cmp_app(col, start, sel, *op, lit, kernel)?;
            }
            Kernel::Between {
                access: Access::App(ci),
                ..
            } => {
                let col = &crel.columns[*ci];
                sel.and_assign(&col.validity.extract_range(start, sel.len()));
                retain_fallible(sel, |i| test_at(kernel, col, start + i))?;
            }
            Kernel::Cmp {
                access: Access::Tag(ci, path),
                ..
            }
            | Kernel::Between {
                access: Access::Tag(ci, path),
                ..
            } => {
                apply_tag_kernel(&crel.columns[*ci], path, kernel, start, sel)?;
            }
            Kernel::Generic(e) => {
                retain_fallible(sel, |i| {
                    compiled.matches_sub(e, &crel.materialize_row(start + i))
                })?;
            }
        }
        if sel.words().iter().all(|&w| w == 0) {
            break;
        }
    }
    Ok(())
}

fn publish_columnar(stats: &BatchStats) {
    dq_obs::counter!("columnar.batches").add(stats.batches as u64);
    dq_obs::counter!("columnar.rows_in").add(stats.rows_in as u64);
    dq_obs::counter!("columnar.rows_out").add(stats.rows_out as u64);
}

/// The shared columnar σ pipeline: batch windows filter to surviving
/// runs (parallel per [`par::plan`], merged in batch order), then one
/// serial gather assembles the output column arrays run by run.
fn run_pipeline_columnar(
    crel: &ColumnarRelation,
    candidates: Option<&Bitset>,
    kernels: &[Kernel],
    compiled: &CompiledTagExpr,
    batch_size: usize,
) -> DbResult<(ColumnarRelation, BatchStats)> {
    let len = crel.len;
    let batch_size = batch_size.max(1);
    let nbatches = len.div_ceil(batch_size);
    type Runs = Vec<(usize, usize)>;
    let run_range = |brange: std::ops::Range<usize>| -> DbResult<(Runs, BatchStats)> {
        let mut runs: Runs = Vec::new();
        let mut stats = BatchStats::new(batch_size);
        for b in brange {
            let start = b * batch_size;
            let blen = batch_size.min(len - start);
            let mut sel = match candidates {
                Some(bs) => bs.extract_range(start, blen),
                None => Bitset::full(blen),
            };
            let picked = sel.count();
            if picked == 0 {
                continue; // whole window dead — skip, don't count
            }
            let _t = dq_obs::histogram!("columnar.batch_us").start();
            stats.batches += 1;
            stats.rows_in += picked;
            filter_batch_columnar(crel, start, &mut sel, kernels, compiled)?;
            for_each_run(&sel, |rs, rl| {
                runs.push((start + rs, rl));
                stats.rows_out += rl;
            });
        }
        Ok((runs, stats))
    };
    let (runs, stats) = match par::plan(len) {
        Some(threads) if nbatches > 1 => {
            let parts = par::run_ranges(nbatches, threads.min(nbatches), |_, r| run_range(r));
            let mut runs: Runs = Vec::new();
            let mut stats = BatchStats::new(batch_size);
            for part in parts {
                let (mut rs, s) = part?;
                runs.append(&mut rs);
                stats.absorb(s);
            }
            (runs, stats)
        }
        _ => run_range(0..nbatches)?,
    };
    let mut builder = ColumnarBuilder::new(crel);
    for &(s, l) in &runs {
        builder.append_range(crel, s, l);
    }
    dq_obs::counter!("columnar.gather_runs").add(runs.len() as u64);
    publish_columnar(&stats);
    Ok((builder.finish(crel.schema.clone(), crel.dict.clone()), stats))
}

/// Columnar σ — `to_tagged()`-identical to [`crate::algebra::select`]
/// and [`crate::select_vectorized`], reading contiguous column arrays.
pub fn select_columnar(
    crel: &ColumnarRelation,
    predicate: &Expr,
    batch_size: usize,
) -> DbResult<(ColumnarRelation, BatchStats)> {
    let compiled = CompiledTagExpr::compile_schema(&crel.schema, predicate)?;
    let kernels = compile_kernels(&compiled);
    run_pipeline_columnar(crel, None, &kernels, &compiled, batch_size)
}

/// Columnar index-assisted σ — identical rows, tags, and access-path
/// reporting to [`crate::select_indexed_vectorized`], with candidate
/// bitset words flowing straight into per-batch selection vectors and
/// only surviving runs gathered into output columns.
pub fn select_indexed_columnar(
    crel: &ColumnarRelation,
    index: &QualityIndex,
    predicate: &Expr,
    batch_size: usize,
) -> DbResult<(ColumnarRelation, TagAccessPath, BatchStats)> {
    let compiled = CompiledTagExpr::compile_schema(&crel.schema, predicate)?;
    let _t = dq_obs::histogram!("tagstore.bitmap.select_us").start();
    let scan = |compiled: &CompiledTagExpr| -> DbResult<(ColumnarRelation, TagAccessPath, BatchStats)> {
        dq_obs::counter!("tagstore.bitmap.scan_fallbacks").incr();
        let kernels = compile_kernels(compiled);
        let (out, stats) = run_pipeline_columnar(crel, None, &kernels, compiled, batch_size)?;
        Ok((out, TagAccessPath::Scan, stats))
    };
    if index.rows() != crel.len {
        return scan(&compiled); // stale index — never trust it
    }
    let (atoms, residual) = extract_atoms_schema(&crel.schema, predicate);
    if atoms.is_empty() {
        return scan(&compiled);
    }
    let Some(bs) = index.candidates(&atoms) else {
        return scan(&compiled);
    };
    dq_obs::counter!("tagstore.bitmap.intersections").add(atoms.len() as u64);
    // Re-check the *full* predicate when any residual conjunct exists —
    // same policy as the vectorized row path.
    let kernels = if residual.is_empty() {
        Vec::new()
    } else {
        compile_kernels(&compiled)
    };
    let (out, stats) = run_pipeline_columnar(crel, Some(&bs), &kernels, &compiled, batch_size)?;
    dq_obs::counter!("tagstore.bitmap.candidate_rows").add(stats.rows_in as u64);
    dq_obs::counter!("tagstore.bitmap.gathered_rows").add(stats.rows_out as u64);
    let path = TagAccessPath::Bitmap {
        atoms: atoms.iter().map(|a| a.to_string()).collect(),
        candidates: stats.rows_in,
        residual: !residual.is_empty(),
    };
    Ok((out, path, stats))
}

/// Columnar π — whole-column clones (typed-array `memcpy` + tag-run
/// `Arc` bumps), no per-row work at all. `to_tagged()`-identical to
/// [`crate::algebra::project`].
pub fn project_columnar(crel: &ColumnarRelation, columns: &[&str]) -> DbResult<ColumnarRelation> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| crel.schema.resolve(c))
        .collect::<DbResult<_>>()?;
    let schema = crel.schema.project(&indices)?;
    dq_obs::counter!("columnar.projections").incr();
    Ok(ColumnarRelation {
        schema,
        dict: crel.dict.clone(),
        columns: indices.iter().map(|&i| crel.columns[i].clone()).collect(),
        len: crel.len,
        relation_tags: Vec::new(),
    })
}

/// Columnar ⋈ probe — `to_tagged()`-identical to
/// [`crate::algebra::hash_join_probe`]. The probe phase runs over key
/// columns only (batched, parallel per [`par::plan`], Text keys memoized
/// by pool id so repeated keys never re-allocate); the gather phase then
/// assembles only the output columns from the match list.
pub fn hash_join_probe_columnar(
    left: &ColumnarRelation,
    right: &ColumnarRelation,
    left_key: &str,
    right_key: &str,
    index: &HashIndex,
    batch_size: usize,
) -> DbResult<(ColumnarRelation, BatchStats)> {
    let li = left.schema.resolve(left_key)?;
    right.schema.resolve(right_key)?;
    let schema = left.schema.join(&right.schema, "l", "r")?;
    let len = left.len;
    let batch_size = batch_size.max(1);
    let nbatches = len.div_ceil(batch_size);
    let key_col = &left.columns[li];
    type Matches = Vec<(usize, usize)>;
    let run_range = |brange: std::ops::Range<usize>| -> DbResult<(Matches, BatchStats)> {
        let mut matches: Matches = Vec::new();
        let mut stats = BatchStats::new(batch_size);
        let mut key = vec![Value::Null];
        // Text keys: memoized positions per pool id — the pool is tiny
        // relative to the probe side, so each distinct key builds its
        // owned Value exactly once per worker.
        let mut memo: HashMap<u32, Vec<usize>> = HashMap::new();
        for b in brange {
            let start = b * batch_size;
            let blen = batch_size.min(len - start);
            let _t = dq_obs::histogram!("columnar.batch_us").start();
            stats.batches += 1;
            stats.rows_in += blen;
            // NULL keys never join: validity *is* the NULL-key filter.
            let sel = key_col.validity.extract_range(start, blen);
            for i in sel.iter_ones() {
                let row = start + i;
                let positions: &[usize] = match &key_col.data {
                    ColumnData::Text { ids, pool } => memo
                        .entry(ids[row])
                        .or_insert_with(|| {
                            key[0] = Value::Text(pool.get(ids[row]).to_owned());
                            index.get(&key).to_vec()
                        })
                        .as_slice(),
                    _ => {
                        key[0] = left.value_at(li, row);
                        index.get(&key)
                    }
                };
                for &pos in positions {
                    if pos >= right.len {
                        return Err(DbError::InvalidExpression(format!(
                            "join index position {pos} out of range"
                        )));
                    }
                    matches.push((row, pos));
                }
            }
            stats.rows_out = matches.len();
        }
        Ok((matches, stats))
    };
    let (matches, stats) = match par::plan(len) {
        Some(threads) if nbatches > 1 => {
            let parts = par::run_ranges(nbatches, threads.min(nbatches), |_, r| run_range(r));
            let mut matches: Matches = Vec::new();
            let mut stats = BatchStats::new(batch_size);
            for part in parts {
                let (mut ms, s) = part?;
                matches.append(&mut ms);
                stats.absorb(s);
            }
            (matches, stats)
        }
        _ => run_range(0..nbatches)?,
    };
    let mut builder = ColumnarBuilder::new_join(left, right);
    let left_arity = left.columns.len();
    for &(lrow, rpos) in &matches {
        builder.push_row_from(left, lrow, 0);
        builder.push_row_from(right, rpos, left_arity);
        builder.len += 1;
    }
    dq_obs::counter!("columnar.join.batches").add(stats.batches as u64);
    dq_obs::counter!("columnar.join.rows_in").add(stats.rows_in as u64);
    dq_obs::counter!("columnar.join.rows_out").add(stats.rows_out as u64);
    Ok((builder.finish(schema, left.dict.clone()), stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;
    use crate::vector::{
        hash_join_probe_vectorized, select_indexed_vectorized, select_vectorized,
    };
    use relstore::{DataType, Schema};

    /// Mixed fixture: bulk-tagged column (shared Arcs → long runs),
    /// per-cell tags, untagged rows, NULL values.
    fn mixed(n: i64) -> TaggedRelation {
        let schema = Schema::of(&[
            ("k", DataType::Int),
            ("v", DataType::Int),
            ("name", DataType::Text),
            ("score", DataType::Float),
        ]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut r = TaggedRelation::empty(schema, dict);
        for k in 0..n {
            let mut cell = QualityCell::bare(if k % 7 == 6 {
                Value::Null
            } else {
                Value::Int(k * 2)
            });
            if k % 3 != 2 {
                cell.set_tag(IndicatorValue::new(
                    "source",
                    ["a", "b", "c"][(k % 3) as usize],
                ));
            }
            if k % 4 != 3 {
                cell.set_tag(IndicatorValue::new("age", k % 23));
            }
            let name = if k % 5 == 4 {
                QualityCell::bare(Value::Null)
            } else {
                QualityCell::bare(format!("n{}", k % 11))
            };
            let score = QualityCell::bare(k as f64 * 0.5);
            r.push(vec![QualityCell::bare(k), cell, name, score]).unwrap();
        }
        // a bulk-tagged column: every cell shares one Arc → one long run
        r.tag_column("name", IndicatorValue::new("collection_method", "scan"))
            .unwrap();
        r
    }

    fn predicates() -> Vec<Expr> {
        vec![
            Expr::col("v@source").eq(Expr::lit("a")),
            Expr::col("v@source").ne(Expr::lit("a")),
            Expr::col("v@age").le(Expr::lit(10i64)),
            Expr::col("v").gt(Expr::lit(20i64)),
            Expr::col("v").le(Expr::lit(100.5f64)),
            Expr::col("name").eq(Expr::lit("n3")),
            Expr::col("name").ge(Expr::lit("n5")),
            Expr::col("score").lt(Expr::lit(30.0f64)),
            Expr::col("score").lt(Expr::lit(30i64)),
            Expr::col("name@collection_method").eq(Expr::lit("scan")),
            Expr::col("v@age")
                .le(Expr::lit(15i64))
                .and(Expr::col("v@source").ne(Expr::lit("b")))
                .and(Expr::col("k").ge(Expr::lit(3i64))),
            Expr::Between(
                Box::new(Expr::col("v@age")),
                Box::new(Expr::lit(3i64)),
                Box::new(Expr::lit(12i64)),
            ),
            Expr::Between(
                Box::new(Expr::col("v")),
                Box::new(Expr::lit(10i64)),
                Box::new(Expr::lit(90i64)),
            ),
            // OR forces a Generic kernel
            Expr::col("v@source")
                .eq(Expr::lit("a"))
                .or(Expr::col("v@age").le(Expr::lit(2i64))),
            Expr::col("v@source").eq(Expr::lit("zzz")),
            Expr::col("k").ge(Expr::lit(0i64)),
            // cross-class equality: Int column vs Text literal
            Expr::col("v").eq(Expr::lit("nope")),
            Expr::col("v").ne(Expr::lit("nope")),
        ]
    }

    #[test]
    fn round_trip_is_exact_including_arc_identity() {
        for n in [0i64, 1, 5, 63, 64, 65, 150] {
            let mut rel = mixed(n);
            rel.tag_relation(IndicatorValue::new("source", "fixture")).unwrap();
            let c = ColumnarRelation::from_tagged(&rel);
            assert_eq!(c.len(), rel.len());
            let back = c.to_tagged();
            assert_eq!(back, rel, "n={n}");
            assert_eq!(back.relation_tags(), rel.relation_tags());
            for (orig, round) in rel.iter().zip(back.iter()) {
                for (a, b) in orig.iter().zip(round.iter()) {
                    if !a.tags().is_empty() {
                        // tagged cells must share the *same* allocation
                        assert!(b.shares_tags_with(a));
                    }
                }
            }
        }
    }

    #[test]
    fn bulk_tagged_column_collapses_to_few_runs() {
        let rel = mixed(150);
        let c = ColumnarRelation::from_tagged(&rel);
        let name_col = &c.columns()[2];
        // tag_column pointed every cell at one Arc → a single run
        assert_eq!(name_col.tags.run_count(), 1, "bulk-tagged column should RLE to one run");
        // per-cell tags on `v` stay per-cell-ish (distinct Arcs)
        assert!(c.columns()[1].tags.run_count() > 10);
    }

    #[test]
    fn select_columnar_matches_row_and_vectorized() {
        for n in [0i64, 1, 5, 63, 64, 65, 150] {
            let rel = mixed(n);
            let crel = ColumnarRelation::from_tagged(&rel);
            for p in predicates() {
                let expect = algebra::select(&rel, &p).unwrap();
                for batch_size in [1usize, 7, 64, 1024] {
                    let (got, stats) = select_columnar(&crel, &p, batch_size).unwrap();
                    assert_eq!(got.to_tagged(), expect, "n={n} batch={batch_size} p={p:?}");
                    assert_eq!(stats.rows_out, expect.len());
                    let (gotv, _) = select_vectorized(&rel, &p, batch_size).unwrap();
                    assert_eq!(got.to_tagged(), gotv, "vs vectorized n={n} p={p:?}");
                }
            }
        }
    }

    #[test]
    fn select_columnar_matches_under_forced_threads() {
        let rel = mixed(200);
        let crel = ColumnarRelation::from_tagged(&rel);
        for p in predicates() {
            let expect = algebra::select(&rel, &p).unwrap();
            for threads in [1usize, 2, 8] {
                let (got, _) = par::with_thread_count(threads, || {
                    select_columnar(&crel, &p, 7).unwrap()
                });
                assert_eq!(got.to_tagged(), expect, "threads={threads} p={p:?}");
            }
        }
    }

    #[test]
    fn select_indexed_columnar_matches_and_reports_path() {
        let rel = mixed(120);
        let crel = ColumnarRelation::from_tagged(&rel);
        let idx = QualityIndex::build(&rel);
        for p in predicates() {
            let expect = select_indexed_vectorized(&rel, &idx, &p, 64);
            let got = select_indexed_columnar(&crel, &idx, &p, 64);
            match (expect, got) {
                (Ok((er, epath, _)), Ok((gr, gpath, _))) => {
                    assert_eq!(gr.to_tagged(), er, "p={p:?}");
                    assert_eq!(gpath, epath, "p={p:?}");
                }
                (Err(_), Err(_)) => {}
                (e, g) => panic!("path divergence p={p:?}: {e:?} vs {g:?}"),
            }
        }
        // stale index → scan fallback, still correct
        let short = QualityIndex::new();
        let p = Expr::col("v@source").eq(Expr::lit("a"));
        let (r, path, _) = select_indexed_columnar(&crel, &short, &p, 64).unwrap();
        assert_eq!(r.to_tagged(), algebra::select(&rel, &p).unwrap());
        assert_eq!(path, TagAccessPath::Scan);
    }

    #[test]
    fn project_columnar_matches() {
        for n in [0i64, 1, 150] {
            let rel = mixed(n);
            let crel = ColumnarRelation::from_tagged(&rel);
            let expect = algebra::project(&rel, &["v", "name"]).unwrap();
            let got = project_columnar(&crel, &["v", "name"]).unwrap();
            assert_eq!(got.to_tagged(), expect, "n={n}");
        }
        assert!(project_columnar(&ColumnarRelation::from_tagged(&mixed(3)), &["ghost"]).is_err());
    }

    #[test]
    fn join_probe_columnar_matches() {
        let left = mixed(50);
        let schema = Schema::of(&[("k", DataType::Int), ("label", DataType::Text)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut rows = Vec::new();
        for k in 0..10i64 {
            rows.push(vec![
                QualityCell::bare(k).with_tag(IndicatorValue::new("source", "dim")),
                QualityCell::bare(format!("label{k}")),
            ]);
        }
        rows.push(vec![
            QualityCell::bare(Value::Null),
            QualityCell::bare("nullkey"),
        ]);
        let right = TaggedRelation::new(schema, dict, rows).unwrap();
        let ri = right.schema().resolve("k").unwrap();
        let mut idx = HashIndex::new(vec![ri]);
        for (pos, row) in right.iter().enumerate() {
            idx.insert(&vec![row[ri].value.clone()], pos);
        }
        let expect = algebra::hash_join_probe(&left, &right, "k", "k", &idx).unwrap();
        let cl = ColumnarRelation::from_tagged(&left);
        let cr = ColumnarRelation::from_tagged(&right);
        for batch_size in [1usize, 7, 1024] {
            let (got, stats) =
                hash_join_probe_columnar(&cl, &cr, "k", "k", &idx, batch_size).unwrap();
            assert_eq!(got.to_tagged(), expect, "batch={batch_size}");
            assert_eq!(stats.rows_out, expect.len());
        }
        // Text-keyed probe exercises the pool-id memoization
        let lt = ColumnarRelation::from_tagged(&algebra::project(&left, &["name", "k"]).unwrap());
        let rt_rel = {
            let schema = Schema::of(&[("name", DataType::Text), ("extra", DataType::Int)]);
            let dict = IndicatorDictionary::with_paper_defaults();
            let mut rows = Vec::new();
            for k in 0..11i64 {
                rows.push(vec![
                    QualityCell::bare(format!("n{k}")),
                    QualityCell::bare(k),
                ]);
            }
            TaggedRelation::new(schema, dict, rows).unwrap()
        };
        let rti = rt_rel.schema().resolve("name").unwrap();
        let mut tidx = HashIndex::new(vec![rti]);
        for (pos, row) in rt_rel.iter().enumerate() {
            tidx.insert(&vec![row[rti].value.clone()], pos);
        }
        let lrow = algebra::project(&left, &["name", "k"]).unwrap();
        let expect = algebra::hash_join_probe(&lrow, &rt_rel, "name", "name", &tidx).unwrap();
        let crt = ColumnarRelation::from_tagged(&rt_rel);
        let (got, _) = hash_join_probe_columnar(&lt, &crt, "name", "name", &tidx, 16).unwrap();
        assert_eq!(got.to_tagged(), expect);
        // and matches the row-gather vectorized probe
        let (gotv, _) =
            hash_join_probe_vectorized(&lrow, &rt_rel, "name", "name", &tidx, 16).unwrap();
        assert_eq!(got.to_tagged(), gotv);
    }

    #[test]
    fn build_index_matches_row_build_bit_for_bit() {
        for n in [0i64, 1, 63, 64, 65, 150, 533] {
            let rel = mixed(n);
            let crel = ColumnarRelation::from_tagged(&rel);
            let row_idx = par::with_thread_count(1, || QualityIndex::build(&rel));
            for threads in [1usize, 2, 8] {
                let col_idx = par::with_thread_count(threads, || crel.build_index());
                assert_eq!(col_idx, row_idx, "n={n} threads={threads}");
            }
        }
    }

    #[test]
    fn all_null_and_empty_columns_round_trip() {
        let schema = Schema::of(&[("a", DataType::Int), ("b", DataType::Text)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut rel = TaggedRelation::empty(schema.clone(), dict.clone());
        // 0-row relation
        let c = ColumnarRelation::from_tagged(&rel);
        assert!(c.is_empty());
        assert_eq!(c.to_tagged(), rel);
        assert_eq!(c.build_index(), QualityIndex::build(&rel));
        // all-NULL columns (Text pool stays empty; ids are placeholders)
        for _ in 0..70 {
            rel.push(vec![
                QualityCell::bare(Value::Null),
                QualityCell::bare(Value::Null).with_tag(IndicatorValue::new("source", "x")),
            ])
            .unwrap();
        }
        let c = ColumnarRelation::from_tagged(&rel);
        assert_eq!(c.to_tagged(), rel);
        let p = Expr::col("a").gt(Expr::lit(0i64));
        let (got, _) = select_columnar(&c, &p, 16).unwrap();
        assert!(got.is_empty(), "NULLs never satisfy predicates");
        let p = Expr::col("b@source").eq(Expr::lit("x"));
        let (got, _) = select_columnar(&c, &p, 16).unwrap();
        assert_eq!(got.to_tagged(), algebra::select(&rel, &p).unwrap());
    }

    #[test]
    fn type_errors_surface_on_both_paths() {
        let rel = mixed(20);
        let crel = ColumnarRelation::from_tagged(&rel);
        for p in [
            Expr::col("v@age").lt(Expr::lit("text")),
            Expr::col("v").lt(Expr::lit("text")),
            Expr::col("name").ge(Expr::lit(3i64)),
            Expr::col("k").add(Expr::lit(1i64)),
        ] {
            assert!(algebra::select(&rel, &p).is_err(), "{p:?}");
            for batch_size in [1usize, 7, 1024] {
                assert!(select_columnar(&crel, &p, batch_size).is_err(), "{p:?}");
            }
        }
    }

    #[test]
    fn tag_runs_window_and_get_agree() {
        let rel = mixed(97);
        let c = ColumnarRelation::from_tagged(&rel);
        for col in c.columns() {
            for (start, len) in [(0usize, 97usize), (3, 10), (63, 2), (96, 1), (50, 0)] {
                let mut seen = 0;
                for (off, seg_len, tags) in col.tags.window(start, len) {
                    assert_eq!(off, seen);
                    for i in 0..seg_len {
                        assert!(same_tags(col.tags.get(start + off + i), tags));
                    }
                    seen += seg_len;
                }
                assert_eq!(seen, len, "window covers exactly start={start} len={len}");
            }
        }
    }

    #[test]
    fn columnar_metrics_flow() {
        let before = dq_obs::registry().snapshot();
        let rel = mixed(300);
        let crel = ColumnarRelation::from_tagged(&rel);
        let p = Expr::col("v@age").le(Expr::lit(10i64));
        let (_, stats) = select_columnar(&crel, &p, 64).unwrap();
        let after = dq_obs::registry().snapshot();
        assert!(after.counter("columnar.conversions") > before.counter("columnar.conversions"));
        assert!(after.counter("columnar.batches") >= before.counter("columnar.batches") + 5);
        assert!(after.counter("columnar.rows_out") >= before.counter("columnar.rows_out"));
        assert!(stats.batches * stats.batch_size >= stats.rows_out);
        assert!(after.validate().is_ok());
    }
}
