//! Epoch-stamped snapshot publication — the MVCC primitive.
//!
//! A writer builds the next immutable state off to the side (all the
//! tag/relation/index structures in this crate are `Arc`/CoW
//! persistent-data-structure-shaped, so "build the next state" is a
//! cheap copy-on-write rebuild), then publishes it through an
//! [`EpochCell`] in one swap. Readers *pin* the current
//! [`Stamped`] snapshot at statement start and evaluate against it for
//! the statement's whole lifetime: they never block on a writer and can
//! never observe a half-applied tag, because no published state is ever
//! mutated after publication.
//!
//! Epochs are strictly increasing `u64` stamps. Epoch 0 is the initial
//! (pre-first-publish) state; every successful publish produces a
//! strictly larger epoch. [`EpochCell::publish_at`] lets a caller with
//! an external epoch authority (e.g. the WAL commit counter in
//! `dq-storage`) impose a floor so the in-memory epoch sequence and the
//! durable one agree.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, RwLock};

/// A value paired with the epoch at which it was published.
///
/// The value is immutable once stamped; readers share it by `Arc`.
#[derive(Debug)]
pub struct Stamped<T> {
    epoch: u64,
    value: T,
}

impl<T> Stamped<T> {
    /// Wrap `value` with the given epoch stamp.
    pub fn new(epoch: u64, value: T) -> Self {
        Stamped { epoch, value }
    }

    /// The epoch at which this value was published.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// The published value.
    pub fn value(&self) -> &T {
        &self.value
    }

    /// Consume the stamp, yielding the value.
    pub fn into_value(self) -> T {
        self.value
    }
}

/// A single-slot publication cell: writers swap in new epoch-stamped
/// values, readers pin the current one without ever blocking on a
/// writer's *execution* (pinning takes only a short read lock around
/// one `Arc` clone; publication holds the matching write lock only for
/// the swap itself).
#[derive(Debug)]
pub struct EpochCell<T> {
    current: RwLock<Arc<Stamped<T>>>,
    /// Cached copy of `current`'s epoch, readable without the lock.
    epoch: AtomicU64,
}

impl<T> EpochCell<T> {
    /// Create a cell holding `value` at epoch 0.
    pub fn new(value: T) -> Self {
        Self::with_epoch(0, value)
    }

    /// Create a cell holding `value` at a specific starting epoch
    /// (e.g. the epoch recovered from a durable store).
    pub fn with_epoch(epoch: u64, value: T) -> Self {
        EpochCell {
            current: RwLock::new(Arc::new(Stamped::new(epoch, value))),
            epoch: AtomicU64::new(epoch),
        }
    }

    /// The epoch of the most recently published value, without taking
    /// the lock. Sessions compare this against their pinned epoch to
    /// decide whether to re-pin.
    pub fn published_epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Pin the current snapshot: one `Arc` clone under a read lock.
    /// The returned snapshot stays valid (and unchanging) for as long
    /// as the caller holds it, regardless of later publishes.
    pub fn pin(&self) -> Arc<Stamped<T>> {
        Arc::clone(&self.current.read().expect("epoch cell poisoned"))
    }

    /// Publish `value` at the next epoch (`current + 1`). Returns the
    /// epoch assigned. Concurrent publishers serialize on the internal
    /// write lock, so epochs are strictly increasing.
    pub fn publish(&self, value: T) -> u64 {
        self.publish_at(value, 0)
    }

    /// Publish `value` at `max(current + 1, floor)`. The floor lets an
    /// external epoch authority (the WAL) dictate the stamp while still
    /// guaranteeing strict monotonicity if the authority lags.
    pub fn publish_at(&self, value: T, floor: u64) -> u64 {
        let mut slot = self.current.write().expect("epoch cell poisoned");
        let epoch = (slot.epoch() + 1).max(floor);
        *slot = Arc::new(Stamped::new(epoch, value));
        self.epoch.store(epoch, Ordering::Release);
        dq_obs::counter!("mvcc.epochs_published").incr();
        epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread;

    #[test]
    fn pin_sees_the_published_value() {
        let cell = EpochCell::new(vec![1, 2]);
        assert_eq!(cell.published_epoch(), 0);
        let pinned = cell.pin();
        assert_eq!(pinned.epoch(), 0);
        assert_eq!(pinned.value(), &vec![1, 2]);

        let e = cell.publish(vec![3]);
        assert_eq!(e, 1);
        assert_eq!(cell.published_epoch(), 1);
        // the old pin is unaffected by the publish
        assert_eq!(pinned.value(), &vec![1, 2]);
        assert_eq!(cell.pin().value(), &vec![3]);
    }

    #[test]
    fn publish_at_respects_the_floor() {
        let cell = EpochCell::new(0u32);
        assert_eq!(cell.publish_at(1, 10), 10);
        // floor below current+1 is ignored
        assert_eq!(cell.publish_at(2, 3), 11);
        assert_eq!(cell.pin().epoch(), 11);
    }

    #[test]
    fn with_epoch_starts_at_the_recovered_stamp() {
        let cell = EpochCell::with_epoch(42, "state");
        assert_eq!(cell.published_epoch(), 42);
        assert_eq!(cell.publish("next"), 43);
    }

    #[test]
    fn concurrent_publishers_get_strictly_increasing_epochs() {
        let cell = Arc::new(EpochCell::new(0usize));
        let handles: Vec<_> = (0..8)
            .map(|i| {
                let cell = Arc::clone(&cell);
                thread::spawn(move || (0..50).map(|_| cell.publish(i)).collect::<Vec<u64>>())
            })
            .collect();
        let mut all: Vec<u64> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        all.sort_unstable();
        // 400 publishes => exactly epochs 1..=400, no duplicates
        assert_eq!(all, (1..=400).collect::<Vec<u64>>());
        assert_eq!(cell.published_epoch(), 400);
    }
}
