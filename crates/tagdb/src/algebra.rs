//! Tag-propagating relational algebra over [`TaggedRelation`]s.
//!
//! Each operator mirrors its `relstore::algebra` counterpart and defines
//! how quality tags travel:
//!
//! * σ / π / ρ / τ — tags ride along with their cells unchanged;
//! * ⋈ / × — each output cell keeps the tags of the input cell it came
//!   from (cells are never synthesized, so provenance is exact);
//! * γ — aggregate output cells get tags *derived* from the input group
//!   under an explicit [`TagPolicy`] (e.g. a SUM's `creation_time` is the
//!   *oldest* input creation time — conservative staleness);
//! * predicates may reference pseudo-columns `col@indicator`, which is the
//!   paper's query-time quality filtering.

use crate::bitmap::{extract_atoms, QualityIndex};
use crate::cell::QualityCell;
use crate::indicator::IndicatorValue;
use crate::relation::{TaggedRelation, TaggedRow, TAG_SEP};
use crate::symbol::Symbol;
use relstore::algebra::AggCall;
use relstore::expr::{CompiledExpr, ValueSource};
use relstore::index::HashIndex;
use relstore::{par, Date, DbError, DbResult, Expr, Row, Value};
use std::collections::HashMap;
use std::fmt;

/// A quality predicate compiled against a tagged relation's schema.
///
/// Application columns resolve to their cell positions; each distinct
/// `col@indicator[@meta…]` pseudo-column resolves to a slot in an
/// *extraction plan* of `(cell index, interned indicator path)` pairs.
/// Evaluation reads tag values straight out of the [`TaggedRow`] —
/// no owned `Row` is materialized per tuple, and indicator-path lookups
/// are symbol-id compares, not string compares.
#[derive(Debug, Clone)]
pub struct CompiledTagExpr {
    expr: CompiledExpr,
    plan: Vec<(usize, Vec<Symbol>)>,
    base: usize,
}

/// Missing tags evaluate to NULL (3VL then drops the row), borrowed from
/// this sentinel so `value_at` never allocates.
static NULL_SENTINEL: Value = Value::Null;

/// [`ValueSource`] adapter: positions `0..base` are the row's application
/// values, positions `base..` are tag values per the extraction plan.
struct TagRowSource<'a> {
    row: &'a [QualityCell],
    compiled: &'a CompiledTagExpr,
}

impl ValueSource for TagRowSource<'_> {
    fn value_at(&self, idx: usize) -> &Value {
        if idx < self.compiled.base {
            return &self.row[idx].value;
        }
        let (ci, path) = &self.compiled.plan[idx - self.compiled.base];
        match self.row[*ci].tag_path_syms(path) {
            Some(tag) => &tag.value,
            None => &NULL_SENTINEL,
        }
    }
}

impl CompiledTagExpr {
    /// Compiles `expr` against `rel`'s schema and dictionary. Unknown
    /// plain columns and pseudo-columns over unknown application columns
    /// error here, once — not per row.
    pub fn compile(rel: &TaggedRelation, expr: &Expr) -> DbResult<CompiledTagExpr> {
        Self::compile_schema(rel.schema(), expr)
    }

    /// [`Self::compile`] against a bare schema — compilation only consults
    /// column names, so callers holding a columnar relation (no
    /// [`TaggedRelation`] in hand) compile identically.
    pub fn compile_schema(schema: &relstore::Schema, expr: &Expr) -> DbResult<CompiledTagExpr> {
        let base = schema.arity();
        let mut plan: Vec<(usize, Vec<Symbol>)> = Vec::new();
        let compiled = expr.compile_with(&mut |name| {
            if let Some(i) = schema.index_of(name) {
                return Ok(i);
            }
            match TaggedRelation::split_pseudo(name) {
                Some((col, ind_path)) => {
                    let ci = schema.resolve(col)?;
                    let path: Vec<Symbol> =
                        ind_path.split(TAG_SEP).map(Symbol::intern).collect();
                    let slot = plan
                        .iter()
                        .position(|p| p == &(ci, path.clone()))
                        .unwrap_or_else(|| {
                            plan.push((ci, path));
                            plan.len() - 1
                        });
                    Ok(base + slot)
                }
                None => Err(DbError::UnknownColumn(name.to_owned())),
            }
        })?;
        Ok(CompiledTagExpr {
            expr: compiled,
            plan,
            base,
        })
    }

    /// Evaluates to an owned value against one tagged row.
    pub fn eval(&self, row: &TaggedRow) -> DbResult<Value> {
        self.expr.eval_value(&TagRowSource {
            row,
            compiled: self,
        })
    }

    /// Predicate semantics: `true` keeps the row, `false`/NULL drops it.
    /// This is *the* mask function — σ, `evaluate_mask`, and the query
    /// layer's TAG statement all funnel through it.
    pub fn matches(&self, row: &TaggedRow) -> DbResult<bool> {
        self.expr.eval_predicate(&TagRowSource {
            row,
            compiled: self,
        })
    }

    /// The compiled scalar expression (the vectorized executor decomposes
    /// it into per-conjunct kernels).
    pub(crate) fn expr(&self) -> &CompiledExpr {
        &self.expr
    }

    /// The pseudo-column extraction plan backing positions `base..`.
    pub(crate) fn plan(&self) -> &[(usize, Vec<Symbol>)] {
        &self.plan
    }

    /// Arity of the application schema — the first pseudo-column slot.
    pub(crate) fn base(&self) -> usize {
        self.base
    }

    /// Evaluates `sub` — a node of [`Self::expr`] — as a predicate
    /// against `row` using this expression's extraction plan (the
    /// vectorized executor's fallback for non-kernel conjuncts).
    pub(crate) fn matches_sub(&self, sub: &CompiledExpr, row: &TaggedRow) -> DbResult<bool> {
        sub.eval_predicate(&TagRowSource {
            row,
            compiled: self,
        })
    }
}

/// Evaluates an expression (which may reference `col@indicator` and
/// nested `col@ind@meta` pseudo-columns) once per row, returning the
/// results in row order. This is the building block for quality
/// selection, retro-tagging (`TAG ... SET`), and derived indicators.
/// Compiled once, evaluated in parallel chunks on large inputs.
pub fn evaluate(rel: &TaggedRelation, expr: &Expr) -> DbResult<Vec<Value>> {
    let compiled = CompiledTagExpr::compile(rel, expr)?;
    let eval_chunk = |chunk: &[TaggedRow]| -> DbResult<Vec<Value>> {
        chunk.iter().map(|row| compiled.eval(row)).collect()
    };
    match par::plan(rel.len()) {
        Some(threads) => {
            par::merge_results(par::run_chunked(rel.rows(), threads, |_, c| eval_chunk(c)))
        }
        None => eval_chunk(rel.rows()),
    }
}

/// Like [`evaluate`] but as a boolean mask (NULL counts as `false`,
/// matching predicate semantics).
pub fn evaluate_mask(rel: &TaggedRelation, predicate: &Expr) -> DbResult<Vec<bool>> {
    let compiled = CompiledTagExpr::compile(rel, predicate)?;
    let mask_chunk = |chunk: &[TaggedRow]| -> DbResult<Vec<bool>> {
        chunk.iter().map(|row| compiled.matches(row)).collect()
    };
    match par::plan(rel.len()) {
        Some(threads) => {
            par::merge_results(par::run_chunked(rel.rows(), threads, |_, c| mask_chunk(c)))
        }
        None => mask_chunk(rel.rows()),
    }
}

/// σ — keeps rows whose predicate holds. The predicate may mix application
/// columns and `col@indicator` pseudo-columns; rows whose referenced tag is
/// missing evaluate to NULL and are dropped, so *untagged data never
/// satisfies a quality constraint*.
///
/// The predicate is compiled once ([`CompiledTagExpr`]); surviving rows are
/// cloned — a refcount bump per tagged cell, not a deep copy of its tags.
/// Large inputs filter in parallel chunks with input order preserved.
pub fn select(rel: &TaggedRelation, predicate: &Expr) -> DbResult<TaggedRelation> {
    let compiled = CompiledTagExpr::compile(rel, predicate)?;
    let filter_chunk = |chunk: &[TaggedRow]| -> DbResult<Vec<TaggedRow>> {
        let mut out = Vec::new();
        for row in chunk {
            if compiled.matches(row)? {
                out.push(row.clone());
            }
        }
        Ok(out)
    };
    let rows = match par::plan(rel.len()) {
        Some(threads) => {
            par::merge_results(par::run_chunked(rel.rows(), threads, |_, c| filter_chunk(c)))?
        }
        None => filter_chunk(rel.rows())?,
    };
    Ok(TaggedRelation::from_parts_unchecked(
        rel.schema().clone(),
        rel.dictionary().clone(),
        rows,
    ))
}

/// σ over an explicit ascending candidate row-id list: gathers the rows
/// at `ids`, optionally re-checking `predicate` on each (the residual
/// pass of index-assisted selection). Chunks over the id list itself, so
/// the parallel win scales with the *surviving* rows, not the relation —
/// and chunk-order merging keeps the output byte-identical to a serial
/// gather.
pub fn select_at(
    rel: &TaggedRelation,
    ids: &[usize],
    predicate: Option<&Expr>,
) -> DbResult<TaggedRelation> {
    let compiled = match predicate {
        Some(p) => Some(CompiledTagExpr::compile(rel, p)?),
        None => None,
    };
    let gather_chunk = |chunk: &[usize]| -> DbResult<Vec<TaggedRow>> {
        let mut out = Vec::with_capacity(chunk.len());
        for &id in chunk {
            let row = rel
                .rows()
                .get(id)
                .ok_or_else(|| DbError::InvalidExpression(format!("row index {id} out of range")))?;
            match &compiled {
                Some(c) => {
                    if c.matches(row)? {
                        out.push(row.clone());
                    }
                }
                None => out.push(row.clone()),
            }
        }
        Ok(out)
    };
    let rows = match par::plan(ids.len()) {
        Some(threads) => {
            par::merge_results(par::run_chunked(ids, threads, |_, c| gather_chunk(c)))?
        }
        None => gather_chunk(ids)?,
    };
    Ok(TaggedRelation::from_parts_unchecked(
        rel.schema().clone(),
        rel.dictionary().clone(),
        rows,
    ))
}

/// How an index-aware σ actually ran — surfaced so tests (and EXPLAIN
/// output) can assert which path executed.
#[derive(Debug, Clone, PartialEq)]
pub enum TagAccessPath {
    /// Full scan: no index-answerable atoms, or an atom the index had to
    /// refuse (type-error parity), or a stale index.
    Scan,
    /// Bitmap-assisted: the atom conjunction resolved to a candidate
    /// bitset; `residual` says whether a per-row pass still ran.
    Bitmap {
        /// Rendered atoms the bitmaps answered.
        atoms: Vec<String>,
        /// Candidate rows surviving the bitmap intersection.
        candidates: usize,
        /// Whether non-atomic conjuncts forced a residual per-row pass.
        residual: bool,
    },
}

impl fmt::Display for TagAccessPath {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TagAccessPath::Scan => write!(f, "scan"),
            TagAccessPath::Bitmap {
                atoms,
                candidates,
                residual,
            } => {
                write!(f, "bitmap[{}] candidates={candidates}", atoms.join(" AND "))?;
                if *residual {
                    write!(f, " +residual")?;
                }
                Ok(())
            }
        }
    }
}

/// Index-assisted σ: resolves the predicate's quality atoms against the
/// bitmap `index`, then gathers (and residual-filters) only the
/// surviving candidates via [`select_at`]. Falls back to the full
/// [`select`] scan whenever the index cannot answer *exactly* — so the
/// result (rows, order, and errors on answerable predicates) is
/// byte-identical to the scan, just cheaper.
pub fn select_indexed(
    rel: &TaggedRelation,
    index: &QualityIndex,
    predicate: &Expr,
) -> DbResult<(TaggedRelation, TagAccessPath)> {
    // Compile up front so malformed predicates error exactly like the scan.
    CompiledTagExpr::compile(rel, predicate)?;
    let _t = dq_obs::histogram!("tagstore.bitmap.select_us").start();
    let scan = |rel: &TaggedRelation| {
        dq_obs::counter!("tagstore.bitmap.scan_fallbacks").incr();
        Ok((select(rel, predicate)?, TagAccessPath::Scan))
    };
    if index.rows() != rel.len() {
        return scan(rel); // stale index — never trust it
    }
    let (atoms, residual) = extract_atoms(rel, predicate);
    if atoms.is_empty() {
        return scan(rel);
    }
    let Some(bs) = index.candidates(&atoms) else {
        return scan(rel);
    };
    let ids: Vec<usize> = bs.iter_ones().collect();
    dq_obs::counter!("tagstore.bitmap.intersections").add(atoms.len() as u64);
    dq_obs::counter!("tagstore.bitmap.candidate_rows").add(ids.len() as u64);
    let path = TagAccessPath::Bitmap {
        atoms: atoms.iter().map(|a| a.to_string()).collect(),
        candidates: ids.len(),
        residual: !residual.is_empty(),
    };
    let filtered = if residual.is_empty() {
        select_at(rel, &ids, None)?
    } else {
        // Re-check the *full* predicate: correct regardless of how the
        // residual interleaves with atoms, and atom re-checks are cheap.
        select_at(rel, &ids, Some(predicate))?
    };
    dq_obs::counter!("tagstore.bitmap.gathered_rows").add(filtered.len() as u64);
    Ok((filtered, path))
}

/// π — projects onto named columns; tags travel with cells (shared, not
/// deep-copied). Parallel on large inputs, input order preserved.
pub fn project(rel: &TaggedRelation, columns: &[&str]) -> DbResult<TaggedRelation> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| rel.schema().resolve(c))
        .collect::<DbResult<_>>()?;
    let schema = rel.schema().project(&indices)?;
    let project_chunk = |chunk: &[TaggedRow]| -> Vec<TaggedRow> {
        chunk
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect()
    };
    let rows = match par::plan(rel.len()) {
        Some(threads) => par::run_chunked(rel.rows(), threads, |_, c| project_chunk(c))
            .into_iter()
            .flatten()
            .collect(),
        None => project_chunk(rel.rows()),
    };
    Ok(TaggedRelation::from_parts_unchecked(
        schema,
        rel.dictionary().clone(),
        rows,
    ))
}

/// ρ — renames one column. Tags are untouched (they are keyed by
/// indicator, not by column name).
pub fn rename(rel: &TaggedRelation, from: &str, to: &str) -> DbResult<TaggedRelation> {
    let schema = rel.schema().rename(from, to)?;
    Ok(TaggedRelation::from_parts_unchecked(
        schema,
        rel.dictionary().clone(),
        rel.rows().to_vec(),
    ))
}

/// ⋈ — hash equi-join on application values. Output cells keep the tags of
/// the input cell they came from. Dictionaries must be merged by the
/// caller if they differ; we require the left dictionary to cover both.
pub fn hash_join(
    left: &TaggedRelation,
    right: &TaggedRelation,
    left_key: &str,
    right_key: &str,
) -> DbResult<TaggedRelation> {
    let li = left.schema().resolve(left_key)?;
    let ri = right.schema().resolve(right_key)?;
    let schema = left.schema().join(right.schema(), "l", "r")?;

    fn build_chunk(chunk: &[TaggedRow], ri: usize) -> HashMap<&Value, Vec<&TaggedRow>> {
        let mut t: HashMap<&Value, Vec<&TaggedRow>> = HashMap::with_capacity(chunk.len());
        for rr in chunk {
            if !rr[ri].value.is_null() {
                t.entry(&rr[ri].value).or_default().push(rr);
            }
        }
        t
    }
    // Parallel build merges per-chunk partial tables in chunk order, which
    // reproduces the serial per-key insertion order exactly.
    let table: HashMap<&Value, Vec<&TaggedRow>> = match par::plan(right.len()) {
        Some(threads) => {
            let mut merged: HashMap<&Value, Vec<&TaggedRow>> =
                HashMap::with_capacity(right.len());
            let partials = par::run_ranges(right.len(), threads, |_, r| {
                build_chunk(&right.rows()[r], ri)
            });
            for partial in partials {
                for (k, mut v) in partial {
                    merged.entry(k).or_default().append(&mut v);
                }
            }
            merged
        }
        None => build_chunk(right.rows(), ri),
    };

    let probe_chunk = |chunk: &[TaggedRow]| -> Vec<TaggedRow> {
        let mut out = Vec::new();
        for lr in chunk {
            if lr[li].value.is_null() {
                continue;
            }
            if let Some(matches) = table.get(&lr[li].value) {
                for rr in matches {
                    let mut combined = lr.clone();
                    combined.extend(rr.iter().cloned());
                    out.push(combined);
                }
            }
        }
        out
    };
    let rows: Vec<TaggedRow> = match par::plan(left.len()) {
        Some(threads) => par::run_chunked(left.rows(), threads, |_, c| probe_chunk(c))
            .into_iter()
            .flatten()
            .collect(),
        None => probe_chunk(left.rows()),
    };
    Ok(TaggedRelation::from_parts_unchecked(
        schema,
        left.dictionary().clone(),
        rows,
    ))
}

/// ⋈ via a prebuilt [`HashIndex`] over the right relation's key values
/// (`vec![value] → row positions`, positions in row order): probes the
/// index instead of building a hash table per join. Output is
/// byte-identical to [`hash_join`] on the same inputs — same schema, same
/// row order, same tag sharing. NULL keys never join: left NULLs are
/// skipped explicitly (NULL = NULL is *true* under the storage total
/// order, so the probe must not reach the index), and right NULL entries
/// are unreachable from non-NULL probes.
pub fn hash_join_probe(
    left: &TaggedRelation,
    right: &TaggedRelation,
    left_key: &str,
    right_key: &str,
    index: &HashIndex,
) -> DbResult<TaggedRelation> {
    let li = left.schema().resolve(left_key)?;
    right.schema().resolve(right_key)?;
    let schema = left.schema().join(right.schema(), "l", "r")?;
    let probe_chunk = |chunk: &[TaggedRow]| -> DbResult<Vec<TaggedRow>> {
        let mut out = Vec::new();
        for lr in chunk {
            if lr[li].value.is_null() {
                continue;
            }
            let key = vec![lr[li].value.clone()];
            for &pos in index.get(&key) {
                let rr = right.rows().get(pos).ok_or_else(|| {
                    DbError::InvalidExpression(format!("join index position {pos} out of range"))
                })?;
                let mut combined = lr.clone();
                combined.extend(rr.iter().cloned());
                out.push(combined);
            }
        }
        Ok(out)
    };
    let rows: Vec<TaggedRow> = match par::plan(left.len()) {
        Some(threads) => {
            par::merge_results(par::run_chunked(left.rows(), threads, |_, c| probe_chunk(c)))?
        }
        None => probe_chunk(left.rows())?,
    };
    Ok(TaggedRelation::from_parts_unchecked(
        schema,
        left.dictionary().clone(),
        rows,
    ))
}

/// ∪ — bag union; requires union-compatible application schemas.
pub fn union_all(a: &TaggedRelation, b: &TaggedRelation) -> DbResult<TaggedRelation> {
    if !a.schema().union_compatible(b.schema()) {
        return Err(DbError::TypeMismatch {
            expected: format!("union-compatible schemas ({})", a.schema()),
            found: b.schema().to_string(),
        });
    }
    let mut rows = a.rows().to_vec();
    rows.extend(b.rows().iter().cloned());
    Ok(TaggedRelation::from_parts_unchecked(
        a.schema().clone(),
        a.dictionary().clone(),
        rows,
    ))
}

/// δ over application values: rows with equal *values* collapse to one row
/// whose cell tags are the merge of the duplicates' tags (conflicting tags
/// drop — ambiguous provenance is not invented).
pub fn distinct_merging(rel: &TaggedRelation) -> TaggedRelation {
    let mut index: HashMap<Row, usize> = HashMap::new();
    let mut out: Vec<TaggedRow> = Vec::new();
    for row in rel.iter() {
        let key: Row = row.iter().map(|c| c.value.clone()).collect();
        match index.get(&key) {
            Some(&pos) => {
                for (mine, theirs) in out[pos].iter_mut().zip(row.iter()) {
                    mine.merge_tags_from(theirs);
                }
            }
            None => {
                index.insert(key, out.len());
                out.push(row.clone());
            }
        }
    }
    TaggedRelation::from_parts_unchecked(rel.schema().clone(), rel.dictionary().clone(), out)
}

/// τ — stable sort by application values, ascending.
pub fn sort_by_value(rel: &TaggedRelation, column: &str) -> DbResult<TaggedRelation> {
    let ci = rel.schema().resolve(column)?;
    let mut rows = rel.rows().to_vec();
    rows.sort_by(|a, b| a[ci].value.cmp(&b[ci].value));
    Ok(TaggedRelation::from_parts_unchecked(
        rel.schema().clone(),
        rel.dictionary().clone(),
        rows,
    ))
}

/// How an aggregate output cell derives one indicator from its input group.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TagRule {
    /// Minimum input tag value — e.g. oldest `creation_time`, the
    /// conservative staleness of a derived datum.
    Min,
    /// Maximum input tag value — e.g. the most recent inspection.
    Max,
    /// Keep only if all inputs agree; drop otherwise.
    Unanimous,
    /// Distinct text values joined with `+` — e.g. `source=sales+Nexis`
    /// for a figure computed from two departments' data.
    MergeText,
}

/// One derivation: apply `rule` to indicator `indicator` of the input
/// cells feeding each aggregate.
#[derive(Debug, Clone)]
pub struct TagPolicy {
    /// The indicator to derive.
    pub indicator: Symbol,
    /// The derivation rule.
    pub rule: TagRule,
}

impl TagPolicy {
    /// Shorthand constructor.
    pub fn new(indicator: impl Into<Symbol>, rule: TagRule) -> Self {
        TagPolicy {
            indicator: indicator.into(),
            rule,
        }
    }

    fn derive(&self, inputs: &[&QualityCell]) -> Option<IndicatorValue> {
        let vals: Vec<Value> = inputs
            .iter()
            .filter_map(|c| c.tag(&self.indicator).map(|t| t.value.clone()))
            .collect();
        if vals.is_empty() {
            return None;
        }
        let value = match self.rule {
            TagRule::Min => vals.iter().min().cloned()?,
            TagRule::Max => vals.iter().max().cloned()?,
            TagRule::Unanimous => {
                let first = &vals[0];
                if vals.len() == inputs.len() && vals.iter().all(|v| v == first) {
                    first.clone()
                } else {
                    return None;
                }
            }
            TagRule::MergeText => {
                let mut texts: Vec<String> = vals.iter().map(|v| v.to_string()).collect();
                texts.sort();
                texts.dedup();
                Value::Text(texts.join("+"))
            }
        };
        Some(IndicatorValue::new(self.indicator.clone(), value))
    }
}

/// γ — group by `group_by` application values and compute `aggs`, deriving
/// output-cell tags per `policies`. Group-key output cells merge the tags
/// of the group's key cells (conflicts drop); aggregate output cells get
/// tags derived from the aggregated column's input cells.
pub fn aggregate(
    rel: &TaggedRelation,
    group_by: &[&str],
    aggs: &[AggCall],
    policies: &[TagPolicy],
) -> DbResult<TaggedRelation> {
    // Compute the value-level aggregate via the base engine for exact
    // SQL semantics, then attach derived tags.
    let plain = rel.strip();
    let value_result = relstore::algebra::aggregate(&plain, group_by, aggs)?;

    let key_idx: Vec<usize> = group_by
        .iter()
        .map(|c| rel.schema().resolve(c))
        .collect::<DbResult<_>>()?;
    let agg_src: Vec<Option<usize>> = aggs
        .iter()
        .map(|a| match &a.column {
            Some(c) => rel.schema().resolve(c).map(Some),
            None => Ok(None),
        })
        .collect::<DbResult<_>>()?;

    // Bucket input rows per group key.
    let mut groups: HashMap<Row, Vec<&TaggedRow>> = HashMap::new();
    for row in rel.iter() {
        let key: Row = key_idx.iter().map(|&i| row[i].value.clone()).collect();
        groups.entry(key).or_default().push(row);
    }

    let mut rows: Vec<TaggedRow> = Vec::with_capacity(value_result.len());
    for vrow in value_result.iter() {
        let key: Row = vrow[..key_idx.len()].to_vec();
        let members: &[&TaggedRow] = groups.get(&key).map(|v| v.as_slice()).unwrap_or(&[]);
        let mut out: TaggedRow = Vec::with_capacity(vrow.len());
        // Group-key cells: merge tags across the group.
        for (k, &src) in key_idx.iter().enumerate() {
            let mut cell = QualityCell::bare(vrow[k].clone());
            let mut first = true;
            for m in members {
                if first {
                    cell = QualityCell::tagged(vrow[k].clone(), m[src].tags().to_vec());
                    first = false;
                } else {
                    // merge_tags_from drops disagreeing tags but keeps tags
                    // `cell` has and `m` lacks; intersect instead: drop tags
                    // absent from `m`.
                    let keep: Vec<IndicatorValue> = cell
                        .tags()
                        .iter()
                        .filter(|t| m[src].tag(&t.indicator) == Some(*t))
                        .cloned()
                        .collect();
                    cell = QualityCell::tagged(vrow[k].clone(), keep);
                }
            }
            out.push(cell);
        }
        // Aggregate cells: derive tags from the inputs of their source col.
        for (a, &src) in agg_src.iter().enumerate() {
            let value = vrow[key_idx.len() + a].clone();
            let mut cell = QualityCell::bare(value);
            if let Some(src) = src {
                let inputs: Vec<&QualityCell> = members.iter().map(|m| &m[src]).collect();
                for p in policies {
                    if let Some(tag) = p.derive(&inputs) {
                        cell.set_tag(tag);
                    }
                }
            }
            out.push(cell);
        }
        rows.push(out);
    }
    Ok(TaggedRelation::from_parts_unchecked(
        value_result.schema().clone(),
        rel.dictionary().clone(),
        rows,
    ))
}

/// Derives the `age` indicator (in days) from `creation_time` for every
/// tagged cell of `column` — the paper's Step-4 example of indicator
/// derivability: "age can be computed given current time and creation
/// time".
pub fn derive_age(rel: &mut TaggedRelation, column: &str, now: Date) -> DbResult<usize> {
    let mut derived = 0;
    for row in 0..rel.len() {
        let created = rel.cell(row, column)?.tag_value("creation_time");
        if let Value::Date(d) = created {
            rel.tag_cell(
                row,
                column,
                IndicatorValue::new("age", Value::Int(now.days_between(&d))),
            )?;
            derived += 1;
        }
    }
    Ok(derived)
}

/// Convenience re-export of aggregate call constructors.
pub use relstore::algebra::{AggCall as Agg, AggFunc as AggF};

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicator::IndicatorDictionary;
    use relstore::{DataType, Schema};

    fn d(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    /// Trading-style tagged relation: price cells tagged with
    /// creation_time + source.
    fn prices() -> TaggedRelation {
        let schema = Schema::of(&[("ticker", DataType::Text), ("price", DataType::Float)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mk = |t: &str, p: f64, ct: &str, src: &str| {
            vec![
                QualityCell::bare(t),
                QualityCell::bare(p)
                    .with_tag(IndicatorValue::new("creation_time", d(ct)))
                    .with_tag(IndicatorValue::new("source", src)),
            ]
        };
        TaggedRelation::new(
            schema,
            dict,
            vec![
                mk("FRT", 10.0, "10-1-91", "NYSE feed"),
                mk("NUT", 20.0, "10-20-91", "NYSE feed"),
                mk("BLT", 30.0, "9-1-91", "manual entry"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn select_on_values_preserves_tags() {
        let r = select(&prices(), &Expr::col("price").gt(Expr::lit(15.0))).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(
            r.cell(0, "price").unwrap().tag_value("source"),
            Value::text("NYSE feed")
        );
    }

    #[test]
    fn select_on_quality_pseudo_columns() {
        // the paper's headline capability: filter by tag at query time
        let p = Expr::col("price@source").eq(Expr::lit("NYSE feed"));
        let r = select(&prices(), &p).unwrap();
        assert_eq!(r.len(), 2);
        // freshness constraint
        let p = Expr::col("price@creation_time").ge(Expr::lit(d("10-10-91")));
        let r = select(&prices(), &p).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "ticker").unwrap().value, Value::text("NUT"));
    }

    #[test]
    fn untagged_cells_fail_quality_predicates() {
        let mut rel = prices();
        // add an untagged row
        rel.push(vec![QualityCell::bare("ZZZ"), QualityCell::bare(5.0)])
            .unwrap();
        let p = Expr::col("price@source").eq(Expr::lit("NYSE feed"));
        let r = select(&rel, &p).unwrap();
        assert_eq!(r.len(), 2); // untagged row dropped, not matched
                                // negated predicate also drops it (NULL ≠ true)
        let p = Expr::col("price@source").ne(Expr::lit("NYSE feed"));
        let r = select(&rel, &p).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn mixed_value_and_quality_predicate() {
        let p = Expr::col("price")
            .gt(Expr::lit(5.0))
            .and(Expr::col("price@source").ne(Expr::lit("manual entry")));
        let r = select(&prices(), &p).unwrap();
        assert_eq!(r.len(), 2);
    }

    #[test]
    fn select_on_meta_tags_premise_1_4() {
        // tag the source tag itself with its own creation_time
        let rel = prices();
        let mut dict_rel = rel.clone();
        for row in 0..rel.len() {
            let src = rel.cell(row, "price").unwrap().tag("source").unwrap().clone();
            let stamped = src.with_meta(IndicatorValue::new(
                "creation_time",
                d(if row == 0 { "10-23-91" } else { "1-1-90" }),
            ));
            dict_rel.tag_cell(row, "price", stamped).unwrap();
        }
        // filter on the quality of the quality: sources recorded in 1991
        let p = Expr::col("price@source@creation_time").ge(Expr::lit(d("1-1-91")));
        let r = select(&dict_rel, &p).unwrap();
        assert_eq!(r.len(), 1);
        assert_eq!(r.cell(0, "ticker").unwrap().value, Value::text("FRT"));
        // rows whose source tag lacks the meta tag never match
        let p = Expr::col("price@source@inspection").eq(Expr::lit("x"));
        assert!(select(&dict_rel, &p).unwrap().is_empty());
    }

    #[test]
    fn unknown_pseudo_column_errors() {
        let p = Expr::col("ghost@source").eq(Expr::lit("x"));
        assert!(select(&prices(), &p).is_err());
        let p = Expr::col("nosuchcolumn").eq(Expr::lit("x"));
        assert!(select(&prices(), &p).is_err());
    }

    #[test]
    fn project_carries_tags() {
        let r = project(&prices(), &["price"]).unwrap();
        assert_eq!(r.schema().names(), vec!["price"]);
        assert_eq!(
            r.cell(2, "price").unwrap().tag_value("source"),
            Value::text("manual entry")
        );
    }

    #[test]
    fn rename_keeps_tags() {
        let r = rename(&prices(), "price", "share_price").unwrap();
        assert_eq!(
            r.cell(0, "share_price").unwrap().tag_value("source"),
            Value::text("NYSE feed")
        );
    }

    #[test]
    fn join_propagates_tags_from_both_sides() {
        let schema = Schema::of(&[("ticker", DataType::Text), ("qty", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let trades = TaggedRelation::new(
            schema,
            dict,
            vec![vec![
                QualityCell::bare("FRT").with_tag(IndicatorValue::new("source", "order desk")),
                QualityCell::bare(100i64),
            ]],
        )
        .unwrap();
        let j = hash_join(&trades, &prices(), "ticker", "ticker").unwrap();
        assert_eq!(j.len(), 1);
        assert_eq!(
            j.cell(0, "l.ticker").unwrap().tag_value("source"),
            Value::text("order desk")
        );
        assert_eq!(
            j.cell(0, "price").unwrap().tag_value("source"),
            Value::text("NYSE feed")
        );
    }

    #[test]
    fn select_indexed_matches_scan_and_reports_path() {
        let rel = prices();
        let idx = QualityIndex::build(&rel);
        // pure quality atom → bitmap path, no residual
        let p = Expr::col("price@source").eq(Expr::lit("NYSE feed"));
        let (r, path) = select_indexed(&rel, &idx, &p).unwrap();
        assert_eq!(r, select(&rel, &p).unwrap());
        assert_eq!(
            path,
            TagAccessPath::Bitmap {
                atoms: vec!["price@source=NYSE feed".into()],
                candidates: 2,
                residual: false,
            }
        );
        assert_eq!(path.to_string(), "bitmap[price@source=NYSE feed] candidates=2");
        // mixed quality + value predicate → bitmap with residual
        let p = Expr::col("price@source")
            .ne(Expr::lit("manual entry"))
            .and(Expr::col("price").gt(Expr::lit(15.0)));
        let (r, path) = select_indexed(&rel, &idx, &p).unwrap();
        assert_eq!(r, select(&rel, &p).unwrap());
        assert!(matches!(path, TagAccessPath::Bitmap { residual: true, .. }));
        // value-only predicate → scan
        let p = Expr::col("price").gt(Expr::lit(15.0));
        let (r, path) = select_indexed(&rel, &idx, &p).unwrap();
        assert_eq!(r, select(&rel, &p).unwrap());
        assert_eq!(path, TagAccessPath::Scan);
        // stale index (built before a push) → scan, still correct
        let mut grown = rel.clone();
        grown
            .push(vec![QualityCell::bare("ZZZ"), QualityCell::bare(5.0)])
            .unwrap();
        let p = Expr::col("price@source").eq(Expr::lit("NYSE feed"));
        let (r, path) = select_indexed(&grown, &idx, &p).unwrap();
        assert_eq!(r, select(&grown, &p).unwrap());
        assert_eq!(path, TagAccessPath::Scan);
        // malformed predicate errors exactly like the scan would
        let bad = Expr::col("ghost@source").eq(Expr::lit("x"));
        assert!(select_indexed(&rel, &idx, &bad).is_err());
    }

    #[test]
    fn select_at_gathers_and_filters() {
        let rel = prices();
        let r = select_at(&rel, &[0, 2], None).unwrap();
        assert_eq!(r.len(), 2);
        assert_eq!(r.cell(1, "ticker").unwrap().value, Value::text("BLT"));
        let p = Expr::col("price").gt(Expr::lit(15.0));
        let r = select_at(&rel, &[0, 2], Some(&p)).unwrap();
        assert_eq!(r.len(), 1);
        assert!(select_at(&rel, &[99], None).is_err());
    }

    #[test]
    fn hash_join_probe_matches_hash_join() {
        let schema = Schema::of(&[("ticker", DataType::Text), ("qty", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let trades = TaggedRelation::new(
            schema,
            dict,
            vec![
                vec![
                    QualityCell::bare("FRT")
                        .with_tag(IndicatorValue::new("source", "order desk")),
                    QualityCell::bare(100i64),
                ],
                vec![QualityCell::bare("NUT"), QualityCell::bare(7i64)],
                vec![QualityCell::bare(Value::Null), QualityCell::bare(1i64)],
            ],
        )
        .unwrap();
        let right = prices();
        let ri = right.schema().resolve("ticker").unwrap();
        let mut idx = HashIndex::new(vec![0]);
        for (pos, row) in right.iter().enumerate() {
            idx.insert(&vec![row[ri].value.clone()], pos);
        }
        let probed = hash_join_probe(&trades, &right, "ticker", "ticker", &idx).unwrap();
        let built = hash_join(&trades, &right, "ticker", "ticker").unwrap();
        assert_eq!(probed, built);
        assert_eq!(probed.len(), 2);
    }

    #[test]
    fn union_and_distinct_merge() {
        let a = prices();
        let b = prices();
        let u = union_all(&a, &b).unwrap();
        assert_eq!(u.len(), 6);
        let dd = distinct_merging(&u);
        assert_eq!(dd.len(), 3);
        // identical tags merge losslessly
        assert_eq!(
            dd.cell(0, "price").unwrap().tag_value("source"),
            Value::text("NYSE feed")
        );
    }

    #[test]
    fn distinct_merging_drops_conflicts() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let rel = TaggedRelation::new(
            schema,
            dict,
            vec![
                vec![QualityCell::bare(1i64).with_tag(IndicatorValue::new("source", "a"))],
                vec![QualityCell::bare(1i64).with_tag(IndicatorValue::new("source", "b"))],
            ],
        )
        .unwrap();
        let dd = distinct_merging(&rel);
        assert_eq!(dd.len(), 1);
        assert_eq!(dd.cell(0, "x").unwrap().tag_value("source"), Value::Null);
    }

    #[test]
    fn aggregate_derives_tags() {
        let out = aggregate(
            &prices(),
            &[],
            &[Agg::on(AggF::Sum, "price", "total")],
            &[
                TagPolicy::new("creation_time", TagRule::Min),
                TagPolicy::new("source", TagRule::MergeText),
            ],
        )
        .unwrap();
        assert_eq!(out.len(), 1);
        let cell = out.cell(0, "total").unwrap();
        assert_eq!(cell.value, Value::Float(60.0));
        // oldest input creation time
        assert_eq!(cell.tag_value("creation_time"), d("9-1-91"));
        // merged sources
        assert_eq!(
            cell.tag_value("source"),
            Value::text("NYSE feed+manual entry")
        );
    }

    #[test]
    fn aggregate_group_keys_intersect_tags() {
        let schema = Schema::of(&[("k", DataType::Text), ("v", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let rel = TaggedRelation::new(
            schema,
            dict,
            vec![
                vec![
                    QualityCell::bare("a").with_tag(IndicatorValue::new("source", "s1")),
                    QualityCell::bare(1i64),
                ],
                vec![
                    QualityCell::bare("a").with_tag(IndicatorValue::new("source", "s1")),
                    QualityCell::bare(2i64),
                ],
                vec![
                    QualityCell::bare("b").with_tag(IndicatorValue::new("source", "s2")),
                    QualityCell::bare(3i64),
                ],
            ],
        )
        .unwrap();
        let out = aggregate(
            &rel,
            &["k"],
            &[Agg::on(AggF::Sum, "v", "s")],
            &[],
        )
        .unwrap();
        assert_eq!(out.len(), 2);
        // group "a": both key cells agree on source=s1 → kept
        let a_row = out
            .iter()
            .position(|r| r[0].value == Value::text("a"))
            .unwrap();
        assert_eq!(
            out.rows()[a_row][0].tag_value("source"),
            Value::text("s1")
        );
    }

    #[test]
    fn unanimous_rule() {
        let p = TagPolicy::new("source", TagRule::Unanimous);
        let a = QualityCell::bare(1i64).with_tag(IndicatorValue::new("source", "s"));
        let b = QualityCell::bare(2i64).with_tag(IndicatorValue::new("source", "s"));
        let c = QualityCell::bare(3i64).with_tag(IndicatorValue::new("source", "t"));
        assert_eq!(
            p.derive(&[&a, &b]).unwrap().value,
            Value::text("s")
        );
        assert!(p.derive(&[&a, &c]).is_none());
        // a cell missing the tag also breaks unanimity
        let bare = QualityCell::bare(4i64);
        assert!(p.derive(&[&a, &bare]).is_none());
        assert!(p.derive(&[]).is_none());
    }

    #[test]
    fn derive_age_from_creation_time() {
        let mut rel = prices();
        let n = derive_age(&mut rel, "price", Date::parse("10-24-91").unwrap()).unwrap();
        assert_eq!(n, 3);
        assert_eq!(
            rel.cell(0, "price").unwrap().tag_value("age"),
            Value::Int(23)
        );
        assert_eq!(
            rel.cell(1, "price").unwrap().tag_value("age"),
            Value::Int(4)
        );
        // now filter by the derived indicator — the trader's ten-minute
        // analogue in days (Premise 2.2)
        let fresh = select(&rel, &Expr::col("price@age").le(Expr::lit(10i64))).unwrap();
        assert_eq!(fresh.len(), 1);
    }

    #[test]
    fn sort_by_value_keeps_tags() {
        let s = sort_by_value(&prices(), "price").unwrap();
        assert_eq!(s.cell(0, "ticker").unwrap().value, Value::text("FRT"));
        assert_eq!(
            s.cell(2, "price").unwrap().tag_value("source"),
            Value::text("manual entry")
        );
    }
}
