//! Vectorized batch execution: operators process fixed-size row windows
//! carrying a **selection vector** instead of materializing intermediate
//! `Vec<TaggedRow>`s between pipeline stages.
//!
//! ## Batch format
//!
//! A batch is a window of up to `batch_size` consecutive rows of the
//! input relation (`start .. start + len`) plus a [`Bitset`] selection
//! vector over `0..len`: bit `i` set means row `start + i` is still
//! live. The selection vector reuses the bitmap index's `u64` words
//! directly, so an IndexScan's candidate bitset flows into per-batch
//! selection vectors via [`Bitset::extract_range`] — word-at-a-time,
//! with no intermediate `Vec<usize>` of row ids.
//!
//! ## Selection-vector invariants
//!
//! * bits at positions `>= len` are always zero (the [`Bitset`] tail
//!   invariant), so word loops never examine phantom rows;
//! * kernels only ever *clear* bits — a row filtered by conjunct *k* is
//!   never re-examined by conjunct *k+1*, which is where the win over
//!   row-at-a-time full-tree evaluation comes from;
//! * surviving rows are gathered **once**, after all conjuncts, by
//!   cloning maximal contiguous runs of the selection vector — tag sets
//!   propagate per surviving slice as `Arc` refcount bumps (PR 1's
//!   zero-copy representation), never deep copies.
//!
//! ## Semantics parity
//!
//! Kernel evaluation reproduces the scalar evaluator exactly on the rows
//! it examines: NULL operands drop the row before any type check,
//! equality uses the storage total order (`Int(2) == Float(2.0)`), and
//! `<`-family kernels reproduce `TypeMismatch` via
//! [`relstore::expr::cmp_check`]. One caveat is inherited from index
//! narrowing (see `tagstore::bitmap`): conjuncts run batch-at-a-time in
//! order, so when a predicate *does* type-error, the vectorized path may
//! report the error from a different row of the batch than the
//! row-at-a-time path — well-typed predicates (the only kind the query
//! layer produces against declared schemas) are bit-for-bit identical,
//! which the property tests pin at batch sizes 1/7/1024 and 1/2/8
//! threads.

use crate::algebra::{CompiledTagExpr, TagAccessPath};
use crate::bitmap::{extract_atoms, Bitset, QualityIndex};
use crate::cell::QualityCell;
use crate::relation::{TaggedRelation, TaggedRow};
use crate::symbol::Symbol;
use relstore::expr::{cmp_check, BinOp, CompiledExpr};
use relstore::index::HashIndex;
use relstore::{par, DbError, DbResult, Value};

/// Default rows per batch — large enough to amortize per-batch
/// bookkeeping, small enough that a batch's cells stay cache-resident.
pub const DEFAULT_BATCH_SIZE: usize = 1024;

/// Per-operator batch accounting, surfaced through EXPLAIN ANALYZE and
/// the `vector.*` metrics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct BatchStats {
    /// Batches actually processed (all-dead windows are skipped).
    pub batches: usize,
    /// Configured rows per batch.
    pub batch_size: usize,
    /// Rows entering the operator (selected candidates, not the window).
    pub rows_in: usize,
    /// Rows surviving the operator.
    pub rows_out: usize,
}

impl BatchStats {
    pub(crate) fn new(batch_size: usize) -> Self {
        BatchStats {
            batches: 0,
            batch_size,
            rows_in: 0,
            rows_out: 0,
        }
    }

    pub(crate) fn absorb(&mut self, other: BatchStats) {
        self.batches += other.batches;
        self.rows_in += other.rows_in;
        self.rows_out += other.rows_out;
    }

    fn publish(&self) {
        dq_obs::counter!("vector.batches").add(self.batches as u64);
        dq_obs::counter!("vector.rows_in").add(self.rows_in as u64);
        dq_obs::counter!("vector.rows_out").add(self.rows_out as u64);
    }
}

/// Missing tags evaluate to NULL, borrowed from this sentinel.
static NULL_SENTINEL: Value = Value::Null;

/// How a kernel reads its column: an application cell value or a tag
/// value down an interned indicator path.
pub(crate) enum Access {
    App(usize),
    Tag(usize, Vec<Symbol>),
}

impl Access {
    pub(crate) fn from_col(idx: usize, compiled: &CompiledTagExpr) -> Access {
        if idx < compiled.base() {
            Access::App(idx)
        } else {
            let (ci, path) = &compiled.plan()[idx - compiled.base()];
            Access::Tag(*ci, path.clone())
        }
    }

    #[inline]
    fn value<'a>(&self, row: &'a [QualityCell]) -> &'a Value {
        match self {
            Access::App(i) => &row[*i].value,
            Access::Tag(ci, path) => match row[*ci].tag_path_syms(path) {
                Some(tag) => &tag.value,
                None => &NULL_SENTINEL,
            },
        }
    }

}

/// One conjunct of the predicate, compiled to its cheapest batch form.
pub(crate) enum Kernel<'e> {
    /// `col OP literal` — direct cell/tag access, no expression-tree
    /// walk, no `Cow` allocation per row.
    Cmp {
        access: Access,
        op: BinOp,
        lit: &'e Value,
    },
    /// `col BETWEEN lit AND lit` — total-order, never type-errors.
    Between {
        access: Access,
        lo: &'e Value,
        hi: &'e Value,
    },
    /// Anything else: full scalar evaluation, restricted to live rows.
    Generic(&'e CompiledExpr),
}

impl Kernel<'_> {
    /// Scalar comparison against an already-extracted column value.
    #[inline]
    pub(crate) fn test_value(&self, v: &Value) -> DbResult<bool> {
        if v.is_null() {
            return Ok(false); // 3VL: NULL comparison never holds
        }
        match self {
            Kernel::Cmp { op, lit, .. } => match op {
                BinOp::Eq => Ok(v == *lit),
                BinOp::Ne => Ok(v != *lit),
                BinOp::Lt => cmp_check(v, lit).map(|_| v < *lit),
                BinOp::Le => cmp_check(v, lit).map(|_| v <= *lit),
                BinOp::Gt => cmp_check(v, lit).map(|_| v > *lit),
                BinOp::Ge => cmp_check(v, lit).map(|_| v >= *lit),
                _ => unreachable!("non-comparison op in Cmp kernel"),
            },
            Kernel::Between { lo, hi, .. } => Ok(v >= *lo && v <= *hi),
            Kernel::Generic(_) => unreachable!("Generic kernel has no column access"),
        }
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

fn split_and<'e>(e: &'e CompiledExpr, out: &mut Vec<&'e CompiledExpr>) {
    if let CompiledExpr::Bin(l, BinOp::And, r) = e {
        split_and(l, out);
        split_and(r, out);
    } else {
        out.push(e);
    }
}

/// Decomposes the compiled predicate into top-level AND conjuncts and
/// compiles each to its cheapest kernel.
pub(crate) fn compile_kernels(compiled: &CompiledTagExpr) -> Vec<Kernel<'_>> {
    let mut conjuncts = Vec::new();
    split_and(compiled.expr(), &mut conjuncts);
    conjuncts
        .into_iter()
        .map(|c| kernel_for(c, compiled))
        .collect()
}

fn kernel_for<'e>(c: &'e CompiledExpr, compiled: &CompiledTagExpr) -> Kernel<'e> {
    match c {
        CompiledExpr::Bin(l, op, r)
            if matches!(
                op,
                BinOp::Eq | BinOp::Ne | BinOp::Lt | BinOp::Le | BinOp::Gt | BinOp::Ge
            ) =>
        {
            // NULL literals stay generic: the evaluator folds them to
            // NULL without any type check, which Generic reproduces.
            match (&**l, &**r) {
                (CompiledExpr::Col(i), CompiledExpr::Lit(v)) if !v.is_null() => Kernel::Cmp {
                    access: Access::from_col(*i, compiled),
                    op: *op,
                    lit: v,
                },
                (CompiledExpr::Lit(v), CompiledExpr::Col(i)) if !v.is_null() => Kernel::Cmp {
                    access: Access::from_col(*i, compiled),
                    op: flip(*op),
                    lit: v,
                },
                _ => Kernel::Generic(c),
            }
        }
        CompiledExpr::Between(e, lo, hi) => match (&**e, &**lo, &**hi) {
            (CompiledExpr::Col(i), CompiledExpr::Lit(a), CompiledExpr::Lit(b))
                if !a.is_null() && !b.is_null() =>
            {
                Kernel::Between {
                    access: Access::from_col(*i, compiled),
                    lo: a,
                    hi: b,
                }
            }
            _ => Kernel::Generic(c),
        },
        other => Kernel::Generic(other),
    }
}

/// Runs every kernel over one batch, clearing selection bits in place.
/// Word-at-a-time: dead words are skipped, and a batch whose selection
/// empties short-circuits the remaining conjuncts.
///
/// `Cmp`/`Between` kernels run in two passes over the live rows: an
/// extraction pass that chases each row's cell/tag pointers into a
/// scratch column of `&Value`s (a tiny loop body, so the out-of-order
/// core keeps many independent cache misses in flight), then a compare
/// pass over the dense column that clears bits branchlessly. Both
/// passes visit rows in bit order, so error reporting is identical to
/// testing each row in place.
fn filter_batch<'r>(
    rows: &'r [TaggedRow],
    start: usize,
    sel: &mut Bitset,
    kernels: &[Kernel],
    compiled: &CompiledTagExpr,
    scratch: &mut Vec<&'r Value>,
) -> DbResult<()> {
    for kernel in kernels {
        let access = match kernel {
            Kernel::Cmp { access, .. } | Kernel::Between { access, .. } => Some(access),
            Kernel::Generic(_) => None,
        };
        let mut live = 0u64;
        if let Some(access) = access {
            scratch.clear();
            for i in sel.iter_ones() {
                scratch.push(access.value(&rows[start + i]));
            }
            let mut cursor = 0;
            for word in sel.words_mut().iter_mut() {
                let mut bits = *word;
                let mut keep = bits;
                while bits != 0 {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    let ok = kernel.test_value(scratch[cursor])?;
                    cursor += 1;
                    keep &= !((u64::from(!ok)) << tz);
                }
                *word = keep;
                live |= keep;
            }
        } else {
            let Kernel::Generic(e) = kernel else {
                unreachable!()
            };
            for (wi, word) in sel.words_mut().iter_mut().enumerate() {
                let mut bits = *word;
                if bits == 0 {
                    continue;
                }
                let mut keep = bits;
                while bits != 0 {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    if !compiled.matches_sub(e, &rows[start + wi * 64 + tz])? {
                        keep &= !(1u64 << tz);
                    }
                }
                *word = keep;
                live |= keep;
            }
        }
        if live == 0 {
            break;
        }
    }
    Ok(())
}

/// Calls `f(run_start, run_len)` for each maximal run of consecutive set
/// bits — the "surviving batch slice" unit of tag propagation.
pub(crate) fn for_each_run(sel: &Bitset, mut f: impl FnMut(usize, usize)) {
    let mut run: Option<(usize, usize)> = None;
    for i in sel.iter_ones() {
        run = match run {
            Some((s, e)) if i == e => Some((s, e + 1)),
            Some((s, e)) => {
                f(s, e - s);
                Some((i, i + 1))
            }
            None => Some((i, i + 1)),
        };
    }
    if let Some((s, e)) = run {
        f(s, e - s);
    }
}

/// Clones surviving rows into `out` run-at-a-time, returning the count.
fn gather(rows: &[TaggedRow], start: usize, sel: &Bitset, out: &mut Vec<TaggedRow>) -> usize {
    let mut n = 0;
    for_each_run(sel, |run_start, run_len| {
        let a = start + run_start;
        out.extend_from_slice(&rows[a..a + run_len]);
        n += run_len;
    });
    n
}

/// The shared σ pipeline: windows of `batch_size` rows, selection seeded
/// from `candidates` (or full), refined by `kernels`, gathered once.
/// Batches run in parallel ranges per [`par::plan`]'s cost model, merged
/// in batch order — byte-identical to the serial pass.
fn run_pipeline(
    rel: &TaggedRelation,
    candidates: Option<&Bitset>,
    kernels: &[Kernel],
    compiled: &CompiledTagExpr,
    batch_size: usize,
) -> DbResult<(Vec<TaggedRow>, BatchStats)> {
    let rows = rel.rows();
    let batch_size = batch_size.max(1);
    let nbatches = rows.len().div_ceil(batch_size);
    let run_range = |brange: std::ops::Range<usize>| -> DbResult<(Vec<TaggedRow>, BatchStats)> {
        let mut out = Vec::new();
        let mut stats = BatchStats::new(batch_size);
        let mut scratch = Vec::with_capacity(batch_size.min(rows.len()));
        for b in brange {
            let start = b * batch_size;
            let len = batch_size.min(rows.len() - start);
            let mut sel = match candidates {
                Some(bs) => bs.extract_range(start, len),
                None => Bitset::full(len),
            };
            let picked = sel.count();
            if picked == 0 {
                continue; // whole window dead — skip, don't count
            }
            let _t = dq_obs::histogram!("vector.batch_us").start();
            stats.batches += 1;
            stats.rows_in += picked;
            filter_batch(rows, start, &mut sel, kernels, compiled, &mut scratch)?;
            stats.rows_out += gather(rows, start, &sel, &mut out);
        }
        Ok((out, stats))
    };
    let (out, stats) = match par::plan(rows.len()) {
        Some(threads) if nbatches > 1 => {
            let parts = par::run_ranges(nbatches, threads.min(nbatches), |_, r| run_range(r));
            let mut out = Vec::new();
            let mut stats = BatchStats::new(batch_size);
            for part in parts {
                let (mut rows_p, s) = part?;
                out.append(&mut rows_p);
                stats.absorb(s);
            }
            (out, stats)
        }
        _ => run_range(0..nbatches)?,
    };
    stats.publish();
    Ok((out, stats))
}

/// Vectorized σ — identical rows and tags to [`algebra::select`], with
/// the predicate decomposed into per-conjunct kernels evaluated batch
/// by batch over a selection vector.
pub fn select_vectorized(
    rel: &TaggedRelation,
    predicate: &relstore::Expr,
    batch_size: usize,
) -> DbResult<(TaggedRelation, BatchStats)> {
    let compiled = CompiledTagExpr::compile(rel, predicate)?;
    let kernels = compile_kernels(&compiled);
    let (rows, stats) = run_pipeline(rel, None, &kernels, &compiled, batch_size)?;
    Ok((
        TaggedRelation::from_parts_unchecked(rel.schema().clone(), rel.dictionary().clone(), rows),
        stats,
    ))
}

/// Vectorized index-assisted σ — identical rows, tags, and access-path
/// reporting to [`algebra::select_indexed`], but the candidate bitset
/// flows word-at-a-time into per-batch selection vectors (no
/// `Vec<usize>` row-id round-trip) and the residual re-check runs as
/// batch kernels over the surviving bits only.
pub fn select_indexed_vectorized(
    rel: &TaggedRelation,
    index: &QualityIndex,
    predicate: &relstore::Expr,
    batch_size: usize,
) -> DbResult<(TaggedRelation, TagAccessPath, BatchStats)> {
    let compiled = CompiledTagExpr::compile(rel, predicate)?;
    let _t = dq_obs::histogram!("tagstore.bitmap.select_us").start();
    let scan = |compiled: &CompiledTagExpr| -> DbResult<(TaggedRelation, TagAccessPath, BatchStats)> {
        dq_obs::counter!("tagstore.bitmap.scan_fallbacks").incr();
        let kernels = compile_kernels(compiled);
        let (rows, stats) = run_pipeline(rel, None, &kernels, compiled, batch_size)?;
        Ok((
            TaggedRelation::from_parts_unchecked(
                rel.schema().clone(),
                rel.dictionary().clone(),
                rows,
            ),
            TagAccessPath::Scan,
            stats,
        ))
    };
    if index.rows() != rel.len() {
        return scan(&compiled); // stale index — never trust it
    }
    let (atoms, residual) = extract_atoms(rel, predicate);
    if atoms.is_empty() {
        return scan(&compiled);
    }
    let Some(bs) = index.candidates(&atoms) else {
        return scan(&compiled);
    };
    dq_obs::counter!("tagstore.bitmap.intersections").add(atoms.len() as u64);
    // Re-check the *full* predicate when any residual conjunct exists:
    // correct regardless of how residuals interleave with atoms, and
    // atom re-checks compile to cheap Cmp kernels anyway.
    let kernels = if residual.is_empty() {
        Vec::new()
    } else {
        compile_kernels(&compiled)
    };
    let (rows, stats) = run_pipeline(rel, Some(&bs), &kernels, &compiled, batch_size)?;
    dq_obs::counter!("tagstore.bitmap.candidate_rows").add(stats.rows_in as u64);
    dq_obs::counter!("tagstore.bitmap.gathered_rows").add(stats.rows_out as u64);
    let path = TagAccessPath::Bitmap {
        atoms: atoms.iter().map(|a| a.to_string()).collect(),
        candidates: stats.rows_in,
        residual: !residual.is_empty(),
    };
    Ok((
        TaggedRelation::from_parts_unchecked(rel.schema().clone(), rel.dictionary().clone(), rows),
        path,
        stats,
    ))
}

/// Vectorized π — identical to [`algebra::project`], built batch by
/// batch (tags travel as shared `Arc` bumps, never deep copies).
pub fn project_vectorized(
    rel: &TaggedRelation,
    columns: &[&str],
    batch_size: usize,
) -> DbResult<(TaggedRelation, BatchStats)> {
    let indices: Vec<usize> = columns
        .iter()
        .map(|c| rel.schema().resolve(c))
        .collect::<DbResult<_>>()?;
    let schema = rel.schema().project(&indices)?;
    let rows = rel.rows();
    let batch_size = batch_size.max(1);
    let nbatches = rows.len().div_ceil(batch_size);
    let run_range = |brange: std::ops::Range<usize>| -> (Vec<TaggedRow>, BatchStats) {
        let mut out = Vec::new();
        let mut stats = BatchStats::new(batch_size);
        for b in brange {
            let start = b * batch_size;
            let len = batch_size.min(rows.len() - start);
            let _t = dq_obs::histogram!("vector.batch_us").start();
            stats.batches += 1;
            stats.rows_in += len;
            for row in &rows[start..start + len] {
                out.push(indices.iter().map(|&i| row[i].clone()).collect());
            }
            stats.rows_out += len;
        }
        (out, stats)
    };
    let (out, stats) = match par::plan(rows.len()) {
        Some(threads) if nbatches > 1 => {
            let parts = par::run_ranges(nbatches, threads.min(nbatches), |_, r| run_range(r));
            let mut out = Vec::new();
            let mut stats = BatchStats::new(batch_size);
            for (mut rows_p, s) in parts {
                out.append(&mut rows_p);
                stats.absorb(s);
            }
            (out, stats)
        }
        _ => run_range(0..nbatches),
    };
    stats.publish();
    Ok((
        TaggedRelation::from_parts_unchecked(schema, rel.dictionary().clone(), out),
        stats,
    ))
}

/// Vectorized ⋈ probe — identical output to
/// [`algebra::hash_join_probe`]. Left rows stream through batches whose
/// selection vector first drops NULL keys word-at-a-time; surviving
/// rows probe the prebuilt index. Join fan-out can exceed the batch
/// width, so this operator reports under `vector.join.*` (the
/// `batches × batch_size ≥ rows_out` invariant is a σ/π property).
pub fn hash_join_probe_vectorized(
    left: &TaggedRelation,
    right: &TaggedRelation,
    left_key: &str,
    right_key: &str,
    index: &HashIndex,
    batch_size: usize,
) -> DbResult<(TaggedRelation, BatchStats)> {
    let li = left.schema().resolve(left_key)?;
    right.schema().resolve(right_key)?;
    let schema = left.schema().join(right.schema(), "l", "r")?;
    let rows = left.rows();
    let batch_size = batch_size.max(1);
    let nbatches = rows.len().div_ceil(batch_size);
    let run_range = |brange: std::ops::Range<usize>| -> DbResult<(Vec<TaggedRow>, BatchStats)> {
        let mut out = Vec::new();
        let mut stats = BatchStats::new(batch_size);
        let mut key = vec![Value::Null];
        for b in brange {
            let start = b * batch_size;
            let len = batch_size.min(rows.len() - start);
            let _t = dq_obs::histogram!("vector.batch_us").start();
            stats.batches += 1;
            stats.rows_in += len;
            let mut sel = Bitset::full(len);
            // NULL keys never join (NULL = NULL is true under the
            // storage total order, so they must not reach the index).
            for (i, row) in rows[start..start + len].iter().enumerate() {
                if row[li].value.is_null() {
                    sel.clear(i);
                }
            }
            for i in sel.iter_ones() {
                let lr = &rows[start + i];
                key[0] = lr[li].value.clone();
                for &pos in index.get(&key) {
                    let rr = right.rows().get(pos).ok_or_else(|| {
                        DbError::InvalidExpression(format!(
                            "join index position {pos} out of range"
                        ))
                    })?;
                    let mut combined = lr.clone();
                    combined.extend(rr.iter().cloned());
                    out.push(combined);
                }
            }
            stats.rows_out = out.len();
        }
        Ok((out, stats))
    };
    let (out, stats) = match par::plan(rows.len()) {
        Some(threads) if nbatches > 1 => {
            let parts = par::run_ranges(nbatches, threads.min(nbatches), |_, r| run_range(r));
            let mut out = Vec::new();
            let mut stats = BatchStats::new(batch_size);
            for part in parts {
                let (mut rows_p, s) = part?;
                out.append(&mut rows_p);
                stats.absorb(s);
            }
            (out, stats)
        }
        _ => run_range(0..nbatches)?,
    };
    dq_obs::counter!("vector.join.batches").add(stats.batches as u64);
    dq_obs::counter!("vector.join.rows_in").add(stats.rows_in as u64);
    dq_obs::counter!("vector.join.rows_out").add(stats.rows_out as u64);
    Ok((
        TaggedRelation::from_parts_unchecked(schema, left.dictionary().clone(), out),
        stats,
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::algebra;
    use crate::indicator::{IndicatorDictionary, IndicatorValue};
    use relstore::{DataType, Date, Expr, Schema};

    fn d(s: &str) -> Value {
        Value::Date(Date::parse(s).unwrap())
    }

    fn prices() -> TaggedRelation {
        let schema = Schema::of(&[("ticker", DataType::Text), ("price", DataType::Float)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mk = |t: &str, p: f64, ct: &str, src: &str| {
            vec![
                QualityCell::bare(t),
                QualityCell::bare(p)
                    .with_tag(IndicatorValue::new("creation_time", d(ct)))
                    .with_tag(IndicatorValue::new("source", src)),
            ]
        };
        TaggedRelation::new(
            schema,
            dict,
            vec![
                mk("FRT", 10.0, "10-1-91", "NYSE feed"),
                mk("NUT", 20.0, "10-20-91", "NYSE feed"),
                mk("BLT", 30.0, "9-1-91", "manual entry"),
            ],
        )
        .unwrap()
    }

    /// A larger mixed fixture: some rows untagged, several sources/ages.
    fn mixed(n: i64) -> TaggedRelation {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut r = TaggedRelation::empty(schema, dict);
        for k in 0..n {
            let mut cell = QualityCell::bare(k * 2);
            if k % 3 != 2 {
                cell.set_tag(IndicatorValue::new(
                    "source",
                    ["a", "b", "c"][(k % 3) as usize],
                ));
            }
            if k % 4 != 3 {
                cell.set_tag(IndicatorValue::new("age", k % 23));
            }
            r.push(vec![QualityCell::bare(k), cell]).unwrap();
        }
        r
    }

    fn predicates() -> Vec<Expr> {
        vec![
            Expr::col("v@source").eq(Expr::lit("a")),
            Expr::col("v@source").ne(Expr::lit("a")),
            Expr::col("v@age").le(Expr::lit(10i64)),
            Expr::col("v@age")
                .le(Expr::lit(15i64))
                .and(Expr::col("v@source").ne(Expr::lit("b")))
                .and(Expr::col("k").ge(Expr::lit(3i64))),
            Expr::lit(7i64).gt(Expr::col("v@age")),
            Expr::Between(
                Box::new(Expr::col("v@age")),
                Box::new(Expr::lit(3i64)),
                Box::new(Expr::lit(12i64)),
            ),
            // OR forces a Generic kernel
            Expr::col("v@source")
                .eq(Expr::lit("a"))
                .or(Expr::col("v@age").le(Expr::lit(2i64))),
            // matches nothing
            Expr::col("v@source").eq(Expr::lit("zzz")),
            // matches everything
            Expr::col("k").ge(Expr::lit(0i64)),
        ]
    }

    #[test]
    fn select_vectorized_matches_row_at_a_time() {
        for n in [0i64, 1, 5, 63, 64, 65, 150] {
            let rel = mixed(n);
            for p in predicates() {
                let expect = algebra::select(&rel, &p).unwrap();
                for batch_size in [1usize, 7, 64, 1024] {
                    let (got, stats) = select_vectorized(&rel, &p, batch_size).unwrap();
                    assert_eq!(got, expect, "n={n} batch={batch_size} p={p:?}");
                    assert_eq!(stats.rows_out, expect.len());
                    assert!(stats.rows_in <= rel.len());
                    assert!(stats.batches * stats.batch_size >= stats.rows_out);
                }
            }
        }
    }

    #[test]
    fn select_vectorized_matches_under_forced_threads() {
        let rel = mixed(200);
        for p in predicates() {
            let expect = algebra::select(&rel, &p).unwrap();
            for threads in [1usize, 2, 8] {
                let (got, _) = par::with_thread_count(threads, || {
                    select_vectorized(&rel, &p, 7).unwrap()
                });
                assert_eq!(got, expect, "threads={threads} p={p:?}");
            }
        }
    }

    #[test]
    fn select_indexed_vectorized_matches_and_reports_path() {
        let rel = prices();
        let idx = QualityIndex::build(&rel);
        // pure atom → bitmap, no residual, no kernels
        let p = Expr::col("price@source").eq(Expr::lit("NYSE feed"));
        let (r, path, stats) = select_indexed_vectorized(&rel, &idx, &p, 2).unwrap();
        let (expect, expect_path) = algebra::select_indexed(&rel, &idx, &p).unwrap();
        assert_eq!(r, expect);
        assert_eq!(path, expect_path);
        assert_eq!(stats.rows_in, 2);
        assert_eq!(stats.rows_out, 2);
        // mixed atom + residual → bitmap with residual kernels
        let p = Expr::col("price@source")
            .ne(Expr::lit("manual entry"))
            .and(Expr::col("price").gt(Expr::lit(15.0)));
        let (r, path, _) = select_indexed_vectorized(&rel, &idx, &p, 1024).unwrap();
        let (expect, expect_path) = algebra::select_indexed(&rel, &idx, &p).unwrap();
        assert_eq!(r, expect);
        assert_eq!(path, expect_path);
        // value-only predicate → scan fallback
        let p = Expr::col("price").gt(Expr::lit(15.0));
        let (r, path, _) = select_indexed_vectorized(&rel, &idx, &p, 1024).unwrap();
        assert_eq!(r, algebra::select(&rel, &p).unwrap());
        assert_eq!(path, TagAccessPath::Scan);
        // stale index → scan, still correct
        let mut grown = rel.clone();
        grown
            .push(vec![QualityCell::bare("ZZZ"), QualityCell::bare(5.0)])
            .unwrap();
        let p = Expr::col("price@source").eq(Expr::lit("NYSE feed"));
        let (r, path, _) = select_indexed_vectorized(&grown, &idx, &p, 1024).unwrap();
        assert_eq!(r, algebra::select(&grown, &p).unwrap());
        assert_eq!(path, TagAccessPath::Scan);
        // malformed predicate errors exactly like the scan
        let bad = Expr::col("ghost@source").eq(Expr::lit("x"));
        assert!(select_indexed_vectorized(&rel, &idx, &bad, 1024).is_err());
    }

    #[test]
    fn project_vectorized_matches() {
        for n in [0i64, 1, 150] {
            let rel = mixed(n);
            let expect = algebra::project(&rel, &["v"]).unwrap();
            for batch_size in [1usize, 7, 1024] {
                let (got, stats) = project_vectorized(&rel, &["v"], batch_size).unwrap();
                assert_eq!(got, expect, "n={n} batch={batch_size}");
                assert_eq!(stats.rows_out, rel.len());
            }
        }
        assert!(project_vectorized(&mixed(3), &["ghost"], 8).is_err());
    }

    #[test]
    fn join_probe_vectorized_matches() {
        let left = mixed(50);
        // right: join partner keyed on k % 10, with one NULL-keyed row
        let schema = Schema::of(&[("k", DataType::Int), ("name", DataType::Text)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut rows = Vec::new();
        for k in 0..10i64 {
            rows.push(vec![
                QualityCell::bare(k).with_tag(IndicatorValue::new("source", "dim")),
                QualityCell::bare(format!("name{k}")),
            ]);
        }
        rows.push(vec![
            QualityCell::bare(Value::Null),
            QualityCell::bare("nullkey"),
        ]);
        let right = TaggedRelation::new(schema, dict, rows).unwrap();
        let ri = right.schema().resolve("k").unwrap();
        let mut idx = HashIndex::new(vec![ri]);
        for (pos, row) in right.iter().enumerate() {
            idx.insert(&vec![row[ri].value.clone()], pos);
        }
        let expect = algebra::hash_join_probe(&left, &right, "k", "k", &idx).unwrap();
        for batch_size in [1usize, 7, 1024] {
            let (got, stats) =
                hash_join_probe_vectorized(&left, &right, "k", "k", &idx, batch_size).unwrap();
            assert_eq!(got, expect, "batch={batch_size}");
            assert_eq!(stats.rows_out, expect.len());
        }
    }

    #[test]
    fn type_errors_surface_on_both_paths() {
        let rel = mixed(20);
        // ordered comparison across classes errors on every path
        let p = Expr::col("v@age").lt(Expr::lit("text"));
        assert!(algebra::select(&rel, &p).is_err());
        for batch_size in [1usize, 7, 1024] {
            assert!(select_vectorized(&rel, &p, batch_size).is_err());
        }
        // non-boolean predicate errors too
        let p = Expr::col("k").add(Expr::lit(1i64));
        assert!(algebra::select(&rel, &p).is_err());
        assert!(select_vectorized(&rel, &p, 1024).is_err());
    }

    #[test]
    fn vector_metrics_hold_invariants() {
        let before = dq_obs::registry().snapshot();
        let rel = mixed(300);
        let p = Expr::col("v@age").le(Expr::lit(10i64));
        let (_, stats) = select_vectorized(&rel, &p, 64).unwrap();
        let after = dq_obs::registry().snapshot();
        assert!(after.counter("vector.batches") >= before.counter("vector.batches") + 5);
        assert!(after.counter("vector.rows_out") >= before.counter("vector.rows_out"));
        assert!(stats.batches * stats.batch_size >= stats.rows_out);
        assert!(after.validate().is_ok());
    }
}
