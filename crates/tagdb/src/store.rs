//! The attribute-based model's *storage* form: quality keys and quality
//! relations.
//!
//! The model the paper cites (\[28\]) stores quality indicator values not
//! inline but in separate **quality relations**, linked to data cells by
//! **quality keys**; the same mechanism applied recursively stores
//! meta-quality (Premise 1.4) via a parent key. This module materializes
//! a [`TaggedRelation`] into that form — a plain data relation whose
//! cells are paired with quality-key columns, plus one flat quality
//! relation — and reconstructs it losslessly. Since both halves are
//! ordinary [`Relation`]s, tagged data can be exported through any plain
//! relational channel (CSV, another DBMS) without losing its tags.

use crate::cell::QualityCell;
use crate::indicator::{IndicatorDictionary, IndicatorValue};
use crate::relation::{TaggedRelation, TaggedRow};
use relstore::{ColumnDef, DataType, Date, DbError, DbResult, Relation, Row, Schema, Value};

/// Suffix appended to each application column's quality-key column.
pub const QKEY_SUFFIX: &str = "#qk";

/// A tagged relation in storage form.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityStore {
    /// Application data plus one `column#qk` quality-key column per
    /// application column (NULL when the cell is untagged).
    pub data: Relation,
    /// The quality relation:
    /// `(qkey: Int, indicator: Text, value: Text, parent: Int)`.
    /// Rows with non-NULL `parent` are meta-quality of the tag keyed by
    /// `parent`.
    pub quality: Relation,
}

/// Schema of the quality relation.
pub fn quality_relation_schema() -> Schema {
    Schema::new(vec![
        ColumnDef::not_null("qkey", DataType::Int),
        ColumnDef::not_null("indicator", DataType::Text),
        ColumnDef::not_null("value", DataType::Text),
        ColumnDef::new("parent", DataType::Int),
    ])
    .expect("static schema is valid")
}

/// Type-tagged text encoding of a [`Value`] (lossless, human-legible).
pub fn encode_value(v: &Value) -> String {
    match v {
        Value::Null => "n:".to_owned(),
        Value::Bool(b) => format!("b:{b}"),
        Value::Int(i) => format!("i:{i}"),
        Value::Float(f) => format!("f:{}", f.to_bits()),
        Value::Text(s) => format!("t:{s}"),
        Value::Date(d) => format!("d:{d}"),
    }
}

/// Inverse of [`encode_value`].
pub fn decode_value(s: &str) -> DbResult<Value> {
    let (tag, rest) = s
        .split_once(':')
        .ok_or_else(|| DbError::ParseError(format!("bad encoded value `{s}`")))?;
    match tag {
        "n" => Ok(Value::Null),
        "b" => rest
            .parse::<bool>()
            .map(Value::Bool)
            .map_err(|_| DbError::ParseError(format!("bad bool `{rest}`"))),
        "i" => rest
            .parse::<i64>()
            .map(Value::Int)
            .map_err(|_| DbError::ParseError(format!("bad int `{rest}`"))),
        "f" => rest
            .parse::<u64>()
            .map(|bits| Value::Float(f64::from_bits(bits)))
            .map_err(|_| DbError::ParseError(format!("bad float bits `{rest}`"))),
        "t" => Ok(Value::Text(rest.to_owned())),
        "d" => Date::parse(rest).map(Value::Date),
        other => Err(DbError::ParseError(format!("unknown value tag `{other}`"))),
    }
}

fn emit_tag(
    tag: &IndicatorValue,
    owner_qkey: i64,
    parent: Option<i64>,
    next_key: &mut i64,
    out: &mut Vec<Row>,
) {
    // Each tag tuple gets its own key so meta tags can reference it.
    let my_key = *next_key;
    *next_key += 1;
    out.push(vec![
        Value::Int(owner_qkey),
        Value::text(tag.indicator.clone()),
        Value::text(encode_value(&tag.value)),
        match parent {
            Some(p) => Value::Int(p),
            None => Value::Null,
        },
    ]);
    for meta in &tag.meta {
        // meta tags are owned by the same cell key but parented to this
        // tag's tuple key
        emit_tag(meta, owner_qkey, Some(my_key), next_key, out);
    }
}

/// Materializes the storage form.
pub fn to_quality_store(rel: &TaggedRelation) -> DbResult<QualityStore> {
    // data schema: each app column followed by its qkey column
    let mut cols = Vec::with_capacity(rel.schema().arity() * 2);
    for c in rel.schema().columns() {
        cols.push(c.clone());
        cols.push(ColumnDef::new(format!("{}{QKEY_SUFFIX}", c.name), DataType::Int));
    }
    let data_schema = Schema::new(cols)?;

    let mut data_rows: Vec<Row> = Vec::with_capacity(rel.len());
    let mut q_rows: Vec<Row> = Vec::new();
    // qkey identifies a cell; tag tuples get their own key space for
    // parent references. Single counter keeps both unique.
    let mut next_key: i64 = 1;
    for row in rel.iter() {
        let mut out = Vec::with_capacity(row.len() * 2);
        for cell in row {
            out.push(cell.value.clone());
            if cell.tags().is_empty() {
                out.push(Value::Null);
            } else {
                let cell_key = next_key;
                next_key += 1;
                out.push(Value::Int(cell_key));
                for tag in cell.tags() {
                    emit_tag(tag, cell_key, None, &mut next_key, &mut q_rows);
                }
            }
        }
        data_rows.push(out);
    }
    Ok(QualityStore {
        data: Relation::new(data_schema, data_rows)?,
        quality: Relation::new(quality_relation_schema(), q_rows)?,
    })
}

/// Reconstructs the tagged relation from storage form.
pub fn from_quality_store(
    store: &QualityStore,
    dict: IndicatorDictionary,
) -> DbResult<TaggedRelation> {
    // recover the application schema: every even column is data, every
    // odd one a qkey column named `<data>#qk`
    let cols = store.data.schema().columns();
    if !cols.len().is_multiple_of(2) {
        return Err(DbError::InvalidExpression(
            "quality store data schema must pair columns with quality keys".into(),
        ));
    }
    let mut app_cols = Vec::with_capacity(cols.len() / 2);
    for pair in cols.chunks(2) {
        let expected = format!("{}{QKEY_SUFFIX}", pair[0].name);
        if pair[1].name != expected {
            return Err(DbError::InvalidExpression(format!(
                "expected quality-key column `{expected}`, found `{}`",
                pair[1].name
            )));
        }
        app_cols.push(pair[0].clone());
    }
    let app_schema = Schema::new(app_cols)?;

    // index the quality relation: tuples per owner qkey, in insertion
    // order so the parent (emitted before its meta tags) is always seen
    // first. We rebuild the tree via tuple order: a tuple's own key is
    // its 1-based position in the owner's emission order... which we did
    // not store. Instead, reconstruct by parent pointers: tuples with
    // NULL parent are direct tags; others attach to the tag whose
    // emission index equals the parent key. To make that resolvable we
    // re-derive each tuple's own key from the global emission order.
    let qs = store.quality.rows();
    // Recompute keys exactly as to_quality_store assigned them: walk the
    // data rows in order; for each tagged cell, its cell_key, then one key
    // per tag tuple in emission order. Tag tuples for a cell are
    // contiguous in the quality relation.
    let mut rel = TaggedRelation::empty(app_schema.clone(), dict);
    let arity = app_schema.arity();
    let mut q_pos = 0usize; // cursor into quality rows

    for drow in store.data.iter() {
        let mut row: TaggedRow = Vec::with_capacity(arity);
        for a in 0..arity {
            let value = drow[a * 2].clone();
            let qkey = &drow[a * 2 + 1];
            let mut cell = QualityCell::bare(value);
            if let Value::Int(cell_key) = qkey {
                // consume the contiguous run of tuples owned by cell_key
                let mut tuples: Vec<(i64, String, Value, Option<i64>)> = Vec::new();
                let mut next_key = cell_key + 1;
                while q_pos < qs.len() {
                    let t = &qs[q_pos];
                    if t[0] != Value::Int(*cell_key) {
                        break;
                    }
                    let ind = t[1].as_text()?.to_owned();
                    let val = decode_value(t[2].as_text()?)?;
                    let parent = match &t[3] {
                        Value::Null => None,
                        Value::Int(p) => Some(*p),
                        other => {
                            return Err(DbError::TypeMismatch {
                                expected: "Int parent key".into(),
                                found: other.type_name().into(),
                            })
                        }
                    };
                    tuples.push((next_key, ind, val, parent));
                    next_key += 1;
                    q_pos += 1;
                }
                // build the tag forest
                fn build(
                    key: i64,
                    tuples: &[(i64, String, Value, Option<i64>)],
                ) -> IndicatorValue {
                    let (_, ind, val, _) =
                        tuples.iter().find(|t| t.0 == key).expect("key exists");
                    let mut iv = IndicatorValue::new(ind.clone(), val.clone());
                    for (k, _, _, parent) in tuples {
                        if *parent == Some(key) {
                            iv.meta.push(build(*k, tuples));
                        }
                    }
                    iv
                }
                for (k, _, _, parent) in &tuples {
                    if parent.is_none() {
                        cell.set_tag(build(*k, &tuples));
                    }
                }
            }
            row.push(cell);
        }
        rel.push(row)?;
    }
    Ok(rel)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicator::IndicatorDef;

    fn dict() -> IndicatorDictionary {
        IndicatorDictionary::with_paper_defaults()
    }

    fn sample() -> TaggedRelation {
        let schema = Schema::of(&[("name", DataType::Text), ("employees", DataType::Int)]);
        let d = |s: &str| Value::Date(Date::parse(s).unwrap());
        TaggedRelation::new(
            schema,
            dict(),
            vec![
                vec![
                    QualityCell::bare("Fruit Co"),
                    QualityCell::bare(4004i64)
                        .with_tag(IndicatorValue::new("creation_time", d("10-3-91")))
                        .with_tag(
                            IndicatorValue::new("source", "Nexis").with_meta(
                                IndicatorValue::new("creation_time", d("10-4-91")).with_meta(
                                    IndicatorValue::new("source", "system clock"),
                                ),
                            ),
                        ),
                ],
                vec![QualityCell::bare("Nut Co"), QualityCell::bare(700i64)],
            ],
        )
        .unwrap()
    }

    #[test]
    fn value_encoding_roundtrip() {
        for v in [
            Value::Null,
            Value::Bool(true),
            Value::Int(-42),
            Value::Float(1.5),
            Value::Float(f64::NAN),
            Value::text("with:colon and spaces"),
            Value::Date(Date::parse("10-24-91").unwrap()),
        ] {
            let enc = encode_value(&v);
            let back = decode_value(&enc).unwrap();
            // NaN != NaN under ==; use total order via sort keys
            assert_eq!(back.cmp(&v), std::cmp::Ordering::Equal, "{enc}");
        }
        assert!(decode_value("garbage").is_err());
        assert!(decode_value("x:1").is_err());
        assert!(decode_value("i:notanint").is_err());
    }

    #[test]
    fn store_roundtrip_with_meta_tags() {
        let rel = sample();
        let store = to_quality_store(&rel).unwrap();
        // data relation pairs each column with a qkey column
        assert_eq!(
            store.data.schema().names(),
            vec!["name", "name#qk", "employees", "employees#qk"]
        );
        // untagged cells have NULL qkeys
        assert!(store.data.rows()[1][1].is_null());
        assert!(store.data.rows()[1][3].is_null());
        // quality relation holds 2 direct + 2 meta tuples
        assert_eq!(store.quality.len(), 4);
        let back = from_quality_store(&store, dict()).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn roundtrip_through_csv() {
        // the whole point of the storage form: it survives plain
        // relational channels
        let rel = sample();
        let store = to_quality_store(&rel).unwrap();
        let data_csv = relstore::csv::to_csv(&store.data);
        let q_csv = relstore::csv::to_csv(&store.quality);
        let store2 = QualityStore {
            data: relstore::csv::from_csv(store.data.schema(), &data_csv).unwrap(),
            quality: relstore::csv::from_csv(store.quality.schema(), &q_csv).unwrap(),
        };
        let back = from_quality_store(&store2, dict()).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn empty_relation_roundtrips() {
        let rel = TaggedRelation::empty(
            Schema::of(&[("x", DataType::Int)]),
            dict(),
        );
        let store = to_quality_store(&rel).unwrap();
        assert!(store.quality.is_empty());
        let back = from_quality_store(&store, dict()).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn malformed_store_rejected() {
        let bad = QualityStore {
            data: Relation::new(
                Schema::of(&[("x", DataType::Int)]), // odd arity
                vec![],
            )
            .unwrap(),
            quality: Relation::empty(quality_relation_schema()),
        };
        assert!(from_quality_store(&bad, dict()).is_err());
        let bad = QualityStore {
            data: Relation::new(
                Schema::of(&[("x", DataType::Int), ("wrongname", DataType::Int)]),
                vec![],
            )
            .unwrap(),
            quality: Relation::empty(quality_relation_schema()),
        };
        assert!(from_quality_store(&bad, dict()).is_err());
    }

    #[test]
    fn deep_meta_recursion_roundtrips() {
        let mut dict = dict();
        dict.declare(IndicatorDef::new("depth", DataType::Int, "test"))
            .unwrap();
        // a 6-deep meta chain
        let mut tag = IndicatorValue::new("depth", 6i64);
        for i in (1..6i64).rev() {
            tag = IndicatorValue::new("depth", i).with_meta(tag);
        }
        assert_eq!(tag.depth(), 6);
        let rel = TaggedRelation::new(
            Schema::of(&[("x", DataType::Int)]),
            dict.clone(),
            vec![vec![QualityCell::bare(1i64).with_tag(tag)]],
        )
        .unwrap();
        let store = to_quality_store(&rel).unwrap();
        assert_eq!(store.quality.len(), 6);
        let back = from_quality_store(&store, dict).unwrap();
        assert_eq!(back, rel);
    }
}
