//! Quality cells: an application value plus its cell-level quality tags.
//!
//! This is the paper's Table 2 made concrete: `62 Lois Av (10-24-91,
//! acct'g)` is a [`QualityCell`] whose value is `"62 Lois Av"` and whose
//! tags are `creation_time=1991-10-24` and `source=acct'g`.

use crate::indicator::IndicatorValue;
use crate::symbol::Symbol;
use relstore::Value;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::sync::Arc;

/// An application value with attached quality indicator values.
///
/// Tags are stored behind an `Arc` with copy-on-write semantics: the
/// algebra's σ/π/⋈/τ operators propagate a cell's quality history by
/// bumping a refcount instead of deep-cloning the tag vector, and
/// [`QualityCell::set_tag`] transparently un-shares (`Arc::make_mut`)
/// before mutating. `None` and an empty shared vector are the same
/// logical state (no tags); constructors and mutators normalize empty
/// to `None` so derived equality stays semantic.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityCell {
    /// The application datum.
    pub value: Value,
    /// Cell-level quality tags, kept sorted by indicator name so that
    /// logically equal cells compare equal. `None` ⇔ untagged.
    tags: Option<Arc<Vec<IndicatorValue>>>,
}

impl QualityCell {
    /// An untagged cell.
    pub fn bare(value: impl Into<Value>) -> Self {
        QualityCell {
            value: value.into(),
            tags: None,
        }
    }

    /// A cell with tags.
    pub fn tagged(value: impl Into<Value>, tags: Vec<IndicatorValue>) -> Self {
        let mut cell = QualityCell::bare(value);
        for t in tags {
            cell.set_tag(t);
        }
        cell
    }

    /// The cell's tags, sorted by indicator name.
    pub fn tags(&self) -> &[IndicatorValue] {
        self.tags.as_deref().map(Vec::as_slice).unwrap_or(&[])
    }

    /// Adds or replaces the tag for its indicator. Un-shares the tag
    /// vector first if it is currently shared with other cells.
    pub fn set_tag(&mut self, tag: IndicatorValue) {
        let tags = Arc::make_mut(self.tags.get_or_insert_with(Default::default));
        match tags.binary_search_by(|t| t.indicator.cmp(&tag.indicator)) {
            Ok(i) => tags[i] = tag,
            Err(i) => tags.insert(i, tag),
        }
    }

    /// True iff `self` and `other` share one physical tag vector — the
    /// zero-copy propagation tests assert on this.
    pub fn shares_tags_with(&self, other: &QualityCell) -> bool {
        match (&self.tags, &other.tags) {
            (Some(a), Some(b)) => Arc::ptr_eq(a, b),
            _ => false,
        }
    }

    /// Installs an already-shared tag vector, replacing any existing tags.
    /// Used by bulk taggers to point many cells at one allocation.
    pub(crate) fn set_shared_tags(&mut self, tags: Arc<Vec<IndicatorValue>>) {
        self.tags = if tags.is_empty() { None } else { Some(tags) };
    }

    /// The shared tag vector itself (`None` ⇔ untagged) — the columnar
    /// converter reads this to preserve `Arc` identity run by run, so
    /// cells sharing one tag allocation collapse into one tag run.
    pub(crate) fn shared_tags(&self) -> Option<&Arc<Vec<IndicatorValue>>> {
        self.tags.as_ref()
    }

    /// Builder-style [`QualityCell::set_tag`].
    pub fn with_tag(mut self, tag: IndicatorValue) -> Self {
        self.set_tag(tag);
        self
    }

    /// The tag for `indicator`, if present.
    pub fn tag(&self, indicator: &str) -> Option<&IndicatorValue> {
        let tags = self.tags();
        tags.binary_search_by(|t| t.indicator.as_str().cmp(indicator))
            .ok()
            .map(|i| &tags[i])
    }

    /// The tag for an interned `indicator` symbol. Id-equality fast path;
    /// falls back to the same by-name binary search otherwise (the
    /// interner makes id equality iff name equality, so the fast path is
    /// purely an optimization).
    pub fn tag_sym(&self, indicator: &Symbol) -> Option<&IndicatorValue> {
        let tags = self.tags();
        tags.iter().find(|t| &t.indicator == indicator)
    }

    /// [`QualityCell::tag_path`] over interned symbols — the compiled
    /// quality-predicate extraction path.
    pub fn tag_path_syms(&self, path: &[Symbol]) -> Option<&IndicatorValue> {
        let (first, rest) = path.split_first()?;
        let mut node = self.tag_sym(first)?;
        for seg in rest {
            node = node.meta_tag_sym(seg)?;
        }
        Some(node)
    }

    /// The tag *value* for `indicator`; `Value::Null` when untagged.
    /// Quality predicates use this: an untagged cell never satisfies a
    /// quality constraint (3-valued logic drops NULL).
    pub fn tag_value(&self, indicator: &str) -> Value {
        self.tag(indicator)
            .map(|t| t.value.clone())
            .unwrap_or(Value::Null)
    }

    /// Follows a path of indicator names through the meta-tag tree
    /// (Premise 1.4): `["source"]` is the source tag itself,
    /// `["source", "credibility"]` is the credibility *of the source tag*.
    pub fn tag_path(&self, path: &[&str]) -> Option<&IndicatorValue> {
        let (first, rest) = path.split_first()?;
        let mut node = self.tag(first)?;
        for seg in rest {
            node = node.meta_tag(seg)?;
        }
        Some(node)
    }

    /// The value at a meta-tag path; `Value::Null` when any step is
    /// missing — so quality predicates over meta tags drop untagged rows
    /// exactly like first-level predicates do.
    pub fn tag_value_path(&self, path: &[&str]) -> Value {
        self.tag_path(path)
            .map(|t| t.value.clone())
            .unwrap_or(Value::Null)
    }

    /// Removes the tag for `indicator`, returning it.
    pub fn remove_tag(&mut self, indicator: &str) -> Option<IndicatorValue> {
        let arc = self.tags.as_mut()?;
        let i = arc
            .binary_search_by(|t| t.indicator.as_str().cmp(indicator))
            .ok()?;
        let removed = Arc::make_mut(arc).remove(i);
        if arc.is_empty() {
            self.tags = None;
        }
        Some(removed)
    }

    /// Number of tags.
    pub fn tag_count(&self) -> usize {
        self.tags().len()
    }

    /// Merges tags from `other` into this cell. On conflict (same
    /// indicator, different value) the tag is *dropped* — the merged datum's
    /// provenance is ambiguous, and fabricating a winner would violate the
    /// attribute-based model's faithfulness to the manufacturing history.
    pub fn merge_tags_from(&mut self, other: &QualityCell) {
        for t in other.tags() {
            match self.tag(&t.indicator) {
                None => self.set_tag(t.clone()),
                Some(mine) if mine == t => {}
                Some(_) => {
                    self.remove_tag(&t.indicator);
                }
            }
        }
    }

    /// Renders the cell in the paper's Table 2 style:
    /// `62 Lois Av (10-24-91, acct'g)` — tag values in indicator-name
    /// order, parenthesized after the value. Untagged cells render bare.
    pub fn to_paper_string(&self) -> String {
        let tags = self.tags();
        if tags.is_empty() {
            return self.value.to_string();
        }
        let tags = tags
            .iter()
            .map(|t| t.value.to_string())
            .collect::<Vec<_>>()
            .join(", ");
        format!("{} ({tags})", self.value)
    }
}

impl fmt::Display for QualityCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.tag_count() == 0 {
            return write!(f, "{}", self.value);
        }
        write!(f, "{} (", self.value)?;
        for (i, t) in self.tags().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{t}")?;
        }
        write!(f, ")")
    }
}

impl From<Value> for QualityCell {
    fn from(v: Value) -> Self {
        QualityCell::bare(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Date;

    fn addr_cell() -> QualityCell {
        QualityCell::bare("62 Lois Av")
            .with_tag(IndicatorValue::new(
                "creation_time",
                Value::Date(Date::parse("10-24-91").unwrap()),
            ))
            .with_tag(IndicatorValue::new("source", "acct'g"))
    }

    #[test]
    fn tags_sorted_and_looked_up() {
        let c = addr_cell();
        assert_eq!(c.tag_count(), 2);
        assert_eq!(c.tags()[0].indicator, "creation_time");
        assert_eq!(c.tag_value("source"), Value::text("acct'g"));
        assert_eq!(c.tag_value("missing"), Value::Null);
    }

    #[test]
    fn set_tag_replaces() {
        let mut c = addr_cell();
        c.set_tag(IndicatorValue::new("source", "sales"));
        assert_eq!(c.tag_count(), 2);
        assert_eq!(c.tag_value("source"), Value::text("sales"));
    }

    #[test]
    fn remove_tag() {
        let mut c = addr_cell();
        assert!(c.remove_tag("source").is_some());
        assert!(c.remove_tag("source").is_none());
        assert_eq!(c.tag_count(), 1);
    }

    #[test]
    fn equality_ignores_insertion_order() {
        let a = QualityCell::bare("x")
            .with_tag(IndicatorValue::new("source", "s"))
            .with_tag(IndicatorValue::new("age", 3i64));
        let b = QualityCell::bare("x")
            .with_tag(IndicatorValue::new("age", 3i64))
            .with_tag(IndicatorValue::new("source", "s"));
        assert_eq!(a, b);
    }

    #[test]
    fn merge_agreeing_and_conflicting() {
        let mut a = QualityCell::bare("62 Lois Av")
            .with_tag(IndicatorValue::new("source", "acct'g"))
            .with_tag(IndicatorValue::new("media", "ASCII"));
        let b = QualityCell::bare("62 Lois Av")
            .with_tag(IndicatorValue::new("source", "sales")) // conflict
            .with_tag(IndicatorValue::new("media", "ASCII")) // agree
            .with_tag(IndicatorValue::new("collection_method", "phone")); // new
        a.merge_tags_from(&b);
        assert_eq!(a.tag_value("source"), Value::Null); // dropped on conflict
        assert_eq!(a.tag_value("media"), Value::text("ASCII"));
        assert_eq!(a.tag_value("collection_method"), Value::text("phone"));
    }

    #[test]
    fn paper_rendering() {
        // Exactly Table 2's cell format (dates render ISO in our engine).
        assert_eq!(addr_cell().to_paper_string(), "62 Lois Av (1991-10-24, acct'g)");
        assert_eq!(QualityCell::bare(700i64).to_paper_string(), "700");
    }

    #[test]
    fn display_with_indicator_names() {
        let s = addr_cell().to_string();
        assert!(s.contains("creation_time=1991-10-24"));
        assert!(s.contains("source=acct'g"));
    }
}
