//! Quality bitmap indexes: per-(column, indicator, value) inverted
//! bitmaps over cell tags.
//!
//! The paper's query-time quality filtering (`price@source = 'NYSE
//! feed'`, `creation_time@age <= 10`) is a conjunction of *quality
//! atoms* over `col@indicator` pseudo-columns. A [`QualityIndex`] keeps,
//! for every (column, indicator) pair, a [`Posting`]: one dense `u64`
//! bitset per distinct tag value plus a bitset of all rows tagged with a
//! non-NULL value. Conjunctions of atoms then resolve to bitmap
//! AND/OR/NOT instead of walking every row's tag vector; only residual
//! (non-atomic) predicate parts fall back to per-row evaluation over the
//! surviving candidates.
//!
//! ## Exactness contract
//!
//! Bitmap answers are *exactly* the rows the scan would keep:
//!
//! * NULL-valued tags are never indexed — the scan's 3VL drops them, so
//!   `≠` is precisely `tagged AND NOT eq`.
//! * `=` / `≠` use [`relstore::Value`]'s total equality (`Int(2)` and
//!   `Float(2.0)` collapse to one B-tree key, matching the evaluator).
//! * `<` / `<=` / `>` / `>=` are answered **only** when every indexed
//!   value is order-comparable with the literal (the scan would raise
//!   `TypeMismatch` otherwise); the per-posting [`Posting::classes`]
//!   bitmask gates this, and unanswerable atoms force a full scan so
//!   type errors surface identically. Class bits are sticky across
//!   retags — an over-approximation that can only force a scan, never a
//!   wrong answer.
//! * `BETWEEN` evaluates on the raw total order (the evaluator skips the
//!   comparability check for it), so it is always answerable.
//!
//! One caveat is inherent to index narrowing: when a *residual* conjunct
//! would raise a type error on a row the index already excluded, the
//! indexed path cannot observe that error. Well-typed predicates (the
//! only kind the query layer produces against declared schemas) are
//! unaffected; the property tests pin scan ≡ bitmap on those.

use crate::cell::QualityCell;
use crate::relation::{TaggedRelation, TaggedRow};
use crate::symbol::Symbol;
use relstore::expr::BinOp;
use relstore::{Expr, Value};
use std::collections::{BTreeMap, HashMap};
use std::fmt;
use std::ops::Bound;

/// A dense bitset over row ids, stored as `u64` words.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Bitset {
    words: Vec<u64>,
    nbits: usize,
}

impl Bitset {
    /// Empty bitset sized for `nbits` rows.
    pub fn new(nbits: usize) -> Self {
        Bitset {
            words: vec![0; nbits.div_ceil(64)],
            nbits,
        }
    }

    /// Bitset with every bit in `0..nbits` set.
    pub fn full(nbits: usize) -> Self {
        let mut b = Bitset {
            words: vec![u64::MAX; nbits.div_ceil(64)],
            nbits,
        };
        b.mask_tail();
        b
    }

    /// Zeroes bits at positions `>= nbits` in the last word.
    fn mask_tail(&mut self) {
        let tail = self.nbits % 64;
        if tail != 0 {
            if let Some(last) = self.words.last_mut() {
                *last &= (1u64 << tail) - 1;
            }
        }
    }

    /// Universe size (number of addressable rows).
    pub fn len(&self) -> usize {
        self.nbits
    }

    /// True iff the universe is empty.
    pub fn is_empty(&self) -> bool {
        self.nbits == 0
    }

    /// Grows the universe to at least `nbits` rows (new bits are 0).
    pub fn grow(&mut self, nbits: usize) {
        if nbits > self.nbits {
            self.nbits = nbits;
            self.words.resize(nbits.div_ceil(64), 0);
        }
    }

    /// Sets bit `i`, growing the universe if needed.
    pub fn set(&mut self, i: usize) {
        self.grow(i + 1);
        self.words[i / 64] |= 1u64 << (i % 64);
    }

    /// Clears bit `i` (no-op when out of range).
    pub fn clear(&mut self, i: usize) {
        if let Some(w) = self.words.get_mut(i / 64) {
            *w &= !(1u64 << (i % 64));
        }
    }

    /// True iff bit `i` is set.
    pub fn contains(&self, i: usize) -> bool {
        self.words
            .get(i / 64)
            .is_some_and(|w| w & (1u64 << (i % 64)) != 0)
    }

    /// Number of set bits (popcount).
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// `self &= other`. Missing words in `other` count as zero.
    pub fn and_assign(&mut self, other: &Bitset) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// `self |= other`, growing to cover `other`'s universe.
    pub fn or_assign(&mut self, other: &Bitset) {
        self.grow(other.nbits);
        for (i, &w) in other.words.iter().enumerate() {
            self.words[i] |= w;
        }
    }

    /// ORs `src`'s words into `self` starting at word `word_offset` —
    /// i.e. `src`'s bit `i` lands at `self`'s bit `word_offset * 64 + i`.
    /// Grows the universe to exactly `word_offset * 64 + src.len()`, so
    /// when callers apply word-disjoint sources in ascending offset order
    /// the final universe ends at the highest set bit + 1, matching what
    /// incremental [`Bitset::set`] calls would have produced. This is the
    /// merge step of the parallel index build: each worker owns a
    /// word-aligned row range, so no two workers' words overlap and the
    /// merge is a straight copy, not an OR over shared state.
    pub fn or_words_at(&mut self, word_offset: usize, src: &Bitset) {
        if src.nbits == 0 {
            return;
        }
        self.grow(word_offset * 64 + src.nbits);
        for (i, &w) in src.words.iter().enumerate() {
            self.words[word_offset + i] |= w;
        }
    }

    /// Sets every bit in `start..start + len`, growing the universe to
    /// `start + len` — the run-at-a-time primitive behind the columnar
    /// index build (a tag run tags `len` consecutive rows at once).
    pub fn set_range(&mut self, start: usize, len: usize) {
        if len == 0 {
            return;
        }
        let end = start + len;
        self.grow(end);
        let (ws, we) = (start / 64, (end - 1) / 64);
        let lo_mask = !0u64 << (start % 64);
        let hi_mask = !0u64 >> (63 - (end - 1) % 64);
        if ws == we {
            self.words[ws] |= lo_mask & hi_mask;
        } else {
            self.words[ws] |= lo_mask;
            for w in &mut self.words[ws + 1..we] {
                *w = !0;
            }
            self.words[we] |= hi_mask;
        }
    }

    /// `self &= !other` (AND NOT — the `≠` combinator).
    pub fn and_not_assign(&mut self, other: &Bitset) {
        for (i, w) in self.words.iter_mut().enumerate() {
            *w &= !other.words.get(i).copied().unwrap_or(0);
        }
    }

    /// Flips every bit within a universe of `nbits` rows.
    pub fn complement(&mut self, nbits: usize) {
        self.grow(nbits);
        for w in &mut self.words {
            *w = !*w;
        }
        self.mask_tail();
    }

    /// The backing `u64` words. Bit `i` lives in `words()[i / 64]` at
    /// `1 << (i % 64)`; bits at positions `>= len()` are always zero.
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// Mutable access to the backing words, for word-at-a-time kernels
    /// (the vectorized executor's selection vectors). Clearing bits is
    /// always safe; callers must not *set* bits at positions `>= len()`
    /// (the tail invariant every other operation relies on).
    pub fn words_mut(&mut self) -> &mut [u64] {
        &mut self.words
    }

    /// Builds a bitset directly from backing words. The word vector is
    /// resized to cover exactly `nbits` and tail bits are masked off, so
    /// any word source is safe.
    pub fn from_words(mut words: Vec<u64>, nbits: usize) -> Self {
        words.resize(nbits.div_ceil(64), 0);
        let mut b = Bitset { words, nbits };
        b.mask_tail();
        b
    }

    /// Copies bits `start..start + len` into a fresh `len`-bit bitset —
    /// the word-at-a-time batch slice used by the vectorized executor.
    /// Bits beyond `self.len()` read as zero. Word-aligned starts copy
    /// whole words; unaligned starts stitch adjacent words with shifts.
    pub fn extract_range(&self, start: usize, len: usize) -> Bitset {
        let mut words = vec![0u64; len.div_ceil(64)];
        let woff = start / 64;
        let shift = start % 64;
        if shift == 0 {
            for (i, w) in words.iter_mut().enumerate() {
                *w = self.words.get(woff + i).copied().unwrap_or(0);
            }
        } else {
            for (i, w) in words.iter_mut().enumerate() {
                let lo = self.words.get(woff + i).copied().unwrap_or(0) >> shift;
                let hi = self.words.get(woff + i + 1).copied().unwrap_or(0) << (64 - shift);
                *w = lo | hi;
            }
        }
        Bitset::from_words(words, len)
    }

    /// Iterates set bit positions in ascending order — the deterministic
    /// candidate row-id order the chunked executor relies on.
    pub fn iter_ones(&self) -> impl Iterator<Item = usize> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &word)| {
            let mut bits = word;
            std::iter::from_fn(move || {
                if bits == 0 {
                    None
                } else {
                    let tz = bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    Some(wi * 64 + tz)
                }
            })
        })
    }
}

/// Order-comparability class of a value, as a one-hot bitmask. The
/// evaluator allows `<`-family comparisons only within one class
/// (Int and Float share the numeric class); `Null` contributes nothing.
fn class_of(v: &Value) -> u8 {
    match v {
        Value::Null => 0,
        Value::Bool(_) => 1,
        Value::Int(_) | Value::Float(_) => 2,
        Value::Text(_) => 4,
        Value::Date(_) => 8,
    }
}

/// Inverted index for one (column, indicator) pair.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Posting {
    /// Per-distinct-tag-value bitsets, keyed by the value's total order
    /// (so ordered atoms resolve to a B-tree range of bitsets).
    values: BTreeMap<Value, Bitset>,
    /// Rows carrying *any* non-NULL value for this indicator.
    tagged: Bitset,
    /// Union of [`class_of`] over every value ever indexed. Sticky:
    /// retags never clear bits, which can only force a scan fallback.
    classes: u8,
}

impl Posting {
    /// Number of distinct indexed tag values.
    pub fn distinct_values(&self) -> usize {
        self.values.len()
    }

    /// Popcount of the tagged-rows bitset.
    pub fn tagged_rows(&self) -> usize {
        self.tagged.count()
    }

    /// Positional swap-delete fix-up: drops row `row`'s bits and re-homes
    /// row `last`'s bits to position `row` in every bitset. Empty value
    /// entries are pruned and `classes` recomputed from the survivors, so
    /// deletes keep the posting tight rather than accumulating garbage.
    /// Returns false when the posting indexes nothing any more.
    fn remove_row(&mut self, row: usize, last: usize) -> bool {
        fn move_bit(bs: &mut Bitset, row: usize, last: usize) {
            if row != last {
                if bs.contains(last) {
                    bs.set(row);
                } else {
                    bs.clear(row);
                }
            }
            bs.clear(last);
        }
        move_bit(&mut self.tagged, row, last);
        self.values.retain(|_, bs| {
            move_bit(bs, row, last);
            bs.count() > 0
        });
        self.classes = self.values.keys().fold(0, |c, v| c | class_of(v));
        self.tagged.count() > 0 || !self.values.is_empty()
    }
}

/// One index-answerable quality constraint: `col@indicator OP literal`.
#[derive(Debug, Clone, PartialEq)]
pub struct QualityAtom {
    /// Position of the application column in the schema.
    pub col: usize,
    /// The (first-level) indicator constrained.
    pub indicator: Symbol,
    /// Pseudo-column name as written (`price@age`), for rendering.
    pub pseudo: String,
    /// The constraint itself.
    pub op: AtomOp,
}

/// The comparison form of a [`QualityAtom`].
#[derive(Debug, Clone, PartialEq)]
pub enum AtomOp {
    /// `= literal`.
    Eq(Value),
    /// `<> literal` (answered as `tagged AND NOT eq`).
    Ne(Value),
    /// An ordered constraint. `strict` marks `<`-family atoms whose scan
    /// semantics type-check operands (so the index must refuse them on
    /// mixed-class postings); `BETWEEN` atoms are non-strict.
    Range {
        /// Lower bound on the tag value.
        lo: Bound<Value>,
        /// Upper bound on the tag value.
        hi: Bound<Value>,
        /// Whether the evaluator would `TypeMismatch` on cross-class
        /// operands for this atom.
        strict: bool,
    },
}

impl fmt::Display for QualityAtom {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.op {
            AtomOp::Eq(v) => write!(f, "{}={v}", self.pseudo),
            AtomOp::Ne(v) => write!(f, "{}<>{v}", self.pseudo),
            AtomOp::Range { lo, hi, .. } => {
                write!(f, "{}", self.pseudo)?;
                match (lo, hi) {
                    (Bound::Unbounded, Bound::Included(v)) => write!(f, "<={v}"),
                    (Bound::Unbounded, Bound::Excluded(v)) => write!(f, "<{v}"),
                    (Bound::Included(v), Bound::Unbounded) => write!(f, ">={v}"),
                    (Bound::Excluded(v), Bound::Unbounded) => write!(f, ">{v}"),
                    (Bound::Included(a), Bound::Included(b)) => {
                        write!(f, " BETWEEN {a} AND {b}")
                    }
                    (lo, hi) => write!(f, " IN {lo:?}..{hi:?}"),
                }
            }
        }
    }
}

/// Splits `predicate` into index-answerable quality atoms and residual
/// conjuncts. Only top-level AND conjuncts of the shape
/// `col@indicator OP literal` (or the flipped `literal OP col@indicator`,
/// or `col@indicator BETWEEN lit AND lit`) become atoms; meta-tag paths
/// (`col@ind@meta`), NULL literals, and everything else stay residual.
pub fn extract_atoms(rel: &TaggedRelation, predicate: &Expr) -> (Vec<QualityAtom>, Vec<Expr>) {
    extract_atoms_schema(rel.schema(), predicate)
}

/// [`extract_atoms`] against a bare schema — atom extraction only
/// consults column names, so the columnar executor (no [`TaggedRelation`]
/// in hand) splits predicates identically.
pub fn extract_atoms_schema(schema: &relstore::Schema, predicate: &Expr) -> (Vec<QualityAtom>, Vec<Expr>) {
    let mut atoms = Vec::new();
    let mut residual = Vec::new();
    split_conjuncts(schema, predicate, &mut atoms, &mut residual);
    (atoms, residual)
}

fn split_conjuncts(
    schema: &relstore::Schema,
    e: &Expr,
    atoms: &mut Vec<QualityAtom>,
    residual: &mut Vec<Expr>,
) {
    match e {
        Expr::Bin(l, BinOp::And, r) => {
            split_conjuncts(schema, l, atoms, residual);
            split_conjuncts(schema, r, atoms, residual);
        }
        other => match as_atom(schema, other) {
            Some(a) => atoms.push(a),
            None => residual.push(other.clone()),
        },
    }
}

/// Resolves a `col@indicator` pseudo-name with a single-level path
/// against the relation's schema.
fn resolve_pseudo(schema: &relstore::Schema, name: &str) -> Option<(usize, Symbol)> {
    let (col, ind) = TaggedRelation::split_pseudo(name)?;
    if ind.contains(crate::relation::TAG_SEP) {
        return None; // meta-tag path — residual only
    }
    let ci = schema.index_of(col)?;
    Some((ci, Symbol::intern(ind)))
}

fn as_atom(schema: &relstore::Schema, e: &Expr) -> Option<QualityAtom> {
    match e {
        Expr::Bin(l, op, r) => {
            let (name, lit, op) = match (&**l, &**r) {
                (Expr::Col(c), Expr::Lit(v)) => (c, v, *op),
                (Expr::Lit(v), Expr::Col(c)) => (c, v, flip(*op)),
                _ => return None,
            };
            if lit.is_null() {
                return None; // NULL comparisons never match — leave to 3VL
            }
            let (col, indicator) = resolve_pseudo(schema, name)?;
            let atom_op = match op {
                BinOp::Eq => AtomOp::Eq(lit.clone()),
                BinOp::Ne => AtomOp::Ne(lit.clone()),
                BinOp::Lt => AtomOp::Range {
                    lo: Bound::Unbounded,
                    hi: Bound::Excluded(lit.clone()),
                    strict: true,
                },
                BinOp::Le => AtomOp::Range {
                    lo: Bound::Unbounded,
                    hi: Bound::Included(lit.clone()),
                    strict: true,
                },
                BinOp::Gt => AtomOp::Range {
                    lo: Bound::Excluded(lit.clone()),
                    hi: Bound::Unbounded,
                    strict: true,
                },
                BinOp::Ge => AtomOp::Range {
                    lo: Bound::Included(lit.clone()),
                    hi: Bound::Unbounded,
                    strict: true,
                },
                _ => return None,
            };
            Some(QualityAtom {
                col,
                indicator,
                pseudo: name.clone(),
                op: atom_op,
            })
        }
        Expr::Between(x, lo, hi) => {
            let (Expr::Col(name), Expr::Lit(a), Expr::Lit(b)) = (&**x, &**lo, &**hi) else {
                return None;
            };
            if a.is_null() || b.is_null() {
                return None;
            }
            let (col, indicator) = resolve_pseudo(schema, name)?;
            Some(QualityAtom {
                col,
                indicator,
                pseudo: name.clone(),
                op: AtomOp::Range {
                    lo: Bound::Included(a.clone()),
                    hi: Bound::Included(b.clone()),
                    // BETWEEN compares on the raw total order — the
                    // evaluator never type-checks it, so neither do we.
                    strict: false,
                },
            })
        }
        _ => None,
    }
}

fn flip(op: BinOp) -> BinOp {
    match op {
        BinOp::Lt => BinOp::Gt,
        BinOp::Le => BinOp::Ge,
        BinOp::Gt => BinOp::Lt,
        BinOp::Ge => BinOp::Le,
        other => other,
    }
}

/// The quality bitmap index over a tagged relation: one [`Posting`] per
/// (column, first-level indicator) pair actually present in the data.
///
/// Built incrementally on [`QualityIndex::note_row`] (insert) and
/// [`QualityIndex::retag`] (tag mutation); [`QualityIndex::build`] is the
/// rebuild-on-bulk-load path. Meta tags (Premise 1.4) are not indexed —
/// atoms over meta paths are residual by construction.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct QualityIndex {
    rows: usize,
    postings: HashMap<(usize, Symbol), Posting>,
}

impl QualityIndex {
    /// Empty index over zero rows.
    pub fn new() -> Self {
        Self::default()
    }

    /// Full (re)build from a relation — the bulk-load path. Equivalent to
    /// folding [`QualityIndex::note_row`] over the rows, by construction.
    ///
    /// Large relations build in parallel (per [`relstore::par::plan_index`]'s
    /// cost model, honoring `DQ_THREADS`) under the **disjoint-word merge
    /// protocol**: row ranges are split on 64-row boundaries
    /// ([`relstore::par::word_aligned_ranges`]), each worker indexes its
    /// range into a partial index using *range-local* row ids (so every
    /// partial bitset is chunk-sized, not universe-sized), and the merge
    /// ORs each partial's words into the output at the range's word
    /// offset ([`Bitset::or_words_at`]). No two workers ever produce bits
    /// in the same output word, so the merge is a single pass over the
    /// partials' words — proportional to the final index size — instead
    /// of the old absolute-id OR-merge that walked `threads ×` near-full
    /// universe bitsets and made the 8-thread build 3.5× *slower* than
    /// serial at 1M rows. Applying partials in ascending range order
    /// keeps every bitset's universe ending at its highest set bit + 1,
    /// so the result is bit-for-bit identical to the serial fold at every
    /// thread count.
    pub fn build(rel: &TaggedRelation) -> Self {
        dq_obs::counter!("tagstore.index.rebuilds").incr();
        let rows = rel.rows();
        let Some(threads) = relstore::par::plan_index(rows.len()) else {
            let mut idx = Self::new();
            for row in rows {
                idx.note_row(row);
            }
            return idx;
        };
        dq_obs::counter!("tagstore.index.par_builds").incr();
        let _t = dq_obs::histogram!("tagstore.index.par_build_us").start();
        let ranges = relstore::par::word_aligned_ranges(rows.len(), threads);
        let partials = relstore::par::run_chunked(&ranges, ranges.len(), |_, rs| {
            let range = rs[0].clone();
            let mut partial = Self::new();
            for (local, id) in range.clone().enumerate() {
                partial.note_row_at(local, &rows[id]);
            }
            (range.start, partial)
        });
        Self::merge_word_aligned(rows.len(), partials)
    }

    /// Merges range-local partial indexes produced under the disjoint-word
    /// protocol: `partials` holds `(range_start, partial)` pairs where
    /// `range_start` is a multiple of 64 and the partial's bitsets use
    /// row ids relative to it. Must be applied in ascending range order
    /// (as [`relstore::par::word_aligned_ranges`] + chunk-ordered results
    /// guarantee) so universes grow monotonically to highest-bit + 1.
    pub(crate) fn merge_word_aligned(rows: usize, partials: Vec<(usize, QualityIndex)>) -> Self {
        let mut idx = Self::new();
        idx.rows = rows;
        for (start, partial) in partials {
            debug_assert_eq!(start % 64, 0, "partial not word-aligned");
            let word_offset = start / 64;
            if word_offset == 0 && idx.postings.is_empty() {
                // The first partial needs no shifting: adopt its postings
                // wholesale (map moves, no word copies).
                idx.postings = partial.postings;
                continue;
            }
            for (key, p) in partial.postings {
                let posting = idx.postings.entry(key).or_default();
                posting.tagged.or_words_at(word_offset, &p.tagged);
                posting.classes |= p.classes;
                for (v, bs) in p.values {
                    posting.values.entry(v).or_default().or_words_at(word_offset, &bs);
                }
            }
        }
        idx
    }

    /// Number of rows the index covers.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// True iff the index covers no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// The posting for `(column, indicator)`, if any row is tagged there.
    pub fn posting(&self, col: usize, indicator: &Symbol) -> Option<&Posting> {
        self.postings.get(&(col, indicator.clone()))
    }

    /// Indexes the tags of one appended row. Must be called in row order.
    pub fn note_row(&mut self, row: &TaggedRow) {
        self.note_row_at(self.rows, row);
        self.rows += 1;
    }

    /// Indexes `row`'s tags at absolute id `id` without advancing the
    /// row counter — the parallel-build worker primitive.
    fn note_row_at(&mut self, id: usize, row: &TaggedRow) {
        for (ci, cell) in row.iter().enumerate() {
            for tag in cell.tags() {
                if tag.value.is_null() {
                    continue; // NULL-valued tags never satisfy predicates
                }
                let posting = self
                    .postings
                    .entry((ci, tag.indicator.clone()))
                    .or_default();
                posting.tagged.set(id);
                posting.classes |= class_of(&tag.value);
                posting.values.entry(tag.value.clone()).or_default().set(id);
            }
        }
    }

    /// Indexes one tag *run*: every row in `start..start + len` of column
    /// `col` carries exactly the tags in `tags`. The columnar build walks
    /// each column's run-length-encoded tag runs and calls this once per
    /// run, turning per-row hash probes into one probe + one
    /// [`Bitset::set_range`] per (run, tag). Runs must arrive in
    /// ascending row order within each column (universe = highest bit+1,
    /// the bit-for-bit parity invariant with the row build).
    pub(crate) fn note_tags_range(&mut self, col: usize, start: usize, len: usize, tags: &[crate::indicator::IndicatorValue]) {
        for tag in tags {
            if tag.value.is_null() {
                continue; // NULL-valued tags never satisfy predicates
            }
            let posting = self
                .postings
                .entry((col, tag.indicator.clone()))
                .or_default();
            posting.tagged.set_range(start, len);
            posting.classes |= class_of(&tag.value);
            posting
                .values
                .entry(tag.value.clone())
                .or_default()
                .set_range(start, len);
        }
    }

    /// Sets the covered-row count after a bulk build that bypassed
    /// [`QualityIndex::note_row`] (the columnar per-column pass).
    pub(crate) fn finish_rows(&mut self, rows: usize) {
        self.rows = rows;
    }

    /// Updates the index after `set_tag` replaced (or added) one tag on
    /// `row`/`col`: `old` is the previous value for the same indicator
    /// (`None` when the cell was untagged there).
    pub fn retag(&mut self, row: usize, col: usize, old: Option<&Value>, indicator: &Symbol, new: &Value) {
        let posting = self
            .postings
            .entry((col, indicator.clone()))
            .or_default();
        if let Some(old_v) = old {
            if !old_v.is_null() {
                if let Some(bs) = posting.values.get_mut(old_v) {
                    bs.clear(row);
                }
            }
        }
        if new.is_null() {
            posting.tagged.clear(row);
        } else {
            posting.tagged.set(row);
            posting.classes |= class_of(new);
            posting.values.entry(new.clone()).or_default().set(row);
        }
    }

    /// Positional swap-delete: removes row `row` from every posting,
    /// re-homing the last row's bits to `row` — the fix-up matching
    /// [`TaggedRelation::swap_remove`]. Postings left indexing nothing
    /// are dropped, so a drained index compares equal to a fresh one.
    ///
    /// # Panics
    /// When `row` is out of range — callers delete through
    /// [`IndexedTaggedRelation::swap_remove`], which validates against
    /// the relation first.
    pub fn delete_row(&mut self, row: usize) {
        assert!(row < self.rows, "delete_row: row {row} >= {}", self.rows);
        dq_obs::counter!("tagstore.index.deletes").incr();
        let last = self.rows - 1;
        self.postings.retain(|_, p| p.remove_row(row, last));
        self.rows = last;
    }

    /// Answers one atom as a bitset of matching rows, or `None` when the
    /// atom is not index-answerable (strict ordered atom over a posting
    /// with values outside the literal's comparability class — the scan
    /// would type-error, so the caller must fall back to it).
    pub fn lookup(&self, atom: &QualityAtom) -> Option<Bitset> {
        let empty = || Bitset::new(self.rows);
        let Some(posting) = self.postings.get(&(atom.col, atom.indicator.clone())) else {
            // No row tagged here: every form of the atom matches nothing
            // (untagged cells evaluate to NULL before any type check).
            return Some(empty());
        };
        match &atom.op {
            AtomOp::Eq(v) => Some(posting.values.get(v).cloned().unwrap_or_else(empty)),
            AtomOp::Ne(v) => {
                let mut out = posting.tagged.clone();
                if let Some(eq) = posting.values.get(v) {
                    out.and_not_assign(eq);
                }
                Some(out)
            }
            AtomOp::Range { lo, hi, strict } => {
                if *strict {
                    let lit_class = match (lo, hi) {
                        (Bound::Included(v) | Bound::Excluded(v), _)
                        | (_, Bound::Included(v) | Bound::Excluded(v)) => class_of(v),
                        (Bound::Unbounded, Bound::Unbounded) => 0,
                    };
                    if posting.classes & !lit_class != 0 {
                        return None; // scan would TypeMismatch — let it
                    }
                }
                // Guard the BTreeMap range panic on inverted bounds.
                if let (
                    Bound::Included(a) | Bound::Excluded(a),
                    Bound::Included(b) | Bound::Excluded(b),
                ) = (lo, hi)
                {
                    if a > b
                        || (a == b
                            && (matches!(lo, Bound::Excluded(_))
                                || matches!(hi, Bound::Excluded(_))))
                    {
                        return Some(empty());
                    }
                }
                let mut out = empty();
                for (_, bs) in posting.values.range((as_ref(lo), as_ref(hi))) {
                    out.or_assign(bs);
                }
                out.grow(self.rows);
                Some(out)
            }
        }
    }

    /// Intersects the answers to a conjunction of atoms. `None` when the
    /// conjunction is empty or any atom is unanswerable.
    pub fn candidates(&self, atoms: &[QualityAtom]) -> Option<Bitset> {
        let (first, rest) = atoms.split_first()?;
        let mut out = self.lookup(first)?;
        for atom in rest {
            out.and_assign(&self.lookup(atom)?);
        }
        Some(out)
    }

    /// Estimated selectivity of a conjunction (matching fraction of
    /// rows), from bitmap popcounts. `None` when unanswerable.
    pub fn estimate(&self, atoms: &[QualityAtom]) -> Option<f64> {
        let bs = self.candidates(atoms)?;
        if self.rows == 0 {
            return Some(0.0);
        }
        Some(bs.count() as f64 / self.rows as f64)
    }
}

fn as_ref(b: &Bound<Value>) -> Bound<&Value> {
    match b {
        Bound::Included(v) => Bound::Included(v),
        Bound::Excluded(v) => Bound::Excluded(v),
        Bound::Unbounded => Bound::Unbounded,
    }
}

/// A tagged relation bundled with its incrementally-maintained quality
/// bitmap index — the storage form for index-accelerated quality
/// selection.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexedTaggedRelation {
    rel: TaggedRelation,
    index: QualityIndex,
}

impl IndexedTaggedRelation {
    /// Wraps a relation, building its index (bulk-load rebuild).
    pub fn from_relation(rel: TaggedRelation) -> Self {
        let index = QualityIndex::build(&rel);
        IndexedTaggedRelation { rel, index }
    }

    /// The underlying relation.
    pub fn relation(&self) -> &TaggedRelation {
        &self.rel
    }

    /// The maintained index.
    pub fn index(&self) -> &QualityIndex {
        &self.index
    }

    /// Unwraps into the relation, dropping the index.
    pub fn into_relation(self) -> TaggedRelation {
        self.rel
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rel.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rel.is_empty()
    }

    /// Validates and appends a row, indexing its tags incrementally.
    pub fn push(&mut self, row: TaggedRow) -> relstore::DbResult<()> {
        self.rel.push(row)?;
        dq_obs::counter!("tagstore.index.note_rows").incr();
        self.index
            .note_row(self.rel.rows().last().expect("just pushed"));
        Ok(())
    }

    /// Deletes row `row` by swap-remove (O(1) in the relation, one
    /// positional fix-up pass over the index postings), returning the
    /// removed row. Incremental: the index is never rebuilt.
    pub fn swap_remove(&mut self, row: usize) -> relstore::DbResult<TaggedRow> {
        let removed = self.rel.swap_remove(row)?;
        self.index.delete_row(row);
        Ok(removed)
    }

    /// Tags one cell (validated against the dictionary), updating the
    /// index incrementally.
    pub fn tag_cell(
        &mut self,
        row: usize,
        column: &str,
        tag: crate::indicator::IndicatorValue,
    ) -> relstore::DbResult<()> {
        let ci = self.rel.schema().resolve(column)?;
        let old = self
            .rel
            .rows()
            .get(row)
            .and_then(|r| cell_tag_value(r, ci, &tag.indicator));
        let indicator = tag.indicator.clone();
        let new = tag.value.clone();
        self.rel.tag_cell(row, column, tag)?;
        dq_obs::counter!("tagstore.index.retags").incr();
        self.index.retag(row, ci, old.as_ref(), &indicator, &new);
        Ok(())
    }

    /// Index-accelerated σ: see [`crate::algebra::select_indexed`].
    pub fn select(
        &self,
        predicate: &Expr,
    ) -> relstore::DbResult<(TaggedRelation, crate::algebra::TagAccessPath)> {
        crate::algebra::select_indexed(&self.rel, &self.index, predicate)
    }
}

fn cell_tag_value(row: &[QualityCell], ci: usize, indicator: &Symbol) -> Option<Value> {
    row.get(ci)
        .and_then(|c| c.tag_sym(indicator))
        .map(|t| t.value.clone())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::indicator::{IndicatorDictionary, IndicatorValue};
    use relstore::{DataType, Schema};

    #[test]
    fn bitset_ops() {
        let mut a = Bitset::new(10);
        a.set(1);
        a.set(9);
        a.set(70); // auto-grow
        assert_eq!(a.len(), 71);
        assert_eq!(a.count(), 3);
        assert!(a.contains(70) && !a.contains(0));
        assert_eq!(a.iter_ones().collect::<Vec<_>>(), vec![1, 9, 70]);

        let mut b = Bitset::new(71);
        b.set(9);
        b.set(70);
        let mut and = a.clone();
        and.and_assign(&b);
        assert_eq!(and.iter_ones().collect::<Vec<_>>(), vec![9, 70]);

        let mut or = Bitset::new(2);
        or.set(0);
        or.or_assign(&b);
        assert_eq!(or.iter_ones().collect::<Vec<_>>(), vec![0, 9, 70]);

        let mut not = a.clone();
        not.and_not_assign(&b);
        assert_eq!(not.iter_ones().collect::<Vec<_>>(), vec![1]);

        a.clear(9);
        assert_eq!(a.count(), 2);
        a.clear(1000); // out-of-range no-op
        assert_eq!(a.count(), 2);

        let full = Bitset::full(67);
        assert_eq!(full.count(), 67);
        let mut c = Bitset::new(67);
        c.set(3);
        c.complement(67);
        assert_eq!(c.count(), 66);
        assert!(!c.contains(3));
        assert!(Bitset::new(0).is_empty());
    }

    #[test]
    fn bitset_words_round_trip_and_extract() {
        let mut a = Bitset::new(0);
        for i in [0, 1, 63, 64, 65, 127, 130] {
            a.set(i);
        }
        // words() exposes the exact backing representation
        assert_eq!(a.words().len(), a.len().div_ceil(64));
        let rebuilt = Bitset::from_words(a.words().to_vec(), a.len());
        assert_eq!(rebuilt, a);
        // from_words masks tail bits and resizes the word vector
        let masked = Bitset::from_words(vec![u64::MAX, u64::MAX], 3);
        assert_eq!(masked.count(), 3);
        assert_eq!(masked.words(), &[0b111]);

        // word-aligned extraction
        let w = a.extract_range(64, 64);
        assert_eq!(w.iter_ones().collect::<Vec<_>>(), vec![0, 1, 63]);
        // unaligned extraction stitches across word boundaries
        let u = a.extract_range(63, 66);
        assert_eq!(u.iter_ones().collect::<Vec<_>>(), vec![0, 1, 2, 64]);
        // reads beyond the universe are zero
        let z = a.extract_range(120, 128);
        assert_eq!(z.iter_ones().collect::<Vec<_>>(), vec![7, 10]);
        assert_eq!(a.extract_range(10_000, 64).count(), 0);
        // exhaustive parity with the bit-at-a-time definition
        for start in 0..130 {
            for len in [1usize, 7, 64, 100] {
                let got = a.extract_range(start, len);
                for i in 0..len {
                    assert_eq!(got.contains(i), a.contains(start + i), "start={start} len={len} i={i}");
                }
            }
        }
    }

    #[test]
    fn bitset_or_words_at_matches_shifted_sets() {
        // or_words_at(k, src) == setting src's bits at +k*64, including
        // the universe ending exactly at the highest source bit.
        for (offset_words, bits) in [(0usize, vec![0usize, 5, 63]), (1, vec![0, 64, 70]), (3, vec![1])] {
            let mut src = Bitset::new(0);
            let mut expect = Bitset::new(0);
            for &b in &bits {
                src.set(b);
                expect.set(offset_words * 64 + b);
            }
            let mut got = Bitset::new(0);
            got.or_words_at(offset_words, &src);
            assert_eq!(got, expect, "offset={offset_words} bits={bits:?}");
        }
        // empty source is a no-op (no spurious growth)
        let mut b = Bitset::new(0);
        b.or_words_at(5, &Bitset::new(0));
        assert_eq!(b, Bitset::new(0));
        // ascending disjoint applications reproduce incremental set()
        let mut merged = Bitset::new(0);
        let mut lo = Bitset::new(0);
        lo.set(3);
        let mut hi = Bitset::new(0);
        hi.set(2); // lands at 64 + 2
        merged.or_words_at(0, &lo);
        merged.or_words_at(1, &hi);
        let mut direct = Bitset::new(0);
        direct.set(3);
        direct.set(66);
        assert_eq!(merged, direct);
    }

    #[test]
    fn bitset_set_range_matches_bit_loop() {
        for start in [0usize, 1, 13, 63, 64, 65, 127] {
            for len in [0usize, 1, 3, 51, 64, 65, 130] {
                let mut fast = Bitset::new(0);
                fast.set_range(start, len);
                let mut slow = Bitset::new(0);
                for i in start..start + len {
                    slow.set(i);
                }
                assert_eq!(fast, slow, "start={start} len={len}");
            }
        }
    }

    #[test]
    fn parallel_build_matches_serial_bit_for_bit() {
        // enough rows that 8 forced threads produce uneven tail chunks
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut r = TaggedRelation::empty(schema, dict);
        for k in 0..533i64 {
            let mut cell = QualityCell::bare(k * 3);
            if k % 3 == 0 {
                cell.set_tag(IndicatorValue::new("source", ["a", "b", "c"][(k % 9 / 3) as usize]));
            }
            if k % 5 != 4 {
                cell.set_tag(IndicatorValue::new("age", k % 17));
            }
            r.push(vec![QualityCell::bare(k), cell]).unwrap();
        }
        let serial = relstore::par::with_thread_count(1, || QualityIndex::build(&r));
        for threads in [2, 3, 8] {
            let par = relstore::par::with_thread_count(threads, || QualityIndex::build(&r));
            assert_eq!(par, serial, "threads={threads}");
        }
        // and both equal the incremental fold
        let mut inc = QualityIndex::new();
        for row in r.iter() {
            inc.note_row(row);
        }
        assert_eq!(inc, serial);
    }

    fn rel() -> TaggedRelation {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut r = TaggedRelation::empty(schema, dict);
        for (k, src, age) in [
            (0i64, Some("a"), Some(5i64)),
            (1, Some("b"), None),
            (2, None, Some(20)),
            (3, Some("a"), Some(10)),
            (4, None, None),
        ] {
            let mut cell = QualityCell::bare(k * 10);
            if let Some(s) = src {
                cell.set_tag(IndicatorValue::new("source", s));
            }
            if let Some(a) = age {
                cell.set_tag(IndicatorValue::new("age", a));
            }
            r.push(vec![QualityCell::bare(k), cell]).unwrap();
        }
        r
    }

    fn atom(rel: &TaggedRelation, e: &Expr) -> QualityAtom {
        let (atoms, residual) = extract_atoms(rel, e);
        assert!(residual.is_empty(), "unexpected residual: {residual:?}");
        assert_eq!(atoms.len(), 1);
        atoms.into_iter().next().unwrap()
    }

    #[test]
    fn eq_ne_lookup() {
        let r = rel();
        let idx = QualityIndex::build(&r);
        let a = atom(&r, &Expr::col("v@source").eq(Expr::lit("a")));
        assert_eq!(idx.lookup(&a).unwrap().iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        let a = atom(&r, &Expr::col("v@source").ne(Expr::lit("a")));
        // only row 1 is tagged with a different source; untagged rows drop
        assert_eq!(idx.lookup(&a).unwrap().iter_ones().collect::<Vec<_>>(), vec![1]);
        let a = atom(&r, &Expr::col("v@source").eq(Expr::lit("zzz")));
        assert_eq!(idx.lookup(&a).unwrap().count(), 0);
    }

    #[test]
    fn range_lookup_and_class_gate() {
        let r = rel();
        let idx = QualityIndex::build(&r);
        let a = atom(&r, &Expr::col("v@age").le(Expr::lit(10i64)));
        assert_eq!(idx.lookup(&a).unwrap().iter_ones().collect::<Vec<_>>(), vec![0, 3]);
        // cross-class strict comparison is refused (scan would error)
        let a = atom(&r, &Expr::col("v@age").lt(Expr::lit("text")));
        assert!(idx.lookup(&a).is_none());
        // BETWEEN is total-order and always answerable
        let a = atom(
            &r,
            &Expr::Between(
                Box::new(Expr::col("v@age")),
                Box::new(Expr::lit(6i64)),
                Box::new(Expr::lit(25i64)),
            ),
        );
        assert_eq!(idx.lookup(&a).unwrap().iter_ones().collect::<Vec<_>>(), vec![2, 3]);
        // inverted bounds are an empty match, not a panic
        let a = atom(
            &r,
            &Expr::Between(
                Box::new(Expr::col("v@age")),
                Box::new(Expr::lit(25i64)),
                Box::new(Expr::lit(6i64)),
            ),
        );
        assert_eq!(idx.lookup(&a).unwrap().count(), 0);
    }

    #[test]
    fn conjunction_candidates_and_estimate() {
        let r = rel();
        let idx = QualityIndex::build(&r);
        let (atoms, residual) = extract_atoms(
            &r,
            &Expr::col("v@source")
                .eq(Expr::lit("a"))
                .and(Expr::col("v@age").ge(Expr::lit(8i64)))
                .and(Expr::col("k").ge(Expr::lit(0i64))),
        );
        assert_eq!(atoms.len(), 2);
        assert_eq!(residual.len(), 1); // plain value conjunct
        let bs = idx.candidates(&atoms).unwrap();
        assert_eq!(bs.iter_ones().collect::<Vec<_>>(), vec![3]);
        assert_eq!(idx.estimate(&atoms).unwrap(), 1.0 / 5.0);
        assert!(idx.candidates(&[]).is_none());
    }

    #[test]
    fn extraction_rejects_non_atoms() {
        let r = rel();
        // meta path, OR, unknown column, NULL literal — all residual
        for e in [
            Expr::col("v@source@inspection").eq(Expr::lit("x")),
            Expr::col("v@age")
                .eq(Expr::lit(1i64))
                .or(Expr::col("v@age").eq(Expr::lit(2i64))),
            Expr::col("ghost@age").eq(Expr::lit(1i64)),
            Expr::col("v@age").eq(Expr::Lit(Value::Null)),
        ] {
            let (atoms, residual) = extract_atoms(&r, &e);
            assert!(atoms.is_empty(), "{e:?}");
            assert_eq!(residual.len(), 1);
        }
        // flipped literal side still extracts
        let (atoms, _) = extract_atoms(&r, &Expr::lit(10i64).gt(Expr::col("v@age")));
        assert!(matches!(
            &atoms[0].op,
            AtomOp::Range { hi: Bound::Excluded(Value::Int(10)), .. }
        ));
    }

    #[test]
    fn incremental_equals_rebuild_on_push() {
        let r = rel();
        let mut inc = IndexedTaggedRelation::from_relation(TaggedRelation::empty(
            r.schema().clone(),
            r.dictionary().clone(),
        ));
        for row in r.iter() {
            inc.push(row.clone()).unwrap();
        }
        assert_eq!(inc.index(), &QualityIndex::build(&r));
    }

    #[test]
    fn retag_tracks_mutation() {
        let r = rel();
        let mut ir = IndexedTaggedRelation::from_relation(r);
        // row 1: source b → a
        ir.tag_cell(1, "v", IndicatorValue::new("source", "a")).unwrap();
        let a = atom(ir.relation(), &Expr::col("v@source").eq(Expr::lit("a")));
        assert_eq!(
            ir.index().lookup(&a).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![0, 1, 3]
        );
        let b = atom(ir.relation(), &Expr::col("v@source").eq(Expr::lit("b")));
        assert_eq!(ir.index().lookup(&b).unwrap().count(), 0);
        // fresh tag on a previously untagged cell
        ir.tag_cell(4, "v", IndicatorValue::new("age", 7i64)).unwrap();
        let c = atom(ir.relation(), &Expr::col("v@age").le(Expr::lit(7i64)));
        assert_eq!(
            ir.index().lookup(&c).unwrap().iter_ones().collect::<Vec<_>>(),
            vec![0, 4]
        );
    }

    #[test]
    fn swap_delete_rehomes_moved_row() {
        let r = rel();
        let mut ir = IndexedTaggedRelation::from_relation(r);
        // remove row 1 (source=b); row 4 (untagged) moves into its place
        let removed = ir.swap_remove(1).unwrap();
        assert_eq!(removed[0].value, Value::Int(1));
        assert_eq!(ir.len(), 4);
        assert_eq!(ir.index().rows(), 4);
        // source=b is gone entirely — pruned, not a lingering empty bitset
        let b = atom(ir.relation(), &Expr::col("v@source").eq(Expr::lit("b")));
        assert_eq!(ir.index().lookup(&b).unwrap().count(), 0);
        // every selection still matches a scan of the mutated relation
        for p in [
            Expr::col("v@source").eq(Expr::lit("a")),
            Expr::col("v@source").ne(Expr::lit("a")),
            Expr::col("v@age").le(Expr::lit(10i64)),
        ] {
            let (fast, _) = ir.select(&p).unwrap();
            assert_eq!(fast, crate::algebra::select(ir.relation(), &p).unwrap(), "{p:?}");
        }
    }

    #[test]
    fn drained_index_equals_fresh() {
        let mut ir = IndexedTaggedRelation::from_relation(rel());
        assert!(ir.swap_remove(99).is_err()); // out of range: relation rejects
        while !ir.is_empty() {
            ir.swap_remove(0).unwrap();
        }
        // pruning leaves no posting garbage behind
        assert_eq!(ir.index(), &QualityIndex::new());
        // estimates on the empty index are defined (0.0), never NaN
        let probe = rel();
        let (atoms, _) = extract_atoms(&probe, &Expr::col("v@source").eq(Expr::lit("a")));
        let est = ir.index().estimate(&atoms).unwrap();
        assert_eq!(est, 0.0);
        assert!(est.is_finite());
    }

    #[test]
    fn float_int_equality_collapses() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let mut r = TaggedRelation::empty(schema, dict);
        r.push(vec![
            QualityCell::bare(1i64).with_tag(IndicatorValue::new("age", 2i64)),
        ])
        .unwrap();
        let idx = QualityIndex::build(&r);
        // Float(2.0) == Int(2) under the total order, matching the scan
        let a = atom(&r, &Expr::col("x@age").eq(Expr::lit(2.0)));
        assert_eq!(idx.lookup(&a).unwrap().count(), 1);
    }
}
