//! Interned indicator names.
//!
//! Every quality indicator name ("source", "creation_time", …) is drawn
//! from a small vocabulary — the indicator dictionary — yet the seed
//! implementation stored a fresh `String` per tag per cell, so a 100k-row
//! relation with two tags per cell carried 200k heap copies of the same
//! handful of names, and every tag lookup was a byte-wise string compare.
//!
//! [`Symbol`] replaces that: a process-wide interner maps each distinct
//! name to a `u32` id backed by one shared `Arc<str>`. Symbols compare
//! and hash by id (O(1)), clone by `Arc` refcount bump, and still order
//! lexicographically by name so the sorted-tag-vector invariant of
//! [`crate::cell::QualityCell`] is unchanged.

use parking_lot::RwLock;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use std::hash::{Hash, Hasher};
use std::ops::Deref;
use std::sync::{Arc, OnceLock};

/// An interned indicator name.
///
/// Equality and hashing are by interner id; ordering is lexicographic by
/// name (with an id-equality fast path — sound because the interner is a
/// bijection between ids and names). Dereferences to `str`, so existing
/// code that treated indicator names as strings keeps working.
#[derive(Clone)]
pub struct Symbol {
    id: u32,
    name: Arc<str>,
}

struct Interner {
    map: HashMap<Arc<str>, u32>,
    names: Vec<Arc<str>>,
}

fn interner() -> &'static RwLock<Interner> {
    static INTERNER: OnceLock<RwLock<Interner>> = OnceLock::new();
    INTERNER.get_or_init(|| {
        RwLock::new(Interner {
            map: HashMap::new(),
            names: Vec::new(),
        })
    })
}

impl Symbol {
    /// Interns `name`, returning its canonical symbol. Repeated calls with
    /// the same string return id-equal symbols sharing one allocation.
    pub fn intern(name: &str) -> Symbol {
        {
            let guard = interner().read();
            // `Arc<str>: Borrow<str>` lets the map look up by `&str`
            // without allocating.
            if let Some(&id) = guard.map.get(name) {
                return Symbol {
                    id,
                    name: Arc::clone(&guard.names[id as usize]),
                };
            }
        }
        let mut guard = interner().write();
        // Re-check: another thread may have interned between the locks.
        if let Some(&id) = guard.map.get(name) {
            return Symbol {
                id,
                name: Arc::clone(&guard.names[id as usize]),
            };
        }
        let arc: Arc<str> = Arc::from(name);
        let id = u32::try_from(guard.names.len()).expect("interner overflow");
        guard.names.push(Arc::clone(&arc));
        guard.map.insert(Arc::clone(&arc), id);
        Symbol { id, name: arc }
    }

    /// The interned name.
    pub fn as_str(&self) -> &str {
        &self.name
    }

    /// The interner id. Stable for the life of the process; not
    /// meaningful across processes — never persist it.
    pub fn id(&self) -> u32 {
        self.id
    }
}

impl PartialEq for Symbol {
    #[inline]
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id
    }
}

impl Eq for Symbol {}

impl Hash for Symbol {
    #[inline]
    fn hash<H: Hasher>(&self, state: &mut H) {
        self.id.hash(state);
    }
}

impl PartialOrd for Symbol {
    #[inline]
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for Symbol {
    #[inline]
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        if self.id == other.id {
            return std::cmp::Ordering::Equal;
        }
        self.name.as_ref().cmp(other.name.as_ref())
    }
}

impl Deref for Symbol {
    type Target = str;
    #[inline]
    fn deref(&self) -> &str {
        &self.name
    }
}

impl AsRef<str> for Symbol {
    #[inline]
    fn as_ref(&self) -> &str {
        &self.name
    }
}

// NOTE: deliberately NO `impl Borrow<str> for Symbol` — Symbol hashes by
// id, `str` hashes by bytes, and `Borrow` demands those agree.

impl PartialEq<str> for Symbol {
    fn eq(&self, other: &str) -> bool {
        self.name.as_ref() == other
    }
}

impl PartialEq<&str> for Symbol {
    fn eq(&self, other: &&str) -> bool {
        self.name.as_ref() == *other
    }
}

impl PartialEq<String> for Symbol {
    fn eq(&self, other: &String) -> bool {
        self.name.as_ref() == other.as_str()
    }
}

impl PartialEq<Symbol> for str {
    fn eq(&self, other: &Symbol) -> bool {
        self == other.name.as_ref()
    }
}

impl PartialEq<Symbol> for &str {
    fn eq(&self, other: &Symbol) -> bool {
        *self == other.name.as_ref()
    }
}

impl PartialEq<Symbol> for String {
    fn eq(&self, other: &Symbol) -> bool {
        self.as_str() == other.name.as_ref()
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<&String> for Symbol {
    fn from(s: &String) -> Symbol {
        Symbol::intern(s)
    }
}

impl From<String> for Symbol {
    fn from(s: String) -> Symbol {
        Symbol::intern(&s)
    }
}

impl From<&Symbol> for Symbol {
    fn from(s: &Symbol) -> Symbol {
        s.clone()
    }
}

impl From<Symbol> for String {
    fn from(s: Symbol) -> String {
        s.name.as_ref().to_owned()
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(self.as_str(), f)
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

impl Serialize for Symbol {
    fn to_json(&self) -> serde::Json {
        serde::Json::Str(self.as_str().to_owned())
    }
}

impl Deserialize for Symbol {
    fn from_json(v: &serde::Json) -> serde::Result<Self> {
        v.as_str("Symbol").map(Symbol::intern)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::hash_map::DefaultHasher;

    fn hash_of<T: Hash>(t: &T) -> u64 {
        let mut h = DefaultHasher::new();
        t.hash(&mut h);
        h.finish()
    }

    #[test]
    fn intern_dedupes_and_shares() {
        let a = Symbol::intern("source");
        let b = Symbol::intern("source");
        assert_eq!(a.id(), b.id());
        assert_eq!(a, b);
        assert!(Arc::ptr_eq(&a.name, &b.name));
        let c = Symbol::intern("age");
        assert_ne!(a, c);
    }

    #[test]
    fn orders_by_name_not_id() {
        // intern in reverse-lexicographic order so ids disagree with names
        let z = Symbol::intern("zzz_order_test");
        let a = Symbol::intern("aaa_order_test");
        assert!(a < z);
        assert_eq!(a.cmp(&a.clone()), std::cmp::Ordering::Equal);
    }

    #[test]
    fn compares_with_strings() {
        let s = Symbol::intern("source");
        assert_eq!(s, "source");
        assert_eq!("source", s);
        assert_eq!(s, String::from("source"));
        assert_ne!(s, "age");
        assert_eq!(&*s, "source");
        assert_eq!(s.len(), 6); // Deref<Target=str>
    }

    #[test]
    fn equal_symbols_hash_equal() {
        let a = Symbol::intern("creation_time");
        let b = Symbol::intern("creation_time");
        assert_eq!(hash_of(&a), hash_of(&b));
    }

    #[test]
    fn serde_roundtrip() {
        let s = Symbol::intern("media");
        let json = s.to_json();
        let back = Symbol::from_json(&json).unwrap();
        assert_eq!(s, back);
    }

    #[test]
    fn concurrent_interning_is_consistent() {
        let handles: Vec<_> = (0..8)
            .map(|_| std::thread::spawn(|| Symbol::intern("concurrent_test").id()))
            .collect();
        let ids: Vec<u32> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        assert!(ids.windows(2).all(|w| w[0] == w[1]));
    }
}
