//! Tagged relations: relations whose cells carry quality indicator values.
//!
//! A [`TaggedRelation`] pairs an application [`Schema`] with rows of
//! [`QualityCell`]s and an [`IndicatorDictionary`] governing admissible
//! tags. The pseudo-column syntax `column@indicator` (see
//! [`TaggedRelation::expand`]) exposes tags to the ordinary expression
//! language, which is how "users can filter out data having undesirable
//! characteristics" at query time.

use crate::cell::QualityCell;
use crate::indicator::{IndicatorDictionary, IndicatorValue};
use relstore::{ColumnDef, DataType, DbError, DbResult, Relation, Row, Schema};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// Separator between column and indicator in a pseudo-column name.
pub const TAG_SEP: char = '@';

/// A row of quality cells.
pub type TaggedRow = Vec<QualityCell>;

/// A relation whose cells are quality-tagged.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaggedRelation {
    schema: Schema,
    dict: IndicatorDictionary,
    rows: Vec<TaggedRow>,
    /// Relation-level quality tags — "tagging higher aggregations, such
    /// as the table or database level" (§1.2): e.g. `population_method`
    /// as an indication of the table's completeness.
    relation_tags: Vec<IndicatorValue>,
}

impl TaggedRelation {
    /// Empty tagged relation.
    pub fn empty(schema: Schema, dict: IndicatorDictionary) -> Self {
        TaggedRelation {
            schema,
            dict,
            rows: Vec::new(),
            relation_tags: Vec::new(),
        }
    }

    /// Builds from rows, validating values against the schema and tags
    /// against the dictionary.
    pub fn new(
        schema: Schema,
        dict: IndicatorDictionary,
        rows: Vec<TaggedRow>,
    ) -> DbResult<Self> {
        let mut rel = TaggedRelation::empty(schema, dict);
        for r in rows {
            rel.push(r)?;
        }
        Ok(rel)
    }

    /// Lifts an untagged relation (every cell bare).
    pub fn from_relation(rel: &Relation, dict: IndicatorDictionary) -> Self {
        let rows = rel
            .iter()
            .map(|r| r.iter().cloned().map(QualityCell::bare).collect())
            .collect();
        TaggedRelation {
            schema: rel.schema().clone(),
            dict,
            rows,
            relation_tags: Vec::new(),
        }
    }

    /// Internal unchecked constructor for operator results.
    pub(crate) fn from_parts_unchecked(
        schema: Schema,
        dict: IndicatorDictionary,
        rows: Vec<TaggedRow>,
    ) -> Self {
        TaggedRelation {
            schema,
            dict,
            rows,
            relation_tags: Vec::new(),
        }
    }

    /// Application schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Indicator dictionary in force.
    pub fn dictionary(&self) -> &IndicatorDictionary {
        &self.dict
    }

    /// Rows.
    pub fn rows(&self) -> &[TaggedRow] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterator over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, TaggedRow> {
        self.rows.iter()
    }

    /// Validates and appends a row.
    pub fn push(&mut self, row: TaggedRow) -> DbResult<()> {
        let values: Row = row.iter().map(|c| c.value.clone()).collect();
        self.schema.check_row(&values)?;
        for cell in &row {
            for tag in cell.tags() {
                self.dict.check(tag)?;
            }
        }
        self.rows.push(row);
        Ok(())
    }

    /// Removes and returns row `row` in O(1) by swapping the last row
    /// into its place — the same positional-delete contract as
    /// `relstore::Table::delete`, so positional indexes fix themselves
    /// up by re-homing the moved last row.
    pub fn swap_remove(&mut self, row: usize) -> DbResult<TaggedRow> {
        if row >= self.rows.len() {
            return Err(DbError::IndexError(format!(
                "row {row} out of range ({} rows)",
                self.rows.len()
            )));
        }
        Ok(self.rows.swap_remove(row))
    }

    /// The cell at `(row, column-name)`.
    pub fn cell(&self, row: usize, column: &str) -> DbResult<&QualityCell> {
        let c = self.schema.resolve(column)?;
        self.rows
            .get(row)
            .map(|r| &r[c])
            .ok_or_else(|| DbError::InvalidExpression(format!("row index {row} out of range")))
    }

    /// Mutable cell access (for tagging in place).
    pub fn cell_mut(&mut self, row: usize, column: &str) -> DbResult<&mut QualityCell> {
        let c = self.schema.resolve(column)?;
        self.rows
            .get_mut(row)
            .map(|r| &mut r[c])
            .ok_or_else(|| DbError::InvalidExpression(format!("row index {row} out of range")))
    }

    /// Relation-level quality tags, sorted by indicator name.
    pub fn relation_tags(&self) -> &[IndicatorValue] {
        &self.relation_tags
    }

    /// Attaches (or replaces) a relation-level tag — §1.2: "the means by
    /// which a database table was populated may give some indication of
    /// its completeness."
    pub fn tag_relation(&mut self, tag: IndicatorValue) -> DbResult<()> {
        self.dict.check(&tag)?;
        match self
            .relation_tags
            .binary_search_by(|t| t.indicator.cmp(&tag.indicator))
        {
            Ok(i) => self.relation_tags[i] = tag,
            Err(i) => self.relation_tags.insert(i, tag),
        }
        Ok(())
    }

    /// The relation-level tag value for `indicator`; NULL when untagged.
    pub fn relation_tag_value(&self, indicator: &str) -> relstore::Value {
        self.relation_tags
            .iter()
            .find(|t| t.indicator == indicator)
            .map(|t| t.value.clone())
            .unwrap_or(relstore::Value::Null)
    }

    /// Tags one cell, validating against the dictionary.
    pub fn tag_cell(&mut self, row: usize, column: &str, tag: IndicatorValue) -> DbResult<()> {
        self.dict.check(&tag)?;
        self.cell_mut(row, column)?.set_tag(tag);
        Ok(())
    }

    /// Tags every cell of a column with the same indicator value — the
    /// common bulk case ("this whole column came from Nexis").
    ///
    /// Previously-untagged cells all point at **one** shared tag vector
    /// (a refcount bump per cell); cells that already carry tags merge
    /// the new tag into their own vector.
    pub fn tag_column(&mut self, column: &str, tag: IndicatorValue) -> DbResult<()> {
        self.dict.check(&tag)?;
        let c = self.schema.resolve(column)?;
        let shared = std::sync::Arc::new(vec![tag.clone()]);
        for row in &mut self.rows {
            if row[c].tag_count() == 0 {
                row[c].set_shared_tags(std::sync::Arc::clone(&shared));
            } else {
                row[c].set_tag(tag.clone());
            }
        }
        Ok(())
    }

    /// Strips all tags, yielding the plain application relation
    /// (the inverse of [`TaggedRelation::from_relation`]).
    pub fn strip(&self) -> Relation {
        let rows = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.value.clone()).collect())
            .collect();
        Relation::new(self.schema.clone(), rows).expect("tagged rows conform by construction")
    }

    /// Splits a pseudo-column name `col@indicator` into its parts.
    pub fn split_pseudo(name: &str) -> Option<(&str, &str)> {
        name.split_once(TAG_SEP)
    }

    /// The indicators actually used on a column across all rows, sorted.
    pub fn indicators_on(&self, column: &str) -> DbResult<Vec<String>> {
        let c = self.schema.resolve(column)?;
        let mut set = BTreeSet::new();
        for row in &self.rows {
            for t in row[c].tags() {
                set.insert(t.indicator.to_string());
            }
        }
        Ok(set.into_iter().collect())
    }

    /// Materializes the relation with tags expanded into pseudo-columns.
    /// `pairs` lists `(column, indicator)`; each contributes a column named
    /// `column@indicator` whose value is the tag value (NULL if untagged).
    pub fn expand(&self, pairs: &[(&str, &str)]) -> DbResult<Relation> {
        let mut cols: Vec<ColumnDef> = self.schema.columns().to_vec();
        let mut idx = Vec::with_capacity(pairs.len());
        for (col, ind) in pairs {
            let ci = self.schema.resolve(col)?;
            let dtype = self.dict.get(ind).map(|d| d.dtype).unwrap_or(DataType::Any);
            cols.push(ColumnDef::new(format!("{col}{TAG_SEP}{ind}"), dtype));
            idx.push((ci, (*ind).to_owned()));
        }
        let schema = Schema::new(cols)?;
        let mut rows = Vec::with_capacity(self.rows.len());
        for row in &self.rows {
            let mut out: Row = row.iter().map(|c| c.value.clone()).collect();
            for (ci, ind) in &idx {
                out.push(row[*ci].tag_value(ind));
            }
            rows.push(out);
        }
        Relation::new(schema, rows)
    }

    /// [`TaggedRelation::expand`] over every `(column, indicator)` pair
    /// present anywhere in the data, in schema-then-indicator order.
    pub fn expand_all(&self) -> DbResult<Relation> {
        let names: Vec<String> = self.schema.names().iter().map(|s| s.to_string()).collect();
        let mut pairs: Vec<(String, String)> = Vec::new();
        for col in &names {
            for ind in self.indicators_on(col)? {
                pairs.push((col.clone(), ind));
            }
        }
        let borrowed: Vec<(&str, &str)> =
            pairs.iter().map(|(c, i)| (c.as_str(), i.as_str())).collect();
        self.expand(&borrowed)
    }

    /// Renders in the paper's Table 2 layout: each cell as
    /// `value (tag, tag)`.
    pub fn to_paper_table(&self) -> String {
        let names = self.schema.names();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_paper_string()).collect())
            .collect();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        let sep = |out: &mut String| {
            out.push('+');
            for w in &widths {
                out.push_str(&"-".repeat(w + 2));
                out.push('+');
            }
            out.push('\n');
        };
        sep(&mut out);
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        sep(&mut out);
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        sep(&mut out);
        if !self.relation_tags.is_empty() {
            out.push_str("relation tags: ");
            for (i, t) in self.relation_tags.iter().enumerate() {
                if i > 0 {
                    out.push_str(", ");
                }
                out.push_str(&t.to_string());
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for TaggedRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_paper_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{Date, Value};

    /// The paper's Table 2, verbatim.
    pub(crate) fn table2() -> TaggedRelation {
        let schema = Schema::of(&[
            ("co_name", DataType::Text),
            ("address", DataType::Text),
            ("employees", DataType::Int),
        ]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let d = |s: &str| Value::Date(Date::parse(s).unwrap());
        let rows = vec![
            vec![
                QualityCell::bare("Fruit Co"),
                QualityCell::bare("12 Jay St")
                    .with_tag(IndicatorValue::new("creation_time", d("1-2-91")))
                    .with_tag(IndicatorValue::new("source", "sales")),
                QualityCell::bare(4004i64)
                    .with_tag(IndicatorValue::new("creation_time", d("10-3-91")))
                    .with_tag(IndicatorValue::new("source", "Nexis")),
            ],
            vec![
                QualityCell::bare("Nut Co"),
                QualityCell::bare("62 Lois Av")
                    .with_tag(IndicatorValue::new("creation_time", d("10-24-91")))
                    .with_tag(IndicatorValue::new("source", "acct'g")),
                QualityCell::bare(700i64)
                    .with_tag(IndicatorValue::new("creation_time", d("10-9-91")))
                    .with_tag(IndicatorValue::new("source", "estimate")),
            ],
        ];
        TaggedRelation::new(schema, dict, rows).unwrap()
    }

    #[test]
    fn construction_validates_values_and_tags() {
        let schema = Schema::of(&[("n", DataType::Int)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        // bad value type
        let bad = vec![vec![QualityCell::bare("text")]];
        assert!(TaggedRelation::new(schema.clone(), dict.clone(), bad).is_err());
        // undeclared indicator
        let bad = vec![vec![
            QualityCell::bare(1i64).with_tag(IndicatorValue::new("ghost", "x")),
        ]];
        assert!(TaggedRelation::new(schema.clone(), dict.clone(), bad).is_err());
        // mistyped tag value
        let bad = vec![vec![
            QualityCell::bare(1i64).with_tag(IndicatorValue::new("age", "old")),
        ]];
        assert!(TaggedRelation::new(schema, dict, bad).is_err());
    }

    #[test]
    fn cell_access_and_tagging() {
        let mut t = table2();
        assert_eq!(
            t.cell(1, "address").unwrap().tag_value("source"),
            Value::text("acct'g")
        );
        t.tag_cell(0, "co_name", IndicatorValue::new("source", "registry"))
            .unwrap();
        assert_eq!(
            t.cell(0, "co_name").unwrap().tag_value("source"),
            Value::text("registry")
        );
        assert!(t
            .tag_cell(0, "co_name", IndicatorValue::new("ghost", "x"))
            .is_err());
        assert!(t.cell(9, "co_name").is_err());
    }

    #[test]
    fn tag_column_bulk() {
        let mut t = table2();
        t.tag_column("co_name", IndicatorValue::new("collection_method", "registry import"))
            .unwrap();
        for i in 0..t.len() {
            assert_eq!(
                t.cell(i, "co_name").unwrap().tag_value("collection_method"),
                Value::text("registry import")
            );
        }
    }

    #[test]
    fn strip_recovers_table1() {
        let t = table2();
        let plain = t.strip();
        assert_eq!(plain.len(), 2);
        assert_eq!(plain.value_at(0, "employees").unwrap(), &Value::Int(4004));
        // round-trip: lifting the stripped relation gives bare cells
        let lifted = TaggedRelation::from_relation(&plain, t.dictionary().clone());
        assert_eq!(lifted.strip(), plain);
        assert!(lifted.rows()[0].iter().all(|c| c.tag_count() == 0));
    }

    #[test]
    fn indicators_on_column() {
        let t = table2();
        assert_eq!(
            t.indicators_on("address").unwrap(),
            vec!["creation_time".to_string(), "source".to_string()]
        );
        assert!(t.indicators_on("co_name").unwrap().is_empty());
        assert!(t.indicators_on("ghost").is_err());
    }

    #[test]
    fn expansion_creates_pseudo_columns() {
        let t = table2();
        let x = t
            .expand(&[("employees", "source"), ("employees", "creation_time")])
            .unwrap();
        assert_eq!(
            x.schema().names(),
            vec![
                "co_name",
                "address",
                "employees",
                "employees@source",
                "employees@creation_time"
            ]
        );
        assert_eq!(
            x.value_at(1, "employees@source").unwrap(),
            &Value::text("estimate")
        );
        // untagged pseudo-cells are NULL
        let x = t.expand(&[("co_name", "source")]).unwrap();
        assert!(x.value_at(0, "co_name@source").unwrap().is_null());
    }

    #[test]
    fn expand_all_covers_used_pairs() {
        let x = table2().expand_all().unwrap();
        assert_eq!(x.schema().arity(), 3 + 4); // address×2 + employees×2
    }

    #[test]
    fn pseudo_name_splitting() {
        assert_eq!(
            TaggedRelation::split_pseudo("price@age"),
            Some(("price", "age"))
        );
        assert_eq!(TaggedRelation::split_pseudo("price"), None);
    }

    #[test]
    fn relation_level_tags() {
        let t = table2();
        assert!(t.relation_tags().is_empty());
        assert!(t.relation_tag_value("population_method").is_null());
        // declare the table-level indicator, then tag the relation
        let mut dict = t.dictionary().clone();
        dict.declare(tagstore_test_def()).unwrap();
        let mut t = TaggedRelation::new(t.schema().clone(), dict, t.rows().to_vec()).unwrap();
        t.tag_relation(IndicatorValue::new(
            "population_method",
            "bulk import from sales ledger",
        ))
        .unwrap();
        assert_eq!(
            t.relation_tag_value("population_method"),
            Value::text("bulk import from sales ledger")
        );
        // replace
        t.tag_relation(IndicatorValue::new("population_method", "manual entry"))
            .unwrap();
        assert_eq!(t.relation_tags().len(), 1);
        // undeclared indicator rejected
        assert!(t.tag_relation(IndicatorValue::new("sparkle", "x")).is_err());
        // rendered as a footer
        let s = t.to_paper_table();
        assert!(s.contains("relation tags: population_method=manual entry"));
    }

    fn tagstore_test_def() -> crate::indicator::IndicatorDef {
        crate::indicator::IndicatorDef::new(
            "population_method",
            DataType::Text,
            "the means by which the table was populated (completeness proxy)",
        )
    }

    #[test]
    fn paper_table_rendering_matches_table2() {
        let s = table2().to_paper_table();
        assert!(s.contains("4004 (1991-10-03, Nexis)"), "got\n{s}");
        assert!(s.contains("62 Lois Av (1991-10-24, acct'g)"), "got\n{s}");
        assert!(s.contains("700 (1991-10-09, estimate)"), "got\n{s}");
    }
}
