//! `tagstore` — the attribute-based data quality model: cell-level quality
//! indicator tagging with a tag-propagating relational algebra.
//!
//! This crate implements the formal substrate the ICDE'93 paper builds on
//! (its reference \[28\], "Toward Quality Data: An Attribute-based
//! Approach"): every stored cell may carry *quality indicator values*
//! describing its manufacture — source, creation time, collection method —
//! recursively (indicators may themselves be tagged, Premise 1.4). The
//! algebra propagates tags through σ/π/⋈/∪/γ so that query results retain
//! the production history of each datum, and quality predicates over
//! `column@indicator` pseudo-columns filter data by quality at query time.
//!
//! ```
//! use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};
//! use tagstore::algebra::select;
//! use relstore::{Schema, DataType, Expr, Value};
//!
//! let schema = Schema::of(&[("address", DataType::Text)]);
//! let dict = IndicatorDictionary::with_paper_defaults();
//! let mut rel = TaggedRelation::empty(schema, dict);
//! rel.push(vec![QualityCell::bare("62 Lois Av")
//!     .with_tag(IndicatorValue::new("source", "acct'g"))]).unwrap();
//!
//! // Query-time quality filtering: only accounting-sourced addresses.
//! let trusted = select(&rel, &Expr::col("address@source").eq(Expr::lit("acct'g"))).unwrap();
//! assert_eq!(trusted.len(), 1);
//! ```

#![warn(missing_docs)]

pub mod algebra;
pub mod bitmap;
pub mod cell;
pub mod columnar;
pub mod epoch;
pub mod indicator;
pub mod relation;
pub mod store;
pub mod symbol;
pub mod vector;

pub use bitmap::{
    extract_atoms, extract_atoms_schema, Bitset, IndexedTaggedRelation, QualityAtom, QualityIndex,
};
pub use columnar::{
    hash_join_probe_columnar, project_columnar, select_columnar, select_indexed_columnar,
    ColumnarRelation,
};
pub use vector::{
    hash_join_probe_vectorized, project_vectorized, select_indexed_vectorized, select_vectorized,
    BatchStats, DEFAULT_BATCH_SIZE,
};
pub use cell::QualityCell;
pub use epoch::{EpochCell, Stamped};
pub use indicator::{IndicatorDef, IndicatorDictionary, IndicatorValue};
pub use symbol::Symbol;
pub use relation::{TaggedRelation, TaggedRow, TAG_SEP};
pub use store::{from_quality_store, to_quality_store, QualityStore, QKEY_SUFFIX};

#[cfg(test)]
mod proptests {
    //! Algebra laws under tagging.
    use crate::algebra::*;
    use crate::{IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};
    use proptest::prelude::*;
    use relstore::{DataType, Expr, Schema, Value};

    /// Arbitrary tagged relation over (k:Int, v:Int) with optional
    /// source/age tags on v.
    fn arb_tagged() -> impl Strategy<Value = TaggedRelation> {
        prop::collection::vec(
            (0i64..20, 0i64..20, prop::option::of("[a-c]"), prop::option::of(0i64..30)),
            0..30,
        )
        .prop_map(|rows| {
            let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
            let dict = IndicatorDictionary::with_paper_defaults();
            let rows = rows
                .into_iter()
                .map(|(k, v, src, age)| {
                    let mut cell = QualityCell::bare(v);
                    if let Some(s) = src {
                        cell.set_tag(IndicatorValue::new("source", s));
                    }
                    if let Some(a) = age {
                        cell.set_tag(IndicatorValue::new("age", a));
                    }
                    vec![QualityCell::bare(k), cell]
                })
                .collect();
            TaggedRelation::new(schema, dict, rows).unwrap()
        })
    }

    /// Arbitrary tagged relation over (k:Int, v:Int, t:Text) where v and
    /// t are nullable (possibly all-NULL), v carries optional
    /// source/age tags, and the t column is sometimes bulk-tagged so the
    /// columnar layout sees both long shared runs and per-cell runs.
    /// Row count starts at 0 to keep the empty relation in scope.
    fn arb_nullable() -> impl Strategy<Value = TaggedRelation> {
        (
            prop::collection::vec(
                (
                    0i64..20,
                    prop::option::of(0i64..20),
                    prop::option::of("[a-c]"),
                    prop::option::of(0i64..30),
                    prop::option::of("[a-d]{1,2}"),
                ),
                0..30,
            ),
            prop::bool::ANY,
        )
            .prop_map(|(rows, bulk)| {
                let schema = Schema::of(&[
                    ("k", DataType::Int),
                    ("v", DataType::Int),
                    ("t", DataType::Text),
                ]);
                let dict = IndicatorDictionary::with_paper_defaults();
                let rows = rows
                    .into_iter()
                    .map(|(k, v, src, age, t)| {
                        let mut cell =
                            QualityCell::bare(v.map(Value::Int).unwrap_or(Value::Null));
                        if let Some(s) = src {
                            cell.set_tag(IndicatorValue::new("source", s));
                        }
                        if let Some(a) = age {
                            cell.set_tag(IndicatorValue::new("age", a));
                        }
                        let t = QualityCell::bare(
                            t.map(Value::Text).unwrap_or(Value::Null),
                        );
                        vec![QualityCell::bare(k), cell, t]
                    })
                    .collect();
                let mut rel = TaggedRelation::new(schema, dict, rows).unwrap();
                if bulk {
                    rel.tag_column("t", IndicatorValue::new("collection_method", "scan"))
                        .unwrap();
                }
                rel
            })
    }

    proptest! {
        /// Stripping commutes with selection on application values:
        /// strip(σ_p(R)) = σ_p(strip(R)).
        #[test]
        fn strip_commutes_with_value_select(rel in arb_tagged(), c in 0i64..20) {
            let p = Expr::col("v").lt(Expr::lit(c));
            let lhs = select(&rel, &p).unwrap().strip();
            let rhs = relstore::algebra::select(&rel.strip(), &p).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        /// Selection never invents or mutates tags: every output row
        /// appears identically in the input.
        #[test]
        fn select_preserves_rows_exactly(rel in arb_tagged(), c in 0i64..20) {
            let p = Expr::col("k").ge(Expr::lit(c));
            let out = select(&rel, &p).unwrap();
            for row in out.iter() {
                prop_assert!(rel.iter().any(|r| r == row));
            }
        }

        /// Quality selection is a restriction of value rows: filtering on
        /// `v@age` returns a sub-bag of the input.
        #[test]
        fn quality_select_is_restriction(rel in arb_tagged(), c in 0i64..30) {
            let p = Expr::col("v@age").le(Expr::lit(c));
            let out = select(&rel, &p).unwrap();
            prop_assert!(out.len() <= rel.len());
            // every surviving row really satisfies the constraint
            for row in out.iter() {
                match row[1].tag_value("age") {
                    Value::Int(a) => prop_assert!(a <= c),
                    other => prop_assert!(false, "untagged row survived: {other:?}"),
                }
            }
        }

        /// distinct_merging collapses to the distinct count of values and
        /// is idempotent.
        #[test]
        fn distinct_merging_laws(rel in arb_tagged()) {
            let d = distinct_merging(&rel);
            let value_distinct = relstore::algebra::distinct(&rel.strip());
            prop_assert_eq!(d.len(), value_distinct.len());
            let dd = distinct_merging(&d);
            prop_assert_eq!(d.len(), dd.len());
        }

        /// Join tag propagation: strip(R ⋈ S) = strip(R) ⋈ strip(S).
        #[test]
        fn strip_commutes_with_join(a in arb_tagged(), b in arb_tagged()) {
            let tagged = hash_join(&a, &b, "k", "k").unwrap().strip();
            let plain = relstore::algebra::hash_join(
                &a.strip(), &b.strip(), "k", "k",
                relstore::algebra::JoinType::Inner).unwrap();
            let mut x = tagged.into_rows();
            let mut y = plain.into_rows();
            x.sort(); y.sort();
            prop_assert_eq!(x, y);
        }

        /// The quality-key storage form is lossless for arbitrary tagged
        /// relations: to_quality_store ∘ from_quality_store = id.
        #[test]
        fn quality_store_roundtrip(rel in arb_tagged()) {
            let store = crate::store::to_quality_store(&rel).unwrap();
            let back = crate::store::from_quality_store(
                &store, rel.dictionary().clone()).unwrap();
            prop_assert_eq!(back, rel);
        }

        /// expand_all never changes row count and prefixes the original
        /// application columns unchanged.
        #[test]
        fn expand_preserves_values(rel in arb_tagged()) {
            let x = rel.expand_all().unwrap();
            prop_assert_eq!(x.len(), rel.len());
            let stripped = rel.strip();
            for (er, sr) in x.iter().zip(stripped.iter()) {
                prop_assert_eq!(&er[..2], sr.as_slice());
            }
        }

        /// Parallel tag-propagating execution is invisible: σ (value and
        /// quality predicates), π, and ⋈ produce identical rows, order,
        /// and tags at thread counts 1, 2, and 8.
        #[test]
        fn parallel_equals_serial_with_tags(a in arb_tagged(), b in arb_tagged(), c in 0i64..30) {
            let vp = Expr::col("v").lt(Expr::lit(c));
            let qp = Expr::col("v@age").le(Expr::lit(c));
            let sel = select(&a, &vp).unwrap();
            let qsel = select(&a, &qp).unwrap();
            let proj = project(&a, &["v", "k"]).unwrap();
            let join = hash_join(&a, &b, "k", "k").unwrap();
            let mask = evaluate_mask(&a, &qp).unwrap();
            for threads in [1usize, 2, 8] {
                let (s, q, pj, j, m) = relstore::par::with_thread_count(threads, || {
                    (
                        select(&a, &vp).unwrap(),
                        select(&a, &qp).unwrap(),
                        project(&a, &["v", "k"]).unwrap(),
                        hash_join(&a, &b, "k", "k").unwrap(),
                        evaluate_mask(&a, &qp).unwrap(),
                    )
                });
                prop_assert_eq!(&s, &sel);
                prop_assert_eq!(&q, &qsel);
                prop_assert_eq!(&pj, &proj);
                prop_assert_eq!(&j, &join);
                prop_assert_eq!(&m, &mask);
            }
        }

        /// Vectorized batch execution is invisible: σ (value, quality,
        /// and mixed predicates, indexed and unindexed), π, and the ⋈
        /// probe produce rows, order, and cell-level tags identical to
        /// the row-at-a-time path at batch sizes 1, 7, and 1024 and at
        /// thread counts 1, 2, and 8.
        #[test]
        fn vectorized_equals_row_at_a_time(
            a in arb_tagged(),
            b in arb_tagged(),
            c in 0i64..30,
            s in "[a-c]",
        ) {
            let vp = Expr::col("v").lt(Expr::lit(c));
            let qp = Expr::col("v@age")
                .le(Expr::lit(c))
                .and(Expr::col("v@source").ne(Expr::lit(s)));
            let idx = crate::bitmap::QualityIndex::build(&a);
            let sel_v = select(&a, &vp).unwrap();
            let sel_q = select(&a, &qp).unwrap();
            let proj = project(&a, &["v", "k"]).unwrap();
            let join = hash_join(&a, &b, "k", "k").unwrap();
            let ri = b.schema().resolve("k").unwrap();
            let mut hidx = relstore::index::HashIndex::new(vec![ri]);
            for (pos, row) in b.iter().enumerate() {
                hidx.insert(&vec![row[ri].value.clone()], pos);
            }
            for threads in [1usize, 2, 8] {
                for bs in [1usize, 7, 1024] {
                    let (v, q, qi, pj, j) = relstore::par::with_thread_count(threads, || {
                        (
                            crate::vector::select_vectorized(&a, &vp, bs).unwrap().0,
                            crate::vector::select_vectorized(&a, &qp, bs).unwrap().0,
                            crate::vector::select_indexed_vectorized(&a, &idx, &qp, bs)
                                .unwrap()
                                .0,
                            crate::vector::project_vectorized(&a, &["v", "k"], bs).unwrap().0,
                            crate::vector::hash_join_probe_vectorized(
                                &a, &b, "k", "k", &hidx, bs,
                            )
                            .unwrap()
                            .0,
                        )
                    });
                    prop_assert_eq!(&v, &sel_v);
                    prop_assert_eq!(&q, &sel_q);
                    prop_assert_eq!(&qi, &sel_q);
                    prop_assert_eq!(&pj, &proj);
                    prop_assert_eq!(&j, &join);
                }
            }
        }

        /// The parallel bulk index build is bit-for-bit identical to the
        /// serial fold at 1, 2, and 8 threads.
        #[test]
        fn parallel_index_build_equals_serial(rel in arb_tagged()) {
            let serial = relstore::par::with_thread_count(1, || {
                crate::bitmap::QualityIndex::build(&rel)
            });
            for threads in [2usize, 8] {
                let par = relstore::par::with_thread_count(threads, || {
                    crate::bitmap::QualityIndex::build(&rel)
                });
                prop_assert_eq!(&par, &serial);
            }
        }

        /// Bitmap-indexed selection ≡ full-scan selection — identical
        /// rows, order, and tags — across eq/ne/range/BETWEEN/mixed
        /// predicate shapes, at 1, 2, and 8 threads.
        #[test]
        fn bitmap_select_equals_scan(rel in arb_tagged(), c in 0i64..30, s in "[a-c]") {
            let idx = crate::bitmap::QualityIndex::build(&rel);
            let preds = vec![
                Expr::col("v@source").eq(Expr::lit(s.clone())),
                Expr::col("v@source").ne(Expr::lit(s)),
                Expr::col("v@age").le(Expr::lit(c)),
                Expr::col("v@age").gt(Expr::lit(c)),
                Expr::Between(
                    Box::new(Expr::col("v@age")),
                    Box::new(Expr::lit(c - 10)),
                    Box::new(Expr::lit(c)),
                ),
                Expr::col("v@age")
                    .ge(Expr::lit(c))
                    .and(Expr::col("k").lt(Expr::lit(10i64))),
            ];
            for p in &preds {
                let scan = select(&rel, p).unwrap();
                for threads in [1usize, 2, 8] {
                    let (fast, _path) = relstore::par::with_thread_count(threads, || {
                        select_indexed(&rel, &idx, p).unwrap()
                    });
                    prop_assert_eq!(&fast, &scan);
                }
            }
        }

        /// The incrementally-maintained index (per-row note_row on push)
        /// is structurally identical to a bulk rebuild.
        #[test]
        fn bitmap_incremental_equals_rebuild(rel in arb_tagged()) {
            let mut inc = crate::bitmap::QualityIndex::new();
            for row in rel.iter() {
                inc.note_row(row);
            }
            prop_assert_eq!(inc, crate::bitmap::QualityIndex::build(&rel));
        }

        /// After arbitrary retagging through IndexedTaggedRelation, the
        /// maintained index still answers selections identically to a
        /// scan of the mutated relation.
        #[test]
        fn bitmap_retag_stays_consistent(
            rel in arb_tagged(),
            row in 0usize..30,
            a in 0i64..30,
            c in 0i64..30,
        ) {
            let mut ir = crate::bitmap::IndexedTaggedRelation::from_relation(rel);
            if !ir.is_empty() {
                let row = row % ir.len();
                ir.tag_cell(row, "v", IndicatorValue::new("age", a)).unwrap();
            }
            let p = Expr::col("v@age").le(Expr::lit(c));
            let (fast, _) = ir.select(&p).unwrap();
            prop_assert_eq!(fast, select(ir.relation(), &p).unwrap());
        }

        /// Arc-shared tags are an invisible storage optimization: a
        /// bulk-tagged column (one shared allocation across all rows)
        /// round-trips losslessly through the quality-key storage form,
        /// and equals the same relation tagged cell-by-cell.
        #[test]
        fn shared_tags_store_roundtrip(rel in arb_tagged(), s in "[a-c]") {
            let mut shared = rel.clone();
            shared.tag_column("k", IndicatorValue::new("source", s.clone())).unwrap();
            let mut cloned = rel;
            for i in 0..cloned.len() {
                cloned.tag_cell(i, "k", IndicatorValue::new("source", s.clone())).unwrap();
            }
            prop_assert_eq!(&shared, &cloned);
            let store = crate::store::to_quality_store(&shared).unwrap();
            let back = crate::store::from_quality_store(
                &store, shared.dictionary().clone()).unwrap();
            prop_assert_eq!(back, shared);
        }

        /// Interleaved push / swap_remove / tag_cell mutation schedules
        /// keep the incrementally-maintained bitmap index
        /// answer-equivalent to a bulk rebuild and to a full scan, at 1,
        /// 2, and 8 threads, with selectivity estimates staying finite
        /// in [0, 1].
        #[test]
        fn bitmap_interleaved_mutation_parity(
            rel in arb_tagged(),
            ops in prop::collection::vec(
                (0u8..4, 0i64..20, 0i64..30, "[a-c]", 0usize..30),
                0..40,
            ),
            c in 0i64..30,
            s in "[a-c]",
        ) {
            let mut ir = crate::bitmap::IndexedTaggedRelation::from_relation(rel);
            for (op, k, a, src, at) in ops {
                match op {
                    0 => {
                        let mut cell = QualityCell::bare(k + a);
                        cell.set_tag(IndicatorValue::new("source", src));
                        cell.set_tag(IndicatorValue::new("age", a));
                        ir.push(vec![QualityCell::bare(k), cell]).unwrap();
                    }
                    1 if !ir.is_empty() => {
                        ir.swap_remove(at % ir.len()).unwrap();
                    }
                    2 if !ir.is_empty() => {
                        let at = at % ir.len();
                        ir.tag_cell(at, "v", IndicatorValue::new("age", a)).unwrap();
                    }
                    3 if !ir.is_empty() => {
                        let at = at % ir.len();
                        ir.tag_cell(at, "v", IndicatorValue::new("source", src)).unwrap();
                    }
                    _ => {}
                }
            }
            prop_assert_eq!(ir.index().rows(), ir.len());
            let rebuilt = crate::bitmap::QualityIndex::build(ir.relation());
            let preds = vec![
                Expr::col("v@source").eq(Expr::lit(s.clone())),
                Expr::col("v@source").ne(Expr::lit(s)),
                Expr::col("v@age").le(Expr::lit(c)),
                Expr::col("v@age").gt(Expr::lit(c)),
                Expr::col("v@age")
                    .ge(Expr::lit(c))
                    .and(Expr::col("k").lt(Expr::lit(10i64))),
            ];
            for p in &preds {
                let scan = select(ir.relation(), p).unwrap();
                for threads in [1usize, 2, 8] {
                    let (inc, _) = relstore::par::with_thread_count(threads, || {
                        select_indexed(ir.relation(), ir.index(), p).unwrap()
                    });
                    let (reb, _) = relstore::par::with_thread_count(threads, || {
                        select_indexed(ir.relation(), &rebuilt, p).unwrap()
                    });
                    prop_assert_eq!(&inc, &scan);
                    prop_assert_eq!(&reb, &scan);
                }
                // Both indexes agree on estimates, which stay finite in
                // [0, 1] after arbitrary mutation.
                let (atoms, _rest) = crate::bitmap::extract_atoms(ir.relation(), p);
                if !atoms.is_empty() {
                    let ei = ir.index().estimate(&atoms);
                    let er = rebuilt.estimate(&atoms);
                    prop_assert_eq!(ei, er);
                    if let Some(e) = ei {
                        prop_assert!(e.is_finite() && (0.0..=1.0).contains(&e),
                            "estimate {} out of range", e);
                    }
                }
            }
        }

        /// Columnar conversion is lossless for arbitrary nullable tagged
        /// relations — values, NULL validity, relation tags, and
        /// cell-level tag `Arc` identity all survive
        /// from_tagged ∘ to_tagged, including the 0-row and all-NULL
        /// column edge cases.
        #[test]
        fn columnar_roundtrip(mut rel in arb_nullable(), s in "[a-c]") {
            rel.tag_relation(IndicatorValue::new("source", s)).unwrap();
            let c = crate::columnar::ColumnarRelation::from_tagged(&rel);
            let back = c.to_tagged();
            prop_assert_eq!(&back, &rel);
            prop_assert_eq!(back.relation_tags(), rel.relation_tags());
            for (orig, round) in rel.iter().zip(back.iter()) {
                for (a, b) in orig.iter().zip(round.iter()) {
                    if !a.tags().is_empty() {
                        prop_assert!(b.shares_tags_with(a),
                            "round trip must preserve tag Arc identity");
                    }
                }
            }
        }

        /// Columnar execution is invisible: σ (value, quality, and mixed
        /// predicates, indexed and unindexed), π, and the ⋈ probe over
        /// the columnar layout produce relations `to_tagged()`-equal to
        /// the row-at-a-time path at batch sizes 1, 7, and 1024 and at
        /// thread counts 1, 2, and 8 — over nullable columns.
        #[test]
        fn columnar_equals_row_at_a_time(
            a in arb_nullable(),
            b in arb_nullable(),
            c in 0i64..30,
            s in "[a-c]",
        ) {
            use crate::columnar::*;
            let vp = Expr::col("v").lt(Expr::lit(c));
            let qp = Expr::col("v@age")
                .le(Expr::lit(c))
                .and(Expr::col("v@source").ne(Expr::lit(s)));
            let tp = Expr::col("t").ge(Expr::lit("b"));
            let idx = crate::bitmap::QualityIndex::build(&a);
            let ca = ColumnarRelation::from_tagged(&a);
            let cb = ColumnarRelation::from_tagged(&b);
            let sel_v = select(&a, &vp).unwrap();
            let sel_q = select(&a, &qp).unwrap();
            let sel_t = select(&a, &tp).unwrap();
            let proj = project(&a, &["v", "k"]).unwrap();
            let join = hash_join(&a, &b, "k", "k").unwrap();
            let ri = b.schema().resolve("k").unwrap();
            let mut hidx = relstore::index::HashIndex::new(vec![ri]);
            for (pos, row) in b.iter().enumerate() {
                hidx.insert(&vec![row[ri].value.clone()], pos);
            }
            let pj = project_columnar(&ca, &["v", "k"]).unwrap();
            prop_assert_eq!(&pj.to_tagged(), &proj);
            for threads in [1usize, 2, 8] {
                for bs in [1usize, 7, 1024] {
                    let (v, q, qi, t, j) = relstore::par::with_thread_count(threads, || {
                        (
                            select_columnar(&ca, &vp, bs).unwrap().0,
                            select_columnar(&ca, &qp, bs).unwrap().0,
                            select_indexed_columnar(&ca, &idx, &qp, bs).unwrap().0,
                            select_columnar(&ca, &tp, bs).unwrap().0,
                            hash_join_probe_columnar(&ca, &cb, "k", "k", &hidx, bs)
                                .unwrap()
                                .0,
                        )
                    });
                    prop_assert_eq!(&v.to_tagged(), &sel_v);
                    prop_assert_eq!(&q.to_tagged(), &sel_q);
                    prop_assert_eq!(&qi.to_tagged(), &sel_q);
                    prop_assert_eq!(&t.to_tagged(), &sel_t);
                    prop_assert_eq!(&j.to_tagged(), &join);
                }
            }
        }

        /// The run-at-a-time columnar index build is bit-for-bit
        /// identical to the row-at-a-time build at 1, 2, and 8 threads.
        #[test]
        fn columnar_index_build_parity(rel in arb_nullable()) {
            let crel = crate::columnar::ColumnarRelation::from_tagged(&rel);
            let row_idx = relstore::par::with_thread_count(1, || {
                crate::bitmap::QualityIndex::build(&rel)
            });
            for threads in [1usize, 2, 8] {
                let col_idx = relstore::par::with_thread_count(threads, || crel.build_index());
                prop_assert_eq!(&col_idx, &row_idx);
            }
        }
    }
}
