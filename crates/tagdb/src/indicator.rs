//! Quality indicators and their values.
//!
//! A *quality indicator* is "a data dimension that provides objective
//! information about the data" (§1.3): source, creation time, collection
//! method, age, analyst name, media, inspection. An
//! [`IndicatorValue`] is "a measured characteristic of the stored data" —
//! e.g. indicator `source` with value `Wall Street Journal`.
//!
//! Premise 1.4 (recursive quality indicators — "what is the quality of the
//! quality indicator values?") is supported directly: every
//! [`IndicatorValue`] can itself carry meta-indicator values, to any depth,
//! using the same representation — exactly the design of the
//! attribute-based model \[28\] the paper defers to.

use crate::symbol::Symbol;
use relstore::{DataType, DbError, DbResult, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Declaration of an indicator: name, value domain, prose meaning.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IndicatorDef {
    /// Indicator name, e.g. `creation_time`, `source`, `collection_method`.
    pub name: String,
    /// Domain of the indicator's values (`Any` when open).
    pub dtype: DataType,
    /// What the indicator measures, for the requirements document.
    pub description: String,
}

impl IndicatorDef {
    /// Shorthand constructor.
    pub fn new(name: impl Into<String>, dtype: DataType, description: impl Into<String>) -> Self {
        IndicatorDef {
            name: name.into(),
            dtype,
            description: description.into(),
        }
    }
}

/// Registry of indicator declarations shared by a database's tagged
/// relations. Tagging with an undeclared indicator, or with a value
/// outside the declared domain, is rejected — the dictionary *is* the
/// operational form of the paper's quality schema at the storage layer.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IndicatorDictionary {
    defs: BTreeMap<String, IndicatorDef>,
}

impl IndicatorDictionary {
    /// Empty dictionary.
    pub fn new() -> Self {
        Self::default()
    }

    /// Declares an indicator. Redeclaring with an identical definition is
    /// a no-op; conflicting redeclaration is an error.
    pub fn declare(&mut self, def: IndicatorDef) -> DbResult<()> {
        if let Some(existing) = self.defs.get(&def.name) {
            if existing != &def {
                return Err(DbError::InvalidExpression(format!(
                    "indicator `{}` redeclared with a different definition",
                    def.name
                )));
            }
            return Ok(());
        }
        self.defs.insert(def.name.clone(), def);
        Ok(())
    }

    /// Looks up an indicator definition.
    pub fn get(&self, name: &str) -> Option<&IndicatorDef> {
        self.defs.get(name)
    }

    /// All declared indicator names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.defs.keys().map(String::as_str).collect()
    }

    /// Number of declared indicators.
    pub fn len(&self) -> usize {
        self.defs.len()
    }

    /// True iff no indicators are declared.
    pub fn is_empty(&self) -> bool {
        self.defs.is_empty()
    }

    /// Validates one indicator value (and, recursively, its meta tags).
    pub fn check(&self, iv: &IndicatorValue) -> DbResult<()> {
        let def = self.get(&iv.indicator).ok_or_else(|| {
            DbError::InvalidExpression(format!("undeclared indicator `{}`", iv.indicator))
        })?;
        if !iv.value.conforms_to(def.dtype) {
            return Err(DbError::TypeMismatch {
                expected: format!("{} for indicator `{}`", def.dtype, def.name),
                found: iv.value.type_name().into(),
            });
        }
        for meta in &iv.meta {
            self.check(meta)?;
        }
        Ok(())
    }

    /// Convenience bulk declaration of the paper's standard indicators.
    pub fn with_paper_defaults() -> Self {
        let mut d = Self::new();
        for (name, ty, desc) in [
            ("creation_time", DataType::Date, "when the datum was manufactured"),
            ("source", DataType::Text, "origin of the datum (department, vendor, publication)"),
            (
                "collection_method",
                DataType::Text,
                "means by which the datum was captured (phone, scanner, info service, ...)",
            ),
            ("age", DataType::Int, "days since manufacture at query time"),
            ("analyst", DataType::Text, "author of the research report (credibility indicator)"),
            ("media", DataType::Text, "storage format of a document (ASCII, bitmap, postscript)"),
            (
                "inspection",
                DataType::Text,
                "inspection/certification procedure applied to the datum",
            ),
        ] {
            d.declare(IndicatorDef::new(name, ty, desc))
                .expect("defaults are consistent");
        }
        d
    }
}

/// One tag: an indicator name, its measured value, and optional
/// meta-indicator values (Premise 1.4).
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub struct IndicatorValue {
    /// Which indicator this measures. Interned: clones are refcount
    /// bumps, comparisons are id compares.
    pub indicator: Symbol,
    /// The measured value.
    pub value: Value,
    /// Quality of the quality: meta-indicator values, recursively.
    pub meta: Vec<IndicatorValue>,
}

impl IndicatorValue {
    /// A leaf tag.
    pub fn new(indicator: impl Into<Symbol>, value: impl Into<Value>) -> Self {
        IndicatorValue {
            indicator: indicator.into(),
            value: value.into(),
            meta: Vec::new(),
        }
    }

    /// Adds a meta tag (builder style).
    pub fn with_meta(mut self, meta: IndicatorValue) -> Self {
        self.meta.push(meta);
        self
    }

    /// Depth of the meta-tag tree (a leaf tag has depth 1).
    pub fn depth(&self) -> usize {
        1 + self.meta.iter().map(IndicatorValue::depth).max().unwrap_or(0)
    }

    /// Finds a direct meta tag by indicator name.
    pub fn meta_tag(&self, indicator: &str) -> Option<&IndicatorValue> {
        self.meta.iter().find(|m| m.indicator == *indicator)
    }

    /// Finds a direct meta tag by interned symbol (id-compare, no byte
    /// comparison — the hot path for compiled quality predicates).
    pub fn meta_tag_sym(&self, indicator: &Symbol) -> Option<&IndicatorValue> {
        self.meta.iter().find(|m| &m.indicator == indicator)
    }
}

impl fmt::Display for IndicatorValue {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}={}", self.indicator, self.value)?;
        if !self.meta.is_empty() {
            write!(f, " [")?;
            for (i, m) in self.meta.iter().enumerate() {
                if i > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{m}")?;
            }
            write!(f, "]")?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::Date;

    #[test]
    fn declare_and_lookup() {
        let mut d = IndicatorDictionary::new();
        d.declare(IndicatorDef::new("source", DataType::Text, "origin"))
            .unwrap();
        assert!(d.get("source").is_some());
        assert!(d.get("ghost").is_none());
        assert_eq!(d.len(), 1);
        // idempotent redeclare
        d.declare(IndicatorDef::new("source", DataType::Text, "origin"))
            .unwrap();
        assert_eq!(d.len(), 1);
        // conflicting redeclare
        assert!(d
            .declare(IndicatorDef::new("source", DataType::Int, "origin"))
            .is_err());
    }

    #[test]
    fn check_validates_type_and_declaration() {
        let d = IndicatorDictionary::with_paper_defaults();
        assert!(d
            .check(&IndicatorValue::new("source", "acct'g"))
            .is_ok());
        assert!(d
            .check(&IndicatorValue::new("source", 42i64))
            .is_err());
        assert!(d
            .check(&IndicatorValue::new("undeclared", "x"))
            .is_err());
        assert!(d
            .check(&IndicatorValue::new(
                "creation_time",
                Value::Date(Date::parse("10-24-91").unwrap())
            ))
            .is_ok());
    }

    #[test]
    fn recursive_meta_tags() {
        let d = IndicatorDictionary::with_paper_defaults();
        // source tag whose own creation time is tagged — Premise 1.4
        let tag = IndicatorValue::new("source", "Nexis").with_meta(
            IndicatorValue::new(
                "creation_time",
                Value::Date(Date::parse("10-3-91").unwrap()),
            )
            .with_meta(IndicatorValue::new("source", "system clock")),
        );
        assert_eq!(tag.depth(), 3);
        assert!(d.check(&tag).is_ok());
        assert_eq!(
            tag.meta_tag("creation_time").unwrap().value,
            Value::Date(Date::parse("10-3-91").unwrap())
        );
        // invalid meta tag detected recursively
        let bad = IndicatorValue::new("source", "Nexis")
            .with_meta(IndicatorValue::new("age", "not a number"));
        assert!(d.check(&bad).is_err());
    }

    #[test]
    fn display_nested() {
        let tag = IndicatorValue::new("source", "WSJ")
            .with_meta(IndicatorValue::new("inspection", "certified"));
        assert_eq!(tag.to_string(), "source=WSJ [inspection=certified]");
    }

    #[test]
    fn paper_defaults_present() {
        let d = IndicatorDictionary::with_paper_defaults();
        for n in [
            "creation_time",
            "source",
            "collection_method",
            "age",
            "analyst",
            "media",
            "inspection",
        ] {
            assert!(d.get(n).is_some(), "missing default indicator {n}");
        }
    }
}
