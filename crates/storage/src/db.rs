//! [`DurableDb`]: the durable facade over the whole quality stack.
//!
//! One database directory holds WAL segments plus checkpoints covering
//! three kinds of state: plain `relstore` tables, `tagstore` tagged
//! relations (kept behind their quality bitmap indexes), and the
//! `dq-admin` audit trail. Every mutation is **applied first, logged
//! second**: the in-memory engine validates and performs the operation,
//! and only a successful operation is appended to the WAL — so every
//! logged record is one that once succeeded, and replaying the committed
//! prefix through the same code paths is deterministic redo.
//!
//! ## Recovery
//!
//! [`DurableDb::open`] loads the newest intact checkpoint, replays the
//! WAL records beyond its LSN (the log's torn tail, if any, was already
//! truncated by the scan), and only then builds the quality bitmap
//! indexes — one bulk [`QualityIndex::build`] per tagged relation
//! instead of per-record incremental upkeep.
//!
//! [`QualityIndex::build`]: tagstore::QualityIndex::build

use crate::buffer_pool::{BufferPool, LogGate, NoGate};
use crate::checkpoint::{self, CheckpointData, TaggedSnapshot};
use crate::fs::Fs;
use crate::paged::{PagedReadStats, PagedRelation};
use crate::record::WalRecord;
use crate::wal::{self, Wal, WalOptions};
use dq_admin::{AuditAction, AuditTrail};
use relstore::expr::BinOp;
use relstore::{Database, Date, DbError, DbResult, Expr, Row, Schema, Table, Value};
use std::collections::{BTreeMap, HashMap};
use std::sync::Arc;
use tagstore::bitmap::extract_atoms_schema;
use tagstore::{
    IndexedTaggedRelation, IndicatorDef, IndicatorDictionary, IndicatorValue, QualityIndex,
    TaggedRelation, TaggedRow,
};

/// Tuning knobs for a durable database.
#[derive(Debug, Clone)]
pub struct DurableOptions {
    /// WAL segment sizing.
    pub wal: WalOptions,
    /// When true, mutations only buffer WAL frames; durability waits for
    /// an explicit [`DurableDb::commit`] (one fsync covers the whole
    /// group). When false, every mutation commits immediately.
    pub group_commit: bool,
    /// Page size for paged relations (bytes; max 65536).
    pub page_size: usize,
    /// Buffer-pool budget in frames (clamped up to
    /// [`crate::buffer_pool::MIN_FRAMES`]) — total paged memory is
    /// `pool_pages × page_size` regardless of how large the paged
    /// relations grow.
    pub pool_pages: usize,
    /// Whether indexed paged reads may coalesce physically-contiguous
    /// page runs into single reads (sorted readahead). On by default;
    /// the off position exists for benchmarking the coalescing win.
    pub readahead: bool,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            wal: WalOptions::default(),
            group_commit: false,
            page_size: 16 * 1024,
            pool_pages: 256, // 4 MiB of paged memory by default
            readahead: true,
        }
    }
}

/// The write-ahead gate the buffer pool flushes behind: commits the WAL
/// (advancing the MVCC epoch exactly like [`DurableDb::commit`]) until
/// the page's LSN is durable. Borrows only the WAL and the epoch
/// counter, so paged relations and the pool stay independently
/// borrowable during an operation.
struct DbGate<'a> {
    wal: &'a mut Wal,
    epoch: &'a mut u64,
}

impl LogGate for DbGate<'_> {
    fn ensure_durable(&mut self, lsn: u64) -> DbResult<()> {
        if self.wal.durable_lsn() >= lsn {
            return Ok(());
        }
        let pending = self.wal.pending_records();
        self.wal.commit()?;
        if pending > 0 {
            // a forced early group commit still publishes its epoch —
            // same accounting as DurableDb::commit
            *self.epoch += 1;
            dq_obs::counter!("mvcc.epochs_published").incr();
        }
        if self.wal.durable_lsn() < lsn {
            return Err(DbError::Storage(format!(
                "write-ahead gate: lsn {lsn} still not durable after commit"
            )));
        }
        Ok(())
    }
}

/// What [`DurableDb::open`] did to get the database back.
#[derive(Debug, Clone, Default)]
pub struct RecoveryReport {
    /// Checkpoint file the state was loaded from, if any.
    pub checkpoint: Option<String>,
    /// LSN the checkpoint covered (0 when starting fresh).
    pub checkpoint_lsn: u64,
    /// WAL records replayed on top of the checkpoint.
    pub replayed_records: u64,
    /// Bytes of torn WAL tail truncated during the scan.
    pub truncated_bytes: u64,
    /// Quality bitmap indexes rebuilt (one per tagged relation).
    pub indexes_rebuilt: usize,
    /// MVCC epoch of the last committed record (checkpoint or WAL) —
    /// the epoch counter the recovered database resumes from.
    pub epoch: u64,
}

/// Derived access paths for one paged relation: the quality bitmap
/// index plus lazily-built per-column `col = literal` key hashes.
/// Never persisted — built on first indexed access (streaming the
/// relation once through the pool with scan admission) and maintained
/// incrementally by every subsequent mutation; recovery simply starts
/// with the cache empty and the WAL redo leaves the base relation to
/// rebuild from.
struct PagedIndexState {
    quality: QualityIndex,
    /// `column ordinal → (value → sorted row positions)`.
    keys: HashMap<usize, HashMap<Value, Vec<u64>>>,
}

/// A durable quality database: tables + tagged relations + audit trail,
/// all recovered from one directory on [`DurableDb::open`].
pub struct DurableDb {
    fs: Arc<dyn Fs>,
    wal: Wal,
    group_commit: bool,
    /// Committed MVCC epoch: records buffered toward the next commit are
    /// stamped `epoch + 1`; a successful commit advances this.
    epoch: u64,
    db: Database,
    tagged: BTreeMap<String, IndexedTaggedRelation>,
    audit: AuditTrail,
    pool: BufferPool,
    paged: BTreeMap<String, PagedRelation>,
    /// Derived indexes over `paged`, keyed by relation name.
    paged_index: BTreeMap<String, PagedIndexState>,
}

impl std::fmt::Debug for DurableDb {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DurableDb")
            .field("tables", &self.db.table_names())
            .field("tagged", &self.tagged.keys().collect::<Vec<_>>())
            .field("paged", &self.paged.keys().collect::<Vec<_>>())
            .field("audit_events", &self.audit.len())
            .field("wal", &self.wal)
            .finish()
    }
}

fn flatten_dict(dict: &IndicatorDictionary) -> Vec<IndicatorDef> {
    dict.names()
        .iter()
        .map(|n| dict.get(n).expect("listed name resolves").clone())
        .collect()
}

fn build_dict(defs: &[IndicatorDef]) -> DbResult<IndicatorDictionary> {
    let mut dict = IndicatorDictionary::new();
    for d in defs {
        dict.declare(d.clone())?;
    }
    Ok(dict)
}

/// Removes `pos` from the key-hash posting list for `v`, pruning empty
/// lists so probes for vanished values stay `None`.
fn remove_key_pos(hash: &mut HashMap<Value, Vec<u64>>, v: &Value, pos: u64) {
    if let Some(list) = hash.get_mut(v) {
        if let Ok(at) = list.binary_search(&pos) {
            list.remove(at);
        }
        if list.is_empty() {
            hash.remove(v);
        }
    }
}

/// First `col = literal` conjunct of `e` naming a plain (non-tag)
/// column of `schema`, if any — the key-hash access path. Only AND
/// spines are walked: under OR/NOT an equality is not a filter the
/// whole result must satisfy.
fn eq_conjunct(schema: &Schema, e: &Expr) -> Option<(usize, Value)> {
    match e {
        Expr::Bin(l, BinOp::And, r) => {
            eq_conjunct(schema, l).or_else(|| eq_conjunct(schema, r))
        }
        Expr::Bin(l, BinOp::Eq, r) => match (l.as_ref(), r.as_ref()) {
            (Expr::Col(c), Expr::Lit(v)) | (Expr::Lit(v), Expr::Col(c))
                if !c.contains('@') && !v.is_null() =>
            {
                schema.resolve(c).ok().map(|ci| (ci, v.clone()))
            }
            _ => None,
        },
        _ => None,
    }
}

/// Mutable state recovery applies records onto: tagged relations stay
/// *unindexed* until the very end.
struct Recovering {
    fs: Arc<dyn Fs>,
    db: Database,
    tagged: BTreeMap<String, TaggedRelation>,
    audit: AuditTrail,
    pool: BufferPool,
    paged: BTreeMap<String, PagedRelation>,
}

impl Recovering {
    fn from_checkpoint(
        fs: Arc<dyn Fs>,
        opts: &DurableOptions,
        data: CheckpointData,
    ) -> DbResult<Self> {
        let mut db = Database::new();
        for (name, schema, rows) in data.tables {
            db.create_table(&name, schema)?;
            db.table_mut(&name)?.bulk_load(rows)?;
        }
        let mut tagged = BTreeMap::new();
        for snap in data.tagged {
            let TaggedSnapshot {
                name,
                schema,
                dict,
                relation_tags,
                rows,
            } = snap;
            let mut rel = TaggedRelation::new(schema, build_dict(&dict)?, rows)?;
            for tag in relation_tags {
                rel.tag_relation(tag)?;
            }
            tagged.insert(name, rel);
        }
        let mut pool = BufferPool::new(opts.page_size, opts.pool_pages);
        pool.set_readahead(opts.readahead);
        let mut paged = BTreeMap::new();
        for snap in &data.paged {
            let rel =
                PagedRelation::restore(&mut pool, Arc::clone(&fs), snap, build_dict(&snap.dict)?);
            paged.insert(snap.name.clone(), rel);
        }
        let mut audit = AuditTrail::new();
        for e in data.audit_events {
            audit.replay(e);
        }
        Ok(Recovering {
            fs,
            db,
            tagged,
            audit,
            pool,
            paged,
        })
    }

    fn tagged_mut(&mut self, name: &str) -> DbResult<&mut TaggedRelation> {
        self.tagged
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Redo of one committed record — the recovery twin of the logged
    /// mutation methods on [`DurableDb`]. Paged mutations reuse the
    /// record's original `lsn` for page stamps, so rebuilt pages carry
    /// the same recovery positions as the originals.
    fn apply(&mut self, lsn: u64, rec: WalRecord) -> DbResult<()> {
        match rec {
            WalRecord::CreateTable { table, schema } => {
                self.db.create_table(&table, schema)?;
            }
            WalRecord::Insert { table, row } => {
                self.db.table_mut(&table)?.insert(row)?;
            }
            WalRecord::Update { table, pos, row } => {
                self.db.table_mut(&table)?.update(pos as usize, row)?;
            }
            WalRecord::Delete { table, pos } => {
                self.db.table_mut(&table)?.delete(pos as usize)?;
            }
            WalRecord::BulkLoad { table, rows } => {
                self.db.table_mut(&table)?.bulk_load(rows)?;
            }
            WalRecord::CreateTagged { name, schema, dict } => {
                if self.tagged.contains_key(&name) {
                    return Err(DbError::DuplicateTable(name));
                }
                self.tagged
                    .insert(name, TaggedRelation::empty(schema, build_dict(&dict)?));
            }
            WalRecord::TagPush { name, row } => {
                self.tagged_mut(&name)?.push(row)?;
            }
            WalRecord::TagCell {
                name,
                row,
                column,
                tag,
            } => {
                self.tagged_mut(&name)?.tag_cell(row as usize, &column, tag)?;
            }
            WalRecord::TagRemove { name, row } => {
                self.tagged_mut(&name)?.swap_remove(row as usize)?;
            }
            WalRecord::Audit { event } => {
                self.audit.replay(event);
            }
            WalRecord::PagedCreate { name, schema, dict } => {
                if self.paged.contains_key(&name) {
                    return Err(DbError::DuplicateTable(name));
                }
                let rel = PagedRelation::create(
                    &mut self.pool,
                    Arc::clone(&self.fs),
                    &name,
                    schema,
                    build_dict(&dict)?,
                );
                self.paged.insert(name, rel);
            }
            WalRecord::PagedPush { name, row } => {
                let rel = self
                    .paged
                    .get_mut(&name)
                    .ok_or(DbError::UnknownTable(name))?;
                rel.push(&mut self.pool, &mut NoGate, lsn, &row)?;
            }
            WalRecord::PagedTagCell {
                name,
                row,
                column,
                tag,
            } => {
                let rel = self
                    .paged
                    .get_mut(&name)
                    .ok_or(DbError::UnknownTable(name))?;
                rel.tag_cell(&mut self.pool, &mut NoGate, lsn, row, &column, tag)?;
            }
            WalRecord::PagedRemove { name, row } => {
                let rel = self
                    .paged
                    .get_mut(&name)
                    .ok_or(DbError::UnknownTable(name))?;
                rel.swap_remove(&mut self.pool, &mut NoGate, lsn, row)?;
            }
        }
        Ok(())
    }
}

impl DurableDb {
    /// Opens (recovering) the database stored under `fs`.
    ///
    /// Steps: load newest intact checkpoint → scan the WAL (truncating a
    /// torn tail) → redo records beyond the checkpoint LSN → rebuild
    /// quality bitmap indexes once.
    pub fn open(fs: Arc<dyn Fs>, opts: DurableOptions) -> DbResult<(DurableDb, RecoveryReport)> {
        let _t = dq_obs::histogram!("recovery.duration_us").start();
        dq_obs::counter!("recovery.runs").incr();

        let (ckpt_name, ckpt) = match checkpoint::load_latest(fs.as_ref())? {
            Some((name, data)) => (Some(name), data),
            None => (None, CheckpointData::default()),
        };
        let checkpoint_lsn = ckpt.last_lsn;
        let checkpoint_epoch = ckpt.epoch;
        let mut state = Recovering::from_checkpoint(Arc::clone(&fs), &opts, ckpt)?;

        let scan = wal::replay(fs.as_ref())?;
        let mut replayed = 0u64;
        for (lsn, _epoch, rec) in scan.records {
            if lsn <= checkpoint_lsn {
                continue; // already inside the checkpoint
            }
            state.apply(lsn, rec).map_err(|e| {
                DbError::Storage(format!("recovery: redo of WAL record lsn={lsn} failed: {e}"))
            })?;
            replayed += 1;
        }
        dq_obs::counter!("recovery.replay").add(replayed);
        dq_obs::counter!("recovery.truncated_bytes").add(scan.truncated_bytes);

        // Index build happens exactly once, after the full redo pass.
        let indexes_rebuilt = state.tagged.len();
        let tagged = {
            let _t = dq_obs::histogram!("recovery.index_rebuild_us").start();
            state
                .tagged
                .into_iter()
                .map(|(n, rel)| (n, IndexedTaggedRelation::from_relation(rel)))
                .collect()
        };

        let next_lsn = scan.next_lsn.max(checkpoint_lsn + 1);
        // the committed epoch is whichever authority saw it last: the
        // checkpoint (WAL pruned since) or the replayed log tail
        let epoch = checkpoint_epoch.max(scan.last_epoch);
        let wal = Wal::resume(Arc::clone(&fs), opts.wal.clone(), next_lsn, scan.tail);
        let report = RecoveryReport {
            checkpoint: ckpt_name,
            checkpoint_lsn,
            replayed_records: replayed,
            truncated_bytes: scan.truncated_bytes,
            indexes_rebuilt,
            epoch,
        };
        Ok((
            DurableDb {
                fs,
                wal,
                group_commit: opts.group_commit,
                epoch,
                db: state.db,
                tagged,
                audit: state.audit,
                pool: state.pool,
                paged: state.paged,
                // derived: rebuilt lazily on first indexed access
                paged_index: BTreeMap::new(),
            },
            report,
        ))
    }

    /// Opens a database directory on the real filesystem.
    pub fn open_dir(
        path: impl Into<std::path::PathBuf>,
        opts: DurableOptions,
    ) -> DbResult<(DurableDb, RecoveryReport)> {
        let fs = crate::fs::StdFs::open(path)?;
        DurableDb::open(Arc::new(fs), opts)
    }

    /// Appends to the WAL, stamped with the epoch the enclosing commit
    /// will publish (`epoch + 1`); under autocommit, also makes it
    /// durable (and advances the epoch).
    fn log(&mut self, rec: WalRecord) -> DbResult<()> {
        self.wal.append(&rec, self.epoch + 1);
        if !self.group_commit {
            self.commit()?;
        }
        Ok(())
    }

    /// Flushes buffered WAL frames with one fsync (the group commit)
    /// and advances the committed MVCC epoch if anything was pending.
    /// A no-op with nothing pending.
    pub fn commit(&mut self) -> DbResult<()> {
        let pending = self.wal.pending_records();
        self.wal.commit()?;
        if pending > 0 {
            self.epoch += 1;
            dq_obs::counter!("mvcc.epochs_published").incr();
        }
        Ok(())
    }

    // ---- plain tables ---------------------------------------------------

    /// Creates a plain table.
    pub fn create_table(&mut self, name: &str, schema: Schema) -> DbResult<()> {
        self.db.create_table(name, schema.clone())?;
        self.log(WalRecord::CreateTable {
            table: name.to_owned(),
            schema,
        })
    }

    /// Inserts a row, returning its position.
    pub fn insert(&mut self, table: &str, row: Row) -> DbResult<usize> {
        let pos = self.db.insert(table, row.clone())?;
        self.log(WalRecord::Insert {
            table: table.to_owned(),
            row,
        })?;
        Ok(pos)
    }

    /// Replaces the row at `pos`.
    pub fn update(&mut self, table: &str, pos: usize, row: Row) -> DbResult<()> {
        self.db.update(table, pos, row.clone())?;
        self.log(WalRecord::Update {
            table: table.to_owned(),
            pos: pos as u64,
            row,
        })
    }

    /// Deletes the row at `pos` (swap-remove), returning it.
    pub fn delete(&mut self, table: &str, pos: usize) -> DbResult<Row> {
        let removed = self.db.delete(table, pos)?;
        self.log(WalRecord::Delete {
            table: table.to_owned(),
            pos: pos as u64,
        })?;
        Ok(removed)
    }

    /// Bulk-loads a batch (indexes rebuilt once), returning rows added.
    pub fn bulk_load(&mut self, table: &str, rows: Vec<Row>) -> DbResult<usize> {
        let n = self.db.table_mut(table)?.bulk_load(rows.clone())?;
        self.log(WalRecord::BulkLoad {
            table: table.to_owned(),
            rows,
        })?;
        Ok(n)
    }

    // ---- tagged relations -----------------------------------------------

    /// Creates an empty tagged relation governed by `dict`.
    pub fn create_tagged(
        &mut self,
        name: &str,
        schema: Schema,
        dict: IndicatorDictionary,
    ) -> DbResult<()> {
        if self.tagged.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let defs = flatten_dict(&dict);
        let rel = TaggedRelation::empty(schema.clone(), dict);
        self.tagged
            .insert(name.to_owned(), IndexedTaggedRelation::from_relation(rel));
        self.log(WalRecord::CreateTagged {
            name: name.to_owned(),
            schema,
            dict: defs,
        })
    }

    fn tagged_mut(&mut self, name: &str) -> DbResult<&mut IndexedTaggedRelation> {
        self.tagged
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Appends a tagged row (validated, incrementally indexed).
    pub fn push(&mut self, name: &str, row: TaggedRow) -> DbResult<()> {
        self.tagged_mut(name)?.push(row.clone())?;
        self.log(WalRecord::TagPush {
            name: name.to_owned(),
            row,
        })
    }

    /// Tags one cell of a tagged relation.
    pub fn tag_cell(
        &mut self,
        name: &str,
        row: usize,
        column: &str,
        tag: IndicatorValue,
    ) -> DbResult<()> {
        self.tagged_mut(name)?.tag_cell(row, column, tag.clone())?;
        self.log(WalRecord::TagCell {
            name: name.to_owned(),
            row: row as u64,
            column: column.to_owned(),
            tag,
        })
    }

    /// Removes row `row` from a tagged relation (swap-remove).
    pub fn swap_remove(&mut self, name: &str, row: usize) -> DbResult<TaggedRow> {
        let removed = self.tagged_mut(name)?.swap_remove(row)?;
        self.log(WalRecord::TagRemove {
            name: name.to_owned(),
            row: row as u64,
        })?;
        Ok(removed)
    }

    // ---- paged relations ------------------------------------------------
    //
    // Paged mutations are **log-then-apply** (the reverse of the in-memory
    // tables): validation runs first against the schema/dictionary, the
    // WAL record is appended, and only then is the page mutation applied,
    // stamped with the record's LSN. The order matters — applying first
    // could evict a dirty page stamped with an LSN the log does not hold
    // yet, and the write-ahead gate would deadlock on it.

    /// Creates an empty paged relation governed by `dict`. Rows live in
    /// slotted pages behind the buffer pool, so the relation can grow
    /// past the pool budget (and past RAM).
    pub fn create_paged(
        &mut self,
        name: &str,
        schema: Schema,
        dict: IndicatorDictionary,
    ) -> DbResult<()> {
        if self.paged.contains_key(name) {
            return Err(DbError::DuplicateTable(name.to_owned()));
        }
        let defs = flatten_dict(&dict);
        self.wal.append(
            &WalRecord::PagedCreate {
                name: name.to_owned(),
                schema: schema.clone(),
                dict: defs,
            },
            self.epoch + 1,
        );
        let rel = PagedRelation::create(&mut self.pool, Arc::clone(&self.fs), name, schema, dict);
        self.paged.insert(name.to_owned(), rel);
        self.autocommit()
    }

    fn paged_ref(&self, name: &str) -> DbResult<&PagedRelation> {
        self.paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Appends a row to a paged relation.
    pub fn paged_push(&mut self, name: &str, row: TaggedRow) -> DbResult<()> {
        let rel = self
            .paged
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        rel.validate_push(&self.pool, &row)?;
        let lsn = self.wal.append(
            &WalRecord::PagedPush {
                name: name.to_owned(),
                row: row.clone(),
            },
            self.epoch + 1,
        );
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.push(&mut self.pool, &mut gate, lsn, &row)?;
        let pos = rel.len() - 1;
        if let Some(st) = self.paged_index.get_mut(name) {
            st.quality.note_row(&row);
            for (&ci, hash) in st.keys.iter_mut() {
                hash.entry(row[ci].value.clone()).or_default().push(pos);
            }
        }
        self.autocommit()
    }

    /// Tags one cell of a paged relation.
    pub fn paged_tag_cell(
        &mut self,
        name: &str,
        row: u64,
        column: &str,
        tag: IndicatorValue,
    ) -> DbResult<()> {
        let rel = self
            .paged
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        rel.validate_tag(row, column, &tag)?;
        // index upkeep needs the tag value being replaced (if any) — read
        // it before the mutation, only when an index exists to maintain
        let retag = if self.paged_index.contains_key(name) {
            let ci = rel.schema().resolve(column)?;
            let mut gate = DbGate {
                wal: &mut self.wal,
                epoch: &mut self.epoch,
            };
            let cur = rel.row(&mut self.pool, &mut gate, row)?;
            let old = cur[ci]
                .tags()
                .iter()
                .find(|t| t.indicator == tag.indicator)
                .map(|t| t.value.clone());
            Some((ci, old, tag.indicator.clone(), tag.value.clone()))
        } else {
            None
        };
        let lsn = self.wal.append(
            &WalRecord::PagedTagCell {
                name: name.to_owned(),
                row,
                column: column.to_owned(),
                tag: tag.clone(),
            },
            self.epoch + 1,
        );
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.tag_cell(&mut self.pool, &mut gate, lsn, row, column, tag)?;
        if let Some((ci, old, indicator, value)) = retag {
            let st = self.paged_index.get_mut(name).expect("checked above");
            st.quality.retag(row as usize, ci, old.as_ref(), &indicator, &value);
            // key hashes index base values only — tagging changes none
        }
        self.autocommit()
    }

    /// Removes row `row` from a paged relation (swap-remove), returning
    /// the removed row.
    pub fn paged_swap_remove(&mut self, name: &str, row: u64) -> DbResult<TaggedRow> {
        let rel = self
            .paged
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        rel.check_pos(row)?;
        let last = rel.len() - 1;
        // key-hash upkeep needs the values of the row that swaps into
        // `row`'s position — read them before the mutation
        let moved = if row != last
            && self.paged_index.get(name).is_some_and(|st| !st.keys.is_empty())
        {
            let mut gate = DbGate {
                wal: &mut self.wal,
                epoch: &mut self.epoch,
            };
            Some(rel.row(&mut self.pool, &mut gate, last)?)
        } else {
            None
        };
        let lsn = self.wal.append(
            &WalRecord::PagedRemove {
                name: name.to_owned(),
                row,
            },
            self.epoch + 1,
        );
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        let removed = rel.swap_remove(&mut self.pool, &mut gate, lsn, row)?;
        if let Some(st) = self.paged_index.get_mut(name) {
            st.quality.delete_row(row as usize);
            for (&ci, hash) in st.keys.iter_mut() {
                remove_key_pos(hash, &removed[ci].value, row);
                if let Some(moved) = &moved {
                    // the former last row now lives at `row`
                    remove_key_pos(hash, &moved[ci].value, last);
                    let list = hash.entry(moved[ci].value.clone()).or_default();
                    if let Err(at) = list.binary_search(&row) {
                        list.insert(at, row);
                    }
                }
            }
        }
        self.autocommit()?;
        Ok(removed)
    }

    /// Row count of a paged relation.
    pub fn paged_len(&self, name: &str) -> DbResult<u64> {
        Ok(self.paged_ref(name)?.len())
    }

    /// One row of a paged relation. Needs `&mut self`: the read may pull
    /// pages into the pool (and evict dirty ones through the WAL gate).
    pub fn paged_row(&mut self, name: &str, row: u64) -> DbResult<TaggedRow> {
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.row(&mut self.pool, &mut gate, row)
    }

    /// Quality-predicate selection over a paged relation, streamed
    /// through the pool; only matching rows are materialized.
    pub fn paged_select(&mut self, name: &str, expr: &relstore::Expr) -> DbResult<TaggedRelation> {
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.select(&mut self.pool, &mut gate, expr)
    }

    /// Ensures the quality bitmap index for paged relation `name` exists,
    /// building it with one streaming pass (scan admission — the build
    /// cannot evict the hot set) if this is the first indexed access.
    fn ensure_paged_index(&mut self, name: &str) -> DbResult<()> {
        if self.paged_index.contains_key(name) {
            return Ok(());
        }
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        let _t = dq_obs::histogram!("storage.paged.index_build_us").start();
        dq_obs::counter!("storage.paged.index_builds").incr();
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        let mut quality = QualityIndex::new();
        rel.for_each_row(&mut self.pool, &mut gate, |_, row| {
            quality.note_row(&row);
            Ok(())
        })?;
        self.paged_index.insert(
            name.to_owned(),
            PagedIndexState {
                quality,
                keys: HashMap::new(),
            },
        );
        Ok(())
    }

    /// Ensures the `col = literal` key hash for column `ci` of paged
    /// relation `name` exists (requires the quality index to exist).
    fn ensure_paged_key_hash(&mut self, name: &str, ci: usize) -> DbResult<()> {
        if self
            .paged_index
            .get(name)
            .is_some_and(|st| st.keys.contains_key(&ci))
        {
            return Ok(());
        }
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        dq_obs::counter!("storage.paged.key_hash_builds").incr();
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        let mut hash: HashMap<Value, Vec<u64>> = HashMap::new();
        rel.for_each_row(&mut self.pool, &mut gate, |pos, row| {
            hash.entry(row[ci].value.clone()).or_default().push(pos);
            Ok(())
        })?;
        self.paged_index
            .get_mut(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?
            .keys
            .insert(ci, hash);
        Ok(())
    }

    /// Planner statistics for a quality predicate over a paged relation:
    /// the index-answerable atoms (rendered) and the estimated
    /// selectivity of their conjunction. Builds the quality index on
    /// first use; `Ok(None)` when nothing in `expr` is index-answerable.
    pub fn paged_access_estimate(
        &mut self,
        name: &str,
        expr: &Expr,
    ) -> DbResult<Option<(Vec<String>, f64)>> {
        self.ensure_paged_index(name)?;
        let rel = self.paged_ref(name)?;
        let (atoms, _residual) = extract_atoms_schema(rel.schema(), expr);
        if atoms.is_empty() {
            return Ok(None);
        }
        let st = self.paged_index.get(name).expect("just built");
        let Some(est) = st.quality.estimate(&atoms) else {
            return Ok(None);
        };
        Ok(Some((atoms.iter().map(ToString::to_string).collect(), est)))
    }

    /// Index-driven quality selection over a paged relation: bitmap
    /// candidates (and the `col = literal` key hash, when the predicate
    /// carries such a conjunct) shrink the read set to the heap pages
    /// the candidates live on; everything else is skipped. Falls back to
    /// the streaming full scan when nothing is index-answerable. The
    /// result is byte-identical to [`DurableDb::paged_select`].
    pub fn paged_select_indexed(
        &mut self,
        name: &str,
        expr: &Expr,
    ) -> DbResult<(TaggedRelation, PagedReadStats)> {
        self.ensure_paged_index(name)?;
        let schema = self.paged_ref(name)?.schema().clone();
        let (atoms, _residual) = extract_atoms_schema(&schema, expr);
        let eq = eq_conjunct(&schema, expr);
        if let Some((ci, _)) = &eq {
            self.ensure_paged_key_hash(name, *ci)?;
        }
        let st = self.paged_index.get(name).expect("just built");
        let bitmap = if atoms.is_empty() {
            None
        } else {
            st.quality.candidates(&atoms)
        };
        let key: Option<Vec<u64>> = eq.map(|(ci, v)| {
            st.keys[&ci].get(&v).cloned().unwrap_or_default() // absent value ⇒ no rows
        });
        let positions: Vec<u64> = match (bitmap, key) {
            (Some(bs), Some(kp)) => kp
                .into_iter()
                .filter(|&p| bs.contains(p as usize))
                .collect(),
            (Some(bs), None) => bs.iter_ones().map(|p| p as u64).collect(),
            (None, Some(kp)) => kp,
            (None, None) => {
                // nothing index-answerable: stream the full scan
                dq_obs::counter!("storage.paged.index_fallbacks").incr();
                let rel = self.paged_ref(name)?;
                let (heap_pages, _) = rel.pages(&self.pool);
                let candidate_rows = rel.len();
                let out = self.paged_select(name, expr)?;
                let stats = PagedReadStats {
                    candidate_rows,
                    candidate_pages: heap_pages as u64,
                    rows_out: out.len() as u64,
                    ..Default::default()
                };
                return Ok((out, stats));
            }
        };
        dq_obs::counter!("storage.paged.index_scans").incr();
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.select_at(&mut self.pool, &mut gate, &positions, Some(expr))
    }

    /// Schema of a paged relation.
    pub fn paged_schema(&self, name: &str) -> DbResult<&Schema> {
        Ok(self.paged_ref(name)?.schema())
    }

    /// Materializes a whole paged relation in memory (parity checks and
    /// small relations — defeats the point at scale).
    pub fn paged_to_relation(&mut self, name: &str) -> DbResult<TaggedRelation> {
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.to_relation(&mut self.pool, &mut gate)
    }

    /// Streams every row of a paged relation through `f` in positional
    /// order without materializing the relation.
    pub fn paged_for_each(
        &mut self,
        name: &str,
        f: impl FnMut(u64, TaggedRow) -> DbResult<()>,
    ) -> DbResult<()> {
        let rel = self
            .paged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))?;
        let mut gate = DbGate {
            wal: &mut self.wal,
            epoch: &mut self.epoch,
        };
        rel.for_each_row(&mut self.pool, &mut gate, f)
    }

    /// Names of all paged relations, sorted.
    pub fn paged_names(&self) -> Vec<&str> {
        self.paged.keys().map(String::as_str).collect()
    }

    /// Pages currently resident in the buffer pool (diagnostics).
    pub fn pool_resident(&self) -> usize {
        self.pool.resident().len()
    }

    /// `(heap, directory)` logical page counts of a paged relation —
    /// what a pool budget is sized against.
    pub fn paged_pages(&self, name: &str) -> DbResult<(u32, u32)> {
        Ok(self.paged_ref(name)?.pages(&self.pool))
    }

    fn autocommit(&mut self) -> DbResult<()> {
        if !self.group_commit {
            self.commit()?;
        }
        Ok(())
    }

    // ---- audit trail ----------------------------------------------------

    /// Records an audit event on the durable trail, returning its
    /// sequence number.
    #[allow(clippy::too_many_arguments)]
    pub fn audit(
        &mut self,
        date: Date,
        actor: impl Into<String>,
        action: AuditAction,
        table: impl Into<String>,
        row_key: Vec<Value>,
        column: Option<&str>,
        detail: impl Into<String>,
    ) -> DbResult<u64> {
        let seq = self
            .audit
            .record(date, actor, action, table, row_key, column, detail);
        let event = self
            .audit
            .events()
            .last()
            .expect("just recorded")
            .clone();
        self.log(WalRecord::Audit { event })?;
        Ok(seq)
    }

    // ---- checkpointing --------------------------------------------------

    /// Writes a checkpoint covering everything committed so far, prunes
    /// older checkpoints and fully-covered WAL segments, and returns the
    /// checkpoint file name. Pending group-commit frames are flushed
    /// first so the snapshot never claims an LSN it doesn't contain.
    ///
    /// Paged relations make this a **dirty-page checkpoint**: only pages
    /// dirtied since the last checkpoint are written (to shadow slots —
    /// never over a slot the previous manifest references), the files
    /// are fsynced, and the new manifest rides inside the checkpoint
    /// file. Cost is proportional to the dirty set, not the database.
    /// Only after the checkpoint is durable does [`BufferPool::publish`]
    /// commit the shadow slots and free the superseded ones.
    pub fn checkpoint(&mut self) -> DbResult<String> {
        let _t = dq_obs::histogram!("storage.checkpoint.duration_us").start();
        self.commit()?;
        let flushed = {
            let mut gate = DbGate {
                wal: &mut self.wal,
                epoch: &mut self.epoch,
            };
            self.pool.flush_all(&mut gate)?
        };
        self.pool.sync_files()?;
        dq_obs::counter!("storage.checkpoint.pages_flushed").add(flushed);
        let data = self.snapshot_data();
        let name = checkpoint::write(self.fs.as_ref(), &data)?;
        checkpoint::prune(self.fs.as_ref(), &name)?;
        self.wal.rotate()?;
        self.wal.prune_before_current()?;
        self.pool.publish();
        Ok(name)
    }

    fn snapshot_data(&self) -> CheckpointData {
        let tables = self
            .db
            .table_names()
            .into_iter()
            .map(|name| {
                let t = self.db.table(name).expect("listed name resolves");
                (name.to_owned(), t.schema().clone(), t.rows().to_vec())
            })
            .collect();
        let tagged = self
            .tagged
            .iter()
            .map(|(name, itr)| {
                let rel = itr.relation();
                TaggedSnapshot {
                    name: name.clone(),
                    schema: rel.schema().clone(),
                    dict: flatten_dict(rel.dictionary()),
                    relation_tags: rel.relation_tags().to_vec(),
                    rows: rel.rows().to_vec(),
                }
            })
            .collect();
        let paged = self
            .paged
            .values()
            .map(|rel| rel.snapshot(&self.pool))
            .collect();
        CheckpointData {
            last_lsn: self.wal.last_lsn(),
            epoch: self.epoch,
            tables,
            tagged,
            paged,
            audit_next_seq: self.audit.events().last().map_or(0, |e| e.seq + 1),
            audit_events: self.audit.events().to_vec(),
        }
    }

    // ---- accessors ------------------------------------------------------

    /// The relational catalog (read-only; mutate through [`DurableDb`]).
    pub fn database(&self) -> &Database {
        &self.db
    }

    /// One plain table.
    pub fn table(&self, name: &str) -> DbResult<&Table> {
        self.db.table(name)
    }

    /// One tagged relation with its quality bitmap index.
    pub fn tagged(&self, name: &str) -> DbResult<&IndexedTaggedRelation> {
        self.tagged
            .get(name)
            .ok_or_else(|| DbError::UnknownTable(name.to_owned()))
    }

    /// Names of all tagged relations, sorted.
    pub fn tagged_names(&self) -> Vec<&str> {
        self.tagged.keys().map(String::as_str).collect()
    }

    /// The audit trail (lineage queries live here).
    pub fn audit_trail(&self) -> &AuditTrail {
        &self.audit
    }

    /// LSN of the last appended record.
    pub fn last_lsn(&self) -> u64 {
        self.wal.last_lsn()
    }

    /// The committed MVCC epoch: records buffered toward the next
    /// commit will become visible at `epoch() + 1`.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// WAL records buffered but not yet committed (group-commit mode).
    pub fn pending_records(&self) -> u64 {
        self.wal.pending_records()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use relstore::DataType;
    use tagstore::QualityCell;

    fn open(fs: &MemFs, group_commit: bool) -> (DurableDb, RecoveryReport) {
        DurableDb::open(
            Arc::new(fs.clone()),
            DurableOptions {
                group_commit,
                ..Default::default()
            },
        )
        .unwrap()
    }

    fn seed(db: &mut DurableDb) {
        db.create_table(
            "company",
            Schema::of(&[("ticker", DataType::Text), ("price", DataType::Float)]),
        )
        .unwrap();
        db.insert("company", vec![Value::text("FRT"), Value::Float(10.0)])
            .unwrap();
        db.insert("company", vec![Value::text("NUT"), Value::Float(20.0)])
            .unwrap();
        db.create_tagged(
            "stock",
            Schema::of(&[("name", DataType::Text), ("employees", DataType::Int)]),
            IndicatorDictionary::with_paper_defaults(),
        )
        .unwrap();
        db.push(
            "stock",
            vec![
                QualityCell::bare("Fruit Co"),
                QualityCell::bare(4004i64).with_tag(IndicatorValue::new("source", "Nexis")),
            ],
        )
        .unwrap();
        db.audit(
            Date::parse("10-24-91").unwrap(),
            "acct'g",
            AuditAction::Create,
            "stock",
            vec![Value::text("Fruit Co")],
            None,
            "row created",
        )
        .unwrap();
    }

    #[test]
    fn state_survives_clean_restart() {
        let fs = MemFs::new();
        let (mut db, report) = open(&fs, false);
        assert_eq!(report.replayed_records, 0);
        seed(&mut db);
        drop(db);
        fs.crash(); // autocommit: everything was fsynced

        let (db, report) = open(&fs, false);
        assert_eq!(report.replayed_records, 6);
        // autocommit: one epoch per record, restored from the log
        assert_eq!(report.epoch, 6);
        assert_eq!(db.epoch(), 6);
        assert_eq!(db.table("company").unwrap().len(), 2);
        let stock = db.tagged("stock").unwrap();
        assert_eq!(stock.len(), 1);
        assert_eq!(
            stock.relation().cell(0, "employees").unwrap().tag_value("source"),
            Value::text("Nexis")
        );
        assert_eq!(
            db.audit_trail()
                .lineage("stock", &[Value::text("Fruit Co")])
                .len(),
            1
        );
    }

    #[test]
    fn uncommitted_group_is_lost_committed_group_survives() {
        let fs = MemFs::new();
        let (mut db, _) = open(&fs, true);
        seed(&mut db);
        db.commit().unwrap();
        // one group commit covering the whole seed: one epoch
        assert_eq!(db.epoch(), 1);
        db.insert("company", vec![Value::text("BLT"), Value::Float(1.0)])
            .unwrap();
        assert_eq!(db.pending_records(), 1);
        // crash before commit: the last insert must vanish
        drop(db);
        fs.crash();
        let (db, report) = open(&fs, true);
        assert_eq!(db.table("company").unwrap().len(), 2);
        assert_eq!(report.epoch, 1);
    }

    #[test]
    fn checkpoint_then_tail_replay() {
        let fs = MemFs::new();
        let (mut db, _) = open(&fs, false);
        seed(&mut db);
        db.checkpoint().unwrap();
        // post-checkpoint tail
        db.update("company", 0, vec![Value::text("FRT"), Value::Float(11.0)])
            .unwrap();
        db.delete("company", 1).unwrap();
        db.tag_cell(
            "stock",
            0,
            "name",
            IndicatorValue::new("source", "registry"),
        )
        .unwrap();
        drop(db);
        fs.crash();

        let (db, report) = open(&fs, false);
        assert!(report.checkpoint.is_some());
        assert_eq!(report.checkpoint_lsn, 6);
        assert_eq!(report.replayed_records, 3);
        // 6 epochs inside the checkpoint + 3 replayed from the tail
        assert_eq!(report.epoch, 9);
        assert_eq!(db.epoch(), 9);
        let company = db.table("company").unwrap();
        assert_eq!(company.len(), 1);
        assert_eq!(company.rows()[0][1], Value::Float(11.0));
        assert_eq!(
            db.tagged("stock")
                .unwrap()
                .relation()
                .cell(0, "name")
                .unwrap()
                .tag_value("source"),
            Value::text("registry")
        );
    }

    #[test]
    fn checkpoint_prunes_wal_and_older_checkpoints() {
        let fs = MemFs::new();
        let (mut db, _) = open(&fs, false);
        seed(&mut db);
        db.checkpoint().unwrap();
        db.insert("company", vec![Value::text("BLT"), Value::Float(1.0)])
            .unwrap();
        db.checkpoint().unwrap();
        let files = fs.list().unwrap();
        let ckpts = files.iter().filter(|n| n.starts_with("ckpt-")).count();
        let wals = files.iter().filter(|n| n.starts_with("wal-")).count();
        assert_eq!(ckpts, 1, "old checkpoints pruned: {files:?}");
        assert_eq!(wals, 0, "covered WAL segments pruned: {files:?}");
        // and the database still opens with zero replay
        let (db, report) = open(&fs, false);
        assert_eq!(report.replayed_records, 0);
        assert_eq!(db.table("company").unwrap().len(), 3);
        // LSNs continue past the checkpoint after a pruned-log reopen
        assert_eq!(db.last_lsn(), report.checkpoint_lsn);
        // with the WAL pruned, the checkpoint is the epoch authority
        assert_eq!(db.epoch(), 7);
    }

    #[test]
    fn rebuilt_index_matches_scratch_build() {
        let fs = MemFs::new();
        let (mut db, _) = open(&fs, false);
        seed(&mut db);
        db.push(
            "stock",
            vec![
                QualityCell::bare("Nut Co"),
                QualityCell::bare(700i64).with_tag(IndicatorValue::new("source", "estimate")),
            ],
        )
        .unwrap();
        db.swap_remove("stock", 0).unwrap();
        drop(db);
        fs.crash();
        let (db, report) = open(&fs, false);
        assert_eq!(report.indexes_rebuilt, 1);
        let recovered = db.tagged("stock").unwrap();
        let scratch = IndexedTaggedRelation::from_relation(recovered.relation().clone());
        assert_eq!(recovered, &scratch);
    }

    // ---- paged relations ------------------------------------------------

    use crate::buffer_pool::MIN_FRAMES;
    use relstore::Expr;

    /// Small pages + the minimum pool: every paged test runs under real
    /// eviction pressure.
    fn paged_opts(group_commit: bool) -> DurableOptions {
        DurableOptions {
            group_commit,
            page_size: 512,
            pool_pages: MIN_FRAMES,
            ..Default::default()
        }
    }

    fn trade_schema() -> Schema {
        Schema::of(&[("id", DataType::Int), ("sym", DataType::Text)])
    }

    fn trade_row(i: i64) -> TaggedRow {
        let mut cell = QualityCell::bare(format!("sym{}", i % 7));
        if i % 3 == 0 {
            cell.set_tag(IndicatorValue::new("source", "feed"));
        }
        vec![QualityCell::bare(i), cell]
    }

    fn open_paged(fs: &MemFs, group_commit: bool) -> DurableDb {
        let (mut db, _) = DurableDb::open(Arc::new(fs.clone()), paged_opts(group_commit)).unwrap();
        if !db.paged_names().contains(&"trades") {
            db.create_paged(
                "trades",
                trade_schema(),
                IndicatorDictionary::with_paper_defaults(),
            )
            .unwrap();
        }
        db
    }

    #[test]
    fn paged_relation_survives_crash_under_pool_pressure() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        let mut twin =
            TaggedRelation::empty(trade_schema(), IndicatorDictionary::with_paper_defaults());
        for i in 0..200i64 {
            let row = trade_row(i);
            db.paged_push("trades", row.clone()).unwrap();
            twin.push(row).unwrap();
            if i % 5 == 4 {
                let pos = (i as u64 * 13) % db.paged_len("trades").unwrap();
                let tag = IndicatorValue::new("source", "audit");
                db.paged_tag_cell("trades", pos, "sym", tag.clone()).unwrap();
                twin.tag_cell(pos as usize, "sym", tag).unwrap();
            }
            if i % 11 == 10 {
                let pos = (i as u64 * 3) % db.paged_len("trades").unwrap();
                let got = db.paged_swap_remove("trades", pos).unwrap();
                let want = twin.swap_remove(pos as usize).unwrap();
                assert_eq!(got, want);
            }
        }
        assert!(db.pool_resident() <= MIN_FRAMES, "pool exceeded its budget");
        drop(db);
        fs.crash();

        let (mut db, report) =
            DurableDb::open(Arc::new(fs.clone()), paged_opts(false)).unwrap();
        assert!(report.replayed_records > 0);
        assert_eq!(db.paged_names(), vec!["trades"]);
        assert_eq!(db.paged_len("trades").unwrap() as usize, twin.len());
        assert_eq!(db.paged_to_relation("trades").unwrap(), twin);
        // quality-predicate selection parity after recovery
        let pred = Expr::col("sym@source").eq(Expr::lit("feed"));
        assert_eq!(
            db.paged_select("trades", &pred).unwrap(),
            tagstore::algebra::select(&twin, &pred).unwrap()
        );
    }

    #[test]
    fn paged_checkpoint_then_tail_replay() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        let mut twin =
            TaggedRelation::empty(trade_schema(), IndicatorDictionary::with_paper_defaults());
        for i in 0..60i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
            twin.push(trade_row(i)).unwrap();
        }
        db.checkpoint().unwrap();
        let wals = fs
            .list()
            .unwrap()
            .iter()
            .filter(|n| n.starts_with("wal-"))
            .count();
        assert_eq!(wals, 0, "covered WAL segments pruned");

        // post-checkpoint tail
        for i in 60..70i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
            twin.push(trade_row(i)).unwrap();
        }
        let tag = IndicatorValue::new("source", "audit");
        db.paged_tag_cell("trades", 7, "sym", tag.clone()).unwrap();
        twin.tag_cell(7, "sym", tag).unwrap();
        db.paged_swap_remove("trades", 2).unwrap();
        twin.swap_remove(2).unwrap();
        drop(db);
        fs.crash();

        let (mut db, report) = DurableDb::open(Arc::new(fs.clone()), paged_opts(false)).unwrap();
        assert!(report.checkpoint.is_some());
        assert_eq!(report.replayed_records, 12);
        assert_eq!(db.paged_to_relation("trades").unwrap(), twin);
    }

    /// Counts page slots that differ between two images of a paged file.
    fn changed_slots(before: &[u8], after: &[u8], page: usize) -> usize {
        let slots = after.len().div_ceil(page);
        (0..slots)
            .filter(|&s| {
                let a = before.get(s * page..(s + 1) * page);
                let b = after.get(s * page..(s + 1) * page);
                a != b
            })
            .count()
    }

    #[test]
    fn checkpoint_cost_is_proportional_to_dirty_pages() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        for i in 0..300i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
        }
        db.checkpoint().unwrap();
        let heap_before = fs.read("pg-trades.heap").unwrap();
        let dir_before = fs.read("pg-trades.dirx").unwrap();
        assert!(
            heap_before.len() / 512 > 20,
            "need a many-page heap for this test to mean anything"
        );

        // one logical mutation → a handful of dirty pages, no more
        db.paged_tag_cell("trades", 5, "sym", IndicatorValue::new("source", "late"))
            .unwrap();
        db.checkpoint().unwrap();
        let heap_after = fs.read("pg-trades.heap").unwrap();
        let dir_after = fs.read("pg-trades.dirx").unwrap();
        // tag_cell dirties the old row's page, the tail page, and one
        // directory page; shadow flushes touch at most one fresh slot per
        // dirty page — far from the ~25+ pages a full rewrite would touch
        assert!(
            changed_slots(&heap_before, &heap_after, 512) <= 4,
            "heap checkpoint rewrote more than the dirty pages"
        );
        assert!(
            changed_slots(&dir_before, &dir_after, 512) <= 2,
            "directory checkpoint rewrote more than the dirty pages"
        );
    }

    #[test]
    fn torn_checkpoint_flush_never_corrupts() {
        // build a committed base once, then replay the same post-base
        // mutations against byte-budgeted checkpoints: whatever the cut
        // point (page flush, manifest write, rename), recovery must
        // restore exactly the committed operations
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        let mut twin =
            TaggedRelation::empty(trade_schema(), IndicatorDictionary::with_paper_defaults());
        for i in 0..80i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
            twin.push(trade_row(i)).unwrap();
        }
        drop(db);
        let tag = IndicatorValue::new("source", "late");
        let mut twin2 = twin.clone();
        for p in [3usize, 40, 77] {
            twin2.tag_cell(p, "sym", tag.clone()).unwrap();
        }

        for budget in [0usize, 1, 64, 511, 512, 513, 2000, 1 << 14] {
            let disk = fs.durable_snapshot();
            let (mut db, _) =
                DurableDb::open(Arc::new(disk.clone()), paged_opts(false)).unwrap();
            for p in [3u64, 40, 77] {
                db.paged_tag_cell("trades", p, "sym", tag.clone()).unwrap();
            }
            disk.set_write_budget(budget);
            let _ = db.checkpoint(); // may tear anywhere — that's the point
            disk.clear_write_budget();
            drop(db);
            disk.crash();

            let (mut db, _) =
                DurableDb::open(Arc::new(disk.clone()), paged_opts(false)).unwrap();
            assert_eq!(
                db.paged_to_relation("trades").unwrap(),
                twin2,
                "divergence after torn checkpoint (budget {budget})"
            );
        }
    }

    #[test]
    fn uncommitted_paged_group_is_lost_committed_survives() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, true);
        let mut twin =
            TaggedRelation::empty(trade_schema(), IndicatorDictionary::with_paper_defaults());
        for i in 0..5i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
            twin.push(trade_row(i)).unwrap();
        }
        db.commit().unwrap();
        // pending, never committed: must vanish at the crash
        for i in 5..8i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
        }
        drop(db);
        fs.crash();

        let (mut db, _) = DurableDb::open(Arc::new(fs.clone()), paged_opts(true)).unwrap();
        assert_eq!(db.paged_to_relation("trades").unwrap(), twin);
    }

    #[test]
    fn paged_validation_failures_do_not_log() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        db.paged_push("trades", trade_row(1)).unwrap();
        let lsn = db.last_lsn();
        // wrong arity, wrong type, ghost indicator, bad column, bad row
        assert!(db.paged_push("trades", vec![QualityCell::bare(1i64)]).is_err());
        assert!(db
            .paged_push("trades", vec![QualityCell::bare("x"), QualityCell::bare("y")])
            .is_err());
        assert!(db
            .paged_tag_cell("trades", 0, "sym", IndicatorValue::new("ghost", "x"))
            .is_err());
        assert!(db
            .paged_tag_cell("trades", 0, "nope", IndicatorValue::new("source", "x"))
            .is_err());
        assert!(db
            .paged_tag_cell("trades", 9, "sym", IndicatorValue::new("source", "x"))
            .is_err());
        assert!(db.paged_swap_remove("trades", 9).is_err());
        assert!(db.create_paged("trades", trade_schema(), IndicatorDictionary::new()).is_err());
        assert_eq!(db.last_lsn(), lsn, "rejected operation reached the WAL");
    }

    #[test]
    fn failed_mutation_is_not_logged() {
        let fs = MemFs::new();
        let (mut db, _) = open(&fs, false);
        seed(&mut db);
        let lsn = db.last_lsn();
        // type error: rejected by the engine, so nothing may hit the log
        assert!(db
            .insert("company", vec![Value::Int(1), Value::Float(1.0)])
            .is_err());
        assert!(db.tag_cell("stock", 0, "name", IndicatorValue::new("ghost", "x")).is_err());
        assert_eq!(db.last_lsn(), lsn);
    }

    #[test]
    fn materialization_does_not_evict_the_hot_set() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        for i in 0..400i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
        }
        let (heap_pages, _) = db.paged_pages("trades").unwrap();
        assert!(
            heap_pages as usize > 2 * MIN_FRAMES,
            "need heap ({heap_pages} pages) well past the pool budget"
        );
        // warm a small hot set with targeted reads — promoted on the clock
        for pos in [0u64, 1, 2, 3] {
            db.paged_row("trades", pos).unwrap();
        }
        let heap = db.paged.get("trades").unwrap().heap_id();
        assert!(db.pool.is_resident(heap, 0), "warm read left no residue");
        // a full materialization streams every page through the pool;
        // scan admission must keep the one-touch pages from displacing
        // the hot frame
        let rel = db.paged_to_relation("trades").unwrap();
        assert_eq!(rel.len(), 400);
        assert!(
            db.pool.is_resident(heap, 0),
            "cold materialization evicted the hot heap page"
        );
    }

    #[test]
    fn paged_indexed_select_parity_maintenance_and_fallback() {
        let fs = MemFs::new();
        let mut db = open_paged(&fs, false);
        let mut twin =
            TaggedRelation::empty(trade_schema(), IndicatorDictionary::with_paper_defaults());
        for i in 0..240i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
            twin.push(trade_row(i)).unwrap();
        }
        fn check(db: &mut DurableDb, twin: &TaggedRelation, pred: &Expr) -> PagedReadStats {
            let want = tagstore::algebra::select(twin, pred).unwrap();
            let (got, stats) = db.paged_select_indexed("trades", pred).unwrap();
            assert_eq!(got, want, "indexed path diverged for {pred}");
            assert_eq!(stats.rows_out, want.len() as u64);
            assert_eq!(db.paged_select("trades", pred).unwrap(), want);
            stats
        }

        // bitmap path + the planner estimate
        let feed = Expr::col("sym@source").eq(Expr::lit("feed"));
        let (atoms, est) = db.paged_access_estimate("trades", &feed).unwrap().unwrap();
        assert_eq!(atoms, vec!["sym@source=feed".to_owned()]);
        assert!((est - 1.0 / 3.0).abs() < 0.05, "selectivity estimate {est}");
        check(&mut db, &twin, &feed);

        // bitmap ∩ key hash; then key hash alone; then a vanished value
        let combo = feed.clone().and(Expr::col("sym").eq(Expr::lit("sym3")));
        check(&mut db, &twin, &combo);
        check(&mut db, &twin, &Expr::col("sym").eq(Expr::lit("sym2")));
        let (empty, _) = db
            .paged_select_indexed("trades", &Expr::col("sym").eq(Expr::lit("nope")))
            .unwrap();
        assert!(empty.is_empty());

        // nothing index-answerable → streaming fallback, full page count
        let range = Expr::Bin(
            Box::new(Expr::col("id")),
            BinOp::Ge,
            Box::new(Expr::lit(100i64)),
        );
        let stats = check(&mut db, &twin, &range);
        let (heap_pages, _) = db.paged_pages("trades").unwrap();
        assert_eq!(stats.candidate_pages, heap_pages as u64);
        assert_eq!(stats.candidate_rows, 240);

        // incremental maintenance: mutate AFTER the index and key hash
        // exist, then re-verify every access path
        for i in 240..300i64 {
            db.paged_push("trades", trade_row(i)).unwrap();
            twin.push(trade_row(i)).unwrap();
        }
        let audit = IndicatorValue::new("source", "audit");
        for pos in [5u64, 130, 297] {
            db.paged_tag_cell("trades", pos, "sym", audit.clone()).unwrap();
            twin.tag_cell(pos as usize, "sym", audit.clone()).unwrap();
        }
        for pos in [7u64, 160] {
            assert_eq!(
                db.paged_swap_remove("trades", pos).unwrap(),
                twin.swap_remove(pos as usize).unwrap()
            );
        }
        check(&mut db, &twin, &feed);
        check(&mut db, &twin, &combo);
        check(&mut db, &twin, &Expr::col("sym").eq(Expr::lit("sym2")));

        // page skipping is structural: three audit rows live on a
        // handful of pages, and the candidate set reflects that
        let rare = Expr::col("sym@source").eq(Expr::lit("audit"));
        let stats = check(&mut db, &twin, &rare);
        assert_eq!(stats.candidate_rows, 3);
        let (heap_pages, _) = db.paged_pages("trades").unwrap();
        assert!(
            stats.candidate_pages < heap_pages as u64 / 2,
            "{} candidate pages of {heap_pages} — no skipping",
            stats.candidate_pages
        );

        // crash: the derived index is gone; the first indexed access
        // after recovery rebuilds it from the replayed heap
        drop(db);
        fs.crash();
        let (mut db, report) =
            DurableDb::open(Arc::new(fs.clone()), paged_opts(false)).unwrap();
        assert!(report.replayed_records > 0);
        check(&mut db, &twin, &feed);
        check(&mut db, &twin, &combo);
        check(&mut db, &twin, &rare);
    }
}
