//! The append-only, CRC32-framed write-ahead log.
//!
//! ## Frame format
//!
//! ```text
//! [len: u32 LE] [crc32(payload): u32 LE] [payload: len bytes]
//! payload = [lsn: u64 LE] [epoch: u64 LE] [WalRecord bytes]
//! ```
//!
//! The *epoch* is the MVCC visibility stamp: every record carries the
//! epoch at which its enclosing commit becomes visible, so recovery can
//! restore not just the data but the epoch counter readers pin against.
//! Epochs are non-decreasing along the log (several records in one
//! group commit share a stamp); a decreasing stamp is treated as a torn
//! tail, exactly like a non-monotone LSN.
//!
//! Frames are written strictly append-only into numbered *segments*
//! (`wal-0000000001.log`, ...). A segment never splits a frame; rotation
//! happens between commits once a segment exceeds its size budget.
//!
//! ## Group commit
//!
//! [`Wal::append`] only buffers the encoded frame. [`Wal::commit`]
//! writes the whole buffer with one `append` syscall and one fsync —
//! so N appends + 1 commit cost one fsync, the group-commit win the B8
//! bench measures. Callers that want per-op durability commit after
//! every append.
//!
//! ## Torn tails
//!
//! [`replay`] scans segments in order and stops at the first frame that
//! is incomplete, has an impossible length, fails its CRC, or carries a
//! non-monotone LSN — all of which a mid-write crash can leave behind.
//! The torn tail is truncated and later segments (necessarily written
//! after the tear) are deleted, so the log ends exactly at the last
//! durable committed record.

use crate::codec::{Decoder, Encoder};
use crate::crc::crc32;
use crate::fs::Fs;
use crate::record::WalRecord;
use relstore::{DbError, DbResult};
use std::sync::Arc;

/// Frame header size: length + CRC.
const FRAME_HEADER: usize = 8;
/// Hard upper bound on a single frame payload — anything larger in a
/// length field is treated as corruption, not an allocation request.
const MAX_FRAME: u32 = 1 << 30;

/// File-name prefix of WAL segments.
pub const SEGMENT_PREFIX: &str = "wal-";
/// File-name suffix of WAL segments.
pub const SEGMENT_SUFFIX: &str = ".log";

/// Tuning knobs for the log.
#[derive(Debug, Clone)]
pub struct WalOptions {
    /// Rotate to a fresh segment once the current one exceeds this many
    /// bytes (checked at commit boundaries).
    pub segment_bytes: usize,
}

impl Default for WalOptions {
    fn default() -> Self {
        WalOptions {
            segment_bytes: 1 << 20, // 1 MiB
        }
    }
}

fn segment_name(seq: u64) -> String {
    format!("{SEGMENT_PREFIX}{seq:010}{SEGMENT_SUFFIX}")
}

fn segment_seq(name: &str) -> Option<u64> {
    name.strip_prefix(SEGMENT_PREFIX)?
        .strip_suffix(SEGMENT_SUFFIX)?
        .parse()
        .ok()
}

/// Sorted list of WAL segment file names currently in the directory.
pub fn list_segments(fs: &dyn Fs) -> DbResult<Vec<String>> {
    let mut segs: Vec<String> = fs
        .list()?
        .into_iter()
        .filter(|n| segment_seq(n).is_some())
        .collect();
    segs.sort_unstable(); // zero-padded ⇒ lexicographic == numeric
    Ok(segs)
}

/// What a [`replay`] scan found.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// Every intact committed record, `(lsn, epoch, record)`, in log
    /// order.
    pub records: Vec<(u64, u64, WalRecord)>,
    /// Bytes chopped off a torn tail (0 on a clean log).
    pub truncated_bytes: u64,
    /// The LSN the next append should carry.
    pub next_lsn: u64,
    /// The highest epoch stamp seen (0 on an empty log) — the committed
    /// epoch the recovered catalog must resume publishing from.
    pub last_epoch: u64,
    /// Segment to resume appending into: `(name, durable length)`.
    pub tail: Option<(String, usize)>,
}

/// Scans every segment, truncating the first torn frame found and
/// deleting any segments after it. Read-only apart from that repair.
pub fn replay(fs: &dyn Fs) -> DbResult<ReplayOutcome> {
    let segments = list_segments(fs)?;
    let mut records: Vec<(u64, u64, WalRecord)> = Vec::new();
    let mut truncated_bytes = 0u64;
    let mut next_lsn = 1u64;
    let mut last_epoch = 0u64;
    let mut tail = None;
    let mut torn_at: Option<usize> = None; // index into `segments`

    'segments: for (si, seg) in segments.iter().enumerate() {
        let bytes = fs.read(seg)?;
        let mut off = 0usize;
        loop {
            let remaining = bytes.len() - off;
            if remaining == 0 {
                break; // clean segment end
            }
            let valid_upto = off;
            let tear = |why: &str| -> DbResult<u64> {
                dq_obs::counter!("wal.torn_tails").incr();
                let chopped = (bytes.len() - valid_upto) as u64;
                log_tear(fs, seg, valid_upto, why)?;
                Ok(chopped)
            };
            if remaining < FRAME_HEADER {
                truncated_bytes += tear("incomplete frame header")?;
                torn_at = Some(si);
                break 'segments;
            }
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap());
            let crc = u32::from_le_bytes(bytes[off + 4..off + 8].try_into().unwrap());
            if len > MAX_FRAME || (len as usize) > remaining - FRAME_HEADER {
                truncated_bytes += tear("frame length past end of segment")?;
                torn_at = Some(si);
                break 'segments;
            }
            let payload = &bytes[off + FRAME_HEADER..off + FRAME_HEADER + len as usize];
            if crc32(payload) != crc {
                truncated_bytes += tear("frame CRC mismatch")?;
                torn_at = Some(si);
                break 'segments;
            }
            let mut dec = Decoder::new(payload);
            let (lsn, epoch, record) = match dec.get_u64().and_then(|lsn| {
                let epoch = dec.get_u64()?;
                WalRecord::decode(&mut dec).map(|r| (lsn, epoch, r))
            }) {
                Ok(ok)
                    if (ok.0 == next_lsn || records.is_empty()) && ok.1 >= last_epoch =>
                {
                    ok
                }
                // decodable but out-of-order LSN/epoch, or undecodable
                // payload under a valid CRC (format drift): stop
                // trusting the log
                Ok(_) | Err(_) => {
                    truncated_bytes += tear("undecodable or non-monotone record")?;
                    torn_at = Some(si);
                    break 'segments;
                }
            };
            next_lsn = lsn + 1;
            last_epoch = epoch;
            records.push((lsn, epoch, record));
            off += FRAME_HEADER + len as usize;
        }
        tail = Some((seg.clone(), fs.read(seg)?.len()));
    }

    if let Some(si) = torn_at {
        // everything after the tear was written later; drop it
        for seg in &segments[si + 1..] {
            fs.remove(seg)?;
        }
        if si + 1 < segments.len() {
            // make the unlinks durable — a later crash must not
            // resurrect segments the repair already discarded
            fs.sync_dir()?;
        }
        tail = Some((segments[si].clone(), fs.read(&segments[si])?.len()));
    }
    Ok(ReplayOutcome {
        records,
        truncated_bytes,
        next_lsn,
        last_epoch,
        tail,
    })
}

fn log_tear(fs: &dyn Fs, seg: &str, keep: usize, _why: &str) -> DbResult<()> {
    fs.truncate(seg, keep as u64)
}

/// The writable log: an append buffer over the current tail segment.
pub struct Wal {
    fs: Arc<dyn Fs>,
    opts: WalOptions,
    current: String,
    current_len: usize,
    /// False right after a rotation: the fresh segment's directory entry
    /// still needs a `sync_dir` once its first commit lands.
    current_entry_synced: bool,
    next_lsn: u64,
    /// Highest LSN known durable (committed to a synced segment). The
    /// buffer pool's flush gate compares page LSNs against this.
    durable_lsn: u64,
    pending: Vec<u8>,
    pending_records: u64,
}

impl std::fmt::Debug for Wal {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Wal")
            .field("current", &self.current)
            .field("current_len", &self.current_len)
            .field("next_lsn", &self.next_lsn)
            .field("pending_bytes", &self.pending.len())
            .finish()
    }
}

impl Wal {
    /// Opens the log for writing, resuming at the tail [`replay`] found
    /// (or starting segment 1 of a fresh log).
    pub fn resume(
        fs: Arc<dyn Fs>,
        opts: WalOptions,
        next_lsn: u64,
        tail: Option<(String, usize)>,
    ) -> Self {
        let (current, current_len) = tail.unwrap_or_else(|| (segment_name(1), 0));
        Wal {
            fs,
            opts,
            current,
            // a resumed tail already has a durable entry; a fresh
            // segment 1 gets its dir fsync on the first commit
            current_entry_synced: current_len > 0,
            current_len,
            next_lsn,
            durable_lsn: next_lsn - 1,
            pending: Vec::new(),
            pending_records: 0,
        }
    }

    /// The LSN the next [`Wal::append`] will assign.
    pub fn next_lsn(&self) -> u64 {
        self.next_lsn
    }

    /// The LSN of the last appended record (0 if none yet).
    pub fn last_lsn(&self) -> u64 {
        self.next_lsn - 1
    }

    /// Number of records buffered but not yet committed.
    pub fn pending_records(&self) -> u64 {
        self.pending_records
    }

    /// Highest LSN known durable on disk. Records at or below this LSN
    /// survived their commit fsync; the buffer pool must not flush a
    /// page stamped with a higher LSN.
    pub fn durable_lsn(&self) -> u64 {
        self.durable_lsn
    }

    /// Encodes and buffers one record, assigning its LSN and stamping
    /// it with `epoch` — the MVCC epoch at which the enclosing commit
    /// becomes visible. Nothing is durable until [`Wal::commit`].
    pub fn append(&mut self, record: &WalRecord, epoch: u64) -> u64 {
        let lsn = self.next_lsn;
        self.next_lsn += 1;
        let mut enc = Encoder::new();
        enc.put_u64(lsn);
        enc.put_u64(epoch);
        record.encode(&mut enc);
        let payload = enc.into_bytes();
        self.pending.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        self.pending.extend_from_slice(&crc32(&payload).to_le_bytes());
        self.pending.extend_from_slice(&payload);
        self.pending_records += 1;
        dq_obs::counter!("wal.append").incr();
        dq_obs::counter!("wal.append.bytes").add((payload.len() + FRAME_HEADER) as u64);
        lsn
    }

    /// Writes the buffered frames with one append + one fsync (the
    /// group commit), rotating afterwards if the segment is full.
    /// A short write leaves a torn tail for recovery to truncate and
    /// reports the commit as failed.
    pub fn commit(&mut self) -> DbResult<()> {
        if self.pending.is_empty() {
            return Ok(());
        }
        let batch = std::mem::take(&mut self.pending);
        let batch_records = std::mem::take(&mut self.pending_records);
        let written = self.fs.append(&self.current, &batch)?;
        self.current_len += written;
        if written < batch.len() {
            // torn tail is now on disk; make whatever landed durable so
            // recovery sees a deterministic prefix, then fail loudly
            let _ = self.fs.sync(&self.current);
            return Err(DbError::Storage(format!(
                "short WAL write: {written} of {} bytes",
                batch.len()
            )));
        }
        {
            let _t = dq_obs::histogram!("wal.fsync_us").start();
            self.fs.sync(&self.current)?;
        }
        if !self.current_entry_synced {
            // first commit after a rotation: the segment's bytes are
            // durable but its directory entry may not be — persist it so
            // a crash cannot lose a whole fsynced segment
            self.fs.sync_dir()?;
            self.current_entry_synced = true;
        }
        dq_obs::counter!("wal.fsync").incr();
        dq_obs::counter!("wal.commit.records").add(batch_records);
        self.durable_lsn = self.next_lsn - 1;
        if self.current_len >= self.opts.segment_bytes {
            self.rotate()?;
        }
        Ok(())
    }

    /// Starts a fresh segment; subsequent commits land there.
    pub fn rotate(&mut self) -> DbResult<()> {
        let seq = segment_seq(&self.current).unwrap_or(0) + 1;
        self.current = segment_name(seq);
        self.current_len = 0;
        self.current_entry_synced = false;
        dq_obs::counter!("wal.rotate").incr();
        Ok(())
    }

    /// Deletes every segment except the current one, then fsyncs the
    /// directory — without that, a crash could resurrect pruned segments
    /// whose records recovery would replay on top of a newer checkpoint.
    /// Callers invoke this after a checkpoint has captured all records
    /// up to the rotation point, making the old segments redundant.
    pub fn prune_before_current(&self) -> DbResult<()> {
        let mut removed = false;
        for seg in list_segments(self.fs.as_ref())? {
            if seg != self.current {
                self.fs.remove(&seg)?;
                dq_obs::counter!("wal.segments_pruned").incr();
                removed = true;
            }
        }
        if removed {
            self.fs.sync_dir()?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use relstore::Value;

    fn rec(i: i64) -> WalRecord {
        WalRecord::Insert {
            table: "t".into(),
            row: vec![Value::Int(i)],
        }
    }

    fn open(fs: &MemFs) -> Wal {
        let out = replay(fs).unwrap();
        Wal::resume(Arc::new(fs.clone()), WalOptions::default(), out.next_lsn, out.tail)
    }

    #[test]
    fn append_commit_replay_roundtrip() {
        let fs = MemFs::new();
        let mut wal = open(&fs);
        for i in 0..5 {
            wal.append(&rec(i), (i + 1) as u64);
        }
        wal.commit().unwrap();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 5);
        assert_eq!(out.truncated_bytes, 0);
        assert_eq!(out.next_lsn, 6);
        assert_eq!(out.last_epoch, 5);
        assert_eq!(
            out.records.iter().map(|(l, _, _)| *l).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(
            out.records.iter().map(|(_, e, _)| *e).collect::<Vec<_>>(),
            vec![1, 2, 3, 4, 5]
        );
        assert_eq!(out.records[3].2, rec(3));
    }

    #[test]
    fn group_commit_is_one_fsync() {
        let fs = MemFs::new();
        let mut wal = open(&fs);
        for i in 0..100 {
            wal.append(&rec(i), 1);
        }
        assert_eq!(wal.pending_records(), 100);
        wal.commit().unwrap();
        assert_eq!(fs.fsync_count(), 1);
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 100);
        // one group commit: every record shares the epoch stamp
        assert!(out.records.iter().all(|(_, e, _)| *e == 1));
        assert_eq!(out.last_epoch, 1);
    }

    #[test]
    fn uncommitted_appends_die_in_a_crash() {
        let fs = MemFs::new();
        let mut wal = open(&fs);
        wal.append(&rec(1), 1);
        wal.commit().unwrap();
        wal.append(&rec(2), 2); // never committed
        fs.crash();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 1);
    }

    #[test]
    fn torn_tail_truncated_at_every_cut() {
        // build a clean 3-record log, then re-crash it at every possible
        // byte boundary: replay must always yield an exact record prefix
        let fs = MemFs::new();
        let mut wal = open(&fs);
        for i in 0..3 {
            wal.append(&rec(i), i as u64 + 1);
            wal.commit().unwrap();
        }
        let full = fs.read(&segment_name(1)).unwrap();
        let mut prefix_lens = Vec::new();
        {
            // frame boundaries: offsets after each complete frame
            let mut off = 0;
            while off < full.len() {
                let len = u32::from_le_bytes(full[off..off + 4].try_into().unwrap()) as usize;
                off += FRAME_HEADER + len;
                prefix_lens.push(off);
            }
        }
        for cut in 0..=full.len() {
            let crashed = MemFs::new();
            crashed.write_file(&segment_name(1), &full[..cut]).unwrap();
            let out = replay(&crashed).unwrap();
            let expect = prefix_lens.iter().filter(|&&b| b <= cut).count();
            assert_eq!(out.records.len(), expect, "cut at byte {cut}");
            // the repair is sticky: a second replay sees a clean log
            let again = replay(&crashed).unwrap();
            assert_eq!(again.records.len(), expect);
            assert_eq!(again.truncated_bytes, 0);
        }
    }

    #[test]
    fn corrupt_byte_truncates_from_there() {
        let fs = MemFs::new();
        let mut wal = open(&fs);
        for i in 0..4 {
            wal.append(&rec(i), 1);
        }
        wal.commit().unwrap();
        let mut bytes = fs.read(&segment_name(1)).unwrap();
        // flip a byte inside the third frame's payload
        let mut off = 0;
        for _ in 0..2 {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            off += FRAME_HEADER + len;
        }
        bytes[off + FRAME_HEADER + 2] ^= 0xFF;
        fs.write_file(&segment_name(1), &bytes).unwrap();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 2);
        assert!(out.truncated_bytes > 0);
    }

    #[test]
    fn rotation_and_pruning() {
        let fs = MemFs::new();
        let out = replay(&fs).unwrap();
        let mut wal = Wal::resume(
            Arc::new(fs.clone()),
            WalOptions { segment_bytes: 64 },
            out.next_lsn,
            out.tail,
        );
        for i in 0..20 {
            wal.append(&rec(i), i as u64 + 1);
            wal.commit().unwrap();
        }
        let segs = list_segments(&fs).unwrap();
        assert!(segs.len() > 1, "expected rotation, got {segs:?}");
        // replay crosses segment boundaries in order
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 20);
        assert_eq!(out.records.last().unwrap().2, rec(19));
        assert_eq!(out.last_epoch, 20);
        // prune keeps only the current segment
        wal.rotate().unwrap();
        wal.append(&rec(99), 21);
        wal.commit().unwrap();
        wal.prune_before_current().unwrap();
        assert_eq!(list_segments(&fs).unwrap().len(), 1);
        assert_eq!(replay(&fs).unwrap().records.len(), 1);
    }

    #[test]
    fn pruned_segments_stay_gone_after_crash() {
        // prune_before_current must fsync the directory — otherwise the
        // crash resurrects old segments whose records replay on top of
        // whatever checkpoint made them redundant
        let fs = MemFs::new();
        let mut wal = open(&fs);
        wal.append(&rec(1), 1);
        wal.commit().unwrap();
        wal.rotate().unwrap();
        wal.append(&rec(2), 2);
        wal.commit().unwrap();
        assert_eq!(list_segments(&fs).unwrap().len(), 2);
        wal.prune_before_current().unwrap();
        fs.crash();
        assert_eq!(list_segments(&fs).unwrap(), vec![segment_name(2)]);
        assert_eq!(replay(&fs).unwrap().records.len(), 1);
    }

    #[test]
    fn fresh_segment_entry_survives_crash_after_first_commit() {
        // rotation creates a new file; its first commit must sync_dir so
        // the fsynced segment's directory entry cannot vanish
        let fs = MemFs::new();
        let mut wal = open(&fs);
        wal.append(&rec(1), 1);
        wal.commit().unwrap();
        let before = fs.dir_fsync_count();
        wal.rotate().unwrap();
        wal.append(&rec(2), 2);
        wal.commit().unwrap();
        assert!(fs.dir_fsync_count() > before, "first commit after rotate must sync_dir");
        fs.crash();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 2);
    }

    #[test]
    fn torn_tail_repair_unlinks_survive_crash() {
        // when replay deletes segments written after a tear, a crash
        // must not bring them back (their records are past the tear and
        // would replay as garbage or non-monotone LSNs)
        let fs = MemFs::new();
        let mut wal = open(&fs);
        wal.append(&rec(1), 1);
        wal.commit().unwrap();
        wal.rotate().unwrap();
        wal.append(&rec(2), 2);
        wal.commit().unwrap();
        // corrupt segment 1 so replay tears there and removes segment 2
        let mut bytes = fs.read(&segment_name(1)).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0xFF;
        fs.write_file(&segment_name(1), &bytes).unwrap();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 0);
        fs.crash();
        assert_eq!(list_segments(&fs).unwrap(), vec![segment_name(1)]);
        assert_eq!(replay(&fs).unwrap().records.len(), 0);
    }

    #[test]
    fn durable_lsn_tracks_commits() {
        let fs = MemFs::new();
        let mut wal = open(&fs);
        assert_eq!(wal.durable_lsn(), 0);
        wal.append(&rec(1), 1);
        wal.append(&rec(2), 1);
        assert_eq!(wal.durable_lsn(), 0); // buffered, not durable
        wal.commit().unwrap();
        assert_eq!(wal.durable_lsn(), 2);
    }

    #[test]
    fn decreasing_epoch_stamp_is_a_tear() {
        // a record stamped with a *lower* epoch than its predecessor can
        // only come from corruption or format drift; replay must stop
        // trusting the log there, exactly like a non-monotone LSN
        let fs = MemFs::new();
        let mut wal = open(&fs);
        wal.append(&rec(1), 5);
        wal.append(&rec(2), 3); // epoch went backwards
        wal.commit().unwrap();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.last_epoch, 5);
        assert!(out.truncated_bytes > 0);
    }

    #[test]
    fn short_write_reports_error_and_recovery_repairs() {
        let fs = MemFs::new();
        let mut wal = open(&fs);
        wal.append(&rec(1), 1);
        wal.commit().unwrap();
        let durable = fs.read(&segment_name(1)).unwrap().len();
        fs.set_write_budget(5); // next commit tears mid-frame
        wal.append(&rec(2), 2);
        assert!(wal.commit().is_err());
        fs.clear_write_budget();
        let out = replay(&fs).unwrap();
        assert_eq!(out.records.len(), 1);
        assert_eq!(out.truncated_bytes, 5);
        assert_eq!(fs.read(&segment_name(1)).unwrap().len(), durable);
    }
}
