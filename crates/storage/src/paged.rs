//! [`PagedRelation`]: a quality-tagged relation stored in slotted pages
//! behind the buffer pool, so it can grow past RAM.
//!
//! ## Layout
//!
//! Each relation owns two paged files:
//!
//! * the **heap** (`pg-<name>.heap`) — codec-encoded tagged rows in
//!   slotted pages, append-only with tombstones (an updated row is
//!   re-appended at the tail; the old slot is tombstoned, not reused),
//! * the **directory** (`pg-<name>.dirx`) — fixed 8-byte RIDs
//!   `[heap page u32][slot u16][reserved u16]`, a dense positional
//!   array: `dir[pos]` is where row `pos` lives, preserving the
//!   positional / swap-remove contract of `TaggedRelation`.
//!
//! ## Deterministic placement
//!
//! WAL records for paged relations carry only the *logical* operation
//! (push / tag / remove) — never page numbers or slots. That works
//! because placement is a pure function of the operation history: pushes
//! go to the last heap page (a new page exactly when the encoded record
//! does not fit), directory entries fill pages at a fixed
//! entries-per-page, and tombstones never reclaim space. Replaying the
//! same committed prefix therefore rebuilds byte-identical logical
//! state regardless of pool size, eviction order, or crash timing.

use crate::buffer_pool::{BufferPool, FileId, LogGate};
use crate::checkpoint::PagedSnapshot;
use crate::codec::{Decoder, Encoder};
use crate::fs::Fs;
use crate::page::{Page, PAGE_HEADER, PAGE_TRAILER, SLOT_SIZE};
use relstore::{DbError, DbResult, Schema};
use std::collections::BTreeMap;
use std::sync::Arc;
use tagstore::{IndicatorDictionary, IndicatorValue, TaggedRelation, TaggedRow};

/// I/O and page-skipping accounting for one indexed paged read — the
/// numbers EXPLAIN ANALYZE surfaces as `pages_read=` / `pool_hits=` and
/// the structural evidence that an indexed σ skipped the pages its
/// candidates don't live on.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PagedReadStats {
    /// Pages (heap + directory) read from disk during the operation.
    pub pages_read: u64,
    /// Pages served from already-resident pool frames.
    pub pool_hits: u64,
    /// Candidate rows proposed by the caller (before residual re-check).
    pub candidate_rows: u64,
    /// Distinct heap pages those candidates live on — everything else
    /// was skipped.
    pub candidate_pages: u64,
    /// Rows surviving the residual re-check.
    pub rows_out: u64,
}

/// Encoded size of one directory entry.
const RID_BYTES: usize = 8;

fn encode_rid(page: u32, slot: u16) -> [u8; RID_BYTES] {
    let mut b = [0u8; RID_BYTES];
    b[0..4].copy_from_slice(&page.to_le_bytes());
    b[4..6].copy_from_slice(&slot.to_le_bytes());
    b
}

fn decode_rid(b: &[u8]) -> DbResult<(u32, u16)> {
    if b.len() != RID_BYTES {
        return Err(DbError::Storage(format!("rid is {} bytes", b.len())));
    }
    Ok((
        u32::from_le_bytes(b[0..4].try_into().unwrap()),
        u16::from_le_bytes(b[4..6].try_into().unwrap()),
    ))
}

fn encode_row(row: &TaggedRow) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_tagged_row(row);
    enc.into_bytes()
}

fn decode_row(bytes: &[u8]) -> DbResult<TaggedRow> {
    let mut dec = Decoder::new(bytes);
    let row = dec.get_tagged_row()?;
    if !dec.is_exhausted() {
        return Err(DbError::Storage("heap record has trailing bytes".into()));
    }
    Ok(row)
}

/// A tagged relation living in paged storage. All page access goes
/// through the caller-supplied [`BufferPool`] and [`LogGate`]; the
/// struct itself holds only the identity, the schema/dictionary for
/// validation, and the row count.
#[derive(Debug)]
pub struct PagedRelation {
    name: String,
    schema: Schema,
    dict: IndicatorDictionary,
    heap: FileId,
    dir: FileId,
    rows: u64,
}

impl PagedRelation {
    /// Heap file name for relation `name`.
    pub fn heap_file(name: &str) -> String {
        format!("pg-{name}.heap")
    }

    /// Directory file name for relation `name`.
    pub fn dir_file(name: &str) -> String {
        format!("pg-{name}.dirx")
    }

    /// Creates an empty paged relation, registering its two files.
    pub fn create(
        pool: &mut BufferPool,
        fs: Arc<dyn Fs>,
        name: &str,
        schema: Schema,
        dict: IndicatorDictionary,
    ) -> PagedRelation {
        let heap = pool.register_file(Arc::clone(&fs), Self::heap_file(name));
        let dir = pool.register_file(fs, Self::dir_file(name));
        PagedRelation {
            name: name.to_owned(),
            schema,
            dict,
            heap,
            dir,
            rows: 0,
        }
    }

    /// Rebuilds a paged relation from its checkpoint manifest: the page
    /// maps resume exactly where the checkpoint froze them.
    pub fn restore(
        pool: &mut BufferPool,
        fs: Arc<dyn Fs>,
        snap: &PagedSnapshot,
        dict: IndicatorDictionary,
    ) -> PagedRelation {
        let heap = pool.restore_file(
            Arc::clone(&fs),
            Self::heap_file(&snap.name),
            snap.heap_map.clone(),
        );
        let dir = pool.restore_file(fs, Self::dir_file(&snap.name), snap.dir_map.clone());
        PagedRelation {
            name: snap.name.clone(),
            schema: snap.schema.clone(),
            dict,
            heap,
            dir,
            rows: snap.rows,
        }
    }

    /// Relation name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Application schema.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// The indicator dictionary rows are validated against.
    pub fn dictionary(&self) -> &IndicatorDictionary {
        &self.dict
    }

    /// Row count.
    pub fn len(&self) -> u64 {
        self.rows
    }

    /// True iff no rows.
    pub fn is_empty(&self) -> bool {
        self.rows == 0
    }

    /// Pool file id of the heap — residency probes in tests and benches.
    pub fn heap_id(&self) -> FileId {
        self.heap
    }

    /// `(heap, directory)` logical page counts.
    pub fn pages(&self, pool: &BufferPool) -> (u32, u32) {
        (pool.logical_pages(self.heap), pool.logical_pages(self.dir))
    }

    /// The manifest entry a checkpoint records for this relation.
    pub fn snapshot(&self, pool: &BufferPool) -> PagedSnapshot {
        PagedSnapshot {
            name: self.name.clone(),
            schema: self.schema.clone(),
            dict: self
                .dict
                .names()
                .iter()
                .map(|n| self.dict.get(n).expect("listed name resolves").clone())
                .collect(),
            rows: self.rows,
            heap_map: pool.file_map(self.heap).to_vec(),
            dir_map: pool.file_map(self.dir).to_vec(),
        }
    }

    // ---- validation (runs BEFORE the caller logs the operation) ---------

    /// Full validation of a push — the same checks `TaggedRelation::push`
    /// performs. Callers run this before appending the WAL record, so a
    /// rejected row never reaches the log.
    pub fn validate_push(&self, pool: &BufferPool, row: &TaggedRow) -> DbResult<()> {
        let values: relstore::Row = row.iter().map(|c| c.value.clone()).collect();
        self.schema.check_row(&values)?;
        for cell in row {
            for tag in cell.tags() {
                self.dict.check(tag)?;
            }
        }
        let encoded = encode_row(row).len();
        let max = Page::max_record(pool.page_size());
        if encoded > max {
            return Err(DbError::Storage(format!(
                "row encodes to {encoded} bytes, page limit is {max}"
            )));
        }
        Ok(())
    }

    /// Full validation of a cell tag (dictionary, column, row bounds).
    pub fn validate_tag(&self, row: u64, column: &str, tag: &IndicatorValue) -> DbResult<()> {
        self.dict.check(tag)?;
        self.schema.resolve(column)?;
        self.check_pos(row)
    }

    /// Bounds check for positional operations.
    pub fn check_pos(&self, row: u64) -> DbResult<()> {
        if row >= self.rows {
            return Err(DbError::IndexError(format!(
                "row {row} out of range ({} rows)",
                self.rows
            )));
        }
        Ok(())
    }

    // ---- mutations (caller has validated AND logged; `lsn` is the WAL
    // ---- position of the record describing this operation) --------------

    /// Appends a validated row.
    pub fn push(
        &mut self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        lsn: u64,
        row: &TaggedRow,
    ) -> DbResult<()> {
        let bytes = encode_row(row);
        let rid = self.append_heap(pool, gate, lsn, &bytes)?;
        self.append_dir(pool, gate, lsn, rid)?;
        self.rows += 1;
        Ok(())
    }

    /// Tags one cell. The updated row is re-appended at the heap tail;
    /// the old version's slot is tombstoned and the directory re-pointed.
    pub fn tag_cell(
        &mut self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        lsn: u64,
        row: u64,
        column: &str,
        tag: IndicatorValue,
    ) -> DbResult<()> {
        self.check_pos(row)?;
        let ci = self.schema.resolve(column)?;
        let (hp, hs) = self.read_rid(pool, gate, row)?;
        let mut trow = self.read_record(pool, gate, hp, hs)?;
        trow[ci].set_tag(tag);
        let bytes = encode_row(&trow);
        let max = Page::max_record(pool.page_size());
        if bytes.len() > max {
            return Err(DbError::Storage(format!(
                "tagged row encodes to {} bytes, page limit is {max}",
                bytes.len()
            )));
        }
        let rid = self.append_heap(pool, gate, lsn, &bytes)?;
        pool.with_page_mut(self.heap, hp, lsn, gate, |p| p.tombstone(hs))?;
        self.write_rid(pool, gate, lsn, row, rid)
    }

    /// Removes row `row` (swap-remove: the last row takes its position),
    /// returning the removed row.
    pub fn swap_remove(
        &mut self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        lsn: u64,
        row: u64,
    ) -> DbResult<TaggedRow> {
        self.check_pos(row)?;
        let last = self.rows - 1;
        let (hp, hs) = self.read_rid(pool, gate, row)?;
        let removed = self.read_record(pool, gate, hp, hs)?;
        pool.with_page_mut(self.heap, hp, lsn, gate, |p| p.tombstone(hs))?;
        if row != last {
            let last_rid = self.read_rid(pool, gate, last)?;
            self.write_rid(pool, gate, lsn, row, last_rid)?;
        }
        let (dp, _) = self.dir_locate(pool, last);
        pool.with_page_mut(self.dir, dp, lsn, gate, |p| p.pop_last().map(|_| ()))?;
        self.rows -= 1;
        Ok(removed)
    }

    // ---- reads ----------------------------------------------------------

    /// The row at position `pos`.
    pub fn row(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        pos: u64,
    ) -> DbResult<TaggedRow> {
        self.check_pos(pos)?;
        let (hp, hs) = self.read_rid(pool, gate, pos)?;
        self.read_record(pool, gate, hp, hs)
    }

    /// Streams every row through `f` in positional order. Directory
    /// pages are walked sequentially, so a scan touches each dir page
    /// once; heap locality follows insertion order. All page loads use
    /// scan-resistant admission: a full pass cannot evict the pool's
    /// hot set, only recycle its own one-touch frames.
    pub fn for_each_row(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        mut f: impl FnMut(u64, TaggedRow) -> DbResult<()>,
    ) -> DbResult<()> {
        for pos in 0..self.rows {
            let row = {
                let (hp, hs) = self.read_rid_scan(pool, gate, pos)?;
                self.read_record_scan(pool, gate, hp, hs)?
            };
            f(pos, row)?;
        }
        Ok(())
    }

    /// Fetches the rows at `positions` (sorted ascending, deduplicated),
    /// optionally re-checking `expr` against each — the indexed access
    /// path. Directory pages are pinned once per run of candidate
    /// positions, candidate heap pages are visited as one sorted batch
    /// through [`BufferPool::fetch_pages`] (coalesced readahead +
    /// scan-resistant admission), every *other* heap page is skipped,
    /// and the result is restored to positional order (tag re-appends
    /// break pos ↔ heap-page monotonicity) so it is byte-identical to
    /// the full-scan σ over the same predicate.
    pub fn select_at(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        positions: &[u64],
        expr: Option<&relstore::Expr>,
    ) -> DbResult<(TaggedRelation, PagedReadStats)> {
        debug_assert!(
            positions.windows(2).all(|w| w[0] < w[1]),
            "positions must be sorted unique"
        );
        if let Some(&last) = positions.last() {
            self.check_pos(last)?; // sorted ⇒ bounds-checks every position
        }
        let compiled = expr
            .map(|e| tagstore::algebra::CompiledTagExpr::compile_schema(&self.schema, e))
            .transpose()?;
        let mut stats = PagedReadStats {
            candidate_rows: positions.len() as u64,
            ..Default::default()
        };
        // phase 1: positions → RIDs, one dir-page pin per position run
        let per = Self::dir_entries_per_page(pool);
        let mut rids: Vec<(u64, u32, u16)> = Vec::with_capacity(positions.len());
        let mut i = 0;
        while i < positions.len() {
            let dp = (positions[i] / per) as u32;
            let end = i + positions[i..].partition_point(|&p| (p / per) as u32 == dp);
            if pool.is_resident(self.dir, dp) {
                stats.pool_hits += 1;
            } else {
                stats.pages_read += 1;
            }
            pool.with_page_scan(self.dir, dp, gate, |p| {
                for &pos in &positions[i..end] {
                    let e = p.get((pos % per) as u16)?.ok_or_else(|| {
                        DbError::Storage(format!("directory entry {pos} tombstoned"))
                    })?;
                    let (hp, hs) = decode_rid(e)?;
                    rids.push((pos, hp, hs));
                }
                Ok(())
            })?;
            i = end;
        }
        // phase 2: distinct candidate heap pages, ascending
        let mut by_page: BTreeMap<u32, Vec<(u64, u16)>> = BTreeMap::new();
        for &(pos, hp, hs) in &rids {
            by_page.entry(hp).or_default().push((pos, hs));
        }
        let pages: Vec<u32> = by_page.keys().copied().collect();
        stats.candidate_pages = pages.len() as u64;
        // phase 3: coalesced batch fetch + residual re-check
        let mut hits: Vec<(u64, TaggedRow)> = Vec::new();
        let fstats = pool.fetch_pages(self.heap, &pages, gate, |hp, p| {
            for &(pos, hs) in &by_page[&hp] {
                let bytes = p.get(hs)?.ok_or_else(|| {
                    DbError::Storage(format!("heap record {hp}/{hs} tombstoned"))
                })?;
                let row = decode_row(bytes)?;
                let keep = match &compiled {
                    Some(c) => c.matches(&row)?,
                    None => true,
                };
                if keep {
                    hits.push((pos, row));
                }
            }
            Ok(())
        })?;
        stats.pages_read += fstats.pages_read;
        stats.pool_hits += fstats.pool_hits;
        hits.sort_unstable_by_key(|&(pos, _)| pos);
        stats.rows_out = hits.len() as u64;
        let rows = hits.into_iter().map(|(_, r)| r).collect();
        let rel = TaggedRelation::new(self.schema.clone(), self.dict.clone(), rows)?;
        Ok((rel, stats))
    }

    /// Materializes the whole relation in memory (small relations,
    /// tests, and parity checks — defeats the point at scale).
    pub fn to_relation(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
    ) -> DbResult<TaggedRelation> {
        let mut rows = Vec::with_capacity(self.rows.min(1 << 20) as usize);
        self.for_each_row(pool, gate, |_, row| {
            rows.push(row);
            Ok(())
        })?;
        TaggedRelation::new(self.schema.clone(), self.dict.clone(), rows)
    }

    /// Quality-predicate selection (σ with tag terms), streaming the
    /// heap through the pool — rows are decoded page-resident and only
    /// matches are materialized.
    pub fn select(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        expr: &relstore::Expr,
    ) -> DbResult<TaggedRelation> {
        let compiled = tagstore::algebra::CompiledTagExpr::compile_schema(&self.schema, expr)?;
        let mut hits = Vec::new();
        self.for_each_row(pool, gate, |_, row| {
            if compiled.matches(&row)? {
                hits.push(row);
            }
            Ok(())
        })?;
        TaggedRelation::new(self.schema.clone(), self.dict.clone(), hits)
    }

    // ---- internals ------------------------------------------------------

    /// RIDs per directory page — fixed so `pos → (page, slot)` is pure
    /// arithmetic.
    fn dir_entries_per_page(pool: &BufferPool) -> u64 {
        ((pool.page_size() - PAGE_HEADER - PAGE_TRAILER) / (RID_BYTES + SLOT_SIZE)) as u64
    }

    fn dir_locate(&self, pool: &BufferPool, pos: u64) -> (u32, u16) {
        let per = Self::dir_entries_per_page(pool);
        ((pos / per) as u32, (pos % per) as u16)
    }

    fn read_rid(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        pos: u64,
    ) -> DbResult<(u32, u16)> {
        let (dp, ds) = self.dir_locate(pool, pos);
        pool.with_page(self.dir, dp, gate, |p| {
            let e = p.get(ds)?.ok_or_else(|| {
                DbError::Storage(format!("directory entry {pos} tombstoned"))
            })?;
            decode_rid(e)
        })
    }

    fn write_rid(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        lsn: u64,
        pos: u64,
        (page, slot): (u32, u16),
    ) -> DbResult<()> {
        let (dp, ds) = self.dir_locate(pool, pos);
        pool.with_page_mut(self.dir, dp, lsn, gate, |p| {
            p.update_in_place(ds, &encode_rid(page, slot))
        })
    }

    fn read_record(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        page: u32,
        slot: u16,
    ) -> DbResult<TaggedRow> {
        pool.with_page(self.heap, page, gate, |p| {
            let bytes = p.get(slot)?.ok_or_else(|| {
                DbError::Storage(format!("heap record {page}/{slot} tombstoned"))
            })?;
            decode_row(bytes)
        })
    }

    /// [`PagedRelation::read_rid`] with scan-resistant admission — the
    /// bulk-read form.
    fn read_rid_scan(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        pos: u64,
    ) -> DbResult<(u32, u16)> {
        let (dp, ds) = self.dir_locate(pool, pos);
        pool.with_page_scan(self.dir, dp, gate, |p| {
            let e = p.get(ds)?.ok_or_else(|| {
                DbError::Storage(format!("directory entry {pos} tombstoned"))
            })?;
            decode_rid(e)
        })
    }

    /// [`PagedRelation::read_record`] with scan-resistant admission — the
    /// bulk-read form.
    fn read_record_scan(
        &self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        page: u32,
        slot: u16,
    ) -> DbResult<TaggedRow> {
        pool.with_page_scan(self.heap, page, gate, |p| {
            let bytes = p.get(slot)?.ok_or_else(|| {
                DbError::Storage(format!("heap record {page}/{slot} tombstoned"))
            })?;
            decode_row(bytes)
        })
    }

    /// Appends `bytes` to the heap tail page, opening a new page exactly
    /// when it does not fit — the placement rule redo must reproduce.
    fn append_heap(
        &mut self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        lsn: u64,
        bytes: &[u8],
    ) -> DbResult<(u32, u16)> {
        let pages = pool.logical_pages(self.heap);
        if pages > 0 {
            let tail = pages - 1;
            let slot =
                pool.with_page_mut(self.heap, tail, lsn, gate, |p| Ok(p.insert(bytes)))?;
            if let Some(slot) = slot {
                return Ok((tail, slot));
            }
        }
        let fresh = pool.alloc_page(self.heap, gate)?;
        let slot = pool
            .with_page_mut(self.heap, fresh, lsn, gate, |p| Ok(p.insert(bytes)))?
            .ok_or_else(|| {
                DbError::Storage(format!("record of {} bytes exceeds page", bytes.len()))
            })?;
        Ok((fresh, slot))
    }

    /// Appends a directory entry for row `self.rows` (the row being
    /// pushed).
    fn append_dir(
        &mut self,
        pool: &mut BufferPool,
        gate: &mut dyn LogGate,
        lsn: u64,
        (page, slot): (u32, u16),
    ) -> DbResult<()> {
        let (dp, ds) = self.dir_locate(pool, self.rows);
        if dp as u64 >= pool.logical_pages(self.dir) as u64 {
            let fresh = pool.alloc_page(self.dir, gate)?;
            debug_assert_eq!(fresh, dp);
        }
        let got = pool.with_page_mut(self.dir, dp, lsn, gate, |p| {
            Ok(p.insert(&encode_rid(page, slot)))
        })?;
        match got {
            Some(s) if s == ds => Ok(()),
            got => Err(DbError::Storage(format!(
                "directory slot drift: expected {ds}, got {got:?}"
            ))),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::buffer_pool::{NoGate, MIN_FRAMES};
    use crate::fs::MemFs;
    use relstore::{DataType, Expr, Value};
    use tagstore::QualityCell;

    const PS: usize = 512; // small pages: force multi-page layouts fast

    fn schema() -> Schema {
        Schema::of(&[("k", DataType::Int), ("v", DataType::Text)])
    }

    fn setup() -> (BufferPool, PagedRelation, MemFs) {
        let fs = MemFs::new();
        let mut pool = BufferPool::new(PS, MIN_FRAMES);
        let rel = PagedRelation::create(
            &mut pool,
            Arc::new(fs.clone()),
            "q",
            schema(),
            IndicatorDictionary::with_paper_defaults(),
        );
        (pool, rel, fs)
    }

    fn row(k: i64, v: &str, src: Option<&str>) -> TaggedRow {
        let mut cell = QualityCell::bare(v);
        if let Some(s) = src {
            cell.set_tag(IndicatorValue::new("source", s));
        }
        vec![QualityCell::bare(k), cell]
    }

    fn push(pool: &mut BufferPool, rel: &mut PagedRelation, r: TaggedRow) {
        rel.validate_push(pool, &r).unwrap();
        rel.push(pool, &mut NoGate, 1, &r).unwrap();
    }

    #[test]
    fn push_read_roundtrip_across_many_pages() {
        let (mut pool, mut rel, _fs) = setup();
        let n = 500u64; // hundreds of pages at 512-byte pages
        for i in 0..n {
            push(&mut pool, &mut rel, row(i as i64, &format!("val{i}"), None));
        }
        assert_eq!(rel.len(), n);
        assert!(pool.logical_pages(0) > MIN_FRAMES as u32, "must outgrow the pool");
        for i in (0..n).step_by(97) {
            let r = rel.row(&mut pool, &mut NoGate, i).unwrap();
            assert_eq!(r[0].value, Value::Int(i as i64));
            assert_eq!(r[1].value, Value::text(format!("val{i}")));
        }
    }

    #[test]
    fn matches_in_memory_twin_under_mixed_ops() {
        let (mut pool, mut rel, _fs) = setup();
        let mut twin = TaggedRelation::empty(schema(), IndicatorDictionary::with_paper_defaults());
        for i in 0..120i64 {
            let r = row(i, "x", if i % 3 == 0 { Some("feed") } else { None });
            push(&mut pool, &mut rel, r.clone());
            twin.push(r).unwrap();
            if i % 5 == 4 {
                let pos = (i as u64 * 7) % rel.len();
                let tag = IndicatorValue::new("source", "audit");
                rel.validate_tag(pos, "v", &tag).unwrap();
                rel.tag_cell(&mut pool, &mut NoGate, 1, pos, "v", tag.clone())
                    .unwrap();
                twin.tag_cell(pos as usize, "v", tag).unwrap();
            }
            if i % 7 == 6 {
                let pos = (i as u64 * 3) % rel.len();
                let got = rel.swap_remove(&mut pool, &mut NoGate, 1, pos).unwrap();
                let want = twin.swap_remove(pos as usize).unwrap();
                assert_eq!(got, want);
            }
        }
        assert_eq!(rel.len() as usize, twin.len());
        assert_eq!(rel.to_relation(&mut pool, &mut NoGate).unwrap(), twin);
    }

    #[test]
    fn select_streams_matches() {
        let (mut pool, mut rel, _fs) = setup();
        for i in 0..200i64 {
            push(
                &mut pool,
                &mut rel,
                row(i, "x", if i % 4 == 0 { Some("nexis") } else { Some("feed") }),
            );
        }
        let pred = Expr::col("v@source").eq(Expr::lit("nexis"));
        let got = rel.select(&mut pool, &mut NoGate, &pred).unwrap();
        assert_eq!(got.len(), 50);
        // parity with the in-memory algebra over the materialized twin
        let twin = rel.to_relation(&mut pool, &mut NoGate).unwrap();
        let want = tagstore::algebra::select(&twin, &pred).unwrap();
        assert_eq!(got, want);
    }

    #[test]
    fn select_at_matches_full_scan_and_skips_pages() {
        let (mut pool, mut rel, _fs) = setup();
        for i in 0..400i64 {
            push(
                &mut pool,
                &mut rel,
                row(i, "x", if i % 40 == 0 { Some("nexis") } else { Some("feed") }),
            );
        }
        // retag a few rows so heap order no longer follows position order
        for pos in [3u64, 77, 200] {
            rel.tag_cell(
                &mut pool,
                &mut NoGate,
                2,
                pos,
                "v",
                IndicatorValue::new("source", "nexis"),
            )
            .unwrap();
        }
        let pred = Expr::col("v@source").eq(Expr::lit("nexis"));
        let want = rel.select(&mut pool, &mut NoGate, &pred).unwrap();

        // exact candidate set (what the bitmap index would hand over)
        let mut exact: Vec<u64> = (0..400u64).filter(|p| p % 40 == 0).collect();
        exact.extend([3u64, 77, 200]);
        exact.sort_unstable();
        exact.dedup();
        let (got, stats) = rel
            .select_at(&mut pool, &mut NoGate, &exact, Some(&pred))
            .unwrap();
        assert_eq!(got, want, "indexed path must be byte-identical to the scan");
        assert_eq!(stats.rows_out, want.len() as u64);
        let (heap_pages, _) = rel.pages(&pool);
        assert!(
            stats.candidate_pages < heap_pages as u64 / 2,
            "sparse candidates must skip most heap pages \
             ({} candidate vs {heap_pages} total)",
            stats.candidate_pages
        );

        // a superset candidate list with residual re-check converges to
        // the same answer
        let all: Vec<u64> = (0..400u64).collect();
        let (got, stats) = rel
            .select_at(&mut pool, &mut NoGate, &all, Some(&pred))
            .unwrap();
        assert_eq!(got, want);
        assert_eq!(stats.candidate_rows, 400);

        // no predicate: positions fetch positionally
        let (got, _) = rel
            .select_at(&mut pool, &mut NoGate, &[0, 77, 399], None)
            .unwrap();
        let twin = rel.to_relation(&mut pool, &mut NoGate).unwrap();
        assert_eq!(got.rows()[0], twin.rows()[0]);
        assert_eq!(got.rows()[1], twin.rows()[77]);
        assert_eq!(got.rows()[2], twin.rows()[399]);
    }

    #[test]
    fn validation_rejects_before_any_mutation() {
        let (mut pool, mut rel, _fs) = setup();
        push(&mut pool, &mut rel, row(1, "ok", None));
        // wrong arity
        assert!(rel
            .validate_push(&pool, &vec![QualityCell::bare(1i64)])
            .is_err());
        // wrong type
        assert!(rel
            .validate_push(
                &pool,
                &vec![QualityCell::bare("str"), QualityCell::bare("v")]
            )
            .is_err());
        // undeclared indicator
        assert!(rel
            .validate_tag(0, "v", &IndicatorValue::new("ghost", "x"))
            .is_err());
        // bad column / bad row
        assert!(rel
            .validate_tag(0, "nope", &IndicatorValue::new("source", "x"))
            .is_err());
        assert!(rel
            .validate_tag(9, "v", &IndicatorValue::new("source", "x"))
            .is_err());
        // oversized record
        let big = "z".repeat(PS);
        assert!(rel.validate_push(&pool, &row(1, &big, None)).is_err());
        assert_eq!(rel.len(), 1);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let (mut pool, mut rel, fs) = setup();
        for i in 0..80i64 {
            push(&mut pool, &mut rel, row(i, "x", Some("feed")));
        }
        rel.swap_remove(&mut pool, &mut NoGate, 1, 5).unwrap();
        let want = rel.to_relation(&mut pool, &mut NoGate).unwrap();
        // checkpoint: flush + sync + manifest
        pool.flush_all(&mut NoGate).unwrap();
        pool.sync_files().unwrap();
        let snap = rel.snapshot(&pool);
        pool.publish();

        // "restart": fresh pool, relation restored from the manifest
        let mut pool2 = BufferPool::new(PS, MIN_FRAMES);
        let rel2 = PagedRelation::restore(
            &mut pool2,
            Arc::new(fs),
            &snap,
            IndicatorDictionary::with_paper_defaults(),
        );
        assert_eq!(rel2.len(), rel.len());
        assert_eq!(rel2.to_relation(&mut pool2, &mut NoGate).unwrap(), want);
    }
}
