//! Logical WAL records: one per durable mutation of the paper-level
//! state — plain-table DML, tagged-relation tagging operations, and
//! audit-trail ("electronic trail") events.
//!
//! Records are *logical* redo records: replaying the committed prefix
//! through the same code paths that produced it reconstructs the exact
//! in-memory state (the engine's mutations are deterministic).

use crate::codec::{Decoder, Encoder};
use dq_admin::AuditEvent;
use relstore::{DbError, DbResult, Row, Schema};
use tagstore::{IndicatorDef, IndicatorValue, TaggedRow};

/// One logical operation in the log.
#[derive(Debug, Clone, PartialEq)]
pub enum WalRecord {
    /// `relstore` DDL: a new table.
    CreateTable {
        /// Table name.
        table: String,
        /// Its schema.
        schema: Schema,
    },
    /// `relstore::Table::insert`.
    Insert {
        /// Target table.
        table: String,
        /// The inserted row.
        row: Row,
    },
    /// `relstore::Table::update` (positional).
    Update {
        /// Target table.
        table: String,
        /// Row position replaced.
        pos: u64,
        /// The replacement row.
        row: Row,
    },
    /// `relstore::Table::delete` (positional swap-remove).
    Delete {
        /// Target table.
        table: String,
        /// Row position removed.
        pos: u64,
    },
    /// `relstore::Table::bulk_load`.
    BulkLoad {
        /// Target table.
        table: String,
        /// The loaded batch.
        rows: Vec<Row>,
    },
    /// `tagstore` DDL: a new tagged relation with its indicator
    /// dictionary.
    CreateTagged {
        /// Relation name.
        name: String,
        /// Application schema.
        schema: Schema,
        /// Declared indicators (the dictionary, flattened).
        dict: Vec<IndicatorDef>,
    },
    /// `tagstore` push of one tagged row.
    TagPush {
        /// Target tagged relation.
        name: String,
        /// The pushed row (cells with their tags).
        row: TaggedRow,
    },
    /// `tagstore` cell tagging.
    TagCell {
        /// Target tagged relation.
        name: String,
        /// Row position.
        row: u64,
        /// Column name.
        column: String,
        /// The tag set on the cell.
        tag: IndicatorValue,
    },
    /// `tagstore` positional swap-remove of a tagged row.
    TagRemove {
        /// Target tagged relation.
        name: String,
        /// Row position removed.
        row: u64,
    },
    /// One `dq_admin::audit` event (sequence number included).
    Audit {
        /// The event, exactly as recorded on the trail.
        event: AuditEvent,
    },
    /// Paged-relation DDL: a new relation in paged storage. Like every
    /// paged record, this carries only the logical operation — page
    /// placement is deterministic, so redo re-derives it.
    PagedCreate {
        /// Relation name.
        name: String,
        /// Application schema.
        schema: Schema,
        /// Declared indicators (the dictionary, flattened).
        dict: Vec<IndicatorDef>,
    },
    /// Push of one tagged row into a paged relation.
    PagedPush {
        /// Target paged relation.
        name: String,
        /// The pushed row (cells with their tags).
        row: TaggedRow,
    },
    /// Cell tagging in a paged relation.
    PagedTagCell {
        /// Target paged relation.
        name: String,
        /// Row position.
        row: u64,
        /// Column name.
        column: String,
        /// The tag set on the cell.
        tag: IndicatorValue,
    },
    /// Positional swap-remove of a row from a paged relation.
    PagedRemove {
        /// Target paged relation.
        name: String,
        /// Row position removed.
        row: u64,
    },
}

impl WalRecord {
    /// Encodes this record (without framing) into `enc`.
    pub fn encode(&self, enc: &mut Encoder) {
        match self {
            WalRecord::CreateTable { table, schema } => {
                enc.put_u8(0);
                enc.put_str(table);
                enc.put_schema(schema);
            }
            WalRecord::Insert { table, row } => {
                enc.put_u8(1);
                enc.put_str(table);
                enc.put_row(row);
            }
            WalRecord::Update { table, pos, row } => {
                enc.put_u8(2);
                enc.put_str(table);
                enc.put_u64(*pos);
                enc.put_row(row);
            }
            WalRecord::Delete { table, pos } => {
                enc.put_u8(3);
                enc.put_str(table);
                enc.put_u64(*pos);
            }
            WalRecord::BulkLoad { table, rows } => {
                enc.put_u8(4);
                enc.put_str(table);
                enc.put_u32(rows.len() as u32);
                for r in rows {
                    enc.put_row(r);
                }
            }
            WalRecord::CreateTagged { name, schema, dict } => {
                enc.put_u8(5);
                enc.put_str(name);
                enc.put_schema(schema);
                enc.put_u32(dict.len() as u32);
                for d in dict {
                    enc.put_indicator_def(d);
                }
            }
            WalRecord::TagPush { name, row } => {
                enc.put_u8(6);
                enc.put_str(name);
                enc.put_tagged_row(row);
            }
            WalRecord::TagCell {
                name,
                row,
                column,
                tag,
            } => {
                enc.put_u8(7);
                enc.put_str(name);
                enc.put_u64(*row);
                enc.put_str(column);
                enc.put_tag(tag);
            }
            WalRecord::TagRemove { name, row } => {
                enc.put_u8(8);
                enc.put_str(name);
                enc.put_u64(*row);
            }
            WalRecord::Audit { event } => {
                enc.put_u8(9);
                enc.put_audit_event(event);
            }
            WalRecord::PagedCreate { name, schema, dict } => {
                enc.put_u8(10);
                enc.put_str(name);
                enc.put_schema(schema);
                enc.put_u32(dict.len() as u32);
                for d in dict {
                    enc.put_indicator_def(d);
                }
            }
            WalRecord::PagedPush { name, row } => {
                enc.put_u8(11);
                enc.put_str(name);
                enc.put_tagged_row(row);
            }
            WalRecord::PagedTagCell {
                name,
                row,
                column,
                tag,
            } => {
                enc.put_u8(12);
                enc.put_str(name);
                enc.put_u64(*row);
                enc.put_str(column);
                enc.put_tag(tag);
            }
            WalRecord::PagedRemove { name, row } => {
                enc.put_u8(13);
                enc.put_str(name);
                enc.put_u64(*row);
            }
        }
    }

    /// Decodes one record from `dec`.
    pub fn decode(dec: &mut Decoder<'_>) -> DbResult<WalRecord> {
        Ok(match dec.get_u8()? {
            0 => WalRecord::CreateTable {
                table: dec.get_str()?,
                schema: dec.get_schema()?,
            },
            1 => WalRecord::Insert {
                table: dec.get_str()?,
                row: dec.get_row()?,
            },
            2 => WalRecord::Update {
                table: dec.get_str()?,
                pos: dec.get_u64()?,
                row: dec.get_row()?,
            },
            3 => WalRecord::Delete {
                table: dec.get_str()?,
                pos: dec.get_u64()?,
            },
            4 => {
                let table = dec.get_str()?;
                let n = dec.get_u32()? as usize;
                let mut rows = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    rows.push(dec.get_row()?);
                }
                WalRecord::BulkLoad { table, rows }
            }
            5 => {
                let name = dec.get_str()?;
                let schema = dec.get_schema()?;
                let n = dec.get_u32()? as usize;
                let mut dict = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    dict.push(dec.get_indicator_def()?);
                }
                WalRecord::CreateTagged { name, schema, dict }
            }
            6 => WalRecord::TagPush {
                name: dec.get_str()?,
                row: dec.get_tagged_row()?,
            },
            7 => WalRecord::TagCell {
                name: dec.get_str()?,
                row: dec.get_u64()?,
                column: dec.get_str()?,
                tag: dec.get_tag()?,
            },
            8 => WalRecord::TagRemove {
                name: dec.get_str()?,
                row: dec.get_u64()?,
            },
            9 => WalRecord::Audit {
                event: dec.get_audit_event()?,
            },
            10 => {
                let name = dec.get_str()?;
                let schema = dec.get_schema()?;
                let n = dec.get_u32()? as usize;
                let mut dict = Vec::with_capacity(n.min(1024));
                for _ in 0..n {
                    dict.push(dec.get_indicator_def()?);
                }
                WalRecord::PagedCreate { name, schema, dict }
            }
            11 => WalRecord::PagedPush {
                name: dec.get_str()?,
                row: dec.get_tagged_row()?,
            },
            12 => WalRecord::PagedTagCell {
                name: dec.get_str()?,
                row: dec.get_u64()?,
                column: dec.get_str()?,
                tag: dec.get_tag()?,
            },
            13 => WalRecord::PagedRemove {
                name: dec.get_str()?,
                row: dec.get_u64()?,
            },
            t => return Err(DbError::Storage(format!("unknown WAL record tag {t}"))),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dq_admin::AuditAction;
    use relstore::{DataType, Date, Value};
    use tagstore::QualityCell;

    fn roundtrip(r: WalRecord) {
        let mut e = Encoder::new();
        r.encode(&mut e);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(WalRecord::decode(&mut d).unwrap(), r);
        assert!(d.is_exhausted(), "{r:?} left trailing bytes");
    }

    #[test]
    fn every_variant_roundtrips() {
        let schema = Schema::of(&[("id", DataType::Int), ("name", DataType::Text)]);
        roundtrip(WalRecord::CreateTable {
            table: "customer".into(),
            schema: schema.clone(),
        });
        roundtrip(WalRecord::Insert {
            table: "customer".into(),
            row: vec![Value::Int(1), Value::text("Fruit Co")],
        });
        roundtrip(WalRecord::Update {
            table: "customer".into(),
            pos: 0,
            row: vec![Value::Int(1), Value::text("Fruit & Nut Co")],
        });
        roundtrip(WalRecord::Delete {
            table: "customer".into(),
            pos: 3,
        });
        roundtrip(WalRecord::BulkLoad {
            table: "customer".into(),
            rows: vec![
                vec![Value::Int(2), Value::Null],
                vec![Value::Int(3), Value::text("Nut Co")],
            ],
        });
        roundtrip(WalRecord::CreateTagged {
            name: "stock".into(),
            schema,
            dict: vec![IndicatorDef::new("source", DataType::Text, "origin")],
        });
        roundtrip(WalRecord::TagPush {
            name: "stock".into(),
            row: vec![
                QualityCell::bare(9i64),
                QualityCell::bare("NYSE").with_tag(IndicatorValue::new("source", "feed")),
            ],
        });
        roundtrip(WalRecord::TagCell {
            name: "stock".into(),
            row: 4,
            column: "name".into(),
            tag: IndicatorValue::new("source", "Nexis")
                .with_meta(IndicatorValue::new("source", "system clock")),
        });
        roundtrip(WalRecord::TagRemove {
            name: "stock".into(),
            row: 1,
        });
        roundtrip(WalRecord::Audit {
            event: AuditEvent {
                seq: 7,
                date: Date::parse("10-24-91").unwrap(),
                actor: "acct'g".into(),
                action: AuditAction::Create,
                table: "customer".into(),
                row_key: vec![Value::text("Nut Co")],
                column: Some("address".into()),
                detail: "recorded 62 Lois Av".into(),
            },
        });
        roundtrip(WalRecord::PagedCreate {
            name: "trades".into(),
            schema: Schema::of(&[("qty", DataType::Int)]),
            dict: vec![IndicatorDef::new("source", DataType::Text, "origin")],
        });
        roundtrip(WalRecord::PagedPush {
            name: "trades".into(),
            row: vec![
                QualityCell::bare(500i64).with_tag(IndicatorValue::new("source", "feed")),
            ],
        });
        roundtrip(WalRecord::PagedTagCell {
            name: "trades".into(),
            row: 99,
            column: "qty".into(),
            tag: IndicatorValue::new("source", "audit"),
        });
        roundtrip(WalRecord::PagedRemove {
            name: "trades".into(),
            row: 3,
        });
    }

    #[test]
    fn unknown_tag_rejected() {
        let mut d = Decoder::new(&[42]);
        assert!(WalRecord::decode(&mut d).is_err());
    }
}
