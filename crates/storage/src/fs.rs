//! Filesystem abstraction with fault injection.
//!
//! The WAL, checkpoint, and page writers talk to storage only through
//! [`Fs`], so recovery behaviour can be tested against *simulated* media
//! faults — short writes, torn tails, dropped fsyncs — without touching
//! a real disk. [`StdFs`] is the production implementation over a
//! directory; [`MemFs`] is the in-memory fault-injection implementation
//! whose [`MemFs::crash`] discards everything not yet fsynced, modelling
//! process (or power) death.
//!
//! Durability model: `append` and `write_at` may be buffered by the OS;
//! only `sync` makes written bytes crash-durable. `write_file` +
//! `rename` + `sync_dir` is the atomic-publish path used for
//! checkpoints.
//!
//! Directory entries have their own durability: fsyncing a *file* makes
//! its bytes — and, as a modelling simplification, its directory entry
//! under the name it was synced as — durable, but a bare `rename` is
//! **not** durable until [`Fs::sync_dir`] persists the directory. A
//! crash between `rename` and `sync_dir` may therefore resurface the
//! file under its old (pre-rename) name, which is exactly the torn
//! checkpoint-publish state recovery has to tolerate. `remove` is
//! likewise volatile: a deleted file whose entry was durable
//! *resurrects* on a crash unless a [`Fs::sync_dir`] persisted the
//! unlink — which is why the WAL and checkpoint pruning paths fsync the
//! directory after unlinking, and why recovery must tolerate stale
//! segments and checkpoints reappearing.

use relstore::{DbError, DbResult};
use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

fn io_err(ctx: &str, e: impl std::fmt::Display) -> DbError {
    DbError::Storage(format!("{ctx}: {e}"))
}

/// Storage operations the durability layer needs. Paths are plain file
/// names relative to one database directory.
pub trait Fs: Send + Sync {
    /// Appends bytes to `name` (creating it if absent), returning how
    /// many bytes were actually written — a fault-injecting
    /// implementation may write fewer (a *short write*).
    fn append(&self, name: &str, bytes: &[u8]) -> DbResult<usize>;

    /// Writes `bytes` at absolute `offset` in `name` (creating it if
    /// absent, zero-extending past the current end), returning how many
    /// bytes were actually written — the page write-back path. Like
    /// [`Fs::append`], nothing is crash-durable until [`Fs::sync`].
    fn write_at(&self, name: &str, offset: u64, bytes: &[u8]) -> DbResult<usize>;

    /// Reads exactly `len` bytes at absolute `offset` of `name` — the
    /// page read path. An error if the range is past the end.
    fn read_at(&self, name: &str, offset: u64, len: usize) -> DbResult<Vec<u8>>;

    /// Current length of `name` in bytes (0 when absent).
    fn file_len(&self, name: &str) -> u64;

    /// Forces previously written bytes of `name` to durable storage.
    fn sync(&self, name: &str) -> DbResult<()>;

    /// Creates or replaces `name` with exactly `bytes`, synced.
    fn write_file(&self, name: &str, bytes: &[u8]) -> DbResult<()>;

    /// Atomically renames `from` to `to` (replacing `to` if it exists).
    /// The new name is not crash-durable until [`Fs::sync_dir`].
    fn rename(&self, from: &str, to: &str) -> DbResult<()>;

    /// Forces the directory itself (the name → file mapping, including
    /// renames and removals) to durable storage.
    fn sync_dir(&self) -> DbResult<()>;

    /// Reads the entire contents of `name`.
    fn read(&self, name: &str) -> DbResult<Vec<u8>>;

    /// Deletes `name` (an error if absent). The unlink is not
    /// crash-durable until [`Fs::sync_dir`].
    fn remove(&self, name: &str) -> DbResult<()>;

    /// Truncates `name` to `len` bytes (recovery chops torn tails).
    fn truncate(&self, name: &str, len: u64) -> DbResult<()>;

    /// All file names in the directory, sorted.
    fn list(&self) -> DbResult<Vec<String>>;

    /// True iff `name` exists.
    fn exists(&self, name: &str) -> bool;
}

/// Production [`Fs`] over one real directory (created on construction).
#[derive(Debug)]
pub struct StdFs {
    root: PathBuf,
}

impl StdFs {
    /// Opens (creating if needed) the database directory at `root`.
    pub fn open(root: impl Into<PathBuf>) -> DbResult<Self> {
        let root = root.into();
        std::fs::create_dir_all(&root).map_err(|e| io_err("create_dir_all", e))?;
        Ok(StdFs { root })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.root.join(name)
    }
}

impl Fs for StdFs {
    fn append(&self, name: &str, bytes: &[u8]) -> DbResult<usize> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))
            .map_err(|e| io_err("open for append", e))?;
        f.write_all(bytes).map_err(|e| io_err("append", e))?;
        Ok(bytes.len())
    }

    fn write_at(&self, name: &str, offset: u64, bytes: &[u8]) -> DbResult<usize> {
        use std::os::unix::fs::FileExt as _;
        let f = std::fs::OpenOptions::new()
            .create(true)
            .truncate(false) // positional write into an existing image
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err("open for write_at", e))?;
        f.write_all_at(bytes, offset)
            .map_err(|e| io_err("write_at", e))?;
        Ok(bytes.len())
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> DbResult<Vec<u8>> {
        use std::os::unix::fs::FileExt as _;
        let f = std::fs::File::open(self.path(name)).map_err(|e| io_err("open for read_at", e))?;
        let mut buf = vec![0u8; len];
        f.read_exact_at(&mut buf, offset)
            .map_err(|e| io_err("read_at", e))?;
        Ok(buf)
    }

    fn file_len(&self, name: &str) -> u64 {
        std::fs::metadata(self.path(name)).map_or(0, |m| m.len())
    }

    fn sync(&self, name: &str) -> DbResult<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err("open for sync", e))?;
        f.sync_all().map_err(|e| io_err("fsync", e))
    }

    fn write_file(&self, name: &str, bytes: &[u8]) -> DbResult<()> {
        let path = self.path(name);
        let mut f = std::fs::File::create(&path).map_err(|e| io_err("create", e))?;
        f.write_all(bytes).map_err(|e| io_err("write", e))?;
        f.sync_all().map_err(|e| io_err("fsync", e))
    }

    fn rename(&self, from: &str, to: &str) -> DbResult<()> {
        std::fs::rename(self.path(from), self.path(to)).map_err(|e| io_err("rename", e))
    }

    fn sync_dir(&self) -> DbResult<()> {
        let d = std::fs::File::open(&self.root).map_err(|e| io_err("open dir for sync", e))?;
        d.sync_all().map_err(|e| io_err("fsync dir", e))
    }

    fn read(&self, name: &str) -> DbResult<Vec<u8>> {
        std::fs::read(self.path(name)).map_err(|e| io_err("read", e))
    }

    fn remove(&self, name: &str) -> DbResult<()> {
        std::fs::remove_file(self.path(name)).map_err(|e| io_err("remove", e))
    }

    fn truncate(&self, name: &str, len: u64) -> DbResult<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))
            .map_err(|e| io_err("open for truncate", e))?;
        f.set_len(len).map_err(|e| io_err("truncate", e))
    }

    fn list(&self) -> DbResult<Vec<String>> {
        let mut names = Vec::new();
        for entry in std::fs::read_dir(&self.root).map_err(|e| io_err("read_dir", e))? {
            let entry = entry.map_err(|e| io_err("read_dir entry", e))?;
            if entry.path().is_file() {
                names.push(entry.file_name().to_string_lossy().into_owned());
            }
        }
        names.sort_unstable();
        Ok(names)
    }

    fn exists(&self, name: &str) -> bool {
        self.path(name).exists()
    }
}

/// One in-memory file: its full (possibly OS-buffered) byte content, the
/// durable image a crash reverts to, and the name under which its
/// *directory entry* is durable (`None` until the first successful file
/// fsync or a `sync_dir`; left at the old name across a `rename` until
/// the next directory sync).
#[derive(Debug, Clone, Default)]
struct MemFile {
    data: Vec<u8>,
    durable: Vec<u8>,
    durable_name: Option<String>,
}

#[derive(Debug, Default)]
struct MemState {
    files: BTreeMap<String, MemFile>,
    /// Unlinked files whose directory entry was durable and whose
    /// removal has not been persisted by a `sync_dir` yet — they
    /// resurrect on a crash, keyed by their durable name.
    unlinked: BTreeMap<String, MemFile>,
    /// Remaining write budget in bytes; when it runs out, writes become
    /// short and then fail — the torn-write injector.
    write_budget: Option<usize>,
    /// When set, `sync` silently does nothing — the dropped-fsync
    /// injector (a disk that lies about flushing its cache).
    drop_syncs: bool,
    fsyncs: u64,
    dir_fsyncs: u64,
}

impl MemState {
    /// Consumes up to `want` bytes of the write budget, returning how
    /// many may actually be written (`Err` once the budget is gone).
    fn take_budget(&mut self, want: usize) -> DbResult<usize> {
        let n = match self.write_budget {
            None => want,
            Some(0) => {
                return Err(DbError::Storage(
                    "injected write failure (budget exhausted)".into(),
                ))
            }
            Some(budget) => want.min(budget),
        };
        if let Some(b) = self.write_budget.as_mut() {
            *b -= n;
        }
        Ok(n)
    }
}

/// In-memory [`Fs`] with fault injection. Cloning shares the underlying
/// state, so a "restarted process" is modelled by cloning the handle,
/// calling [`MemFs::crash`], and re-opening the database over the clone.
#[derive(Debug, Clone, Default)]
pub struct MemFs {
    state: Arc<Mutex<MemState>>,
}

impl MemFs {
    /// Empty in-memory directory with no faults armed.
    pub fn new() -> Self {
        Self::default()
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, MemState> {
        self.state.lock().expect("memfs poisoned")
    }

    /// Arms the torn-write injector: after `bytes` more written bytes,
    /// writes are cut short and subsequent writes fail.
    pub fn set_write_budget(&self, bytes: usize) {
        self.lock().write_budget = Some(bytes);
    }

    /// Disarms the torn-write injector.
    pub fn clear_write_budget(&self) {
        self.lock().write_budget = None;
    }

    /// Arms/disarms the dropped-fsync injector.
    pub fn set_drop_syncs(&self, drop: bool) {
        self.lock().drop_syncs = drop;
    }

    /// Simulates process/power death: file content reverts to its last
    /// fsynced image, files whose directory entry was never made durable
    /// disappear entirely, files renamed without a subsequent
    /// [`Fs::sync_dir`] reappear under the name their entry is durable
    /// as (usually the pre-rename name), and files unlinked without a
    /// subsequent [`Fs::sync_dir`] resurrect.
    pub fn crash(&self) {
        let mut st = self.lock();
        let mut survivors: BTreeMap<String, MemFile> = std::mem::take(&mut st.files)
            .into_values()
            .filter_map(|mut f| {
                let name = f.durable_name.clone()?;
                f.data = f.durable.clone();
                Some((name, f))
            })
            .collect();
        // unlinks that never hit the directory: the entry is still on
        // disk, so the file comes back with its durable content — unless
        // a survivor has since claimed the same name
        for (name, mut f) in std::mem::take(&mut st.unlinked) {
            f.data = f.durable.clone();
            survivors.entry(name).or_insert(f);
        }
        st.files = survivors;
    }

    /// Number of fsyncs observed (group-commit tests assert on this).
    pub fn fsync_count(&self) -> u64 {
        self.lock().fsyncs
    }

    /// Number of directory fsyncs observed (checkpoint publish asserts
    /// on this).
    pub fn dir_fsync_count(&self) -> u64 {
        self.lock().dir_fsyncs
    }

    /// Total durable (fsynced) bytes of `name`; 0 when absent.
    pub fn synced_len(&self, name: &str) -> usize {
        self.lock().files.get(name).map_or(0, |f| f.durable.len())
    }

    /// A deep snapshot of the current *durable* state, as a fresh
    /// independent [`MemFs`] — "what a crashed machine's disk holds".
    pub fn durable_snapshot(&self) -> MemFs {
        let st = self.lock();
        let mut files: BTreeMap<String, MemFile> = st
            .files
            .values()
            .filter_map(|f| {
                let name = f.durable_name.clone()?;
                Some((
                    name.clone(),
                    MemFile {
                        data: f.durable.clone(),
                        durable: f.durable.clone(),
                        durable_name: Some(name),
                    },
                ))
            })
            .collect();
        for (name, f) in &st.unlinked {
            files.entry(name.clone()).or_insert_with(|| MemFile {
                data: f.durable.clone(),
                durable: f.durable.clone(),
                durable_name: Some(name.clone()),
            });
        }
        MemFs {
            state: Arc::new(Mutex::new(MemState {
                files,
                ..Default::default()
            })),
        }
    }
}

impl Fs for MemFs {
    fn append(&self, name: &str, bytes: &[u8]) -> DbResult<usize> {
        let mut st = self.lock();
        let n = st.take_budget(bytes.len())?;
        let file = st.files.entry(name.to_owned()).or_default();
        file.data.extend_from_slice(&bytes[..n]);
        Ok(n)
    }

    fn write_at(&self, name: &str, offset: u64, bytes: &[u8]) -> DbResult<usize> {
        let mut st = self.lock();
        let n = st.take_budget(bytes.len())?;
        let file = st.files.entry(name.to_owned()).or_default();
        let offset = offset as usize;
        let end = offset + n;
        if file.data.len() < end {
            file.data.resize(end, 0);
        }
        file.data[offset..end].copy_from_slice(&bytes[..n]);
        if n < bytes.len() {
            return Err(DbError::Storage(format!(
                "injected short write_at: {n} of {} bytes",
                bytes.len()
            )));
        }
        Ok(n)
    }

    fn read_at(&self, name: &str, offset: u64, len: usize) -> DbResult<Vec<u8>> {
        let st = self.lock();
        let f = st
            .files
            .get(name)
            .ok_or_else(|| DbError::Storage(format!("read_at: no such file `{name}`")))?;
        let offset = offset as usize;
        let end = offset
            .checked_add(len)
            .filter(|&e| e <= f.data.len())
            .ok_or_else(|| {
                DbError::Storage(format!(
                    "read_at: range {offset}+{len} past end of `{name}` ({} bytes)",
                    f.data.len()
                ))
            })?;
        Ok(f.data[offset..end].to_vec())
    }

    fn file_len(&self, name: &str) -> u64 {
        self.lock().files.get(name).map_or(0, |f| f.data.len() as u64)
    }

    fn sync(&self, name: &str) -> DbResult<()> {
        let mut st = self.lock();
        st.fsyncs += 1;
        if st.drop_syncs {
            return Ok(()); // the lying disk: reports success, flushes nothing
        }
        match st.files.get_mut(name) {
            Some(f) => {
                f.durable = f.data.clone();
                // file fsync also persists the entry under this name
                f.durable_name = Some(name.to_owned());
                Ok(())
            }
            None => Err(DbError::Storage(format!("sync: no such file `{name}`"))),
        }
    }

    fn write_file(&self, name: &str, bytes: &[u8]) -> DbResult<()> {
        let mut st = self.lock();
        if let Some(budget) = st.write_budget {
            if budget < bytes.len() {
                // a partial checkpoint write that never completes
                let keep = bytes[..budget].to_vec();
                st.write_budget = Some(0);
                st.files.insert(
                    name.to_owned(),
                    MemFile {
                        data: keep.clone(),
                        durable: keep,
                        // the write failed before the fsync: neither the
                        // bytes nor the entry ever became durable
                        durable_name: None,
                    },
                );
                return Err(DbError::Storage("injected short checkpoint write".into()));
            }
            st.write_budget = Some(budget - bytes.len());
        }
        st.files.insert(
            name.to_owned(),
            MemFile {
                data: bytes.to_vec(),
                durable: bytes.to_vec(),
                durable_name: Some(name.to_owned()),
            },
        );
        Ok(())
    }

    fn rename(&self, from: &str, to: &str) -> DbResult<()> {
        let mut st = self.lock();
        // durable_name deliberately NOT updated: the rename lives only in
        // the in-memory directory until `sync_dir`
        let f = st
            .files
            .remove(from)
            .ok_or_else(|| DbError::Storage(format!("rename: no such file `{from}`")))?;
        st.files.insert(to.to_owned(), f);
        Ok(())
    }

    fn sync_dir(&self) -> DbResult<()> {
        let mut st = self.lock();
        st.dir_fsyncs += 1;
        if st.drop_syncs {
            return Ok(()); // the lying disk drops directory syncs too
        }
        // unlinks become durable: resurrection candidates are gone
        st.unlinked.clear();
        let names: Vec<String> = st.files.keys().cloned().collect();
        for name in names {
            let f = st.files.get_mut(&name).expect("just listed");
            // entries of files that had some durable presence become
            // durable under their *current* name; never-synced files
            // stay volatile (their data blocks were never flushed)
            if f.durable_name.is_some() {
                f.durable_name = Some(name);
            }
        }
        Ok(())
    }

    fn read(&self, name: &str) -> DbResult<Vec<u8>> {
        self.lock()
            .files
            .get(name)
            .map(|f| f.data.clone())
            .ok_or_else(|| DbError::Storage(format!("read: no such file `{name}`")))
    }

    fn remove(&self, name: &str) -> DbResult<()> {
        let mut st = self.lock();
        let f = st
            .files
            .remove(name)
            .ok_or_else(|| DbError::Storage(format!("remove: no such file `{name}`")))?;
        // if the entry was durable somewhere, the unlink itself is not
        // durable until the next sync_dir: park it for resurrection
        if let Some(durable_as) = f.durable_name.clone() {
            st.unlinked.insert(durable_as, f);
        }
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> DbResult<()> {
        let mut st = self.lock();
        let f = st
            .files
            .get_mut(name)
            .ok_or_else(|| DbError::Storage(format!("truncate: no such file `{name}`")))?;
        f.data.truncate(len as usize);
        let keep = f.durable.len().min(f.data.len());
        f.durable.truncate(keep);
        Ok(())
    }

    fn list(&self) -> DbResult<Vec<String>> {
        Ok(self.lock().files.keys().cloned().collect())
    }

    fn exists(&self, name: &str) -> bool {
        self.lock().files.contains_key(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memfs_append_read_roundtrip() {
        let fs = MemFs::new();
        assert_eq!(fs.append("a.log", b"hello ").unwrap(), 6);
        assert_eq!(fs.append("a.log", b"world").unwrap(), 5);
        assert_eq!(fs.read("a.log").unwrap(), b"hello world");
        assert!(fs.exists("a.log"));
        assert!(!fs.exists("b.log"));
        assert_eq!(fs.list().unwrap(), vec!["a.log".to_string()]);
    }

    #[test]
    fn crash_discards_unsynced_tail() {
        let fs = MemFs::new();
        fs.append("w.log", b"durable").unwrap();
        fs.sync("w.log").unwrap();
        fs.append("w.log", b" volatile").unwrap();
        fs.crash();
        assert_eq!(fs.read("w.log").unwrap(), b"durable");
        // a never-synced file disappears entirely
        fs.append("tmp", b"x").unwrap();
        fs.crash();
        assert!(!fs.exists("tmp"));
    }

    #[test]
    fn write_budget_injects_short_writes() {
        let fs = MemFs::new();
        fs.set_write_budget(4);
        assert_eq!(fs.append("w.log", b"123456").unwrap(), 4);
        assert!(fs.append("w.log", b"more").is_err());
        assert_eq!(fs.read("w.log").unwrap(), b"1234");
        fs.clear_write_budget();
        assert_eq!(fs.append("w.log", b"ok").unwrap(), 2);
    }

    #[test]
    fn dropped_fsyncs_lose_data_on_crash() {
        let fs = MemFs::new();
        fs.set_drop_syncs(true);
        fs.append("w.log", b"data").unwrap();
        fs.sync("w.log").unwrap(); // lies
        fs.crash();
        assert!(!fs.exists("w.log"));
    }

    #[test]
    fn durable_snapshot_is_independent() {
        let fs = MemFs::new();
        fs.append("w.log", b"abc").unwrap();
        fs.sync("w.log").unwrap();
        fs.append("w.log", b"xyz").unwrap();
        let snap = fs.durable_snapshot();
        assert_eq!(snap.read("w.log").unwrap(), b"abc");
        fs.append("w.log", b"!!!").unwrap();
        assert_eq!(snap.read("w.log").unwrap(), b"abc"); // unaffected
    }

    #[test]
    fn write_at_overwrites_and_extends() {
        let fs = MemFs::new();
        fs.append("p.dat", b"0123456789").unwrap();
        assert_eq!(fs.write_at("p.dat", 2, b"AB").unwrap(), 2);
        assert_eq!(fs.read("p.dat").unwrap(), b"01AB456789");
        // writing past the end zero-extends the gap
        assert_eq!(fs.write_at("p.dat", 12, b"XY").unwrap(), 2);
        assert_eq!(fs.read("p.dat").unwrap(), b"01AB456789\0\0XY");
        assert_eq!(fs.file_len("p.dat"), 14);
        assert_eq!(fs.read_at("p.dat", 2, 2).unwrap(), b"AB");
        assert!(fs.read_at("p.dat", 13, 2).is_err()); // past the end
    }

    #[test]
    fn unsynced_write_at_reverts_on_crash() {
        let fs = MemFs::new();
        fs.append("p.dat", b"0123456789").unwrap();
        fs.sync("p.dat").unwrap();
        fs.write_at("p.dat", 4, b"TORN").unwrap();
        fs.crash();
        assert_eq!(fs.read("p.dat").unwrap(), b"0123456789");
    }

    #[test]
    fn short_write_at_leaves_a_torn_page() {
        let fs = MemFs::new();
        fs.append("p.dat", b"0000000000").unwrap();
        fs.sync("p.dat").unwrap();
        fs.set_write_budget(3);
        assert!(fs.write_at("p.dat", 0, b"FULLPAGE").is_err());
        fs.clear_write_budget();
        assert_eq!(fs.read("p.dat").unwrap(), b"FUL0000000");
    }

    #[test]
    fn rename_without_dir_sync_resurfaces_the_old_name_on_crash() {
        let fs = MemFs::new();
        fs.write_file("c.tmp", b"ckpt").unwrap(); // synced under "c.tmp"
        fs.rename("c.tmp", "c.snap").unwrap();
        assert!(fs.exists("c.snap") && !fs.exists("c.tmp"));
        fs.crash();
        // the rename was never made durable: the entry comes back tmp
        assert!(fs.exists("c.tmp") && !fs.exists("c.snap"));
        assert_eq!(fs.read("c.tmp").unwrap(), b"ckpt");
    }

    #[test]
    fn rename_plus_dir_sync_survives_crash() {
        let fs = MemFs::new();
        fs.write_file("c.tmp", b"ckpt").unwrap();
        fs.rename("c.tmp", "c.snap").unwrap();
        fs.sync_dir().unwrap();
        assert_eq!(fs.dir_fsync_count(), 1);
        fs.crash();
        assert!(fs.exists("c.snap") && !fs.exists("c.tmp"));
        assert_eq!(fs.read("c.snap").unwrap(), b"ckpt");
    }

    #[test]
    fn dir_sync_does_not_rescue_unsynced_data() {
        let fs = MemFs::new();
        fs.append("w.log", b"volatile").unwrap();
        fs.sync_dir().unwrap();
        fs.crash();
        // the entry was volatile too: its data blocks were never synced
        assert!(!fs.exists("w.log"));
    }

    #[test]
    fn lying_disk_drops_dir_syncs_too() {
        let fs = MemFs::new();
        fs.write_file("c.tmp", b"ckpt").unwrap();
        fs.set_drop_syncs(true);
        fs.rename("c.tmp", "c.snap").unwrap();
        fs.sync_dir().unwrap(); // lies
        fs.crash();
        assert!(fs.exists("c.tmp") && !fs.exists("c.snap"));
    }

    #[test]
    fn remove_without_dir_sync_resurrects_on_crash() {
        let fs = MemFs::new();
        fs.write_file("wal-1.log", b"records").unwrap();
        fs.remove("wal-1.log").unwrap();
        assert!(!fs.exists("wal-1.log"));
        fs.crash();
        // the unlink never hit the directory: the segment is back
        assert!(fs.exists("wal-1.log"));
        assert_eq!(fs.read("wal-1.log").unwrap(), b"records");
    }

    #[test]
    fn remove_plus_dir_sync_is_final() {
        let fs = MemFs::new();
        fs.write_file("wal-1.log", b"records").unwrap();
        fs.remove("wal-1.log").unwrap();
        fs.sync_dir().unwrap();
        fs.crash();
        assert!(!fs.exists("wal-1.log"));
    }

    #[test]
    fn recreated_file_wins_over_resurrected_unlink() {
        let fs = MemFs::new();
        fs.write_file("seg", b"old").unwrap();
        fs.remove("seg").unwrap();
        fs.write_file("seg", b"new").unwrap(); // same name, fully synced
        fs.crash();
        assert_eq!(fs.read("seg").unwrap(), b"new");
    }

    #[test]
    fn never_durable_remove_leaves_nothing() {
        let fs = MemFs::new();
        fs.append("tmp", b"x").unwrap(); // entry never durable
        fs.remove("tmp").unwrap();
        fs.crash();
        assert!(!fs.exists("tmp"));
    }

    #[test]
    fn stdfs_roundtrip_in_tempdir() {
        let dir = std::env::temp_dir().join(format!("dq_storage_fs_test_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = StdFs::open(&dir).unwrap();
        fs.append("w.log", b"hello").unwrap();
        fs.sync("w.log").unwrap();
        assert_eq!(fs.read("w.log").unwrap(), b"hello");
        fs.truncate("w.log", 2).unwrap();
        assert_eq!(fs.read("w.log").unwrap(), b"he");
        fs.write_file("c.tmp", b"ckpt").unwrap();
        fs.rename("c.tmp", "c.snap").unwrap();
        fs.sync_dir().unwrap();
        assert!(fs.exists("c.snap") && !fs.exists("c.tmp"));
        assert_eq!(fs.list().unwrap(), vec!["c.snap".to_string(), "w.log".to_string()]);
        fs.remove("c.snap").unwrap();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stdfs_write_at_read_at() {
        let dir = std::env::temp_dir().join(format!("dq_storage_fs_at_{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let fs = StdFs::open(&dir).unwrap();
        fs.write_at("p.dat", 4, b"PAGE").unwrap();
        assert_eq!(fs.file_len("p.dat"), 8);
        assert_eq!(fs.read_at("p.dat", 4, 4).unwrap(), b"PAGE");
        assert_eq!(fs.read_at("p.dat", 0, 4).unwrap(), vec![0u8; 4]);
        fs.write_at("p.dat", 0, b"head").unwrap();
        assert_eq!(fs.read("p.dat").unwrap(), b"headPAGE");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
