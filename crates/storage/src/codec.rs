//! In-crate binary serialization for everything the WAL and checkpoints
//! persist: values, rows, schemas, quality cells with recursive meta
//! tags, indicator dictionaries, and audit events.
//!
//! The format is a plain little-endian TLV scheme — no crates.io
//! serializers exist in this build. Readers are strict: every length is
//! bounds-checked and every tag byte must be known, so a corrupt or
//! truncated buffer decodes to an error, never to garbage state.

use dq_admin::{AuditAction, AuditEvent};
use relstore::{ColumnDef, DataType, Date, DbError, DbResult, Row, Schema, Value};
use tagstore::{IndicatorDef, IndicatorValue, QualityCell, TaggedRow};

/// Byte-stream writer. All `put_*` are infallible appends.
#[derive(Debug, Default)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Empty encoder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Finishes, yielding the encoded bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True iff nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// One raw byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Little-endian i64.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// A [`Value`]: one type byte plus payload.
    pub fn put_value(&mut self, v: &Value) {
        match v {
            Value::Null => self.put_u8(0),
            Value::Bool(b) => {
                self.put_u8(1);
                self.put_u8(*b as u8);
            }
            Value::Int(i) => {
                self.put_u8(2);
                self.put_i64(*i);
            }
            Value::Float(f) => {
                self.put_u8(3);
                self.put_u64(f.to_bits());
            }
            Value::Text(s) => {
                self.put_u8(4);
                self.put_str(s);
            }
            Value::Date(d) => {
                self.put_u8(5);
                self.put_i64(d.days());
            }
        }
    }

    /// A row of values.
    pub fn put_row(&mut self, row: &Row) {
        self.put_u32(row.len() as u32);
        for v in row {
            self.put_value(v);
        }
    }

    /// A [`DataType`] as one byte.
    pub fn put_dtype(&mut self, t: DataType) {
        self.put_u8(match t {
            DataType::Bool => 0,
            DataType::Int => 1,
            DataType::Float => 2,
            DataType::Text => 3,
            DataType::Date => 4,
            DataType::Any => 5,
        });
    }

    /// A [`Schema`]: column count, then (name, dtype, nullable) triples.
    pub fn put_schema(&mut self, s: &Schema) {
        self.put_u32(s.arity() as u32);
        for c in s.columns() {
            self.put_str(&c.name);
            self.put_dtype(c.dtype);
            self.put_u8(c.nullable as u8);
        }
    }

    /// An [`IndicatorValue`] with its meta-tag tree, recursively.
    pub fn put_tag(&mut self, t: &IndicatorValue) {
        self.put_str(t.indicator.as_str());
        self.put_value(&t.value);
        self.put_u32(t.meta.len() as u32);
        for m in &t.meta {
            self.put_tag(m);
        }
    }

    /// A [`QualityCell`]: value plus its (sorted) tag vector.
    pub fn put_cell(&mut self, c: &QualityCell) {
        self.put_value(&c.value);
        let tags = c.tags();
        self.put_u32(tags.len() as u32);
        for t in tags {
            self.put_tag(t);
        }
    }

    /// A tagged row.
    pub fn put_tagged_row(&mut self, row: &TaggedRow) {
        self.put_u32(row.len() as u32);
        for c in row {
            self.put_cell(c);
        }
    }

    /// An [`IndicatorDef`].
    pub fn put_indicator_def(&mut self, d: &IndicatorDef) {
        self.put_str(&d.name);
        self.put_dtype(d.dtype);
        self.put_str(&d.description);
    }

    /// An [`AuditEvent`], sequence number included (replay must
    /// reproduce the exact trail, not renumber it).
    pub fn put_audit_event(&mut self, e: &AuditEvent) {
        self.put_u64(e.seq);
        self.put_i64(e.date.days());
        self.put_str(&e.actor);
        self.put_u8(match e.action {
            AuditAction::Create => 0,
            AuditAction::Update => 1,
            AuditAction::Transform => 2,
            AuditAction::Inspect => 3,
            AuditAction::Certify => 4,
            AuditAction::Delete => 5,
        });
        self.put_str(&e.table);
        self.put_row(&e.row_key);
        match &e.column {
            None => self.put_u8(0),
            Some(c) => {
                self.put_u8(1);
                self.put_str(c);
            }
        }
        self.put_str(&e.detail);
    }
}

fn corrupt(what: &str) -> DbError {
    DbError::Storage(format!("corrupt record: {what}"))
}

/// Bounds-checked reader over an encoded byte slice.
#[derive(Debug)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Reader over `buf` from the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// True iff every byte has been consumed.
    pub fn is_exhausted(&self) -> bool {
        self.pos == self.buf.len()
    }

    fn take(&mut self, n: usize) -> DbResult<&'a [u8]> {
        let end = self
            .pos
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| corrupt("unexpected end of buffer"))?;
        let s = &self.buf[self.pos..end];
        self.pos = end;
        Ok(s)
    }

    /// One raw byte.
    pub fn get_u8(&mut self) -> DbResult<u8> {
        Ok(self.take(1)?[0])
    }

    /// Little-endian u32.
    pub fn get_u32(&mut self) -> DbResult<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Little-endian u64.
    pub fn get_u64(&mut self) -> DbResult<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Little-endian i64.
    pub fn get_i64(&mut self) -> DbResult<i64> {
        Ok(i64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> DbResult<String> {
        let n = self.get_u32()? as usize;
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|_| corrupt("invalid utf-8"))
    }

    /// A [`Value`].
    pub fn get_value(&mut self) -> DbResult<Value> {
        Ok(match self.get_u8()? {
            0 => Value::Null,
            1 => Value::Bool(self.get_u8()? != 0),
            2 => Value::Int(self.get_i64()?),
            3 => Value::Float(f64::from_bits(self.get_u64()?)),
            4 => Value::Text(self.get_str()?),
            5 => Value::Date(Date::from_days(self.get_i64()?)),
            t => return Err(corrupt(&format!("unknown value tag {t}"))),
        })
    }

    /// A row of values.
    pub fn get_row(&mut self) -> DbResult<Row> {
        let n = self.get_u32()? as usize;
        let mut row = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            row.push(self.get_value()?);
        }
        Ok(row)
    }

    /// A [`DataType`].
    pub fn get_dtype(&mut self) -> DbResult<DataType> {
        Ok(match self.get_u8()? {
            0 => DataType::Bool,
            1 => DataType::Int,
            2 => DataType::Float,
            3 => DataType::Text,
            4 => DataType::Date,
            5 => DataType::Any,
            t => return Err(corrupt(&format!("unknown dtype tag {t}"))),
        })
    }

    /// A [`Schema`].
    pub fn get_schema(&mut self) -> DbResult<Schema> {
        let n = self.get_u32()? as usize;
        let mut cols = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            let name = self.get_str()?;
            let dtype = self.get_dtype()?;
            let nullable = self.get_u8()? != 0;
            cols.push(ColumnDef {
                name,
                dtype,
                nullable,
            });
        }
        Schema::new(cols)
    }

    /// An [`IndicatorValue`] tree.
    pub fn get_tag(&mut self) -> DbResult<IndicatorValue> {
        let indicator = self.get_str()?;
        let value = self.get_value()?;
        let n = self.get_u32()? as usize;
        let mut tag = IndicatorValue::new(indicator, value);
        for _ in 0..n {
            tag.meta.push(self.get_tag()?);
        }
        Ok(tag)
    }

    /// A [`QualityCell`].
    pub fn get_cell(&mut self) -> DbResult<QualityCell> {
        let value = self.get_value()?;
        let n = self.get_u32()? as usize;
        let mut cell = QualityCell::bare(value);
        for _ in 0..n {
            cell.set_tag(self.get_tag()?);
        }
        Ok(cell)
    }

    /// A tagged row.
    pub fn get_tagged_row(&mut self) -> DbResult<TaggedRow> {
        let n = self.get_u32()? as usize;
        let mut row = Vec::with_capacity(n.min(1024));
        for _ in 0..n {
            row.push(self.get_cell()?);
        }
        Ok(row)
    }

    /// An [`IndicatorDef`].
    pub fn get_indicator_def(&mut self) -> DbResult<IndicatorDef> {
        let name = self.get_str()?;
        let dtype = self.get_dtype()?;
        let description = self.get_str()?;
        Ok(IndicatorDef {
            name,
            dtype,
            description,
        })
    }

    /// An [`AuditEvent`].
    pub fn get_audit_event(&mut self) -> DbResult<AuditEvent> {
        let seq = self.get_u64()?;
        let date = Date::from_days(self.get_i64()?);
        let actor = self.get_str()?;
        let action = match self.get_u8()? {
            0 => AuditAction::Create,
            1 => AuditAction::Update,
            2 => AuditAction::Transform,
            3 => AuditAction::Inspect,
            4 => AuditAction::Certify,
            5 => AuditAction::Delete,
            t => return Err(corrupt(&format!("unknown audit action {t}"))),
        };
        let table = self.get_str()?;
        let row_key = self.get_row()?;
        let column = match self.get_u8()? {
            0 => None,
            1 => Some(self.get_str()?),
            t => return Err(corrupt(&format!("bad option tag {t}"))),
        };
        let detail = self.get_str()?;
        Ok(AuditEvent {
            seq,
            date,
            actor,
            action,
            table,
            row_key,
            column,
            detail,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_roundtrip() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_u32(123456);
        e.put_u64(u64::MAX);
        e.put_i64(-42);
        e.put_str("héllo, wörld");
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert_eq!(d.get_u8().unwrap(), 7);
        assert_eq!(d.get_u32().unwrap(), 123456);
        assert_eq!(d.get_u64().unwrap(), u64::MAX);
        assert_eq!(d.get_i64().unwrap(), -42);
        assert_eq!(d.get_str().unwrap(), "héllo, wörld");
        assert!(d.is_exhausted());
    }

    #[test]
    fn values_roundtrip() {
        let values = vec![
            Value::Null,
            Value::Bool(true),
            Value::Int(i64::MIN),
            Value::Float(f64::NAN),
            Value::Float(-0.0),
            Value::text("with \"quotes\", commas,\nand newlines"),
            Value::Date(Date::parse("10-24-91").unwrap()),
        ];
        let mut e = Encoder::new();
        e.put_row(&values);
        let bytes = e.into_bytes();
        let back = Decoder::new(&bytes).get_row().unwrap();
        // NaN breaks PartialEq; compare on the total order
        assert_eq!(back.len(), values.len());
        for (a, b) in back.iter().zip(&values) {
            assert_eq!(a.cmp(b), std::cmp::Ordering::Equal);
        }
    }

    #[test]
    fn schema_roundtrip() {
        let s = Schema::new(vec![
            ColumnDef::not_null("id", DataType::Int),
            ColumnDef::new("name", DataType::Text),
            ColumnDef::new("open", DataType::Any),
        ])
        .unwrap();
        let mut e = Encoder::new();
        e.put_schema(&s);
        let bytes = e.into_bytes();
        assert_eq!(Decoder::new(&bytes).get_schema().unwrap(), s);
    }

    #[test]
    fn tagged_cell_with_meta_roundtrips() {
        let cell = QualityCell::bare("62 Lois Av")
            .with_tag(
                IndicatorValue::new("source", "Nexis").with_meta(
                    IndicatorValue::new("creation_time", Value::Date(Date::parse("10-3-91").unwrap()))
                        .with_meta(IndicatorValue::new("source", "system clock")),
                ),
            )
            .with_tag(IndicatorValue::new("age", 14i64));
        let mut e = Encoder::new();
        e.put_cell(&cell);
        let bytes = e.into_bytes();
        assert_eq!(Decoder::new(&bytes).get_cell().unwrap(), cell);
    }

    #[test]
    fn audit_event_roundtrips() {
        let ev = AuditEvent {
            seq: 9,
            date: Date::parse("10-26-91").unwrap(),
            actor: "quality_admin".into(),
            action: AuditAction::Certify,
            table: "customer".into(),
            row_key: vec![Value::text("Nut Co"), Value::Int(3)],
            column: Some("address".into()),
            detail: "certified after double entry".into(),
        };
        let mut e = Encoder::new();
        e.put_audit_event(&ev);
        let bytes = e.into_bytes();
        assert_eq!(Decoder::new(&bytes).get_audit_event().unwrap(), ev);
    }

    #[test]
    fn truncated_and_garbage_rejected() {
        let mut e = Encoder::new();
        e.put_str("hello");
        let bytes = e.into_bytes();
        assert!(Decoder::new(&bytes[..bytes.len() - 1]).get_str().is_err());
        assert!(Decoder::new(&[9]).get_value().is_err());
        assert!(Decoder::new(&[]).get_u32().is_err());
        // declared length longer than buffer
        let mut e = Encoder::new();
        e.put_u32(u32::MAX);
        let bytes = e.into_bytes();
        assert!(Decoder::new(&bytes).get_str().is_err());
    }
}
