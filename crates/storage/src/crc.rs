//! CRC32 (IEEE 802.3 polynomial, reflected), implemented in-crate — the
//! build is offline, so no `crc32fast`. Table-driven, table built at
//! compile time.
//!
//! Every WAL frame and checkpoint file carries a CRC32 over its payload;
//! recovery treats a mismatch as a torn write and truncates there.

/// Reflected polynomial for CRC-32/ISO-HDLC (zlib, gzip, PNG).
const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `bytes` (single-shot).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789" under CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn detects_single_bit_flips() {
        let data = b"the electronic trail must be trustworthy".to_vec();
        let good = crc32(&data);
        for i in 0..data.len() {
            for bit in 0..8 {
                let mut corrupt = data.clone();
                corrupt[i] ^= 1 << bit;
                assert_ne!(crc32(&corrupt), good, "flip at byte {i} bit {bit}");
            }
        }
    }
}
