//! Fixed-size slotted pages — the unit the buffer pool caches and the
//! paged heap stores records in.
//!
//! ## On-disk layout (`page_size` bytes)
//!
//! ```text
//! header (16 bytes): [magic u32 LE] [lsn u64 LE] [slot_count u16 LE] [free_end u16 LE]
//! slot array:        slot_count × 4 bytes, growing up from the header:
//!                    [offset u16 LE] [len u16 LE]
//! free space
//! record data:       grows down from free_end toward the slot array
//! trailer (4 bytes): [crc32 over everything before it, u32 LE]
//! ```
//!
//! The `lsn` is the WAL position of the last record that dirtied the
//! page; the buffer pool refuses to flush a page whose `lsn` is not yet
//! durable in the log (write-ahead rule). The CRC is computed by
//! [`Page::sealed_bytes`] at flush time and verified by
//! [`Page::from_bytes`] at load time, so a torn or bit-rotted page is an
//! error instead of silent corruption.
//!
//! Records are addressed by slot index. A slot whose offset is
//! [`TOMBSTONE`] marks a deleted record; its space is *not* reclaimed
//! (the paged heap is append-mostly, and keeping fullness a pure
//! function of the insert history is what makes WAL redo's page
//! placement deterministic). Offsets are `u16`, so `page_size` is capped
//! at 65536; the default used by the pool is 16 KiB.

use crate::crc::crc32;
use relstore::{DbError, DbResult};

/// First 4 bytes of every page ("DQPG").
pub const PAGE_MAGIC: u32 = 0x4447_5150;
/// Header size in bytes.
pub const PAGE_HEADER: usize = 16;
/// Trailer (CRC) size in bytes.
pub const PAGE_TRAILER: usize = 4;
/// Per-slot bookkeeping in the slot array.
pub const SLOT_SIZE: usize = 4;
/// Slot-offset value marking a deleted record.
pub const TOMBSTONE: u16 = u16::MAX;

/// One in-memory page image. Mutations only touch the byte buffer; the
/// CRC trailer is (re)computed when the page is sealed for flushing.
#[derive(Debug, Clone, PartialEq)]
pub struct Page {
    bytes: Vec<u8>,
}

impl Page {
    /// A fresh empty page. `page_size` must fit `u16` offsets and leave
    /// room for header + trailer.
    pub fn new(page_size: usize) -> Page {
        assert!(
            (PAGE_HEADER + PAGE_TRAILER + SLOT_SIZE..=65536).contains(&page_size),
            "bad page size {page_size}"
        );
        let mut p = Page {
            bytes: vec![0u8; page_size],
        };
        p.bytes[0..4].copy_from_slice(&PAGE_MAGIC.to_le_bytes());
        p.set_free_end((page_size - PAGE_TRAILER) as u16);
        p
    }

    /// Validates a page image read back from disk: exact size, magic,
    /// CRC, and internally consistent header fields.
    pub fn from_bytes(bytes: Vec<u8>, page_size: usize) -> DbResult<Page> {
        if bytes.len() != page_size {
            return Err(DbError::Storage(format!(
                "page is {} bytes, expected {page_size}",
                bytes.len()
            )));
        }
        let body = &bytes[..page_size - PAGE_TRAILER];
        let stored = u32::from_le_bytes(bytes[page_size - PAGE_TRAILER..].try_into().unwrap());
        if crc32(body) != stored {
            return Err(DbError::Storage("page CRC mismatch".into()));
        }
        if u32::from_le_bytes(bytes[0..4].try_into().unwrap()) != PAGE_MAGIC {
            return Err(DbError::Storage("page bad magic".into()));
        }
        let p = Page { bytes };
        let (count, free_end) = (p.slot_count() as usize, p.free_end() as usize);
        if free_end > page_size - PAGE_TRAILER || PAGE_HEADER + count * SLOT_SIZE > free_end {
            return Err(DbError::Storage("page header out of bounds".into()));
        }
        Ok(p)
    }

    /// Total size of the page image in bytes.
    pub fn page_size(&self) -> usize {
        self.bytes.len()
    }

    /// WAL position of the last record that dirtied this page.
    pub fn lsn(&self) -> u64 {
        u64::from_le_bytes(self.bytes[4..12].try_into().unwrap())
    }

    /// Stamps the page with the LSN of a mutation just applied to it
    /// (monotone: never moves the stamp backwards).
    pub fn stamp_lsn(&mut self, lsn: u64) {
        if lsn > self.lsn() {
            self.bytes[4..12].copy_from_slice(&lsn.to_le_bytes());
        }
    }

    /// Number of slots (live + tombstoned).
    pub fn slot_count(&self) -> u16 {
        u16::from_le_bytes(self.bytes[12..14].try_into().unwrap())
    }

    fn set_slot_count(&mut self, n: u16) {
        self.bytes[12..14].copy_from_slice(&n.to_le_bytes());
    }

    fn free_end(&self) -> u16 {
        u16::from_le_bytes(self.bytes[14..16].try_into().unwrap())
    }

    fn set_free_end(&mut self, v: u16) {
        self.bytes[14..16].copy_from_slice(&v.to_le_bytes());
    }

    fn slot(&self, i: u16) -> (u16, u16) {
        let at = PAGE_HEADER + i as usize * SLOT_SIZE;
        (
            u16::from_le_bytes(self.bytes[at..at + 2].try_into().unwrap()),
            u16::from_le_bytes(self.bytes[at + 2..at + 4].try_into().unwrap()),
        )
    }

    fn set_slot(&mut self, i: u16, offset: u16, len: u16) {
        let at = PAGE_HEADER + i as usize * SLOT_SIZE;
        self.bytes[at..at + 2].copy_from_slice(&offset.to_le_bytes());
        self.bytes[at + 2..at + 4].copy_from_slice(&len.to_le_bytes());
    }

    /// Contiguous free bytes between the slot array and the record data.
    pub fn free_space(&self) -> usize {
        self.free_end() as usize - (PAGE_HEADER + self.slot_count() as usize * SLOT_SIZE)
    }

    /// True iff a record of `len` bytes (plus its slot) fits.
    pub fn can_fit(&self, len: usize) -> bool {
        len < TOMBSTONE as usize && len + SLOT_SIZE <= self.free_space()
    }

    /// Largest record a fresh page of `page_size` can hold — the upper
    /// bound callers validate encoded records against.
    pub fn max_record(page_size: usize) -> usize {
        page_size - PAGE_HEADER - PAGE_TRAILER - SLOT_SIZE
    }

    /// Appends a record, returning its slot index (`None` if it does not
    /// fit — the caller opens a fresh page).
    pub fn insert(&mut self, record: &[u8]) -> Option<u16> {
        if !self.can_fit(record.len()) {
            return None;
        }
        let slot = self.slot_count();
        let off = self.free_end() - record.len() as u16;
        self.bytes[off as usize..off as usize + record.len()].copy_from_slice(record);
        self.set_free_end(off);
        self.set_slot_count(slot + 1);
        self.set_slot(slot, off, record.len() as u16);
        Some(slot)
    }

    /// The record in `slot`; `None` if the slot is tombstoned.
    pub fn get(&self, slot: u16) -> DbResult<Option<&[u8]>> {
        if slot >= self.slot_count() {
            return Err(DbError::Storage(format!(
                "slot {slot} out of range ({} slots)",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE {
            return Ok(None);
        }
        Ok(Some(&self.bytes[off as usize..off as usize + len as usize]))
    }

    /// Marks `slot` deleted. The record bytes stay where they are —
    /// fullness must remain a function of the insert history alone.
    pub fn tombstone(&mut self, slot: u16) -> DbResult<()> {
        if slot >= self.slot_count() {
            return Err(DbError::Storage(format!(
                "tombstone: slot {slot} out of range ({} slots)",
                self.slot_count()
            )));
        }
        let (_, len) = self.slot(slot);
        self.set_slot(slot, TOMBSTONE, len);
        Ok(())
    }

    /// Overwrites `slot` with a same-length record (directory entries
    /// are fixed-size, so positional updates never move).
    pub fn update_in_place(&mut self, slot: u16, record: &[u8]) -> DbResult<()> {
        if slot >= self.slot_count() {
            return Err(DbError::Storage(format!(
                "update: slot {slot} out of range ({} slots)",
                self.slot_count()
            )));
        }
        let (off, len) = self.slot(slot);
        if off == TOMBSTONE || len as usize != record.len() {
            return Err(DbError::Storage(format!(
                "update: slot {slot} holds {len} bytes, got {}",
                record.len()
            )));
        }
        self.bytes[off as usize..off as usize + record.len()].copy_from_slice(record);
        Ok(())
    }

    /// Removes the most recently inserted slot, reclaiming its space
    /// (the directory's pop when a swap-remove shrinks the relation).
    /// The last slot must be live and must be the last record inserted.
    pub fn pop_last(&mut self) -> DbResult<Vec<u8>> {
        let count = self.slot_count();
        if count == 0 {
            return Err(DbError::Storage("pop_last on empty page".into()));
        }
        let (off, len) = self.slot(count - 1);
        if off == TOMBSTONE || off != self.free_end() {
            return Err(DbError::Storage("pop_last: last slot not poppable".into()));
        }
        let rec = self.bytes[off as usize..(off + len) as usize].to_vec();
        // zero the vacated region so page images stay deterministic
        self.bytes[off as usize..(off + len) as usize].fill(0);
        self.set_free_end(off + len);
        self.set_slot_count(count - 1);
        self.set_slot(count - 1, 0, 0);
        Ok(rec)
    }

    /// Recomputes the CRC trailer and returns the full image, ready for
    /// `write_at`.
    pub fn sealed_bytes(&mut self) -> &[u8] {
        let body_len = self.bytes.len() - PAGE_TRAILER;
        let crc = crc32(&self.bytes[..body_len]);
        self.bytes[body_len..].copy_from_slice(&crc.to_le_bytes());
        &self.bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const PS: usize = 256;

    #[test]
    fn insert_get_roundtrip() {
        let mut p = Page::new(PS);
        assert_eq!(p.slot_count(), 0);
        let a = p.insert(b"alpha").unwrap();
        let b = p.insert(b"beta").unwrap();
        assert_eq!((a, b), (0, 1));
        assert_eq!(p.get(0).unwrap(), Some(&b"alpha"[..]));
        assert_eq!(p.get(1).unwrap(), Some(&b"beta"[..]));
        assert!(p.get(2).is_err());
    }

    #[test]
    fn fills_up_and_rejects() {
        let mut p = Page::new(PS);
        let rec = [7u8; 32];
        let mut n = 0;
        while p.insert(&rec).is_some() {
            n += 1;
        }
        assert!(n > 0);
        assert!(!p.can_fit(32));
        assert!(p.can_fit(p.free_space() - SLOT_SIZE));
        // everything inserted still reads back
        for i in 0..n {
            assert_eq!(p.get(i as u16).unwrap(), Some(&rec[..]));
        }
    }

    #[test]
    fn tombstone_hides_but_keeps_space() {
        let mut p = Page::new(PS);
        p.insert(b"dead").unwrap();
        p.insert(b"live").unwrap();
        let free = p.free_space();
        p.tombstone(0).unwrap();
        assert_eq!(p.get(0).unwrap(), None);
        assert_eq!(p.get(1).unwrap(), Some(&b"live"[..]));
        assert_eq!(p.free_space(), free, "tombstoning must not reclaim");
    }

    #[test]
    fn update_in_place_same_len_only() {
        let mut p = Page::new(PS);
        p.insert(b"12345678").unwrap();
        p.update_in_place(0, b"abcdefgh").unwrap();
        assert_eq!(p.get(0).unwrap(), Some(&b"abcdefgh"[..]));
        assert!(p.update_in_place(0, b"short").is_err());
        p.tombstone(0).unwrap();
        assert!(p.update_in_place(0, b"abcdefgh").is_err());
    }

    #[test]
    fn pop_last_reclaims() {
        let mut p = Page::new(PS);
        p.insert(b"keep").unwrap();
        p.insert(b"pop!").unwrap();
        let free = p.free_space();
        assert_eq!(p.pop_last().unwrap(), b"pop!");
        assert_eq!(p.slot_count(), 1);
        assert_eq!(p.free_space(), free + 4 + SLOT_SIZE);
        assert_eq!(p.get(0).unwrap(), Some(&b"keep"[..]));
        // push-pop-push produces the identical image (redo determinism)
        let mut q = Page::new(PS);
        q.insert(b"keep").unwrap();
        let mut with_pop = q.clone();
        with_pop.insert(b"pop!").unwrap();
        with_pop.pop_last().unwrap();
        assert_eq!(q.sealed_bytes(), with_pop.sealed_bytes());
    }

    #[test]
    fn seal_load_roundtrip() {
        let mut p = Page::new(PS);
        p.insert(b"persist me").unwrap();
        p.stamp_lsn(42);
        let bytes = p.sealed_bytes().to_vec();
        let q = Page::from_bytes(bytes, PS).unwrap();
        assert_eq!(q.lsn(), 42);
        assert_eq!(q.get(0).unwrap(), Some(&b"persist me"[..]));
        assert_eq!(p, q);
    }

    #[test]
    fn lsn_stamp_is_monotone() {
        let mut p = Page::new(PS);
        p.stamp_lsn(10);
        p.stamp_lsn(5); // older mutation must not move the stamp back
        assert_eq!(p.lsn(), 10);
    }

    #[test]
    fn corruption_detected_on_load() {
        let mut p = Page::new(PS);
        p.insert(b"record").unwrap();
        let good = p.sealed_bytes().to_vec();

        let mut flipped = good.clone();
        flipped[PS / 2] ^= 0xFF;
        assert!(Page::from_bytes(flipped, PS).is_err(), "CRC must catch bit rot");

        assert!(Page::from_bytes(good[..PS - 1].to_vec(), PS).is_err(), "short page");

        let mut bad_magic = good.clone();
        bad_magic[0] ^= 0xFF;
        assert!(Page::from_bytes(bad_magic, PS).is_err());

        assert!(Page::from_bytes(good, PS).is_ok());
    }

    #[test]
    fn torn_half_old_half_new_fails_crc() {
        // the shadow-paging rationale: a torn write mixing two sealed
        // images must never verify
        let mut a = Page::new(PS);
        a.insert(b"version one").unwrap();
        let old = a.sealed_bytes().to_vec();
        let mut b = Page::new(PS);
        b.insert(b"version one").unwrap();
        b.insert(b"version two").unwrap();
        let new = b.sealed_bytes().to_vec();
        for cut in [1, PS / 4, PS / 2, PS - 5] {
            let mut torn = new[..cut].to_vec();
            torn.extend_from_slice(&old[cut..]);
            if torn != old && torn != new {
                assert!(Page::from_bytes(torn, PS).is_err(), "cut {cut}");
            }
        }
    }
}
