//! `dq-storage` — durable storage for the quality database: write-ahead
//! log, checkpoints, and crash recovery.
//!
//! The ICDE'93 paper's quality database is only useful if the quality
//! indicators survive as long as the data they describe: a cell tag or
//! an audit ("electronic trail") event that vanishes on restart cannot
//! certify anything. This crate adds the durability layer beneath the
//! in-memory engine:
//!
//! * [`wal`] — an append-only, CRC32-framed log with segment rotation
//!   and group commit; every mutation of plain tables, tagged relations,
//!   and the audit trail becomes one logical redo record,
//! * [`checkpoint`] — atomic full snapshots (tmp + fsync + rename) so
//!   recovery replays a bounded tail instead of the whole history,
//! * [`db`] — [`DurableDb`], the facade that applies a mutation in
//!   memory first and logs it second, recovers on open (loading the
//!   newest intact checkpoint, replaying the WAL tail, truncating a torn
//!   final record), and rebuilds the quality bitmap indexes once at the
//!   end,
//! * [`fs`] — the filesystem abstraction, with a fault-injecting
//!   in-memory implementation ([`MemFs`]: short writes, torn tails,
//!   dropped fsyncs) driving the recovery tests,
//! * [`crc`] / [`codec`] — CRC-32 and the binary serialization, both
//!   implemented in-crate (this build is offline).
//!
//! The durability contract is **prefix durability**: after a crash at an
//! arbitrary WAL position, recovery restores exactly the committed
//! prefix of operations — rows, cell tags, audit events — and nothing
//! else. The property tests below check that contract against random
//! operation sequences cut at every kind of byte boundary.
//!
//! ```
//! use dq_storage::{DurableDb, DurableOptions, MemFs};
//! use relstore::{DataType, Schema, Value};
//! use std::sync::Arc;
//!
//! let disk = MemFs::new();
//! let (mut db, _) = DurableDb::open(Arc::new(disk.clone()), DurableOptions::default()).unwrap();
//! db.create_table("company", Schema::of(&[("ticker", DataType::Text)])).unwrap();
//! db.insert("company", vec![Value::text("FRT")]).unwrap();
//!
//! disk.crash(); // power failure
//! let (db, report) = DurableDb::open(Arc::new(disk), DurableOptions::default()).unwrap();
//! assert_eq!(report.replayed_records, 2);
//! assert_eq!(db.table("company").unwrap().len(), 1);
//! ```

#![warn(missing_docs)]

pub mod buffer_pool;
pub mod checkpoint;
pub mod codec;
pub mod crc;
pub mod db;
pub mod fs;
pub mod page;
pub mod paged;
pub mod record;
pub mod wal;

pub use buffer_pool::{BufferPool, FileId, LogGate, NoGate, MIN_FRAMES, NO_PHYS};
pub use checkpoint::{CheckpointData, PagedSnapshot, TaggedSnapshot};
pub use crc::crc32;
pub use db::{DurableDb, DurableOptions, RecoveryReport};
pub use fs::{Fs, MemFs, StdFs};
pub use page::Page;
pub use paged::PagedRelation;
pub use record::WalRecord;
pub use wal::{Wal, WalOptions};

#[cfg(test)]
mod proptests {
    //! The crash-prefix property: cut the durable WAL bytes anywhere,
    //! recover, and the database equals an in-memory replay of exactly
    //! the operations whose records survived the cut.

    use crate::db::{DurableDb, DurableOptions};
    use crate::fs::{Fs, MemFs};
    use crate::wal::WalOptions;
    use dq_admin::{AuditAction, AuditEvent, AuditTrail};
    use proptest::prelude::*;
    use relstore::{DataType, Date, Expr, Row, Schema, Value};
    use std::sync::Arc;
    use tagstore::{
        ColumnarRelation, IndexedTaggedRelation, IndicatorDictionary, IndicatorValue, QualityCell,
        TaggedRelation,
    };

    /// One generated operation. Parameters are interpreted mod the
    /// current state so every op always succeeds (the log only ever
    /// holds operations that succeeded).
    #[derive(Debug, Clone)]
    enum Op {
        Insert(i64, String),
        Update(usize, i64, String),
        Delete(usize),
        Push(i64, Option<String>),
        TagCell(usize, String),
        SwapRemove(usize),
        Audit(String, i64),
    }

    fn arb_op() -> impl Strategy<Value = Op> {
        prop_oneof![
            (0i64..100, "[a-d]{1,3}").prop_map(|(a, s)| Op::Insert(a, s)),
            (0usize..16, 0i64..100, "[a-d]{1,3}").prop_map(|(p, a, s)| Op::Update(p, a, s)),
            (0usize..16).prop_map(Op::Delete),
            (0i64..100, prop::option::of("[a-c]")).prop_map(|(v, s)| Op::Push(v, s)),
            (0usize..16, "[a-c]").prop_map(|(p, s)| Op::TagCell(p, s)),
            (0usize..16).prop_map(Op::SwapRemove),
            ("[a-c]", 0i64..100).prop_map(|(w, k)| Op::Audit(w, k)),
        ]
    }

    /// In-memory reference state, snapshotted after every WAL record.
    #[derive(Debug, Clone, PartialEq)]
    struct Shadow {
        rows: Vec<Row>,
        q: TaggedRelation,
        audit: Vec<AuditEvent>,
    }

    fn table_schema() -> Schema {
        Schema::of(&[("id", DataType::Int), ("name", DataType::Text)])
    }

    fn tagged_schema() -> Schema {
        Schema::of(&[("k", DataType::Int), ("v", DataType::Int)])
    }

    /// Applies `ops` through a fresh autocommit [`DurableDb`] over a
    /// [`MemFs`], mirroring every operation onto a pure in-memory
    /// shadow. Returns the disk plus `snapshots[i]` = shadow state after
    /// the first `i` WAL records.
    fn run(ops: &[Op], segment_bytes: usize) -> (MemFs, Vec<Shadow>) {
        let fs = MemFs::new();
        let opts = DurableOptions {
            wal: WalOptions { segment_bytes },
            group_commit: false,
            ..Default::default()
        };
        let (mut db, _) = DurableDb::open(Arc::new(fs.clone()), opts).unwrap();
        let mut shadow = Shadow {
            rows: Vec::new(),
            q: TaggedRelation::empty(
                tagged_schema(),
                IndicatorDictionary::with_paper_defaults(),
            ),
            audit: Vec::new(),
        };
        let mut snapshots = vec![shadow.clone()];

        // two DDL records seed the log
        db.create_table("t", table_schema()).unwrap();
        snapshots.push(shadow.clone());
        db.create_tagged(
            "q",
            tagged_schema(),
            IndicatorDictionary::with_paper_defaults(),
        )
        .unwrap();
        snapshots.push(shadow.clone());

        let mut audit_seq = 0u64;
        let mut k_counter = 0i64;
        for op in ops {
            match op.clone() {
                Op::Insert(a, s) => {
                    let row = vec![Value::Int(a), Value::text(s)];
                    db.insert("t", row.clone()).unwrap();
                    shadow.rows.push(row);
                }
                Op::Update(p, a, s) => {
                    if shadow.rows.is_empty() {
                        continue;
                    }
                    let p = p % shadow.rows.len();
                    let row = vec![Value::Int(a), Value::text(s)];
                    db.update("t", p, row.clone()).unwrap();
                    shadow.rows[p] = row;
                }
                Op::Delete(p) => {
                    if shadow.rows.is_empty() {
                        continue;
                    }
                    let p = p % shadow.rows.len();
                    db.delete("t", p).unwrap();
                    shadow.rows.swap_remove(p);
                }
                Op::Push(v, src) => {
                    k_counter += 1;
                    let mut cell = QualityCell::bare(v);
                    if let Some(s) = src {
                        cell.set_tag(IndicatorValue::new("source", s));
                    }
                    let row = vec![QualityCell::bare(k_counter), cell];
                    db.push("q", row.clone()).unwrap();
                    shadow.q.push(row).unwrap();
                }
                Op::TagCell(p, s) => {
                    if shadow.q.is_empty() {
                        continue;
                    }
                    let p = p % shadow.q.len();
                    let tag = IndicatorValue::new("source", s);
                    db.tag_cell("q", p, "v", tag.clone()).unwrap();
                    shadow.q.tag_cell(p, "v", tag).unwrap();
                }
                Op::SwapRemove(p) => {
                    if shadow.q.is_empty() {
                        continue;
                    }
                    let p = p % shadow.q.len();
                    db.swap_remove("q", p).unwrap();
                    shadow.q.swap_remove(p).unwrap();
                }
                Op::Audit(who, k) => {
                    let date = Date::parse("10-24-91").unwrap();
                    db.audit(
                        date,
                        who.clone(),
                        AuditAction::Update,
                        "t",
                        vec![Value::Int(k)],
                        None,
                        "touched",
                    )
                    .unwrap();
                    let mut trail = AuditTrail::new();
                    for e in &shadow.audit {
                        trail.replay(e.clone());
                    }
                    trail.record(
                        date,
                        who,
                        AuditAction::Update,
                        "t",
                        vec![Value::Int(k)],
                        None,
                        "touched",
                    );
                    assert_eq!(trail.events().last().unwrap().seq, audit_seq);
                    shadow.audit = trail.events().to_vec();
                    audit_seq += 1;
                }
            }
            snapshots.push(shadow.clone());
        }
        (fs, snapshots)
    }

    /// Counts intact frames in a WAL byte prefix of length `cut`.
    fn frames_within(bytes: &[u8], cut: usize) -> usize {
        let mut off = 0usize;
        let mut n = 0usize;
        while off + 8 <= bytes.len() {
            let len = u32::from_le_bytes(bytes[off..off + 4].try_into().unwrap()) as usize;
            if off + 8 + len > cut {
                break;
            }
            off += 8 + len;
            n += 1;
        }
        n
    }

    fn reopen(fs: &MemFs) -> (DurableDb, crate::db::RecoveryReport) {
        DurableDb::open(Arc::new(fs.clone()), DurableOptions::default()).unwrap()
    }

    proptest! {
        /// Crash anywhere: cut the single WAL segment at an arbitrary
        /// byte, recover, and the state equals the shadow replay of
        /// exactly the surviving record prefix — rows, cell tags, and
        /// audit events included.
        #[test]
        fn recovery_restores_exactly_the_committed_prefix(
            ops in prop::collection::vec(arb_op(), 1..24),
            cut_frac in 0u64..=1000,
        ) {
            let (fs, snapshots) = run(&ops, 1 << 20); // one segment
            let wal_bytes = fs.read("wal-0000000001.log").unwrap();
            let cut = (wal_bytes.len() as u64 * cut_frac / 1000) as usize;

            let crashed = MemFs::new();
            crashed.write_file("wal-0000000001.log", &wal_bytes[..cut]).unwrap();
            let (db, report) = reopen(&crashed);

            let k = frames_within(&wal_bytes, cut);
            prop_assert_eq!(report.replayed_records, k as u64);
            // autocommit stamps one epoch per record: the recovered
            // epoch counter equals the surviving record count
            prop_assert_eq!(report.epoch, k as u64);
            prop_assert_eq!(db.epoch(), k as u64);
            let expect = &snapshots[k];
            prop_assert_eq!(
                if k >= 1 { db.table("t").unwrap().rows() } else { &[][..] },
                &expect.rows[..]
            );
            if k >= 2 {
                prop_assert_eq!(db.tagged("q").unwrap().relation(), &expect.q);
            }
            prop_assert_eq!(db.audit_trail().events(), &expect.audit[..]);
        }

        /// With autocommit, a [`MemFs::crash`] (drop everything not yet
        /// fsynced) loses nothing: recovery equals the full replay, the
        /// rebuilt bitmap index agrees with a from-scratch build, and
        /// index-accelerated quality selection matches the unindexed
        /// algebra at 1, 2, and 8 threads. The columnar layout rebuilt
        /// from the recovered relation must round-trip losslessly, build
        /// a bit-for-bit identical bitmap index, and answer indexed
        /// selections identically to the row layout.
        #[test]
        fn crash_after_commit_loses_nothing_and_indexes_agree(
            ops in prop::collection::vec(arb_op(), 1..24),
        ) {
            let (fs, snapshots) = run(&ops, 256); // small segments: force rotation
            fs.crash();
            let (db, _) = reopen(&fs);
            let expect = snapshots.last().unwrap();
            prop_assert_eq!(db.table("t").unwrap().rows(), &expect.rows[..]);
            prop_assert_eq!(db.audit_trail().events(), &expect.audit[..]);

            let recovered = db.tagged("q").unwrap();
            prop_assert_eq!(recovered.relation(), &expect.q);
            // bitmap-index parity: recovery's rebuild == scratch build
            let scratch = IndexedTaggedRelation::from_relation(expect.q.clone());
            prop_assert_eq!(recovered, &scratch);
            // and the index answers selections identically at 1/2/8 threads
            let pred = Expr::col("v@source").eq(Expr::lit("a"));
            let reference = tagstore::algebra::select(&expect.q, &pred).unwrap();
            for threads in [1usize, 2, 8] {
                let got = relstore::par::with_thread_count(threads, || {
                    recovered.select(&pred).unwrap().0
                });
                prop_assert!(got == reference, "select mismatch at {threads} threads");
            }

            // columnar parity after recovery: the layout rebuilt from the
            // recovered rows is lossless, its index matches the row-built
            // one bit for bit (serial and forced-parallel), and indexed
            // columnar selection agrees with the row-at-a-time algebra
            let crel = ColumnarRelation::from_tagged(recovered.relation());
            prop_assert_eq!(&crel.to_tagged(), recovered.relation());
            for threads in [1usize, 8] {
                let built = relstore::par::with_thread_count(threads, || crel.build_index());
                prop_assert!(
                    &built == recovered.index(),
                    "columnar index build diverged at {threads} threads"
                );
            }
            let (got, _, _) = tagstore::select_indexed_columnar(
                &crel, recovered.index(), &pred, 1024,
            ).unwrap();
            prop_assert_eq!(got.to_tagged(), reference);
        }
    }

    // ---- paged relations ------------------------------------------------

    /// One generated paged operation; parameters are interpreted mod the
    /// current row count so every op succeeds.
    #[derive(Debug, Clone)]
    enum POp {
        Push(i64, Option<String>),
        Tag(usize, String),
        Remove(usize),
    }

    fn arb_pop() -> impl Strategy<Value = POp> {
        prop_oneof![
            (0i64..100, prop::option::of("[a-c]{1,8}")).prop_map(|(v, s)| POp::Push(v, s)),
            (0i64..100, prop::option::of("[a-c]{1,8}")).prop_map(|(v, s)| POp::Push(v, s)),
            (0usize..32, "[a-c]{1,4}").prop_map(|(p, s)| POp::Tag(p, s)),
            (0usize..32).prop_map(POp::Remove),
        ]
    }

    /// Tiny pages + the minimum pool: generated workloads overflow the
    /// pool after a few dozen rows, so eviction, reload, and the WAL
    /// gate are all on the replayed path.
    fn paged_prop_opts(segment_bytes: usize) -> DurableOptions {
        DurableOptions {
            wal: WalOptions { segment_bytes },
            group_commit: false,
            page_size: 256,
            pool_pages: crate::buffer_pool::MIN_FRAMES,
            readahead: true,
        }
    }

    fn paged_schema() -> Schema {
        Schema::of(&[("k", DataType::Int), ("v", DataType::Text)])
    }

    fn paged_twin() -> TaggedRelation {
        TaggedRelation::empty(paged_schema(), IndicatorDictionary::with_paper_defaults())
    }

    fn apply_pop(db: &mut DurableDb, twin: &mut TaggedRelation, op: &POp) -> bool {
        match op.clone() {
            POp::Push(v, src) => {
                let mut cell = QualityCell::bare(format!("v{v}"));
                if let Some(s) = src {
                    cell.set_tag(IndicatorValue::new("source", s));
                }
                let row = vec![QualityCell::bare(v), cell];
                db.paged_push("q", row.clone()).unwrap();
                twin.push(row).unwrap();
            }
            POp::Tag(p, s) => {
                if twin.is_empty() {
                    return false;
                }
                let p = p % twin.len();
                let tag = IndicatorValue::new("source", s);
                db.paged_tag_cell("q", p as u64, "v", tag.clone()).unwrap();
                twin.tag_cell(p, "v", tag).unwrap();
            }
            POp::Remove(p) => {
                if twin.is_empty() {
                    return false;
                }
                let p = p % twin.len();
                let got = db.paged_swap_remove("q", p as u64).unwrap();
                let want = twin.swap_remove(p).unwrap();
                assert_eq!(got, want);
            }
        }
        true
    }

    /// Runs `ops` through an autocommit paged relation, returning the
    /// disk and `snapshots[i]` = twin state after the first `i` WAL
    /// records (record 1 is the create).
    fn run_paged(ops: &[POp], segment_bytes: usize) -> (MemFs, Vec<TaggedRelation>) {
        let fs = MemFs::new();
        let (mut db, _) =
            DurableDb::open(Arc::new(fs.clone()), paged_prop_opts(segment_bytes)).unwrap();
        let mut twin = paged_twin();
        let mut snapshots = vec![twin.clone()];
        db.create_paged("q", paged_schema(), IndicatorDictionary::with_paper_defaults())
            .unwrap();
        snapshots.push(twin.clone());
        for op in ops {
            if apply_pop(&mut db, &mut twin, op) {
                snapshots.push(twin.clone());
            }
        }
        (fs, snapshots)
    }

    proptest! {
        /// Crash anywhere in the paged WAL: cut the single segment at an
        /// arbitrary byte, recover (pages rebuilt by deterministic-
        /// placement redo through the same pool), and the relation equals
        /// the twin replay of exactly the surviving record prefix.
        #[test]
        fn paged_recovery_restores_exactly_the_committed_prefix(
            ops in prop::collection::vec(arb_pop(), 1..32),
            cut_frac in 0u64..=1000,
        ) {
            let (fs, snapshots) = run_paged(&ops, 1 << 20); // one segment
            let wal_bytes = fs.read("wal-0000000001.log").unwrap();
            let cut = (wal_bytes.len() as u64 * cut_frac / 1000) as usize;

            let crashed = MemFs::new();
            crashed.write_file("wal-0000000001.log", &wal_bytes[..cut]).unwrap();
            // heap/dir files don't exist on the crashed disk — that's
            // correct: nothing referenced them durably (no checkpoint),
            // so redo must rebuild every page from the log alone
            let (mut db, report) =
                DurableDb::open(Arc::new(crashed.clone()), paged_prop_opts(1 << 20)).unwrap();

            let k = frames_within(&wal_bytes, cut);
            prop_assert_eq!(report.replayed_records, k as u64);
            let expect = &snapshots[k];
            if k >= 1 {
                prop_assert_eq!(db.paged_len("q").unwrap() as usize, expect.len());
                prop_assert_eq!(&db.paged_to_relation("q").unwrap(), expect);
            }
        }

        /// Mid-sequence dirty-page checkpoint + crash: recovery restores
        /// the checkpoint manifest, replays only the tail, and the
        /// relation (materialized and indexed) answers quality selections
        /// identically to the in-memory twin at 1, 2, and 8 threads.
        #[test]
        fn paged_checkpoint_and_crash_lose_nothing(
            ops in prop::collection::vec(arb_pop(), 1..32),
            ckpt_at in 0usize..32,
        ) {
            let fs = MemFs::new();
            let (mut db, _) =
                DurableDb::open(Arc::new(fs.clone()), paged_prop_opts(256)).unwrap();
            let mut twin = paged_twin();
            db.create_paged("q", paged_schema(), IndicatorDictionary::with_paper_defaults())
                .unwrap();
            for (i, op) in ops.iter().enumerate() {
                if i == ckpt_at % ops.len() {
                    db.checkpoint().unwrap();
                }
                apply_pop(&mut db, &mut twin, op);
            }
            drop(db);
            fs.crash();

            let (mut db, _) =
                DurableDb::open(Arc::new(fs.clone()), paged_prop_opts(256)).unwrap();
            let recovered = db.paged_to_relation("q").unwrap();
            prop_assert_eq!(&recovered, &twin);

            let pred = Expr::col("v@source").eq(Expr::lit("a"));
            let reference = tagstore::algebra::select(&twin, &pred).unwrap();
            prop_assert_eq!(&db.paged_select("q", &pred).unwrap(), &reference);
            let indexed = IndexedTaggedRelation::from_relation(recovered);
            for threads in [1usize, 2, 8] {
                let got = relstore::par::with_thread_count(threads, || {
                    indexed.select(&pred).unwrap().0
                });
                prop_assert!(got == reference, "select mismatch at {threads} threads");
            }
        }

        /// The paged indexed-scan path is invisible: for every generated
        /// history and every predicate shape (tag atom, tag ∧ value
        /// residual, key-hash equality, unindexable value equality) the
        /// bitmap-driven `paged_select_indexed` returns byte-identical
        /// rows to the full paged scan and to the in-memory indexed
        /// path — across pool budgets {MIN_FRAMES, 5%, 100%}, with the
        /// eviction order perturbed by a strided warm-up, readahead both
        /// on and off, at 1, 2, and 8 threads. A crash-prefix cut then
        /// recovers and the lazily rebuilt paged index still agrees with
        /// the surviving twin snapshot.
        #[test]
        fn paged_indexed_scan_matches_scan_and_memory_index_everywhere(
            ops in prop::collection::vec(arb_pop(), 1..32),
            cut_frac in 0u64..=1000,
            stride in 1u64..7,
        ) {
            let (fs, snapshots) = run_paged(&ops, 1 << 20); // one segment
            let full = snapshots.last().unwrap();
            let preds = [
                Expr::col("v@source").eq(Expr::lit("a")),
                Expr::col("v@source")
                    .eq(Expr::lit("a"))
                    .and(Expr::col("k").gt(Expr::lit(50))),
                Expr::col("k").eq(Expr::lit(7)),
                Expr::col("v").eq(Expr::lit("v3")),
            ];
            let references: Vec<TaggedRelation> = preds
                .iter()
                .map(|p| tagstore::algebra::select(full, p).unwrap())
                .collect();
            let memory = IndexedTaggedRelation::from_relation(full.clone());

            let total_pages = {
                let (mut db, _) = DurableDb::open(
                    Arc::new(fs.clone()),
                    paged_prop_opts(1 << 20),
                ).unwrap();
                let (heap, dir) = db.paged_pages("q").unwrap();
                let _ = &mut db;
                (heap + dir) as usize
            };
            let budgets = [
                crate::buffer_pool::MIN_FRAMES,
                (total_pages / 20).max(crate::buffer_pool::MIN_FRAMES),
                total_pages.max(crate::buffer_pool::MIN_FRAMES),
            ];
            for (bi, &pool_pages) in budgets.iter().enumerate() {
                let opts = DurableOptions {
                    pool_pages,
                    readahead: bi != 1, // exercise both prefetch modes
                    ..paged_prop_opts(1 << 20)
                };
                let (mut db, _) = DurableDb::open(Arc::new(fs.clone()), opts).unwrap();
                // Perturb the eviction order: a strided warm-up leaves a
                // different resident set in each budget before the scans.
                let n = db.paged_len("q").unwrap();
                for i in 0..n.min(16) {
                    let _ = db.paged_row("q", (i * stride) % n).unwrap();
                }
                for (pred, reference) in preds.iter().zip(&references) {
                    prop_assert_eq!(&db.paged_select("q", pred).unwrap(), reference);
                    prop_assert_eq!(&memory.select(pred).unwrap().0, reference);
                    for threads in [1usize, 2, 8] {
                        let got = relstore::par::with_thread_count(threads, || {
                            db.paged_select_indexed("q", pred).unwrap().0
                        });
                        prop_assert!(
                            &got == reference,
                            "indexed scan mismatch: budget {pool_pages}, {threads} threads"
                        );
                    }
                }
            }

            // Crash-prefix cut: the paged index is derived state and must
            // rebuild from whatever record prefix survived.
            let wal_bytes = fs.read("wal-0000000001.log").unwrap();
            let cut = (wal_bytes.len() as u64 * cut_frac / 1000) as usize;
            let crashed = MemFs::new();
            crashed.write_file("wal-0000000001.log", &wal_bytes[..cut]).unwrap();
            let (mut db, _) =
                DurableDb::open(Arc::new(crashed.clone()), paged_prop_opts(1 << 20)).unwrap();
            let k = frames_within(&wal_bytes, cut);
            if k >= 1 {
                let expect = &snapshots[k];
                for pred in &preds {
                    let reference = tagstore::algebra::select(expect, pred).unwrap();
                    prop_assert_eq!(&db.paged_select_indexed("q", pred).unwrap().0, &reference);
                    prop_assert_eq!(&db.paged_select("q", pred).unwrap(), &reference);
                }
            }
        }

        /// A byte-budgeted checkpoint can die during the dirty-page
        /// flush, the file fsyncs, the manifest write, or the rename —
        /// wherever the budget lands. None of those cuts may corrupt:
        /// recovery always restores exactly the committed operations.
        #[test]
        fn paged_torn_checkpoint_recovers_exactly(
            ops in prop::collection::vec(arb_pop(), 1..24),
            budget in 0usize..4096,
        ) {
            let fs = MemFs::new();
            let (mut db, _) =
                DurableDb::open(Arc::new(fs.clone()), paged_prop_opts(1 << 20)).unwrap();
            let mut twin = paged_twin();
            db.create_paged("q", paged_schema(), IndicatorDictionary::with_paper_defaults())
                .unwrap();
            let half = ops.len() / 2;
            for op in &ops[..half] {
                apply_pop(&mut db, &mut twin, op);
            }
            db.checkpoint().unwrap(); // a committed manifest to protect
            for op in &ops[half..] {
                apply_pop(&mut db, &mut twin, op);
            }
            fs.set_write_budget(budget);
            let _ = db.checkpoint(); // may tear at any byte
            fs.clear_write_budget();
            drop(db);
            fs.crash();

            let (mut db, _) =
                DurableDb::open(Arc::new(fs.clone()), paged_prop_opts(1 << 20)).unwrap();
            prop_assert_eq!(&db.paged_to_relation("q").unwrap(), &twin);
        }
    }
}
