//! Checkpoints: full snapshots of the durable state, written atomically.
//!
//! A checkpoint serializes everything the WAL's records mutate — plain
//! `relstore` tables, `tagstore` tagged relations (schema, indicator
//! dictionary, relation-level tags, rows with cell tags), and the
//! `dq-admin` audit trail — plus the LSN of the last record it covers.
//! Recovery loads the newest intact checkpoint and replays only WAL
//! records beyond its LSN.
//!
//! ## Atomicity
//!
//! The snapshot is written to a `.tmp` file (fully fsynced), renamed
//! into place, and then the *directory* is fsynced — without that last
//! step the rename itself may not survive a crash (the published name
//! could revert to the `.tmp` name), which matters because callers
//! prune the WAL immediately after publishing. A crash mid-checkpoint
//! leaves at worst a stale `.tmp` plus the previous checkpoint. The
//! file carries a magic header and a trailing CRC32 over everything
//! before it; [`load_latest`] falls back to the next-older checkpoint
//! when the newest fails either check.

use crate::codec::{Decoder, Encoder};
use crate::crc::crc32;
use crate::fs::Fs;
use dq_admin::AuditEvent;
use relstore::{DbError, DbResult, Row, Schema};
use tagstore::{IndicatorDef, IndicatorValue, TaggedRow};

/// First bytes of every checkpoint file (version-bearing; v2 added the
/// MVCC epoch counter, v3 the paged-relation manifests).
pub const MAGIC: &[u8; 8] = b"DQCKPT3\n";
/// File-name prefix of published checkpoints.
pub const CKPT_PREFIX: &str = "ckpt-";
/// File-name suffix of published checkpoints.
pub const CKPT_SUFFIX: &str = ".snap";

/// Snapshot of one tagged relation.
#[derive(Debug, Clone, PartialEq)]
pub struct TaggedSnapshot {
    /// Relation name.
    pub name: String,
    /// Application schema.
    pub schema: Schema,
    /// Declared indicators (the dictionary, flattened in sorted order).
    pub dict: Vec<IndicatorDef>,
    /// Relation-level quality tags.
    pub relation_tags: Vec<IndicatorValue>,
    /// Rows with their cell tags.
    pub rows: Vec<TaggedRow>,
}

/// Manifest of one *paged* relation: identity plus the logical→physical
/// page maps of its heap and directory files. Unlike [`TaggedSnapshot`]
/// this holds no row data — the rows live in the paged files, whose
/// manifest-referenced slots are shadow-protected (never overwritten
/// until the next checkpoint publishes), so the manifest alone pins an
/// exact byte-level image of the relation at checkpoint time. Its size
/// is proportional to the page count (4 bytes per page), which is what
/// makes checkpoints O(dirty) instead of O(db).
#[derive(Debug, Clone, PartialEq)]
pub struct PagedSnapshot {
    /// Relation name.
    pub name: String,
    /// Application schema.
    pub schema: Schema,
    /// Declared indicators (the dictionary, flattened in sorted order).
    pub dict: Vec<IndicatorDef>,
    /// Row count at checkpoint time.
    pub rows: u64,
    /// Heap file logical→physical page map.
    pub heap_map: Vec<u32>,
    /// Directory file logical→physical page map.
    pub dir_map: Vec<u32>,
}

/// Everything a checkpoint captures.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CheckpointData {
    /// LSN of the last WAL record reflected in this snapshot.
    pub last_lsn: u64,
    /// MVCC epoch of the last commit reflected in this snapshot;
    /// recovery resumes the epoch counter from here.
    pub epoch: u64,
    /// Plain tables: `(name, schema, rows)`, sorted by name.
    pub tables: Vec<(String, Schema, Vec<Row>)>,
    /// Tagged relations, sorted by name.
    pub tagged: Vec<TaggedSnapshot>,
    /// Paged relations (manifests only — no row data), sorted by name.
    pub paged: Vec<PagedSnapshot>,
    /// The audit trail's next sequence number.
    pub audit_next_seq: u64,
    /// The audit trail's events, in order.
    pub audit_events: Vec<AuditEvent>,
}

fn file_name(last_lsn: u64) -> String {
    format!("{CKPT_PREFIX}{last_lsn:020}{CKPT_SUFFIX}")
}

fn is_checkpoint(name: &str) -> bool {
    name.starts_with(CKPT_PREFIX) && name.ends_with(CKPT_SUFFIX)
}

fn encode(data: &CheckpointData) -> Vec<u8> {
    let mut enc = Encoder::new();
    enc.put_u64(data.last_lsn);
    enc.put_u64(data.epoch);
    enc.put_u32(data.tables.len() as u32);
    for (name, schema, rows) in &data.tables {
        enc.put_str(name);
        enc.put_schema(schema);
        enc.put_u32(rows.len() as u32);
        for r in rows {
            enc.put_row(r);
        }
    }
    enc.put_u32(data.tagged.len() as u32);
    for t in &data.tagged {
        enc.put_str(&t.name);
        enc.put_schema(&t.schema);
        enc.put_u32(t.dict.len() as u32);
        for d in &t.dict {
            enc.put_indicator_def(d);
        }
        enc.put_u32(t.relation_tags.len() as u32);
        for tag in &t.relation_tags {
            enc.put_tag(tag);
        }
        enc.put_u32(t.rows.len() as u32);
        for r in &t.rows {
            enc.put_tagged_row(r);
        }
    }
    enc.put_u32(data.paged.len() as u32);
    for p in &data.paged {
        enc.put_str(&p.name);
        enc.put_schema(&p.schema);
        enc.put_u32(p.dict.len() as u32);
        for d in &p.dict {
            enc.put_indicator_def(d);
        }
        enc.put_u64(p.rows);
        enc.put_u32(p.heap_map.len() as u32);
        for &m in &p.heap_map {
            enc.put_u32(m);
        }
        enc.put_u32(p.dir_map.len() as u32);
        for &m in &p.dir_map {
            enc.put_u32(m);
        }
    }
    enc.put_u64(data.audit_next_seq);
    enc.put_u32(data.audit_events.len() as u32);
    for e in &data.audit_events {
        enc.put_audit_event(e);
    }
    enc.into_bytes()
}

fn decode(payload: &[u8]) -> DbResult<CheckpointData> {
    let mut dec = Decoder::new(payload);
    let last_lsn = dec.get_u64()?;
    let epoch = dec.get_u64()?;
    let ntables = dec.get_u32()? as usize;
    let mut tables = Vec::with_capacity(ntables.min(1024));
    for _ in 0..ntables {
        let name = dec.get_str()?;
        let schema = dec.get_schema()?;
        let nrows = dec.get_u32()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1024));
        for _ in 0..nrows {
            rows.push(dec.get_row()?);
        }
        tables.push((name, schema, rows));
    }
    let ntagged = dec.get_u32()? as usize;
    let mut tagged = Vec::with_capacity(ntagged.min(1024));
    for _ in 0..ntagged {
        let name = dec.get_str()?;
        let schema = dec.get_schema()?;
        let ndict = dec.get_u32()? as usize;
        let mut dict = Vec::with_capacity(ndict.min(1024));
        for _ in 0..ndict {
            dict.push(dec.get_indicator_def()?);
        }
        let ntags = dec.get_u32()? as usize;
        let mut relation_tags = Vec::with_capacity(ntags.min(1024));
        for _ in 0..ntags {
            relation_tags.push(dec.get_tag()?);
        }
        let nrows = dec.get_u32()? as usize;
        let mut rows = Vec::with_capacity(nrows.min(1024));
        for _ in 0..nrows {
            rows.push(dec.get_tagged_row()?);
        }
        tagged.push(TaggedSnapshot {
            name,
            schema,
            dict,
            relation_tags,
            rows,
        });
    }
    let npaged = dec.get_u32()? as usize;
    let mut paged = Vec::with_capacity(npaged.min(1024));
    for _ in 0..npaged {
        let name = dec.get_str()?;
        let schema = dec.get_schema()?;
        let ndict = dec.get_u32()? as usize;
        let mut dict = Vec::with_capacity(ndict.min(1024));
        for _ in 0..ndict {
            dict.push(dec.get_indicator_def()?);
        }
        let rows = dec.get_u64()?;
        let nheap = dec.get_u32()? as usize;
        let mut heap_map = Vec::with_capacity(nheap.min(1 << 20));
        for _ in 0..nheap {
            heap_map.push(dec.get_u32()?);
        }
        let ndir = dec.get_u32()? as usize;
        let mut dir_map = Vec::with_capacity(ndir.min(1 << 20));
        for _ in 0..ndir {
            dir_map.push(dec.get_u32()?);
        }
        paged.push(PagedSnapshot {
            name,
            schema,
            dict,
            rows,
            heap_map,
            dir_map,
        });
    }
    let audit_next_seq = dec.get_u64()?;
    let nevents = dec.get_u32()? as usize;
    let mut audit_events = Vec::with_capacity(nevents.min(1024));
    for _ in 0..nevents {
        audit_events.push(dec.get_audit_event()?);
    }
    if !dec.is_exhausted() {
        return Err(DbError::Storage("checkpoint has trailing bytes".into()));
    }
    Ok(CheckpointData {
        last_lsn,
        epoch,
        tables,
        tagged,
        paged,
        audit_next_seq,
        audit_events,
    })
}

/// Writes a checkpoint atomically (tmp + fsync + rename + directory
/// fsync). Returns the published file name.
pub fn write(fs: &dyn Fs, data: &CheckpointData) -> DbResult<String> {
    let _t = dq_obs::histogram!("checkpoint.write_us").start();
    let payload = encode(data);
    let mut bytes = Vec::with_capacity(MAGIC.len() + payload.len() + 4);
    bytes.extend_from_slice(MAGIC);
    bytes.extend_from_slice(&payload);
    let crc = crc32(&bytes);
    bytes.extend_from_slice(&crc.to_le_bytes());

    let name = file_name(data.last_lsn);
    let tmp = format!("{name}.tmp");
    fs.write_file(&tmp, &bytes)?;
    fs.rename(&tmp, &name)?;
    // the rename is not durable until the directory is: without this, a
    // crash after the caller prunes the WAL could leave neither the
    // checkpoint (dirent reverted to .tmp) nor the log
    fs.sync_dir()?;
    dq_obs::counter!("checkpoint.write").incr();
    dq_obs::counter!("checkpoint.bytes").add(bytes.len() as u64);
    Ok(name)
}

fn read_one(fs: &dyn Fs, name: &str) -> DbResult<CheckpointData> {
    let bytes = fs.read(name)?;
    if bytes.len() < MAGIC.len() + 4 {
        return Err(DbError::Storage(format!("checkpoint `{name}` too short")));
    }
    let (body, crc_bytes) = bytes.split_at(bytes.len() - 4);
    let stored = u32::from_le_bytes(crc_bytes.try_into().unwrap());
    if crc32(body) != stored {
        return Err(DbError::Storage(format!("checkpoint `{name}` CRC mismatch")));
    }
    if &body[..MAGIC.len()] != MAGIC {
        return Err(DbError::Storage(format!("checkpoint `{name}` bad magic")));
    }
    decode(&body[MAGIC.len()..])
}

/// Sorted list of published checkpoint file names (oldest first).
pub fn list(fs: &dyn Fs) -> DbResult<Vec<String>> {
    let mut names: Vec<String> = fs
        .list()?
        .into_iter()
        .filter(|n| is_checkpoint(n))
        .collect();
    names.sort_unstable(); // zero-padded LSN ⇒ lexicographic == numeric
    Ok(names)
}

/// Loads the newest intact checkpoint, falling back to older ones when
/// the newest is corrupt (a crash can never corrupt a *published*
/// checkpoint, but a dishonest disk can). Returns the file name too so
/// callers can prune older files. `Ok(None)` on a fresh directory.
pub fn load_latest(fs: &dyn Fs) -> DbResult<Option<(String, CheckpointData)>> {
    for name in list(fs)?.into_iter().rev() {
        match read_one(fs, &name) {
            Ok(data) => return Ok(Some((name, data))),
            Err(_) => {
                dq_obs::counter!("checkpoint.corrupt").incr();
            }
        }
    }
    Ok(None)
}

/// Deletes published checkpoints older than `keep`, plus any orphaned
/// `.tmp` files from interrupted checkpoint writes, then fsyncs the
/// directory so the unlinks stick — a crash must not resurrect a stale
/// checkpoint a future recovery could mistake for live state.
pub fn prune(fs: &dyn Fs, keep: &str) -> DbResult<()> {
    let mut removed = false;
    for name in fs.list()? {
        let stale_ckpt = is_checkpoint(&name) && name.as_str() < keep;
        let orphan_tmp = name.starts_with(CKPT_PREFIX) && name.ends_with(".tmp");
        if stale_ckpt || orphan_tmp {
            fs.remove(&name)?;
            removed = true;
        }
    }
    if removed {
        fs.sync_dir()?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;
    use dq_admin::AuditAction;
    use relstore::{DataType, Date, Value};
    use tagstore::QualityCell;

    fn sample() -> CheckpointData {
        CheckpointData {
            last_lsn: 42,
            epoch: 7,
            tables: vec![(
                "company".into(),
                Schema::of(&[("ticker", DataType::Text), ("price", DataType::Float)]),
                vec![
                    vec![Value::text("FRT"), Value::Float(10.5)],
                    vec![Value::text("NUT"), Value::Null],
                ],
            )],
            tagged: vec![TaggedSnapshot {
                name: "stock".into(),
                schema: Schema::of(&[("name", DataType::Text)]),
                dict: vec![IndicatorDef::new("source", DataType::Text, "origin")],
                relation_tags: vec![IndicatorValue::new("source", "bulk import")],
                rows: vec![vec![
                    QualityCell::bare("Fruit Co").with_tag(IndicatorValue::new("source", "Nexis")),
                ]],
            }],
            paged: vec![PagedSnapshot {
                name: "trades".into(),
                schema: Schema::of(&[("qty", DataType::Int)]),
                dict: vec![IndicatorDef::new("source", DataType::Text, "origin")],
                rows: 12345,
                heap_map: vec![0, 2, 5, u32::MAX],
                dir_map: vec![1],
            }],
            audit_next_seq: 2,
            audit_events: vec![AuditEvent {
                seq: 1,
                date: Date::parse("10-24-91").unwrap(),
                actor: "acct'g".into(),
                action: AuditAction::Create,
                table: "company".into(),
                row_key: vec![Value::text("FRT")],
                column: None,
                detail: "row created".into(),
            }],
        }
    }

    #[test]
    fn write_load_roundtrip() {
        let fs = MemFs::new();
        let data = sample();
        let name = write(&fs, &data).unwrap();
        assert!(fs.exists(&name) && !fs.exists(&format!("{name}.tmp")));
        let (loaded_name, loaded) = load_latest(&fs).unwrap().unwrap();
        assert_eq!(loaded_name, name);
        assert_eq!(loaded, data);
    }

    #[test]
    fn published_checkpoint_survives_crash() {
        // write() must dir-fsync after the rename — otherwise the crash
        // reverts the dirent to `.tmp` and the checkpoint is invisible
        let fs = MemFs::new();
        let data = sample();
        let name = write(&fs, &data).unwrap();
        assert_eq!(fs.dir_fsync_count(), 1);
        fs.crash();
        let (loaded_name, loaded) = load_latest(&fs).unwrap().unwrap();
        assert_eq!(loaded_name, name);
        assert_eq!(loaded, data);
    }

    #[test]
    fn empty_dir_loads_none() {
        assert!(load_latest(&MemFs::new()).unwrap().is_none());
    }

    #[test]
    fn newest_wins_and_corrupt_falls_back() {
        let fs = MemFs::new();
        let mut old = sample();
        old.last_lsn = 10;
        write(&fs, &old).unwrap();
        let new = sample();
        write(&fs, &new).unwrap();
        assert_eq!(load_latest(&fs).unwrap().unwrap().1.last_lsn, 42);
        // corrupt the newest: loader falls back to the older one
        let newest = list(&fs).unwrap().pop().unwrap();
        let mut bytes = fs.read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        fs.write_file(&newest, &bytes).unwrap();
        let (name, data) = load_latest(&fs).unwrap().unwrap();
        assert_eq!(data.last_lsn, 10);
        assert!(name < newest);
    }

    #[test]
    fn interrupted_write_leaves_previous_checkpoint() {
        let fs = MemFs::new();
        let mut old = sample();
        old.last_lsn = 10;
        write(&fs, &old).unwrap();
        // the next checkpoint write dies partway into the tmp file
        fs.set_write_budget(20);
        let mut new = sample();
        new.last_lsn = 99;
        assert!(write(&fs, &new).is_err());
        fs.clear_write_budget();
        assert_eq!(load_latest(&fs).unwrap().unwrap().1.last_lsn, 10);
        // prune clears the orphaned tmp
        prune(&fs, &file_name(10)).unwrap();
        assert!(fs.list().unwrap().iter().all(|n| !n.ends_with(".tmp")));
    }

    #[test]
    fn prune_keeps_only_newest() {
        let fs = MemFs::new();
        for lsn in [5, 10, 15] {
            let mut d = sample();
            d.last_lsn = lsn;
            write(&fs, &d).unwrap();
        }
        prune(&fs, &file_name(15)).unwrap();
        assert_eq!(list(&fs).unwrap(), vec![file_name(15)]);
    }

    #[test]
    fn pruned_checkpoints_stay_gone_after_crash() {
        // prune must fsync the directory: the unlink of a stale
        // checkpoint is volatile until then, and a resurrected old
        // checkpoint is exactly the kind of zombie load_latest's
        // newest-wins ordering papers over only until it's also corrupt
        let fs = MemFs::new();
        for lsn in [5, 15] {
            let mut d = sample();
            d.last_lsn = lsn;
            write(&fs, &d).unwrap();
        }
        let before = fs.dir_fsync_count();
        prune(&fs, &file_name(15)).unwrap();
        assert!(fs.dir_fsync_count() > before, "prune must sync_dir");
        fs.crash();
        assert_eq!(list(&fs).unwrap(), vec![file_name(15)]);
        assert_eq!(load_latest(&fs).unwrap().unwrap().1.last_lsn, 15);
    }

    #[test]
    fn truncated_checkpoint_rejected() {
        let fs = MemFs::new();
        let name = write(&fs, &sample()).unwrap();
        let bytes = fs.read(&name).unwrap();
        fs.write_file(&name, &bytes[..bytes.len() - 10]).unwrap();
        assert!(load_latest(&fs).unwrap().is_none());
    }
}
