//! The pinning buffer pool: a fixed budget of in-memory page frames
//! shared by every paged file, with clock eviction and WAL-gated
//! write-back.
//!
//! ## Pinning and eviction
//!
//! Every page access goes through [`BufferPool::pin`]: a hit bumps the
//! frame's pin count, a miss loads the page into a free frame — evicting
//! a victim if the pool is full. The clock hand skips pinned frames
//! unconditionally (a pinned page is **never** evicted) and gives
//! recently-referenced frames a second chance. If every frame is pinned
//! the pool reports exhaustion rather than growing; callers hold pins
//! only across single-page operations, so a handful of frames is always
//! enough.
//!
//! ## Write-ahead rule
//!
//! A dirty page carries the LSN of the last logical record applied to
//! it. Before the pool writes such a page out (eviction or checkpoint
//! flush) it calls [`LogGate::ensure_durable`] with that LSN — the gate
//! commits the WAL as needed, so no page image ever reaches disk ahead
//! of the log that explains it.
//!
//! ## Shadow slots
//!
//! Write-back never overwrites a physical slot referenced by the last
//! published checkpoint manifest: the first flush of a page after a
//! checkpoint goes to a *fresh* slot (reusing slots freed by earlier
//! manifests), and the logical→physical map is what the next manifest
//! publishes. A torn page write can therefore only tear a slot no
//! manifest references — the previous checkpoint's image stays intact
//! byte for byte, which is what makes crash recovery exact without
//! per-page redo tracking.
//!
//! ## Scan resistance
//!
//! Bulk reads (full materializations, index-driven page fetches) admit
//! pages through [`BufferPool::pin_scan`] / [`BufferPool::fetch_pages`]
//! instead of [`BufferPool::pin`]. Scan-admitted frames are tagged
//! *evict-soon*: they enter an eviction FIFO and are recycled before the
//! clock ever considers the hot set, so a cold σ streaming the whole
//! relation cannot flush the working set a point-read workload built up.
//! A later targeted [`BufferPool::pin`] of the same page promotes the
//! frame to the normal second-chance regime. [`BufferPool::fetch_pages`]
//! additionally coalesces physically-contiguous runs of a sorted page
//! list into single reads (sorted readahead), counted by
//! `storage.pool.{prefetches,readahead_pages,scan_evictions}`.

use crate::fs::Fs;
use crate::page::Page;
use relstore::{DbError, DbResult};
use std::collections::{HashMap, HashSet, VecDeque};
use std::sync::Arc;

/// Map value for a logical page that has never been flushed (it exists
/// only in the pool; no physical slot holds it yet).
pub const NO_PHYS: u32 = u32::MAX;

/// Fewest frames a pool will run with — enough for the deepest
/// single-operation pin chain with room for the clock to turn.
pub const MIN_FRAMES: usize = 8;

/// Longest physically-contiguous run one coalesced [`BufferPool::fetch_pages`]
/// read pulls in (further capped at half the pool so a single readahead
/// can never dominate the frame budget).
pub const MAX_READAHEAD_RUN: usize = 64;

/// Per-call I/O accounting returned by [`BufferPool::fetch_pages`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FetchStats {
    /// Pages read from disk by this call (readahead pages included).
    pub pages_read: u64,
    /// Pages served from frames that were already resident.
    pub pool_hits: u64,
    /// Coalesced multi-page reads issued (each covers ≥ 2 pages).
    pub prefetches: u64,
}

impl FetchStats {
    /// Field-wise accumulation across calls.
    pub fn absorb(&mut self, other: FetchStats) {
        self.pages_read += other.pages_read;
        self.pool_hits += other.pool_hits;
        self.prefetches += other.prefetches;
    }
}

/// The write-ahead gate: called by the pool before a dirty page is
/// written out, with the page's LSN. Implementations commit the WAL up
/// to (at least) that LSN or fail the flush.
pub trait LogGate {
    /// Makes every log record with LSN ≤ `lsn` durable.
    fn ensure_durable(&mut self, lsn: u64) -> DbResult<()>;
}

/// A gate for contexts with no log to wait on: recovery redo (the log
/// already is durable) and standalone tests.
pub struct NoGate;

impl LogGate for NoGate {
    fn ensure_durable(&mut self, _lsn: u64) -> DbResult<()> {
        Ok(())
    }
}

/// One paged file: a logical→physical page map over an [`Fs`] file,
/// with the shadow-slot bookkeeping.
struct PagedFile {
    fs: Arc<dyn Fs>,
    name: String,
    /// `map[logical] = physical slot` ([`NO_PHYS`] if never flushed).
    map: Vec<u32>,
    /// Physical slots referenced by the last published manifest — never
    /// overwritten until the next [`BufferPool::publish`].
    committed: HashSet<u32>,
    /// Reusable slots (allocated once, dropped by a later manifest).
    free: Vec<u32>,
    /// Next never-allocated slot (the file grows here).
    next_phys: u32,
    /// True once anything was written since the last [`Fs::sync`].
    unsynced: bool,
}

impl PagedFile {
    fn slot_for_flush(&mut self, logical: u32) -> u32 {
        let cur = self.map[logical as usize];
        if cur != NO_PHYS && !self.committed.contains(&cur) {
            // already shadowed since the last checkpoint: overwrite in
            // place — a tear here hits a slot no manifest references
            return cur;
        }
        let slot = self.free.pop().unwrap_or_else(|| {
            let s = self.next_phys;
            self.next_phys += 1;
            s
        });
        self.map[logical as usize] = slot;
        slot
    }

    fn rebuild_free(&mut self) {
        let live: HashSet<u32> = self.map.iter().copied().filter(|&p| p != NO_PHYS).collect();
        self.committed = live.clone();
        self.free = (0..self.next_phys).filter(|p| !live.contains(p)).collect();
        // pop from the end ⇒ lowest slots are reused last; order only
        // affects layout, not correctness
        self.free.sort_unstable_by(|a, b| b.cmp(a));
    }
}

/// Handle to a file registered with the pool.
pub type FileId = u32;

struct Frame {
    key: (FileId, u32),
    page: Page,
    dirty: bool,
    pins: u32,
    referenced: bool,
    /// Scan-admitted (evict-soon) frame: preferred eviction victim until
    /// a targeted pin promotes it into the clock's second-chance regime.
    scan: bool,
}

/// The pool: frames + frame table + the paged files they cache.
pub struct BufferPool {
    page_size: usize,
    capacity: usize,
    files: Vec<PagedFile>,
    frames: Vec<Frame>,
    /// `(file, logical page) → frame index`.
    table: HashMap<(FileId, u32), usize>,
    clock: usize,
    /// FIFO of scan-admitted frame indices — the evict-soon queue.
    /// Entries go stale when a frame is promoted or re-used; eviction
    /// revalidates against the frame's current `scan` tag.
    scan_queue: VecDeque<usize>,
    /// Whether [`BufferPool::fetch_pages`] may coalesce contiguous runs.
    readahead: bool,
}

impl std::fmt::Debug for BufferPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("BufferPool")
            .field("page_size", &self.page_size)
            .field("capacity", &self.capacity)
            .field("resident", &self.frames.len())
            .field("files", &self.files.len())
            .finish()
    }
}

impl BufferPool {
    /// A pool of `capacity` frames of `page_size` bytes each (clamped up
    /// to [`MIN_FRAMES`]).
    pub fn new(page_size: usize, capacity: usize) -> BufferPool {
        BufferPool {
            page_size,
            capacity: capacity.max(MIN_FRAMES),
            files: Vec::new(),
            frames: Vec::new(),
            table: HashMap::new(),
            clock: 0,
            scan_queue: VecDeque::new(),
            readahead: true,
        }
    }

    /// Page size every frame (and file) uses.
    pub fn page_size(&self) -> usize {
        self.page_size
    }

    /// Enables or disables readahead coalescing in
    /// [`BufferPool::fetch_pages`] (on by default; the off position is a
    /// bench/CI knob for isolating the coalescing win).
    pub fn set_readahead(&mut self, on: bool) {
        self.readahead = on;
    }

    /// Whether readahead coalescing is enabled.
    pub fn readahead(&self) -> bool {
        self.readahead
    }

    /// Registers a brand-new (empty) paged file.
    pub fn register_file(&mut self, fs: Arc<dyn Fs>, name: impl Into<String>) -> FileId {
        let id = self.files.len() as FileId;
        self.files.push(PagedFile {
            fs,
            name: name.into(),
            map: Vec::new(),
            committed: HashSet::new(),
            free: Vec::new(),
            next_phys: 0,
            unsynced: false,
        });
        id
    }

    /// Re-registers a file from a checkpoint manifest's page map; the
    /// mapped slots become the committed (shadow-protected) set.
    pub fn restore_file(
        &mut self,
        fs: Arc<dyn Fs>,
        name: impl Into<String>,
        map: Vec<u32>,
    ) -> FileId {
        let id = self.register_file(fs, name);
        let f = &mut self.files[id as usize];
        f.next_phys = map.iter().copied().filter(|&p| p != NO_PHYS).max().map_or(0, |m| m + 1);
        f.map = map;
        f.rebuild_free();
        id
    }

    /// The current logical→physical map of `file` (what a checkpoint
    /// manifest records).
    pub fn file_map(&self, file: FileId) -> &[u32] {
        &self.files[file as usize].map
    }

    /// Number of logical pages in `file`.
    pub fn logical_pages(&self, file: FileId) -> u32 {
        self.files[file as usize].map.len() as u32
    }

    /// Appends a fresh logical page to `file`, resident (unpinned) and
    /// dirty. Returns its logical page number. If the new page is
    /// evicted before first use it is flushed like any dirty page, so
    /// allocation never loses an empty page.
    pub fn alloc_page(&mut self, file: FileId, gate: &mut dyn LogGate) -> DbResult<u32> {
        let logical = {
            let f = &mut self.files[file as usize];
            f.map.push(NO_PHYS);
            (f.map.len() - 1) as u32
        };
        let frame = self.free_frame(gate)?;
        let page = Page::new(self.page_size);
        self.install(frame, (file, logical), page, true, false);
        self.frames[frame].pins = 0;
        Ok(logical)
    }

    /// Pins `(file, logical)` into a frame, loading it from disk on a
    /// miss. The caller must [`BufferPool::unpin`] the returned frame.
    pub fn pin(&mut self, file: FileId, logical: u32, gate: &mut dyn LogGate) -> DbResult<usize> {
        self.pin_with(file, logical, gate, false)
    }

    /// [`BufferPool::pin`] with scan-resistant (evict-soon) admission:
    /// a miss installs the page tagged for preferred eviction, and a hit
    /// on a hot frame leaves its clock state untouched — one-touch bulk
    /// reads neither displace nor artificially refresh the hot set.
    pub fn pin_scan(
        &mut self,
        file: FileId,
        logical: u32,
        gate: &mut dyn LogGate,
    ) -> DbResult<usize> {
        self.pin_with(file, logical, gate, true)
    }

    fn pin_with(
        &mut self,
        file: FileId,
        logical: u32,
        gate: &mut dyn LogGate,
        scan: bool,
    ) -> DbResult<usize> {
        if let Some(&idx) = self.table.get(&(file, logical)) {
            dq_obs::counter!("storage.pool.hits").incr();
            let fr = &mut self.frames[idx];
            fr.pins += 1;
            if !scan {
                // a targeted re-reference promotes scan frames to hot
                fr.referenced = true;
                fr.scan = false;
            }
            return Ok(idx);
        }
        dq_obs::counter!("storage.pool.misses").incr();
        let page = {
            let f = &self.files[file as usize];
            let phys = self.phys_of(file, logical)?;
            let bytes =
                f.fs.read_at(&f.name, phys as u64 * self.page_size as u64, self.page_size)?;
            dq_obs::counter!("storage.pool.page_reads").incr();
            Page::from_bytes(bytes, self.page_size)
                .map_err(|e| DbError::Storage(format!("`{}` page {logical}: {e}", f.name)))?
        };
        let frame = self.free_frame(gate)?;
        self.install(frame, (file, logical), page, false, scan);
        Ok(frame)
    }

    /// Visits every page in `pages` (sorted ascending, deduplicated) in
    /// order, loading misses with scan-resistant admission and coalescing
    /// physically-contiguous miss runs into single reads (sorted
    /// readahead) when [`BufferPool::readahead`] is on. Resident pages
    /// are served from their frames without demoting them. This is the
    /// batch fetch behind index-driven page-skipping scans.
    pub fn fetch_pages(
        &mut self,
        file: FileId,
        pages: &[u32],
        gate: &mut dyn LogGate,
        mut visit: impl FnMut(u32, &Page) -> DbResult<()>,
    ) -> DbResult<FetchStats> {
        debug_assert!(pages.windows(2).all(|w| w[0] < w[1]), "pages must be sorted unique");
        let mut stats = FetchStats::default();
        let run_cap = if self.readahead {
            MAX_READAHEAD_RUN.min((self.capacity / 2).max(1))
        } else {
            1
        };
        let mut i = 0;
        while i < pages.len() {
            let lp = pages[i];
            if self.table.contains_key(&(file, lp)) {
                stats.pool_hits += 1;
                let frame = self.pin_scan(file, lp, gate)?;
                let out = visit(lp, self.page(frame));
                self.unpin(frame);
                out?;
                i += 1;
                continue;
            }
            // extend a miss run while the *logical* successors in the
            // request sit on physically consecutive slots and aren't
            // already resident (re-reading a resident page would waste
            // the I/O and shadow the fresher frame)
            let phys0 = self.phys_of(file, lp)?;
            let mut run = 1usize;
            while i + run < pages.len() && run < run_cap {
                let next = pages[i + run];
                if self.table.contains_key(&(file, next)) {
                    break;
                }
                match self.phys_of(file, next) {
                    Ok(p) if p == phys0 + run as u32 => run += 1,
                    // non-contiguous or unmapped: let its own iteration
                    // handle (or report) it
                    _ => break,
                }
            }
            let bytes = {
                let f = &self.files[file as usize];
                f.fs.read_at(
                    &f.name,
                    phys0 as u64 * self.page_size as u64,
                    run * self.page_size,
                )?
            };
            if bytes.len() < run * self.page_size {
                return Err(DbError::Storage(format!(
                    "short readahead: {} of {} bytes",
                    bytes.len(),
                    run * self.page_size
                )));
            }
            if run > 1 {
                dq_obs::counter!("storage.pool.prefetches").incr();
                dq_obs::counter!("storage.pool.readahead_pages").add(run as u64 - 1);
                stats.prefetches += 1;
            }
            for k in 0..run {
                let lp_k = pages[i + k];
                dq_obs::counter!("storage.pool.misses").incr();
                dq_obs::counter!("storage.pool.page_reads").incr();
                let page = Page::from_bytes(
                    bytes[k * self.page_size..(k + 1) * self.page_size].to_vec(),
                    self.page_size,
                )
                .map_err(|e| {
                    let name = &self.files[file as usize].name;
                    DbError::Storage(format!("`{name}` page {lp_k}: {e}"))
                })?;
                let frame = self.free_frame(gate)?;
                self.install(frame, (file, lp_k), page, false, true);
                let out = visit(lp_k, self.page(frame));
                self.unpin(frame);
                out?;
                stats.pages_read += 1;
            }
            i += run;
        }
        Ok(stats)
    }

    /// Releases one pin on `frame`.
    pub fn unpin(&mut self, frame: usize) {
        let fr = &mut self.frames[frame];
        debug_assert!(fr.pins > 0, "unpin without pin");
        fr.pins = fr.pins.saturating_sub(1);
    }

    /// Read access to a pinned frame's page.
    pub fn page(&self, frame: usize) -> &Page {
        &self.frames[frame].page
    }

    /// Write access to a pinned frame's page; marks it dirty and stamps
    /// `lsn` (the WAL position of the mutation being applied).
    pub fn page_mut(&mut self, frame: usize, lsn: u64) -> &mut Page {
        let fr = &mut self.frames[frame];
        fr.dirty = true;
        fr.page.stamp_lsn(lsn);
        &mut fr.page
    }

    /// Pin → read → unpin in one call.
    pub fn with_page<R>(
        &mut self,
        file: FileId,
        logical: u32,
        gate: &mut dyn LogGate,
        f: impl FnOnce(&Page) -> DbResult<R>,
    ) -> DbResult<R> {
        let frame = self.pin(file, logical, gate)?;
        let out = f(self.page(frame));
        self.unpin(frame);
        out
    }

    /// Pin (scan admission) → read → unpin in one call — the streaming
    /// form bulk scans use so one-touch pages stay evict-soon.
    pub fn with_page_scan<R>(
        &mut self,
        file: FileId,
        logical: u32,
        gate: &mut dyn LogGate,
        f: impl FnOnce(&Page) -> DbResult<R>,
    ) -> DbResult<R> {
        let frame = self.pin_scan(file, logical, gate)?;
        let out = f(self.page(frame));
        self.unpin(frame);
        out
    }

    /// Pin → mutate (dirty + LSN stamp) → unpin in one call.
    pub fn with_page_mut<R>(
        &mut self,
        file: FileId,
        logical: u32,
        lsn: u64,
        gate: &mut dyn LogGate,
        f: impl FnOnce(&mut Page) -> DbResult<R>,
    ) -> DbResult<R> {
        let frame = self.pin(file, logical, gate)?;
        let out = f(self.page_mut(frame, lsn));
        self.unpin(frame);
        out
    }

    /// Writes out every dirty resident page (each behind the WAL gate)
    /// without evicting anything — the checkpoint's flush pass.
    /// Returns how many pages were written.
    pub fn flush_all(&mut self, gate: &mut dyn LogGate) -> DbResult<u64> {
        let mut flushed = 0;
        for idx in 0..self.frames.len() {
            if self.frames[idx].dirty {
                Self::flush_frame(&mut self.files, &mut self.frames[idx], self.page_size, gate)?;
                flushed += 1;
            }
        }
        Ok(flushed)
    }

    /// Fsyncs every file with unflushed writes (checkpoint manifests
    /// must only reference durable slots).
    pub fn sync_files(&mut self) -> DbResult<()> {
        for f in &mut self.files {
            if f.unsynced {
                f.fs.sync(&f.name)?;
                f.unsynced = false;
            }
        }
        Ok(())
    }

    /// Marks the current page maps as published: the slots they
    /// reference become shadow-protected, and slots only older manifests
    /// referenced become reusable. Call right after the checkpoint that
    /// recorded the maps is durably on disk.
    pub fn publish(&mut self) {
        for f in &mut self.files {
            f.rebuild_free();
        }
    }

    /// True iff `(file, logical)` currently occupies a frame.
    pub fn is_resident(&self, file: FileId, logical: u32) -> bool {
        self.table.contains_key(&(file, logical))
    }

    /// Number of currently pinned frames (test/debug aid).
    pub fn pinned_frames(&self) -> usize {
        self.frames.iter().filter(|f| f.pins > 0).count()
    }

    /// The keys of all resident pages (test/debug aid).
    pub fn resident(&self) -> Vec<(FileId, u32)> {
        let mut v: Vec<_> = self.frames.iter().map(|f| f.key).collect();
        v.sort_unstable();
        v
    }

    // ---- internals ------------------------------------------------------

    fn phys_of(&self, file: FileId, logical: u32) -> DbResult<u32> {
        let f = &self.files[file as usize];
        let phys = *f.map.get(logical as usize).ok_or_else(|| {
            DbError::Storage(format!(
                "page {logical} out of range in `{}` ({} pages)",
                f.name,
                f.map.len()
            ))
        })?;
        if phys == NO_PHYS {
            return Err(DbError::Storage(format!(
                "page {logical} of `{}` was never flushed and is not resident",
                f.name
            )));
        }
        Ok(phys)
    }

    fn install(&mut self, frame: usize, key: (FileId, u32), page: Page, dirty: bool, scan: bool) {
        let fr = Frame {
            key,
            page,
            dirty,
            pins: 1,
            referenced: !scan,
            scan,
        };
        if frame == self.frames.len() {
            self.frames.push(fr);
        } else {
            self.frames[frame] = fr;
        }
        if scan {
            self.scan_queue.push_back(frame);
        }
        self.table.insert(key, frame);
    }

    /// Index of a frame ready to be overwritten: a never-used slot while
    /// the pool is below capacity, then the oldest still-unpromoted
    /// scan-admitted frame (evict-soon FIFO), otherwise a clock victim
    /// (flushed first if dirty, and never a pinned frame).
    fn free_frame(&mut self, gate: &mut dyn LogGate) -> DbResult<usize> {
        if self.frames.len() < self.capacity {
            return Ok(self.frames.len());
        }
        // evict-soon pass: one-touch scan pages go first, in admission
        // order, so a bulk read recycles its own frames instead of
        // clocking out the hot set
        for _ in 0..self.scan_queue.len() {
            let Some(idx) = self.scan_queue.pop_front() else {
                break;
            };
            let fr = &mut self.frames[idx];
            if !fr.scan {
                continue; // promoted to hot (or frame re-used): stale entry
            }
            if fr.pins > 0 {
                self.scan_queue.push_back(idx);
                continue;
            }
            if fr.dirty {
                Self::flush_frame(&mut self.files, fr, self.page_size, gate)?;
            }
            self.table.remove(&fr.key);
            dq_obs::counter!("storage.pool.evictions").incr();
            dq_obs::counter!("storage.pool.scan_evictions").incr();
            return Ok(idx);
        }
        // clock sweep: first pass clears reference bits, so within two
        // laps every unpinned frame has been offered up
        for _ in 0..self.frames.len() * 2 {
            let idx = self.clock;
            self.clock = (self.clock + 1) % self.frames.len();
            let fr = &mut self.frames[idx];
            if fr.pins > 0 {
                continue; // pinned pages are never evicted
            }
            if fr.referenced {
                fr.referenced = false;
                continue;
            }
            if fr.dirty {
                Self::flush_frame(&mut self.files, fr, self.page_size, gate)?;
            }
            self.table.remove(&fr.key);
            dq_obs::counter!("storage.pool.evictions").incr();
            if fr.scan {
                // scan frame whose FIFO entry went stale — still a scan
                // eviction for accounting purposes
                dq_obs::counter!("storage.pool.scan_evictions").incr();
            }
            return Ok(idx);
        }
        Err(DbError::Storage(format!(
            "buffer pool exhausted: all {} frames pinned",
            self.frames.len()
        )))
    }

    fn flush_frame(
        files: &mut [PagedFile],
        fr: &mut Frame,
        page_size: usize,
        gate: &mut dyn LogGate,
    ) -> DbResult<()> {
        // write-ahead rule: the log explaining this page goes first
        gate.ensure_durable(fr.page.lsn())?;
        let (file, logical) = fr.key;
        let f = &mut files[file as usize];
        let slot = f.slot_for_flush(logical);
        let bytes = fr.page.sealed_bytes();
        let n = f.fs.write_at(&f.name, slot as u64 * page_size as u64, bytes)?;
        if n < bytes.len() {
            return Err(DbError::Storage(format!(
                "short page write: {n} of {} bytes",
                bytes.len()
            )));
        }
        f.unsynced = true;
        fr.dirty = false;
        dq_obs::counter!("storage.pool.dirty_flushes").incr();
        dq_obs::counter!("storage.pool.page_writes").incr();
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fs::MemFs;

    const PS: usize = 256;

    fn pool_with_file(cap: usize) -> (BufferPool, FileId, MemFs) {
        let fs = MemFs::new();
        let mut pool = BufferPool::new(PS, cap);
        let fid = pool.register_file(Arc::new(fs.clone()), "heap.pg");
        (pool, fid, fs)
    }

    fn fill_page(pool: &mut BufferPool, fid: FileId, logical: u32, tag: u8) {
        pool.with_page_mut(fid, logical, 1, &mut NoGate, |p| {
            p.insert(&[tag; 16]).unwrap();
            Ok(())
        })
        .unwrap();
    }

    #[test]
    fn alloc_write_evict_reload() {
        let (mut pool, fid, _fs) = pool_with_file(MIN_FRAMES);
        // allocate more pages than frames so early ones get evicted
        let n = MIN_FRAMES as u32 + 4;
        for i in 0..n {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            assert_eq!(lp, i);
            fill_page(&mut pool, fid, lp, i as u8);
        }
        assert!(pool.resident().len() <= MIN_FRAMES);
        // every page reads back its record, resident or not
        for i in 0..n {
            pool.with_page(fid, i, &mut NoGate, |p| {
                assert_eq!(p.get(0)?, Some(&[i as u8; 16][..]));
                Ok(())
            })
            .unwrap();
        }
    }

    #[test]
    fn pinned_pages_survive_pool_pressure() {
        let (mut pool, fid, _fs) = pool_with_file(MIN_FRAMES);
        // pin three pages and hold the pins
        let mut held = Vec::new();
        for _ in 0..3 {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            let frame = pool.pin(fid, lp, &mut NoGate).unwrap();
            held.push((lp, frame));
        }
        assert_eq!(pool.pinned_frames(), 3);
        // hammer enough other pages to evict everything evictable many
        // times over
        for _ in 0..4 * MIN_FRAMES as u32 {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            fill_page(&mut pool, fid, lp, 9);
        }
        // the pinned pages never left their frames
        for &(lp, frame) in &held {
            assert_eq!(pool.frames[frame].key, (fid, lp), "pinned page evicted");
            assert!(pool.table.contains_key(&(fid, lp)));
        }
        for &(_, frame) in &held {
            pool.unpin(frame);
        }
    }

    #[test]
    fn exhaustion_when_everything_is_pinned() {
        let (mut pool, fid, _fs) = pool_with_file(MIN_FRAMES);
        let mut held = Vec::new();
        for _ in 0..MIN_FRAMES {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            held.push(pool.pin(fid, lp, &mut NoGate).unwrap());
        }
        let err = pool.alloc_page(fid, &mut NoGate).unwrap_err();
        assert!(err.to_string().contains("exhausted"), "{err}");
        // releasing one pin unblocks the pool
        pool.unpin(held.pop().unwrap());
        assert!(pool.alloc_page(fid, &mut NoGate).is_ok());
    }

    #[test]
    fn pins_balance_and_budget_holds_under_load() {
        let (mut pool, fid, _fs) = pool_with_file(MIN_FRAMES);
        for i in 0..6 * MIN_FRAMES as u32 {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            fill_page(&mut pool, fid, lp, (i % 251) as u8);
            // revisit an older page so hits, misses, and evictions all mix
            pool.with_page(fid, lp / 2, &mut NoGate, |_| Ok(())).unwrap();
            assert_eq!(pool.pinned_frames(), 0, "pins must balance after every op");
            assert!(
                pool.resident().len() <= MIN_FRAMES,
                "pool exceeded its frame budget"
            );
        }
    }

    #[test]
    fn flush_gate_sees_page_lsn() {
        struct Recording {
            calls: Vec<u64>,
        }
        impl LogGate for Recording {
            fn ensure_durable(&mut self, lsn: u64) -> DbResult<()> {
                self.calls.push(lsn);
                Ok(())
            }
        }
        let (mut pool, fid, _fs) = pool_with_file(MIN_FRAMES);
        let mut gate = Recording { calls: Vec::new() };
        let lp = pool.alloc_page(fid, &mut gate).unwrap();
        pool.with_page_mut(fid, lp, 77, &mut gate, |p| {
            p.insert(b"x").unwrap();
            Ok(())
        })
        .unwrap();
        pool.flush_all(&mut gate).unwrap();
        assert_eq!(gate.calls, vec![77], "flush must gate on the page LSN");
    }

    #[test]
    fn shadow_slots_protect_committed_images() {
        let (mut pool, fid, fs) = pool_with_file(MIN_FRAMES);
        let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
        fill_page(&mut pool, fid, lp, 1);
        pool.flush_all(&mut NoGate).unwrap();
        pool.sync_files().unwrap();
        pool.publish();
        let committed_slot = pool.file_map(fid)[0];
        let committed_bytes = fs
            .read_at("heap.pg", committed_slot as u64 * PS as u64, PS)
            .unwrap();

        // dirty the page again: the next flush must go elsewhere
        fill_page(&mut pool, fid, lp, 2);
        pool.flush_all(&mut NoGate).unwrap();
        let shadow_slot = pool.file_map(fid)[0];
        assert_ne!(shadow_slot, committed_slot, "committed slot overwritten");
        // and the committed image is untouched
        assert_eq!(
            fs.read_at("heap.pg", committed_slot as u64 * PS as u64, PS).unwrap(),
            committed_bytes
        );
        // a third flush before publish may reuse the shadow slot
        fill_page(&mut pool, fid, lp, 3);
        pool.flush_all(&mut NoGate).unwrap();
        assert_eq!(pool.file_map(fid)[0], shadow_slot);

        // after publish the old committed slot becomes reusable
        pool.publish();
        let lp2 = pool.alloc_page(fid, &mut NoGate).unwrap();
        fill_page(&mut pool, fid, lp2, 4);
        pool.flush_all(&mut NoGate).unwrap();
        assert_eq!(pool.file_map(fid)[1], committed_slot, "freed slot reused");
    }

    #[test]
    fn restore_file_resumes_the_manifest_map() {
        let (mut pool, fid, fs) = pool_with_file(MIN_FRAMES);
        for i in 0..3 {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            fill_page(&mut pool, fid, lp, i as u8 + 1);
        }
        pool.flush_all(&mut NoGate).unwrap();
        pool.sync_files().unwrap();
        let map = pool.file_map(fid).to_vec();

        // "recovery": a fresh pool over the same file + manifest map
        let mut pool2 = BufferPool::new(PS, MIN_FRAMES);
        let fid2 = pool2.restore_file(Arc::new(fs), "heap.pg", map);
        for i in 0..3u32 {
            pool2
                .with_page(fid2, i, &mut NoGate, |p| {
                    assert_eq!(p.get(0)?, Some(&[i as u8 + 1; 16][..]));
                    Ok(())
                })
                .unwrap();
        }
        // restored slots are shadow-protected
        pool2
            .with_page_mut(fid2, 0, 1, &mut NoGate, |p| {
                p.insert(b"new").unwrap();
                Ok(())
            })
            .unwrap();
        let before = pool2.file_map(fid2)[0];
        pool2.flush_all(&mut NoGate).unwrap();
        assert_ne!(pool2.file_map(fid2)[0], before);
    }

    /// Builds an N-page file with a sequential physical layout and hands
    /// back a cold pool of `cap` frames restored over it (page `i`'s
    /// record is `[i as u8 + 1; 16]`).
    fn cold_pool(pages: u32, cap: usize) -> (BufferPool, FileId) {
        let fs = MemFs::new();
        let mut pool = BufferPool::new(PS, pages as usize + MIN_FRAMES);
        let fid = pool.register_file(Arc::new(fs.clone()), "heap.pg");
        for i in 0..pages {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            fill_page(&mut pool, fid, lp, i as u8 + 1);
        }
        pool.flush_all(&mut NoGate).unwrap();
        pool.sync_files().unwrap();
        let map = pool.file_map(fid).to_vec();
        let mut cold = BufferPool::new(PS, cap);
        let fid = cold.restore_file(Arc::new(fs), "heap.pg", map);
        (cold, fid)
    }

    #[test]
    fn scan_reads_do_not_evict_the_hot_set() {
        let (mut pool, fid) = cold_pool(4 * MIN_FRAMES as u32 + 4, MIN_FRAMES);
        // build a hot set of 4 pages with targeted pins
        let hot = [0u32, 1, 2, 3];
        for &lp in &hot {
            pool.with_page(fid, lp, &mut NoGate, |_| Ok(())).unwrap();
        }
        let scan_ev0 = dq_obs::registry().counter("storage.pool.scan_evictions").get();
        // a cold sweep several times the pool size, via scan admission
        for lp in 4..4 + 4 * MIN_FRAMES as u32 {
            pool.with_page_scan(fid, lp, &mut NoGate, |p| {
                assert_eq!(p.get(0)?, Some(&[lp as u8 + 1; 16][..]));
                Ok(())
            })
            .unwrap();
        }
        // the sweep recycled its own frames...
        assert!(
            dq_obs::registry().counter("storage.pool.scan_evictions").get() > scan_ev0,
            "scan sweep should evict scan-admitted frames"
        );
        // ...and every hot page is still resident
        for &lp in &hot {
            assert!(
                pool.table.contains_key(&(fid, lp)),
                "hot page {lp} evicted by a one-touch scan"
            );
        }
    }

    #[test]
    fn targeted_pin_promotes_a_scan_frame() {
        let (mut pool, fid) = cold_pool(2 * MIN_FRAMES as u32, MIN_FRAMES);
        // admit page 0 as scan, then promote it with a targeted pin
        pool.with_page_scan(fid, 0, &mut NoGate, |_| Ok(())).unwrap();
        pool.with_page(fid, 0, &mut NoGate, |_| Ok(())).unwrap();
        let idx = pool.table[&(fid, 0)];
        assert!(!pool.frames[idx].scan, "targeted pin must clear the scan tag");
        // a subsequent sweep must not treat it as evict-soon
        for lp in 1..2 * MIN_FRAMES as u32 {
            pool.with_page_scan(fid, lp, &mut NoGate, |_| Ok(())).unwrap();
        }
        assert!(pool.table.contains_key(&(fid, 0)), "promoted frame evicted as scan");
    }

    #[test]
    fn fetch_pages_coalesces_sorted_runs() {
        // big pool first, so flush order (= physical layout) is logical
        let fs = MemFs::new();
        let mut pool = BufferPool::new(PS, 32);
        let fid = pool.register_file(Arc::new(fs.clone()), "heap.pg");
        for i in 0..12u32 {
            let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
            fill_page(&mut pool, fid, lp, i as u8 + 1);
        }
        pool.flush_all(&mut NoGate).unwrap();
        pool.sync_files().unwrap();
        let map = pool.file_map(fid).to_vec();
        assert_eq!(map, (0..12).collect::<Vec<u32>>(), "layout must be sequential");

        // fresh pool: nothing resident, fetch a page set with two runs
        // and one isolated page
        let mut pool2 = BufferPool::new(PS, MIN_FRAMES);
        let fid2 = pool2.restore_file(Arc::new(fs.clone()), "heap.pg", map.clone());
        let want = [0u32, 1, 2, 3, 7, 9, 10, 11];
        let mut seen = Vec::new();
        let stats = pool2
            .fetch_pages(fid2, &want, &mut NoGate, |lp, p| {
                assert_eq!(p.get(0)?, Some(&[lp as u8 + 1; 16][..]));
                seen.push(lp);
                Ok(())
            })
            .unwrap();
        assert_eq!(seen, want, "visit order must follow the request");
        assert_eq!(stats.pages_read, 8);
        assert_eq!(stats.pool_hits, 0);
        assert_eq!(stats.prefetches, 2, "runs 0..=3 and 9..=11 must coalesce");

        // second fetch of a resident subset is all pool hits
        let stats = pool2
            .fetch_pages(fid2, &[9, 10, 11], &mut NoGate, |_, _| Ok(()))
            .unwrap();
        assert_eq!(stats.pool_hits, 3);
        assert_eq!(stats.pages_read, 0);

        // readahead off: same pages, no coalescing
        let mut pool3 = BufferPool::new(PS, MIN_FRAMES);
        pool3.set_readahead(false);
        let fid3 = pool3.restore_file(Arc::new(fs), "heap.pg", map);
        let stats = pool3
            .fetch_pages(fid3, &want, &mut NoGate, |_, _| Ok(()))
            .unwrap();
        assert_eq!(stats.pages_read, 8);
        assert_eq!(stats.prefetches, 0, "readahead disabled must not coalesce");
    }

    #[test]
    fn torn_page_write_never_reaches_a_committed_slot() {
        // end-to-end shadow-paging property under fault injection: tear
        // a post-publish flush, crash, and verify the committed image
        // still loads cleanly
        let (mut pool, fid, fs) = pool_with_file(MIN_FRAMES);
        let lp = pool.alloc_page(fid, &mut NoGate).unwrap();
        fill_page(&mut pool, fid, lp, 1);
        pool.flush_all(&mut NoGate).unwrap();
        pool.sync_files().unwrap();
        pool.publish();
        let committed_slot = pool.file_map(fid)[0];

        fill_page(&mut pool, fid, lp, 2);
        fs.set_write_budget(PS / 2); // the shadow write tears halfway
        assert!(pool.flush_all(&mut NoGate).is_err());
        fs.clear_write_budget();
        fs.crash();

        let bytes = fs
            .read_at("heap.pg", committed_slot as u64 * PS as u64, PS)
            .unwrap();
        let p = Page::from_bytes(bytes, PS).expect("committed image intact");
        assert_eq!(p.get(0).unwrap(), Some(&[1u8; 16][..]));
    }
}
