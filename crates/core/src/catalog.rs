//! The Appendix-A candidate quality-attribute catalog.
//!
//! The paper's Appendix A lists candidate quality attributes "resulting
//! from survey responses from several hundred data users" (Wang &
//! Guarrascio, CISL-91-06) and is used in Step 2 "to stimulate thinking by
//! the design team". The scan of the paper available to this reproduction
//! omits the appendix body, so the catalog below is **reconstructed**
//! (see DESIGN.md §3): it contains every attribute named in the paper's
//! body plus the standard Wang-school dimension inventory, grouped by
//! [`ConcernScope`] exactly as §4 discusses (data / system / service /
//! user). The catalog's methodological function — non-orthogonal,
//! non-exhaustive, a stimulus rather than a standard — is preserved.

use crate::taxonomy::{AttributeKind, ConcernScope, QualityAttribute};
use std::collections::BTreeMap;

/// The candidate-attribute catalog used by Step 2.
#[derive(Debug, Clone)]
pub struct CandidateCatalog {
    attrs: BTreeMap<String, QualityAttribute>,
}

impl CandidateCatalog {
    /// An empty catalog.
    pub fn new() -> Self {
        CandidateCatalog {
            attrs: BTreeMap::new(),
        }
    }

    /// Adds (or replaces) an attribute. The design team "may choose to
    /// consider additional parameters not listed".
    pub fn add(&mut self, attr: QualityAttribute) {
        self.attrs.insert(attr.name.clone(), attr);
    }

    /// Looks up an attribute by name.
    pub fn get(&self, name: &str) -> Option<&QualityAttribute> {
        self.attrs.get(name)
    }

    /// All attributes, ordered by name.
    pub fn all(&self) -> impl Iterator<Item = &QualityAttribute> {
        self.attrs.values()
    }

    /// Number of attributes.
    pub fn len(&self) -> usize {
        self.attrs.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.attrs.is_empty()
    }

    /// Attributes of one kind.
    pub fn by_kind(&self, kind: AttributeKind) -> Vec<&QualityAttribute> {
        self.attrs.values().filter(|a| a.kind == kind).collect()
    }

    /// Attributes of one scope.
    pub fn by_scope(&self, scope: ConcernScope) -> Vec<&QualityAttribute> {
        self.attrs.values().filter(|a| a.scope == scope).collect()
    }

    /// Pairs `(a, b)` with `a` declaring `b` as related — the Premise-1.2
    /// non-orthogonality graph.
    pub fn non_orthogonal_pairs(&self) -> Vec<(&str, &str)> {
        let mut out = Vec::new();
        for a in self.attrs.values() {
            for r in &a.related {
                out.push((a.name.as_str(), r.as_str()));
            }
        }
        out
    }

    /// The full reconstructed Appendix-A catalog.
    pub fn appendix_a() -> Self {
        let mut c = CandidateCatalog::new();
        use ConcernScope::{Data, Service, System, User};

        let p = QualityAttribute::parameter;
        let i = QualityAttribute::indicator;

        // --- Dimensions named in the paper body -------------------------
        c.add(p("timeliness", Data, "how current the data is for the task at hand")
            .related_to("volatility")
            .related_to("age")
            .related_to("currency"));
        c.add(p("credibility", Data, "believability of the data given its manufacture")
            .related_to("source credibility")
            .related_to("accuracy"));
        c.add(p("accuracy", Data, "conformity of the recorded value to the real-world value")
            .related_to("precision"));
        c.add(p("completeness", Data, "extent to which required data is present")
            .related_to("coverage"));
        c.add(p("interpretability", Data, "ease of understanding what the data means")
            .related_to("understandability"));
        c.add(p("cost", Service, "price paid to obtain or hold the data")
            .related_to("value"));
        c.add(p("volatility", Data, "rate at which the true value changes")
            .related_to("timeliness"));
        c.add(p("source credibility", Data, "trustworthiness of the data's origin"));
        c.add(p("inspection", Data, "verification/certification requirements on the data"));
        c.add(i("age", Data, "time elapsed since the datum was created"));
        c.add(i("creation time", Data, "when the datum was manufactured"));
        c.add(i("source", Data, "which organization/feed/department produced the datum"));
        c.add(i("collection method", Data, "device or procedure that captured the datum"));
        c.add(i("analyst name", Data, "author of a report; proxies credibility"));
        c.add(i("media", System, "storage format: ASCII, bitmap, postscript, ..."));
        c.add(i("update frequency", Data, "how often the datum is refreshed"));
        c.add(p("resolution of graphics", System, "display fidelity of graphical data"));
        c.add(p("clear data responsibility", Service, "an accountable owner for the data exists"));
        c.add(p("past experience", User, "the user's prior familiarity with this data"));
        c.add(p("retrieval time", System, "latency to obtain the data")
            .related_to("accessibility"));

        // --- Intrinsic quality ------------------------------------------
        c.add(p("believability", Data, "extent to which data is accepted as true")
            .related_to("credibility"));
        c.add(p("reputation", Data, "standing of the data/source among users"));
        c.add(p("objectivity", Data, "data is unbiased and impartial"));
        c.add(p("precision", Data, "granularity/exactness of recorded values"));
        c.add(p("consistency", Data, "values agree across the database and over time")
            .related_to("representational consistency"));
        c.add(p("reliability", Data, "data can be depended upon across uses"));
        c.add(p("freedom from bias", Data, "absence of systematic distortion"));
        c.add(p("correctness", Data, "data is free of error").related_to("accuracy"));
        c.add(p("unambiguity", Data, "each value admits one reading"));

        // --- Contextual quality ------------------------------------------
        c.add(p("relevancy", Data, "applicability to the task at hand"));
        c.add(p("value-added", Data, "use of the data confers advantage"));
        c.add(p("appropriate amount", Data, "neither too little nor too much data"));
        c.add(p("coverage", Data, "breadth of the domain the data spans"));
        c.add(p("currency", Data, "the data reflects the present state")
            .related_to("timeliness"));
        c.add(p("importance", User, "weight the user assigns to this data"));
        c.add(p("usefulness", User, "degree to which the data serves user goals"));
        c.add(p("usability", User, "ease of applying the data to a task"));
        c.add(p("sufficiency", Data, "data suffices for the decision at hand"));
        c.add(p("comprehensiveness", Data, "all facets of the subject are covered"));

        // --- Representational quality ------------------------------------
        c.add(p("understandability", Data, "data is easily comprehended"));
        c.add(p("readability", Data, "data presentation can be read fluently"));
        c.add(p("clarity", Data, "data is presented without obscurity"));
        c.add(p("conciseness", Data, "data is compactly represented"));
        c.add(p("representational consistency", Data, "same format used throughout"));
        c.add(p("format flexibility", System, "data adapts to multiple presentations"));
        c.add(p("interoperability", System, "data combines readily with other data"));
        c.add(i("unit of measure", Data, "the measurement unit values are recorded in"));
        c.add(i("language", Data, "natural language the data is expressed in"));
        c.add(i("encoding", System, "character/binary encoding of stored values"));

        // --- Accessibility & security -------------------------------------
        c.add(p("accessibility", System, "data is available or easily retrievable"));
        c.add(p("access security", System, "access is restricted to authorized users"));
        c.add(p("availability", System, "fraction of time the data can be reached"));
        c.add(p("ease of operation", System, "data is easily managed and manipulated"));
        c.add(p("privacy", Service, "personal data is protected from disclosure"));
        c.add(p("confidentiality", Service, "sensitive data is shielded from others"));
        c.add(i("access permissions", System, "ACL in force for the datum"));

        // --- Manufacturing-process indicators ------------------------------
        c.add(i("collector", Data, "person/system that performed the capture"));
        c.add(i("entry method", Data, "keyed, scanned, voice-decoded, imported"));
        c.add(i("entry time", Data, "when the datum entered this database"));
        c.add(i("last update time", Data, "most recent modification instant"));
        c.add(i("update count", Data, "number of times the datum was revised"));
        c.add(i("verification status", Data, "whether/(how) the datum was verified"));
        c.add(i("certification", Data, "formal certification applied, if any"));
        c.add(i("processing history", Data, "transformations applied since capture"));
        c.add(i("intermediate sources", Data, "databases consulted in deriving the datum"));
        c.add(i("originating database", Data, "polygen originating source set"));
        c.add(i("instrument error rate", Data, "known error rate of the capture device"));
        c.add(i("sampling method", Data, "how the measured population was sampled"));
        c.add(i("estimation flag", Data, "whether the value is an estimate"));
        c.add(i("confidence interval", Data, "statistical uncertainty of the value"));
        c.add(i("audit trail reference", Data, "pointer into the electronic audit trail"));

        // --- Service & organizational --------------------------------------
        c.add(p("support", Service, "help is available for interpreting the data"));
        c.add(p("maintainability", Service, "data upkeep is organizationally ensured"));
        c.add(p("traceability", Service, "data can be traced to its origin")
            .related_to("source"));
        c.add(p("compatibility", Service, "data conforms to exchange standards"));
        c.add(p("auditability", Service, "quality can be independently reviewed"));
        c.add(p("ownership clarity", Service, "who owns the data is documented")
            .related_to("clear data responsibility"));

        // --- System ----------------------------------------------------------
        c.add(p("response time", System, "system latency for typical queries")
            .related_to("retrieval time"));
        c.add(p("robustness", System, "data survives system faults uncorrupted"));
        c.add(p("portability", System, "data moves across platforms losslessly"));
        c.add(i("storage location", System, "physical/logical placement of the datum"));
        c.add(i("backup status", System, "when the datum was last backed up"));

        // --- User ---------------------------------------------------------
        c.add(p("ease of understanding", User, "user can grasp the data unaided"));
        c.add(p("trust", User, "user's subjective confidence in the data")
            .related_to("believability"));
        c.add(p("familiarity", User, "user has worked with this data before")
            .related_to("past experience"));
        c
    }
}

impl Default for CandidateCatalog {
    fn default() -> Self {
        CandidateCatalog::appendix_a()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn appendix_a_is_substantial() {
        let c = CandidateCatalog::appendix_a();
        assert!(c.len() >= 70, "catalog too small: {}", c.len());
    }

    #[test]
    fn paper_named_attributes_present() {
        let c = CandidateCatalog::appendix_a();
        for name in [
            "timeliness",
            "credibility",
            "cost",
            "volatility",
            "age",
            "creation time",
            "source",
            "collection method",
            "analyst name",
            "media",
            "inspection",
            "completeness",
            "accuracy",
            "interpretability",
            "resolution of graphics",
            "clear data responsibility",
            "past experience",
        ] {
            assert!(c.get(name).is_some(), "missing `{name}`");
        }
    }

    #[test]
    fn both_kinds_and_all_scopes_present() {
        let c = CandidateCatalog::appendix_a();
        assert!(!c.by_kind(AttributeKind::Parameter).is_empty());
        assert!(!c.by_kind(AttributeKind::Indicator).is_empty());
        for scope in [
            ConcernScope::Data,
            ConcernScope::System,
            ConcernScope::Service,
            ConcernScope::User,
        ] {
            assert!(!c.by_scope(scope).is_empty(), "no attrs in {scope}");
        }
    }

    #[test]
    fn premise_1_2_pairs_exist() {
        let c = CandidateCatalog::appendix_a();
        let pairs = c.non_orthogonal_pairs();
        // the paper's own example pair
        assert!(pairs.contains(&("timeliness", "volatility")));
        assert!(pairs.len() >= 10);
    }

    #[test]
    fn catalog_is_extensible() {
        let mut c = CandidateCatalog::appendix_a();
        let before = c.len();
        c.add(QualityAttribute::parameter(
            "opportunity cost",
            ConcernScope::User,
            "competitive value of the information (the trader's cost measure)",
        ));
        assert_eq!(c.len(), before + 1);
        assert!(c.get("opportunity cost").is_some());
    }

    #[test]
    fn lookup_and_iteration_ordered() {
        let c = CandidateCatalog::appendix_a();
        let names: Vec<&str> = c.all().map(|a| a.name.as_str()).collect();
        let mut sorted = names.clone();
        sorted.sort_unstable();
        assert_eq!(names, sorted);
    }
}
