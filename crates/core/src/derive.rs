//! Indicator derivability rules for Step-4 integration.
//!
//! The paper (§3.4): "one quality view may have *age* as an indicator,
//! whereas another quality view may have *creation time*. In this case,
//! the design team may choose *creation time* for the integrated schema
//! because age can be computed given current time and creation time."
//! A [`DerivabilityRule`] records exactly that relationship; the Step-4
//! engine uses the rules to eliminate redundant indicators.

use serde::{Deserialize, Serialize};

/// `derived` can be computed from `bases` (plus ambient context such as
/// the current time).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct DerivabilityRule {
    /// The redundant indicator.
    pub derived: String,
    /// The indicators it can be computed from.
    pub bases: Vec<String>,
    /// How the derivation works (documentation).
    pub how: String,
}

impl DerivabilityRule {
    /// Shorthand constructor.
    pub fn new(derived: impl Into<String>, bases: &[&str], how: impl Into<String>) -> Self {
        DerivabilityRule {
            derived: derived.into(),
            bases: bases.iter().map(|s| s.to_string()).collect(),
            how: how.into(),
        }
    }
}

/// The default rule set, headed by the paper's own example.
pub fn default_rules() -> Vec<DerivabilityRule> {
    vec![
        DerivabilityRule::new(
            "age",
            &["creation_time"],
            "age = current_time - creation_time",
        ),
        DerivabilityRule::new(
            "currency",
            &["last_update_time"],
            "currency = current_time - last_update_time",
        ),
        DerivabilityRule::new(
            "update_frequency",
            &["update_count", "creation_time"],
            "update_frequency = update_count / (current_time - creation_time)",
        ),
    ]
}

/// Given the indicator names present on one target, returns the names that
/// are redundant under `rules` (their bases are all present too).
pub fn redundant_indicators<'a>(
    present: &[&'a str],
    rules: &'a [DerivabilityRule],
) -> Vec<(&'a str, &'a DerivabilityRule)> {
    let mut out = Vec::new();
    for rule in rules {
        let derived_here = present.iter().any(|p| *p == rule.derived);
        let bases_here = rule
            .bases
            .iter()
            .all(|b| present.iter().any(|p| p == b));
        if derived_here && bases_here {
            out.push((rule.derived.as_str(), rule));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_age_vs_creation_time() {
        let rules = default_rules();
        let present = vec!["age", "creation_time", "source"];
        let red = redundant_indicators(&present, &rules);
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].0, "age");
        assert!(red[0].1.how.contains("current_time"));
    }

    #[test]
    fn no_redundancy_without_base() {
        let rules = default_rules();
        // age present but creation_time missing → keep age
        let red = redundant_indicators(&["age", "source"], &rules);
        assert!(red.is_empty());
        // base present but derived absent → nothing to collapse
        let red = redundant_indicators(&["creation_time"], &rules);
        assert!(red.is_empty());
    }

    #[test]
    fn multi_base_rules() {
        let rules = default_rules();
        let red = redundant_indicators(
            &["update_frequency", "update_count", "creation_time"],
            &rules,
        );
        assert_eq!(red.len(), 1);
        assert_eq!(red[0].0, "update_frequency");
        // missing one base → not redundant
        let red = redundant_indicators(&["update_frequency", "update_count"], &rules);
        assert!(red.is_empty());
    }

    #[test]
    fn custom_rules() {
        let rules = vec![DerivabilityRule::new("x", &["y", "z"], "x = f(y, z)")];
        let red = redundant_indicators(&["x", "y", "z"], &rules);
        assert_eq!(red.len(), 1);
    }
}
