//! The four-step data quality requirements analysis methodology
//! (§3, Figure 2).
//!
//! ```text
//! Step 1  application requirements ──▶ application view
//! Step 2  + candidate quality attributes ──▶ parameter view (subjective)
//! Step 3  operationalize parameters ──▶ quality view (objective)
//! Step 4  quality view integration ──▶ quality schema
//! ```
//!
//! Each step consumes the previous step's output and produces an artifact
//! that becomes "part of the quality requirements specification
//! documentation" (emitted by [`crate::spec`]).

use crate::catalog::CandidateCatalog;
use crate::derive::{redundant_indicators, DerivabilityRule};
use crate::views::{
    ApplicationView, IndicatorAnnotation, IntegrationNote, ParameterAnnotation, ParameterView,
    QualitySchema, QualityView, Target, INSPECTION,
};
use er_model::{Correspondences, ErAttribute, ErSchema};
use relstore::{DataType, DbError, DbResult};
use tagstore::IndicatorDef;

/// **Step 1** — establish the application view. "This initial step embodies
/// the traditional data modeling process": we validate the ER schema the
/// design team produced.
pub fn step1_application_view(er: ErSchema) -> DbResult<ApplicationView> {
    er.validate()?;
    Ok(ApplicationView { er })
}

/// **Step 2** builder — determine (subjective) quality parameters.
///
/// For each component of the application view the design team records the
/// parameters needed to support data quality requirements, normally drawn
/// from the candidate catalog (Appendix A) but extensible beyond it.
pub struct Step2 {
    app: ApplicationView,
    catalog: CandidateCatalog,
    annotations: Vec<ParameterAnnotation>,
    allow_custom: bool,
}

impl Step2 {
    /// Starts Step 2 from a Step-1 application view and a candidate
    /// catalog.
    pub fn new(app: ApplicationView, catalog: CandidateCatalog) -> Self {
        Step2 {
            app,
            catalog,
            annotations: Vec::new(),
            allow_custom: false,
        }
    }

    /// Permits parameters not present in the catalog ("the design team may
    /// choose to consider additional parameters not listed").
    pub fn allow_custom_parameters(mut self) -> Self {
        self.allow_custom = true;
        self
    }

    /// Records a quality parameter on a target.
    pub fn parameter(
        mut self,
        target: Target,
        parameter: &str,
        rationale: &str,
    ) -> DbResult<Self> {
        target.validate_in(&self.app.er)?;
        if self.catalog.get(parameter).is_none() && !self.allow_custom {
            return Err(DbError::InvalidExpression(format!(
                "parameter `{parameter}` is not in the candidate catalog \
                 (call allow_custom_parameters() to accept it)"
            )));
        }
        self.annotations.push(ParameterAnnotation {
            target,
            parameter: parameter.to_owned(),
            rationale: rationale.to_owned(),
        });
        Ok(self)
    }

    /// Records the "✓ inspection" requirement on a target.
    pub fn inspection(self, target: Target, rationale: &str) -> DbResult<Self> {
        self.parameter(target, INSPECTION, rationale)
    }

    /// Finishes Step 2, yielding the parameter view.
    pub fn finish(self) -> ParameterView {
        ParameterView {
            app: self.app,
            annotations: self.annotations,
        }
    }
}

/// Default operationalization suggestions: which objective indicators
/// typically measure a given subjective parameter. The design team can
/// accept, amend, or ignore them — they encode the paper's own examples
/// (timeliness→age, credibility→analyst name, telephone→collection
/// method, report→media, inspection→inspection mechanism).
pub fn suggest_indicators(parameter: &str) -> Vec<IndicatorDef> {
    let mk = |n: &str, t: DataType, d: &str| IndicatorDef::new(n, t, d);
    match parameter {
        "timeliness" => vec![
            mk("age", DataType::Int, "days since the datum was created"),
            mk("creation_time", DataType::Date, "when the datum was created"),
        ],
        "credibility" | "source credibility" | "believability" => vec![
            mk("source", DataType::Text, "origin of the datum"),
            mk("analyst", DataType::Text, "author of the report"),
        ],
        "accuracy" => vec![
            mk(
                "collection_method",
                DataType::Text,
                "capture mechanism; each device has inherent accuracy implications",
            ),
            mk(
                "estimation_flag",
                DataType::Bool,
                "whether the value is an estimate",
            ),
        ],
        "cost" => vec![mk(
            "price_paid",
            DataType::Float,
            "monetary price paid for the datum",
        )],
        "interpretability" => vec![
            mk("media", DataType::Text, "storage format of the document"),
            mk("language", DataType::Text, "natural language of the datum"),
        ],
        "completeness" => vec![mk(
            "population_method",
            DataType::Text,
            "the means by which the table was populated indicates its completeness",
        )],
        INSPECTION => vec![mk(
            "inspection",
            DataType::Text,
            "inspection/certification mechanism applied",
        )],
        _ => Vec::new(),
    }
}

/// **Step 3** builder — determine (objective) quality indicators.
pub struct Step3 {
    pv: ParameterView,
    indicators: Vec<IndicatorAnnotation>,
}

impl Step3 {
    /// Starts Step 3 from a Step-2 parameter view.
    pub fn new(pv: ParameterView) -> Self {
        Step3 {
            pv,
            indicators: Vec::new(),
        }
    }

    /// Operationalizes `parameter` on `target` with an explicit indicator.
    pub fn operationalize(
        mut self,
        target: Target,
        parameter: &str,
        def: IndicatorDef,
    ) -> DbResult<Self> {
        target.validate_in(&self.pv.app.er)?;
        if !self
            .pv
            .annotations
            .iter()
            .any(|a| a.target == target && a.parameter == parameter)
        {
            return Err(DbError::InvalidExpression(format!(
                "no parameter `{parameter}` recorded on `{target}` in the parameter view"
            )));
        }
        self.indicators.push(IndicatorAnnotation {
            target,
            def,
            operationalizes: Some(parameter.to_owned()),
        });
        Ok(self)
    }

    /// Operationalizes using the default suggestions for the parameter.
    pub fn operationalize_suggested(mut self, target: Target, parameter: &str) -> DbResult<Self> {
        let suggestions = suggest_indicators(parameter);
        if suggestions.is_empty() {
            return Err(DbError::InvalidExpression(format!(
                "no default indicators known for parameter `{parameter}`; \
                 use operationalize() with an explicit definition"
            )));
        }
        for def in suggestions {
            self = self.operationalize(target.clone(), parameter, def)?;
        }
        Ok(self)
    }

    /// "If a quality parameter is deemed in this step to be sufficiently
    /// objective ... it can remain" — keeps the parameter itself as an
    /// indicator with the given value domain.
    pub fn retain_objective(
        mut self,
        target: Target,
        parameter: &str,
        dtype: DataType,
    ) -> DbResult<Self> {
        target.validate_in(&self.pv.app.er)?;
        let ann = self
            .pv
            .annotations
            .iter()
            .find(|a| a.target == target && a.parameter == parameter)
            .ok_or_else(|| {
                DbError::InvalidExpression(format!(
                    "no parameter `{parameter}` recorded on `{target}`"
                ))
            })?;
        self.indicators.push(IndicatorAnnotation {
            target,
            def: IndicatorDef::new(parameter, dtype, ann.rationale.clone()),
            operationalizes: Some(parameter.to_owned()),
        });
        Ok(self)
    }

    /// Adds an indicator with no corresponding parameter (the paper's
    /// quality view includes e.g. `company_name` purely "to enhance the
    /// interpretability of ticker symbol").
    pub fn indicator(mut self, target: Target, def: IndicatorDef) -> DbResult<Self> {
        target.validate_in(&self.pv.app.er)?;
        self.indicators.push(IndicatorAnnotation {
            target,
            def,
            operationalizes: None,
        });
        Ok(self)
    }

    /// Finishes Step 3. Every recorded parameter must have been
    /// operationalized (or explicitly retained); otherwise the quality
    /// view would silently lose a documented requirement.
    pub fn finish(self) -> DbResult<QualityView> {
        for p in &self.pv.annotations {
            let covered = self.indicators.iter().any(|i| {
                i.target == p.target && i.operationalizes.as_deref() == Some(p.parameter.as_str())
            });
            if !covered {
                return Err(DbError::InvalidExpression(format!(
                    "parameter `{}` on `{}` was never operationalized in Step 3",
                    p.parameter, p.target
                )));
            }
        }
        Ok(QualityView {
            app: self.pv.app,
            parameters: self.pv.annotations,
            indicators: self.indicators,
        })
    }
}

/// **Step 4** — quality view integration. Merges multiple quality views
/// into one quality schema: ER schemas integrate (Batini-style, with
/// synonym correspondences), indicator annotations union with duplicate
/// elimination, and derivability rules collapse redundant indicators
/// (the paper's age-vs-creation-time example).
pub fn step4_integrate(
    name: &str,
    views: &[&QualityView],
    corr: &Correspondences,
    rules: &[DerivabilityRule],
) -> DbResult<QualitySchema> {
    if views.is_empty() {
        return Err(DbError::InvalidExpression(
            "step 4 requires at least one quality view".into(),
        ));
    }
    let mut notes: Vec<IntegrationNote> = Vec::new();

    // 1. Integrate the application schemas.
    let er_views: Vec<&ErSchema> = views.iter().map(|v| &v.app.er).collect();
    let integrated = er_model::integrate(name, &er_views, corr)?;
    for c in &integrated.conflicts {
        notes.push(IntegrationNote {
            category: "conflict".into(),
            detail: c.to_string(),
        });
    }

    // 2. Union indicator annotations (canonicalizing entity names),
    //    deduplicating identical ones and rejecting contradictory
    //    definitions of the same indicator name.
    let canon_target = |t: &Target| -> Target {
        match t {
            Target::Entity(e) => Target::Entity(corr.canonical(e).to_owned()),
            Target::Relationship(r) => Target::Relationship(r.clone()),
            Target::Attribute(o, a) => Target::Attribute(corr.canonical(o).to_owned(), a.clone()),
        }
    };
    let mut indicators: Vec<IndicatorAnnotation> = Vec::new();
    let mut parameters: Vec<ParameterAnnotation> = Vec::new();
    for v in views {
        for p in &v.parameters {
            let mut p = p.clone();
            p.target = canon_target(&p.target);
            if !parameters.contains(&p) {
                parameters.push(p);
            }
        }
        for i in &v.indicators {
            let mut i = i.clone();
            i.target = canon_target(&i.target);
            match indicators
                .iter()
                .find(|x| x.target == i.target && x.def.name == i.def.name)
            {
                None => indicators.push(i),
                Some(existing) if existing.def == i.def => {
                    notes.push(IntegrationNote {
                        category: "union".into(),
                        detail: format!(
                            "indicator `{}` on `{}` contributed by multiple views",
                            i.def.name, i.target
                        ),
                    });
                }
                Some(existing) => {
                    return Err(DbError::InvalidExpression(format!(
                        "indicator `{}` on `{}` declared with conflicting domains ({} vs {})",
                        i.def.name, i.target, existing.def.dtype, i.def.dtype
                    )))
                }
            }
        }
    }

    // 3. Derivability collapse, per target.
    let mut targets: Vec<Target> = indicators.iter().map(|i| i.target.clone()).collect();
    targets.sort();
    targets.dedup();
    for t in targets {
        let present: Vec<&str> = indicators
            .iter()
            .filter(|i| i.target == t)
            .map(|i| i.def.name.as_str())
            .collect();
        let redundant: Vec<(String, String)> = redundant_indicators(&present, rules)
            .into_iter()
            .map(|(n, r)| (n.to_owned(), r.how.clone()))
            .collect();
        for (victim, how) in redundant {
            indicators.retain(|i| !(i.target == t && i.def.name == victim));
            notes.push(IntegrationNote {
                category: "derivability".into(),
                detail: format!(
                    "dropped `{victim}` on `{t}`: derivable ({how})"
                ),
            });
        }
    }

    Ok(QualitySchema {
        name: name.to_owned(),
        er: integrated.schema,
        indicators,
        parameters,
        notes,
    })
}

/// Structural re-examination (Step 4 / Premise 1.1): promotes an indicator
/// into an application attribute of the entity it annotates — the paper's
/// example moves `company_name` from a quality indicator on
/// `ticker_symbol` to an entity attribute of `company_stock`.
pub fn promote_indicator_to_attribute(
    qs: &mut QualitySchema,
    target: &Target,
    indicator: &str,
) -> DbResult<()> {
    let pos = qs
        .indicators
        .iter()
        .position(|i| &i.target == target && i.def.name == indicator)
        .ok_or_else(|| {
            DbError::InvalidExpression(format!("no indicator `{indicator}` on `{target}`"))
        })?;
    let entity_name = match target {
        Target::Entity(e) => e.clone(),
        Target::Attribute(owner, _) => owner.clone(),
        Target::Relationship(_) => {
            return Err(DbError::InvalidExpression(
                "cannot promote a relationship-level indicator to an entity attribute".into(),
            ))
        }
    };
    let ann = qs.indicators.remove(pos);
    let entity = qs.er.entity_mut(&entity_name).ok_or_else(|| {
        DbError::UnknownTable(format!("entity `{entity_name}` not in quality schema"))
    })?;
    if entity.attribute(&ann.def.name).is_some() {
        return Err(DbError::DuplicateColumn(format!(
            "{entity_name}.{}",
            ann.def.name
        )));
    }
    entity
        .attributes
        .push(ErAttribute::new(ann.def.name.clone(), ann.def.dtype));
    qs.notes.push(IntegrationNote {
        category: "promotion".into(),
        detail: format!(
            "promoted indicator `{}` on `{target}` to application attribute `{entity_name}.{}` \
             (Premise 1.1: application and quality attributes are not always distinct)",
            ann.def.name, ann.def.name
        ),
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Cardinality, EntityType, RelationshipType};

    fn er() -> ErSchema {
        ErSchema::new("trading")
            .with_entity(
                EntityType::new("company_stock")
                    .with(ErAttribute::key("ticker_symbol", DataType::Text))
                    .with(ErAttribute::new("share_price", DataType::Float))
                    .with(ErAttribute::new("research_report", DataType::Text)),
            )
            .with_entity(
                EntityType::new("client")
                    .with(ErAttribute::key("account_number", DataType::Int))
                    .with(ErAttribute::new("telephone", DataType::Text)),
            )
            .with_relationship(
                RelationshipType::binary(
                    "trade",
                    ("client", Cardinality::Many),
                    ("company_stock", Cardinality::Many),
                )
                .with(ErAttribute::new("quantity", DataType::Int)),
            )
    }

    fn paper_quality_view() -> QualityView {
        let app = step1_application_view(er()).unwrap();
        let pv = Step2::new(app, CandidateCatalog::appendix_a())
            .parameter(
                Target::attr("company_stock", "share_price"),
                "timeliness",
                "the user is concerned with how old the data is",
            )
            .unwrap()
            .parameter(
                Target::attr("company_stock", "research_report"),
                "credibility",
                "trader trusts named analysts",
            )
            .unwrap()
            .parameter(
                Target::attr("company_stock", "research_report"),
                "cost",
                "the user is concerned with the price of the data",
            )
            .unwrap()
            .inspection(
                Target::Relationship("trade".into()),
                "trades must be verifiable",
            )
            .unwrap()
            .parameter(
                Target::attr("client", "telephone"),
                "accuracy",
                "collection mechanism affects accuracy",
            )
            .unwrap()
            .finish();

        Step3::new(pv)
            .operationalize(
                Target::attr("company_stock", "share_price"),
                "timeliness",
                IndicatorDef::new("age", DataType::Int, "days old"),
            )
            .unwrap()
            .operationalize(
                Target::attr("company_stock", "research_report"),
                "credibility",
                IndicatorDef::new("analyst", DataType::Text, "report author"),
            )
            .unwrap()
            .retain_objective(
                Target::attr("company_stock", "research_report"),
                "cost",
                DataType::Float,
            )
            .unwrap()
            .operationalize(
                Target::attr("client", "telephone"),
                "accuracy",
                IndicatorDef::new(
                    "collection_method",
                    DataType::Text,
                    "over the phone / from an information service",
                ),
            )
            .unwrap()
            .operationalize_suggested(Target::Relationship("trade".into()), INSPECTION)
            .unwrap()
            .indicator(
                Target::attr("company_stock", "research_report"),
                IndicatorDef::new("media", DataType::Text, "ASCII / bitmap / postscript"),
            )
            .unwrap()
            .indicator(
                Target::attr("company_stock", "ticker_symbol"),
                IndicatorDef::new("company_name", DataType::Text, "enhances interpretability"),
            )
            .unwrap()
            .finish()
            .unwrap()
    }

    #[test]
    fn step1_validates() {
        assert!(step1_application_view(er()).is_ok());
        let bad = ErSchema::new("bad")
            .with_entity(EntityType::new("e").with(ErAttribute::new("x", DataType::Int)));
        assert!(step1_application_view(bad).is_err());
    }

    #[test]
    fn step2_rejects_unknown_targets_and_parameters() {
        let app = step1_application_view(er()).unwrap();
        let s2 = Step2::new(app.clone(), CandidateCatalog::appendix_a());
        assert!(s2
            .parameter(Target::Entity("ghost".into()), "timeliness", "")
            .is_err());
        let s2 = Step2::new(app.clone(), CandidateCatalog::appendix_a());
        assert!(s2
            .parameter(Target::Entity("client".into()), "sparkle", "")
            .is_err());
        // custom allowed when opted in
        let s2 = Step2::new(app, CandidateCatalog::appendix_a()).allow_custom_parameters();
        assert!(s2
            .parameter(Target::Entity("client".into()), "sparkle", "")
            .is_ok());
    }

    #[test]
    fn step3_requires_matching_parameter() {
        let app = step1_application_view(er()).unwrap();
        let pv = Step2::new(app, CandidateCatalog::appendix_a()).finish();
        let s3 = Step3::new(pv);
        assert!(s3
            .operationalize(
                Target::attr("company_stock", "share_price"),
                "timeliness",
                IndicatorDef::new("age", DataType::Int, ""),
            )
            .is_err());
    }

    #[test]
    fn step3_finish_requires_coverage() {
        let app = step1_application_view(er()).unwrap();
        let pv = Step2::new(app, CandidateCatalog::appendix_a())
            .parameter(
                Target::attr("company_stock", "share_price"),
                "timeliness",
                "",
            )
            .unwrap()
            .finish();
        // no operationalization → finish fails
        assert!(Step3::new(pv.clone()).finish().is_err());
        // operationalized → ok
        let qv = Step3::new(pv)
            .operationalize_suggested(Target::attr("company_stock", "share_price"), "timeliness")
            .unwrap()
            .finish()
            .unwrap();
        assert_eq!(qv.indicators.len(), 2); // age + creation_time suggested
    }

    #[test]
    fn full_paper_pipeline() {
        let qv = paper_quality_view();
        assert_eq!(qv.parameters.len(), 5);
        assert!(qv
            .indicators_on(&Target::attr("company_stock", "research_report"))
            .iter()
            .any(|i| i.def.name == "media"));

        let qs = step4_integrate(
            "trading_quality",
            &[&qv],
            &Correspondences::new(),
            &crate::derive::default_rules(),
        )
        .unwrap();
        assert!(qs.indicator_names().contains(&"age"));
        assert!(qs.indicator_names().contains(&"collection_method"));
        let dict = qs.indicator_dictionary().unwrap();
        assert!(dict.get("analyst").is_some());
    }

    #[test]
    fn step4_derivability_collapse() {
        // View A tags share_price with age; view B with creation_time.
        let app = step1_application_view(er()).unwrap();
        let mk_view = |ind: &str, dtype: DataType| {
            let pv = Step2::new(app.clone(), CandidateCatalog::appendix_a())
                .parameter(
                    Target::attr("company_stock", "share_price"),
                    "timeliness",
                    "",
                )
                .unwrap()
                .finish();
            Step3::new(pv)
                .operationalize(
                    Target::attr("company_stock", "share_price"),
                    "timeliness",
                    IndicatorDef::new(ind, dtype, ""),
                )
                .unwrap()
                .finish()
                .unwrap()
        };
        let va = mk_view("age", DataType::Int);
        let vb = mk_view("creation_time", DataType::Date);
        let qs = step4_integrate(
            "g",
            &[&va, &vb],
            &Correspondences::new(),
            &crate::derive::default_rules(),
        )
        .unwrap();
        // paper: keep creation_time, drop age
        assert_eq!(qs.indicator_names(), vec!["creation_time"]);
        assert!(qs
            .notes
            .iter()
            .any(|n| n.category == "derivability" && n.detail.contains("age")));
    }

    #[test]
    fn step4_conflicting_indicator_domains_fatal() {
        let app = step1_application_view(er()).unwrap();
        let mk_view = |dtype: DataType| {
            let pv = Step2::new(app.clone(), CandidateCatalog::appendix_a())
                .parameter(
                    Target::attr("company_stock", "share_price"),
                    "timeliness",
                    "",
                )
                .unwrap()
                .finish();
            Step3::new(pv)
                .operationalize(
                    Target::attr("company_stock", "share_price"),
                    "timeliness",
                    IndicatorDef::new("age", dtype, ""),
                )
                .unwrap()
                .finish()
                .unwrap()
        };
        let va = mk_view(DataType::Int);
        let vb = mk_view(DataType::Text);
        assert!(step4_integrate(
            "g",
            &[&va, &vb],
            &Correspondences::new(),
            &crate::derive::default_rules()
        )
        .is_err());
    }

    #[test]
    fn step4_single_view_identity_with_dedup_note() {
        let qv = paper_quality_view();
        let qs = step4_integrate("g", &[&qv, &qv], &Correspondences::new(), &[]).unwrap();
        // integrating a view with itself adds nothing
        let qs_single = step4_integrate("g", &[&qv], &Correspondences::new(), &[]).unwrap();
        assert_eq!(qs.indicators, qs_single.indicators);
        assert!(qs.notes.iter().any(|n| n.category == "union"));
    }

    #[test]
    fn promotion_moves_indicator_into_er() {
        let qv = paper_quality_view();
        let mut qs = step4_integrate("g", &[&qv], &Correspondences::new(), &[]).unwrap();
        let target = Target::attr("company_stock", "ticker_symbol");
        promote_indicator_to_attribute(&mut qs, &target, "company_name").unwrap();
        // the ER schema gained the attribute...
        assert!(qs
            .er
            .entity("company_stock")
            .unwrap()
            .attribute("company_name")
            .is_some());
        // ...and the indicator is gone
        assert!(!qs.indicator_names().contains(&"company_name"));
        assert!(qs.notes.iter().any(|n| n.category == "promotion"));
        // promoting twice fails
        assert!(promote_indicator_to_attribute(&mut qs, &target, "company_name").is_err());
    }

    #[test]
    fn step4_empty_views_rejected() {
        assert!(step4_integrate("g", &[], &Correspondences::new(), &[]).is_err());
    }

    #[test]
    fn suggestions_cover_paper_parameters() {
        for p in ["timeliness", "credibility", "accuracy", "cost", INSPECTION] {
            assert!(!suggest_indicators(p).is_empty(), "no suggestion for {p}");
        }
        assert!(suggest_indicators("sparkle").is_empty());
    }
}
