//! The methodology's intermediate artifacts: application view, parameter
//! view, quality view, and the integrated quality schema (Figure 2).

use crate::taxonomy::AttributeKind;
use er_model::ErSchema;
use relstore::{DbError, DbResult};
use serde::{Deserialize, Serialize};
use std::fmt;
use tagstore::{IndicatorDef, IndicatorDictionary};

/// The special parameter spelled "✓ inspection" in Figures 4–5, signifying
/// inspection (data verification) requirements.
pub const INSPECTION: &str = "inspection";

/// An element of the application view a quality annotation can attach to.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum Target {
    /// A whole entity.
    Entity(String),
    /// One attribute of an entity or relationship: `(owner, attribute)`.
    Attribute(String, String),
    /// A whole relationship.
    Relationship(String),
}

impl Target {
    /// `owner.attribute` shorthand.
    pub fn attr(owner: impl Into<String>, attribute: impl Into<String>) -> Self {
        Target::Attribute(owner.into(), attribute.into())
    }

    /// Checks that the target exists in the given ER schema.
    pub fn validate_in(&self, er: &ErSchema) -> DbResult<()> {
        let ok = match self {
            Target::Entity(e) => er.entity(e).is_some(),
            Target::Relationship(r) => er.relationship(r).is_some(),
            Target::Attribute(owner, attr) => {
                er.entity(owner)
                    .map(|e| e.attribute(attr).is_some())
                    .unwrap_or(false)
                    || er
                        .relationship(owner)
                        .map(|r| r.attributes.iter().any(|a| &a.name == attr))
                        .unwrap_or(false)
            }
        };
        if ok {
            Ok(())
        } else {
            Err(DbError::InvalidExpression(format!(
                "annotation target `{self}` not found in application view"
            )))
        }
    }

    /// The render-layer target string (`owner.attr`, or bare name).
    pub fn render_key(&self) -> String {
        match self {
            Target::Entity(e) => e.clone(),
            Target::Relationship(r) => r.clone(),
            Target::Attribute(o, a) => format!("{o}.{a}"),
        }
    }
}

impl fmt::Display for Target {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Target::Entity(e) => write!(f, "entity {e}"),
            Target::Relationship(r) => write!(f, "relationship {r}"),
            Target::Attribute(o, a) => write!(f, "{o}.{a}"),
        }
    }
}

/// Step-1 output: the validated application view.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ApplicationView {
    /// The underlying ER schema.
    pub er: ErSchema,
}

/// One subjective quality requirement attached to an application element
/// (a "cloud" in Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterAnnotation {
    /// Where the concern attaches.
    pub target: Target,
    /// The quality parameter (usually from the Appendix-A catalog).
    pub parameter: String,
    /// Why the design team recorded it — part of the requirements
    /// specification documentation.
    pub rationale: String,
}

/// Step-2 output: application view + subjective quality parameters.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ParameterView {
    /// The underlying application view.
    pub app: ApplicationView,
    /// Parameter annotations ("clouds").
    pub annotations: Vec<ParameterAnnotation>,
}

impl ParameterView {
    /// Annotations attached to a given target.
    pub fn parameters_on(&self, target: &Target) -> Vec<&ParameterAnnotation> {
        self.annotations
            .iter()
            .filter(|a| &a.target == target)
            .collect()
    }

    /// True iff an inspection requirement is recorded anywhere.
    pub fn has_inspection(&self) -> bool {
        self.annotations.iter().any(|a| a.parameter == INSPECTION)
    }
}

/// One objective indicator attached to an application element
/// (a dotted rectangle in Figure 5).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct IndicatorAnnotation {
    /// Where the indicator attaches.
    pub target: Target,
    /// The indicator's declaration (name, domain, meaning).
    pub def: IndicatorDef,
    /// Which subjective parameter this indicator operationalizes, if the
    /// annotation arose from Step 3 (an indicator that "remained" from an
    /// already-objective parameter operationalizes itself).
    pub operationalizes: Option<String>,
}

/// Step-3 output: application view + objective quality indicators.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityView {
    /// The underlying application view.
    pub app: ApplicationView,
    /// The parameter view this quality view operationalized (retained
    /// because "the resulting quality view, together with the parameter
    /// view, should be included as part of the quality requirements
    /// specification documentation").
    pub parameters: Vec<ParameterAnnotation>,
    /// Indicator annotations.
    pub indicators: Vec<IndicatorAnnotation>,
}

impl QualityView {
    /// Indicators attached to a target.
    pub fn indicators_on(&self, target: &Target) -> Vec<&IndicatorAnnotation> {
        self.indicators
            .iter()
            .filter(|a| &a.target == target)
            .collect()
    }
}

/// A note recorded during Step-4 integration (derivability collapse,
/// structural re-examination, conflict resolution).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct IntegrationNote {
    /// Short machine-readable category: `derivability`, `promotion`,
    /// `conflict`, `union`.
    pub category: String,
    /// Human-readable explanation.
    pub detail: String,
}

/// Step-4 output: the integrated quality schema — "documents both
/// application data requirements and data quality issues considered
/// important by the design team".
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualitySchema {
    /// Schema name.
    pub name: String,
    /// Integrated application schema.
    pub er: ErSchema,
    /// Integrated indicator annotations.
    pub indicators: Vec<IndicatorAnnotation>,
    /// All parameter annotations from the component views (documentation).
    pub parameters: Vec<ParameterAnnotation>,
    /// What happened during integration.
    pub notes: Vec<IntegrationNote>,
}

impl QualitySchema {
    /// The indicator dictionary to configure `tagstore` with — this is how
    /// the quality schema "guides the design team as to which tags to
    /// incorporate into the database".
    pub fn indicator_dictionary(&self) -> DbResult<IndicatorDictionary> {
        let mut d = IndicatorDictionary::new();
        for ann in &self.indicators {
            d.declare(ann.def.clone())?;
        }
        Ok(d)
    }

    /// Indicators expected on a given target.
    pub fn indicators_on(&self, target: &Target) -> Vec<&IndicatorAnnotation> {
        self.indicators
            .iter()
            .filter(|a| &a.target == target)
            .collect()
    }

    /// All distinct indicator names in the schema.
    pub fn indicator_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = self
            .indicators
            .iter()
            .map(|a| a.def.name.as_str())
            .collect();
        names.sort_unstable();
        names.dedup();
        names
    }

    /// Kind statistics: `(parameters documented, indicators integrated)`.
    pub fn census(&self) -> (usize, usize) {
        (self.parameters.len(), self.indicators.len())
    }
}

/// Which of Figure 1's kinds an annotation embodies (used by renderers).
pub fn annotation_kind_of(parameter_or_indicator: AttributeKind) -> er_model::AnnotationKind {
    match parameter_or_indicator {
        AttributeKind::Parameter => er_model::AnnotationKind::Parameter,
        AttributeKind::Indicator => er_model::AnnotationKind::Indicator,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use er_model::{Cardinality, EntityType, ErAttribute, RelationshipType};
    use relstore::DataType;

    fn er() -> ErSchema {
        ErSchema::new("trading")
            .with_entity(
                EntityType::new("company_stock")
                    .with(ErAttribute::key("ticker_symbol", DataType::Text))
                    .with(ErAttribute::new("share_price", DataType::Float)),
            )
            .with_entity(
                EntityType::new("client").with(ErAttribute::key("account_number", DataType::Int)),
            )
            .with_relationship(
                RelationshipType::binary(
                    "trade",
                    ("client", Cardinality::Many),
                    ("company_stock", Cardinality::Many),
                )
                .with(ErAttribute::new("quantity", DataType::Int)),
            )
    }

    #[test]
    fn target_validation() {
        let s = er();
        Target::Entity("client".into()).validate_in(&s).unwrap();
        Target::Relationship("trade".into()).validate_in(&s).unwrap();
        Target::attr("company_stock", "share_price")
            .validate_in(&s)
            .unwrap();
        Target::attr("trade", "quantity").validate_in(&s).unwrap();
        assert!(Target::Entity("ghost".into()).validate_in(&s).is_err());
        assert!(Target::attr("client", "ghost").validate_in(&s).is_err());
        assert!(Target::attr("ghost", "x").validate_in(&s).is_err());
    }

    #[test]
    fn target_display_and_render_key() {
        let t = Target::attr("company_stock", "share_price");
        assert_eq!(t.to_string(), "company_stock.share_price");
        assert_eq!(t.render_key(), "company_stock.share_price");
        assert_eq!(Target::Entity("client".into()).render_key(), "client");
    }

    #[test]
    fn parameter_view_queries() {
        let pv = ParameterView {
            app: ApplicationView { er: er() },
            annotations: vec![
                ParameterAnnotation {
                    target: Target::attr("company_stock", "share_price"),
                    parameter: "timeliness".into(),
                    rationale: "trader needs fresh quotes".into(),
                },
                ParameterAnnotation {
                    target: Target::Relationship("trade".into()),
                    parameter: INSPECTION.into(),
                    rationale: "trades must be verifiable".into(),
                },
            ],
        };
        assert_eq!(
            pv.parameters_on(&Target::attr("company_stock", "share_price"))
                .len(),
            1
        );
        assert!(pv.has_inspection());
    }

    #[test]
    fn quality_schema_dictionary() {
        let qs = QualitySchema {
            name: "g".into(),
            er: er(),
            indicators: vec![
                IndicatorAnnotation {
                    target: Target::attr("company_stock", "share_price"),
                    def: IndicatorDef::new("age", DataType::Int, "days old"),
                    operationalizes: Some("timeliness".into()),
                },
                IndicatorAnnotation {
                    target: Target::attr("company_stock", "share_price"),
                    def: IndicatorDef::new("source", DataType::Text, "feed"),
                    operationalizes: Some("credibility".into()),
                },
            ],
            parameters: vec![],
            notes: vec![],
        };
        let d = qs.indicator_dictionary().unwrap();
        assert!(d.get("age").is_some());
        assert!(d.get("source").is_some());
        assert_eq!(qs.indicator_names(), vec!["age", "source"]);
        assert_eq!(qs.census(), (0, 2));
    }

    #[test]
    fn conflicting_indicator_defs_rejected() {
        let qs = QualitySchema {
            name: "g".into(),
            er: er(),
            indicators: vec![
                IndicatorAnnotation {
                    target: Target::attr("company_stock", "share_price"),
                    def: IndicatorDef::new("age", DataType::Int, "days"),
                    operationalizes: None,
                },
                IndicatorAnnotation {
                    target: Target::Entity("client".into()),
                    def: IndicatorDef::new("age", DataType::Text, "different"),
                    operationalizes: None,
                },
            ],
            parameters: vec![],
            notes: vec![],
        };
        assert!(qs.indicator_dictionary().is_err());
    }
}
