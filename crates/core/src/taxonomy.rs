//! The paper's quality-attribute taxonomy (§1.3, Figure 1).
//!
//! Figure 1: *data quality attribute* is the collective term; a quality
//! **parameter** is its subjective specialization (how a user evaluates
//! quality — timeliness, credibility) and a quality **indicator** its
//! objective specialization (measured facts about the manufacturing
//! process — source, creation time, collection method).

use serde::{Deserialize, Serialize};
use std::fmt;

/// The two specializations of Figure 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AttributeKind {
    /// Subjective dimension by which a user evaluates data quality.
    Parameter,
    /// Objective, measurable information about the data's manufacture.
    Indicator,
}

impl fmt::Display for AttributeKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AttributeKind::Parameter => f.write_str("parameter (subjective)"),
            AttributeKind::Indicator => f.write_str("indicator (objective)"),
        }
    }
}

/// Where a candidate attribute's concern actually lies. §4 observes that
/// some Appendix-A items "apply more to the information system ... the
/// information service ... or the information user ... than to the data
/// itself"; the boundary chosen determines which are in scope.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConcernScope {
    /// A property of the data values themselves (accuracy, age, ...).
    Data,
    /// A property of the information system (resolution of graphics,
    /// retrieval time, ...).
    System,
    /// A property of the information service (clear data responsibility,
    /// cost, ...).
    Service,
    /// A property of the information user (past experience, ...).
    User,
}

impl fmt::Display for ConcernScope {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ConcernScope::Data => "data",
            ConcernScope::System => "system",
            ConcernScope::Service => "service",
            ConcernScope::User => "user",
        };
        f.write_str(s)
    }
}

/// One quality attribute: the collective node of Figure 1.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct QualityAttribute {
    /// Attribute name, e.g. `timeliness`.
    pub name: String,
    /// Parameter vs indicator.
    pub kind: AttributeKind,
    /// Which boundary of "data quality" it belongs to.
    pub scope: ConcernScope,
    /// Prose meaning.
    pub description: String,
    /// Non-orthogonality links (Premise 1.2): names of related attributes
    /// — e.g. `timeliness` ↔ `volatility`.
    pub related: Vec<String>,
}

impl QualityAttribute {
    /// A subjective parameter.
    pub fn parameter(
        name: impl Into<String>,
        scope: ConcernScope,
        description: impl Into<String>,
    ) -> Self {
        QualityAttribute {
            name: name.into(),
            kind: AttributeKind::Parameter,
            scope,
            description: description.into(),
            related: Vec::new(),
        }
    }

    /// An objective indicator.
    pub fn indicator(
        name: impl Into<String>,
        scope: ConcernScope,
        description: impl Into<String>,
    ) -> Self {
        QualityAttribute {
            name: name.into(),
            kind: AttributeKind::Indicator,
            scope,
            description: description.into(),
            related: Vec::new(),
        }
    }

    /// Links a related attribute (builder style), recording Premise 1.2
    /// non-orthogonality.
    pub fn related_to(mut self, other: impl Into<String>) -> Self {
        self.related.push(other.into());
        self
    }

    /// True iff this attribute is subjective (a parameter).
    pub fn is_parameter(&self) -> bool {
        self.kind == AttributeKind::Parameter
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure1_partition() {
        let t = QualityAttribute::parameter("timeliness", ConcernScope::Data, "how current");
        let a = QualityAttribute::indicator("age", ConcernScope::Data, "days since creation");
        assert!(t.is_parameter());
        assert!(!a.is_parameter());
        assert_eq!(t.kind.to_string(), "parameter (subjective)");
        assert_eq!(a.kind.to_string(), "indicator (objective)");
    }

    #[test]
    fn non_orthogonality_links() {
        // Premise 1.2's own example: timeliness and volatility are related.
        let t = QualityAttribute::parameter("timeliness", ConcernScope::Data, "")
            .related_to("volatility");
        assert_eq!(t.related, vec!["volatility"]);
    }

    #[test]
    fn scopes_display() {
        assert_eq!(ConcernScope::System.to_string(), "system");
        assert_eq!(ConcernScope::Data.to_string(), "data");
    }
}
