//! The paper's premises (§2), encoded as checkable analyses over the
//! methodology's artifacts.
//!
//! Premises are not axioms the engine enforces — they are observations
//! about data quality the methodology must *accommodate*. This module
//! provides analyses that surface each premise in a concrete schema, used
//! by the spec emitter and by the paper-exhibit regenerator.

use crate::catalog::CandidateCatalog;
use crate::views::{QualitySchema, Target};
use serde::{Deserialize, Serialize};

/// Identifier of a premise in the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Premise {
    /// 1.1 — application and quality attributes may coincide.
    RelatednessOfApplicationAndQuality,
    /// 1.2 — quality attributes need not be orthogonal.
    NonOrthogonality,
    /// 1.3 — quality differs across databases/entities/attributes/instances.
    HeterogeneityAndHierarchy,
    /// 1.4 — quality indicators may themselves be quality-tagged.
    RecursiveIndicators,
    /// 2.1 — quality attributes vary across users.
    UserSpecificAttributes,
    /// 2.2 — quality standards vary across users.
    UserSpecificStandards,
    /// 3 — one user may hold non-uniform attributes and standards.
    NonUniformWithinUser,
}

/// One finding produced by a premise analysis.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PremiseFinding {
    /// Which premise the finding illustrates.
    pub premise: Premise,
    /// What was observed.
    pub detail: String,
}

/// Premise 1.1: indicator names that collide with application attribute
/// names in the same schema — candidates for promotion (or evidence the
/// boundary was drawn deliberately).
pub fn check_relatedness(qs: &QualitySchema) -> Vec<PremiseFinding> {
    let mut out = Vec::new();
    for ann in &qs.indicators {
        let clash = qs
            .er
            .entities
            .iter()
            .any(|e| e.attribute(&ann.def.name).is_some());
        if clash {
            out.push(PremiseFinding {
                premise: Premise::RelatednessOfApplicationAndQuality,
                detail: format!(
                    "indicator `{}` (on `{}`) shares its name with an application attribute — \
                     consider promote_indicator_to_attribute or renaming",
                    ann.def.name, ann.target
                ),
            });
        }
    }
    out
}

/// Premise 1.2: related (non-orthogonal) attribute pairs that are *both*
/// in use in the schema — the design team should check for redundancy.
pub fn check_non_orthogonality(
    qs: &QualitySchema,
    catalog: &CandidateCatalog,
) -> Vec<PremiseFinding> {
    let used: Vec<&str> = qs
        .parameters
        .iter()
        .map(|p| p.parameter.as_str())
        .collect();
    let mut out = Vec::new();
    for (a, b) in catalog.non_orthogonal_pairs() {
        if used.contains(&a) && used.contains(&b) {
            out.push(PremiseFinding {
                premise: Premise::NonOrthogonality,
                detail: format!("parameters `{a}` and `{b}` are related and both in use"),
            });
        }
    }
    out
}

/// Premise 1.3 / 3: the distribution of indicators across targets — a
/// non-uniform distribution evidences per-attribute quality requirements.
pub fn indicator_distribution(qs: &QualitySchema) -> Vec<(Target, usize)> {
    let mut targets: Vec<Target> = qs.indicators.iter().map(|i| i.target.clone()).collect();
    targets.sort();
    targets.dedup();
    targets
        .into_iter()
        .map(|t| {
            let n = qs.indicators.iter().filter(|i| i.target == t).count();
            (t, n)
        })
        .collect()
}

/// Runs all schema-level premise analyses.
pub fn analyze(qs: &QualitySchema, catalog: &CandidateCatalog) -> Vec<PremiseFinding> {
    let mut out = check_relatedness(qs);
    out.extend(check_non_orthogonality(qs, catalog));
    let dist = indicator_distribution(qs);
    if dist.len() > 1 {
        let counts: Vec<usize> = dist.iter().map(|(_, n)| *n).collect();
        if counts.iter().min() != counts.iter().max() {
            out.push(PremiseFinding {
                premise: Premise::HeterogeneityAndHierarchy,
                detail: format!(
                    "indicator coverage is non-uniform across {} targets (min {}, max {}) — \
                     quality requirements differ across attributes as Premise 1.3/3 anticipate",
                    dist.len(),
                    counts.iter().min().unwrap(),
                    counts.iter().max().unwrap()
                ),
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::methodology::{step1_application_view, step4_integrate, Step2, Step3};
    use crate::views::Target;
    use er_model::{Correspondences, EntityType, ErAttribute, ErSchema};
    use relstore::DataType;
    use tagstore::IndicatorDef;

    fn schema_with(indicators: &[(&str, &str)]) -> QualitySchema {
        // builds a quality schema annotating share_price with the given
        // (indicator, parameter) pairs
        let er = ErSchema::new("t").with_entity(
            EntityType::new("company_stock")
                .with(ErAttribute::key("ticker_symbol", DataType::Text))
                .with(ErAttribute::new("share_price", DataType::Float))
                .with(ErAttribute::new("company_name", DataType::Text)),
        );
        let app = step1_application_view(er).unwrap();
        let mut s2 = Step2::new(app, CandidateCatalog::appendix_a()).allow_custom_parameters();
        for (_, p) in indicators {
            s2 = s2
                .parameter(Target::attr("company_stock", "share_price"), p, "")
                .unwrap();
        }
        let pv = s2.finish();
        let mut s3 = Step3::new(pv);
        for (i, p) in indicators {
            s3 = s3
                .operationalize(
                    Target::attr("company_stock", "share_price"),
                    p,
                    IndicatorDef::new(*i, DataType::Any, ""),
                )
                .unwrap();
        }
        let qv = s3.finish().unwrap();
        step4_integrate("g", &[&qv], &Correspondences::new(), &[]).unwrap()
    }

    #[test]
    fn relatedness_detects_name_clash() {
        // indicator `company_name` collides with the application attribute
        let qs = schema_with(&[("company_name", "interpretability")]);
        let findings = check_relatedness(&qs);
        assert_eq!(findings.len(), 1);
        assert_eq!(
            findings[0].premise,
            Premise::RelatednessOfApplicationAndQuality
        );
    }

    #[test]
    fn non_orthogonality_flags_related_pairs() {
        let qs = schema_with(&[("age", "timeliness"), ("volatility_est", "volatility")]);
        let findings = check_non_orthogonality(&qs, &CandidateCatalog::appendix_a());
        assert!(findings
            .iter()
            .any(|f| f.detail.contains("timeliness") && f.detail.contains("volatility")));
    }

    #[test]
    fn distribution_reports_heterogeneity() {
        let er = ErSchema::new("t").with_entity(
            EntityType::new("e")
                .with(ErAttribute::key("id", DataType::Int))
                .with(ErAttribute::new("a", DataType::Text))
                .with(ErAttribute::new("b", DataType::Text)),
        );
        let app = step1_application_view(er).unwrap();
        let pv = Step2::new(app, CandidateCatalog::appendix_a())
            .parameter(Target::attr("e", "a"), "timeliness", "")
            .unwrap()
            .parameter(Target::attr("e", "b"), "timeliness", "")
            .unwrap()
            .finish();
        let qv = Step3::new(pv)
            .operationalize_suggested(Target::attr("e", "a"), "timeliness")
            .unwrap()
            .operationalize(
                Target::attr("e", "b"),
                "timeliness",
                IndicatorDef::new("age", DataType::Int, ""),
            )
            .unwrap()
            .finish()
            .unwrap();
        let qs = step4_integrate("g", &[&qv], &Correspondences::new(), &[]).unwrap();
        let dist = indicator_distribution(&qs);
        assert_eq!(dist.len(), 2);
        let findings = analyze(&qs, &CandidateCatalog::appendix_a());
        assert!(findings
            .iter()
            .any(|f| f.premise == Premise::HeterogeneityAndHierarchy));
    }

    #[test]
    fn clean_schema_yields_no_relatedness_findings() {
        let qs = schema_with(&[("age", "timeliness")]);
        assert!(check_relatedness(&qs).is_empty());
    }
}
