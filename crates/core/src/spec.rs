//! Quality requirements specification documentation.
//!
//! The methodology requires each step's artifact to be "included as part
//! of the quality requirements specification documentation"; this module
//! renders those artifacts as Markdown (for humans) and JSON (for tools),
//! and produces the ER diagrams of Figures 3–5 via `er_model::render`.

use crate::views::{ParameterView, QualitySchema, QualityView};
use er_model::{Annotation, AnnotationKind};
use relstore::{DbError, DbResult};
use std::fmt::Write as _;

/// Figure-4-style annotations (parameter clouds) for rendering.
pub fn parameter_annotations(pv: &ParameterView) -> Vec<Annotation> {
    pv.annotations
        .iter()
        .map(|a| Annotation {
            target: a.target.render_key(),
            label: if a.parameter == crate::views::INSPECTION {
                "✓ inspection".to_owned()
            } else {
                a.parameter.clone()
            },
            kind: AnnotationKind::Parameter,
        })
        .collect()
}

/// Figure-5-style annotations (indicator rectangles) for rendering.
pub fn indicator_annotations(qv: &QualityView) -> Vec<Annotation> {
    qv.indicators
        .iter()
        .map(|a| Annotation {
            target: a.target.render_key(),
            label: a.def.name.clone(),
            kind: AnnotationKind::Indicator,
        })
        .collect()
}

/// Markdown for the Step-2 parameter view.
pub fn parameter_view_markdown(pv: &ParameterView) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Parameter view ({})\n", pv.app.er.name);
    let _ = writeln!(out, "| target | quality parameter | rationale |");
    let _ = writeln!(out, "|---|---|---|");
    for a in &pv.annotations {
        let _ = writeln!(out, "| {} | {} | {} |", a.target, a.parameter, a.rationale);
    }
    out.push('\n');
    out.push_str("```\n");
    out.push_str(&er_model::to_ascii(&pv.app.er, &parameter_annotations(pv)));
    out.push_str("```\n");
    out
}

/// Markdown for the Step-3 quality view.
pub fn quality_view_markdown(qv: &QualityView) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "## Quality view ({})\n", qv.app.er.name);
    let _ = writeln!(out, "| target | indicator | domain | operationalizes |");
    let _ = writeln!(out, "|---|---|---|---|");
    for a in &qv.indicators {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            a.target,
            a.def.name,
            a.def.dtype,
            a.operationalizes.as_deref().unwrap_or("—")
        );
    }
    out.push('\n');
    out.push_str("```\n");
    out.push_str(&er_model::to_ascii(&qv.app.er, &indicator_annotations(qv)));
    out.push_str("```\n");
    out
}

/// Markdown for the Step-4 quality schema (the final artifact).
pub fn quality_schema_markdown(qs: &QualitySchema) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "# Quality schema `{}`\n", qs.name);
    let (np, ni) = qs.census();
    let _ = writeln!(
        out,
        "{ni} quality indicators integrated from {np} documented parameter requirements.\n"
    );
    let _ = writeln!(out, "## Tags to incorporate into the database\n");
    let _ = writeln!(out, "| target | indicator | domain | operationalizes |");
    let _ = writeln!(out, "|---|---|---|---|");
    for a in &qs.indicators {
        let _ = writeln!(
            out,
            "| {} | {} | {} | {} |",
            a.target,
            a.def.name,
            a.def.dtype,
            a.operationalizes.as_deref().unwrap_or("—")
        );
    }
    if !qs.notes.is_empty() {
        let _ = writeln!(out, "\n## Integration notes\n");
        for n in &qs.notes {
            let _ = writeln!(out, "* **{}** — {}", n.category, n.detail);
        }
    }
    if !qs.parameters.is_empty() {
        let _ = writeln!(out, "\n## Documented subjective requirements\n");
        let _ = writeln!(out, "| target | parameter | rationale |");
        let _ = writeln!(out, "|---|---|---|");
        for p in &qs.parameters {
            let _ = writeln!(out, "| {} | {} | {} |", p.target, p.parameter, p.rationale);
        }
    }
    out
}

/// JSON export of the full quality schema (machine-readable spec).
pub fn quality_schema_json(qs: &QualitySchema) -> DbResult<String> {
    serde_json::to_string_pretty(qs).map_err(|e| DbError::ParseError(e.to_string()))
}

/// Parses a quality schema back from its JSON export.
pub fn quality_schema_from_json(json: &str) -> DbResult<QualitySchema> {
    serde_json::from_str(json).map_err(|e| DbError::ParseError(e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::catalog::CandidateCatalog;
    use crate::methodology::{step1_application_view, step4_integrate, Step2, Step3};
    use crate::views::Target;
    use er_model::{Correspondences, EntityType, ErAttribute, ErSchema};
    use relstore::DataType;
    use tagstore::IndicatorDef;

    fn pipeline() -> (ParameterView, QualityView, QualitySchema) {
        let er = ErSchema::new("trading").with_entity(
            EntityType::new("company_stock")
                .with(ErAttribute::key("ticker_symbol", DataType::Text))
                .with(ErAttribute::new("share_price", DataType::Float)),
        );
        let app = step1_application_view(er).unwrap();
        let pv = Step2::new(app, CandidateCatalog::appendix_a())
            .parameter(
                Target::attr("company_stock", "share_price"),
                "timeliness",
                "trader needs fresh quotes",
            )
            .unwrap()
            .finish();
        let qv = Step3::new(pv.clone())
            .operationalize(
                Target::attr("company_stock", "share_price"),
                "timeliness",
                IndicatorDef::new("age", DataType::Int, "days old"),
            )
            .unwrap()
            .finish()
            .unwrap();
        let qs = step4_integrate("g", &[&qv], &Correspondences::new(), &[]).unwrap();
        (pv, qv, qs)
    }

    #[test]
    fn parameter_view_markdown_lists_clouds() {
        let (pv, _, _) = pipeline();
        let md = parameter_view_markdown(&pv);
        assert!(md.contains("timeliness"));
        assert!(md.contains("trader needs fresh quotes"));
        assert!(md.contains("ENTITY company_stock"));
        assert!(md.contains("☁ timeliness"));
    }

    #[test]
    fn quality_view_markdown_lists_indicators() {
        let (_, qv, _) = pipeline();
        let md = quality_view_markdown(&qv);
        assert!(md.contains("| company_stock.share_price | age | Int | timeliness |"));
        assert!(md.contains("▫ age"));
    }

    #[test]
    fn schema_markdown_complete() {
        let (_, _, qs) = pipeline();
        let md = quality_schema_markdown(&qs);
        assert!(md.contains("# Quality schema `g`"));
        assert!(md.contains("Tags to incorporate"));
        assert!(md.contains("age"));
        assert!(md.contains("Documented subjective requirements"));
    }

    #[test]
    fn json_roundtrip() {
        let (_, _, qs) = pipeline();
        let json = quality_schema_json(&qs).unwrap();
        let back = quality_schema_from_json(&json).unwrap();
        assert_eq!(back, qs);
        assert!(quality_schema_from_json("{not json").is_err());
    }

    #[test]
    fn inspection_rendered_with_check_mark() {
        let er = ErSchema::new("t").with_entity(
            EntityType::new("e").with(ErAttribute::key("id", DataType::Int)),
        );
        let app = step1_application_view(er).unwrap();
        let pv = Step2::new(app, CandidateCatalog::appendix_a())
            .inspection(Target::Entity("e".into()), "verify")
            .unwrap()
            .finish();
        let anns = parameter_annotations(&pv);
        assert_eq!(anns[0].label, "✓ inspection");
    }
}
