//! User quality profiles: per-user, per-application acceptability
//! standards over quality indicators.
//!
//! Premise 2.1/2.2: different users have different quality attributes and
//! standards; §4: "Data quality profiles may be stored for different
//! applications" — a mass-mailing application queries with no quality
//! constraints, a fund-raising application constrains accuracy and
//! timeliness. A [`UserProfile`] is a named bundle of
//! [`QualityStandard`]s that compiles to a predicate over
//! `column@indicator` pseudo-columns and filters tagged relations.

use relstore::{DbResult, Expr, Value};
use serde::{Deserialize, Serialize};
use tagstore::{algebra, TaggedRelation};

/// Comparison operator of a standard.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum StandardOp {
    /// Indicator value must equal the threshold.
    Eq,
    /// Must differ from the threshold.
    Ne,
    /// Must be strictly less.
    Lt,
    /// Must be at most.
    Le,
    /// Must be strictly greater.
    Gt,
    /// Must be at least.
    Ge,
    /// Must be one of the listed values.
    OneOf(Vec<Value>),
}

/// One acceptability constraint: `column@indicator ⟨op⟩ threshold`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QualityStandard {
    /// Application column the standard governs.
    pub column: String,
    /// Quality indicator constrained.
    pub indicator: String,
    /// Comparison.
    pub op: StandardOp,
    /// Threshold (ignored for `OneOf`).
    pub threshold: Value,
    /// Optional *instance scope* (Premise 3): the standard applies only to
    /// rows satisfying this application-value predicate — "an analyst may
    /// need higher quality information for certain companies than for
    /// others".
    pub scope: Option<Expr>,
}

impl QualityStandard {
    /// Unscoped standard.
    pub fn new(
        column: impl Into<String>,
        indicator: impl Into<String>,
        op: StandardOp,
        threshold: impl Into<Value>,
    ) -> Self {
        QualityStandard {
            column: column.into(),
            indicator: indicator.into(),
            op,
            threshold: threshold.into(),
            scope: None,
        }
    }

    /// Restricts the standard to rows matching `scope` (builder style).
    pub fn scoped(mut self, scope: Expr) -> Self {
        self.scope = Some(scope);
        self
    }

    /// Compiles to an expression over the tagged relation's pseudo-schema.
    /// A scoped standard becomes `NOT scope OR constraint` — rows outside
    /// the scope pass unconditionally.
    pub fn to_expr(&self) -> Expr {
        let pseudo = Expr::col(format!("{}@{}", self.column, self.indicator));
        let constraint = match &self.op {
            StandardOp::Eq => pseudo.eq(Expr::lit(self.threshold.clone())),
            StandardOp::Ne => pseudo.ne(Expr::lit(self.threshold.clone())),
            StandardOp::Lt => pseudo.lt(Expr::lit(self.threshold.clone())),
            StandardOp::Le => pseudo.le(Expr::lit(self.threshold.clone())),
            StandardOp::Gt => pseudo.gt(Expr::lit(self.threshold.clone())),
            StandardOp::Ge => pseudo.ge(Expr::lit(self.threshold.clone())),
            StandardOp::OneOf(vals) => Expr::InList(
                Box::new(pseudo),
                vals.iter().cloned().map(Expr::lit).collect(),
            ),
        };
        match &self.scope {
            None => constraint,
            Some(s) => s.clone().not().or(constraint),
        }
    }
}

/// A named user/application profile.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UserProfile {
    /// Who (or which application) this profile belongs to.
    pub user: String,
    /// Prose description of the usage context.
    pub description: String,
    /// Acceptability standards; all must hold (conjunction).
    pub standards: Vec<QualityStandard>,
}

impl UserProfile {
    /// New empty profile — "a query with no constraints over quality
    /// indicators" (the mass-mailing grade).
    pub fn new(user: impl Into<String>, description: impl Into<String>) -> Self {
        UserProfile {
            user: user.into(),
            description: description.into(),
            standards: Vec::new(),
        }
    }

    /// Adds a standard (builder style).
    pub fn with_standard(mut self, s: QualityStandard) -> Self {
        self.standards.push(s);
        self
    }

    /// The conjunction predicate, or `None` for the unconstrained profile.
    pub fn to_predicate(&self) -> Option<Expr> {
        let mut it = self.standards.iter().map(QualityStandard::to_expr);
        let first = it.next()?;
        Some(it.fold(first, |acc, e| acc.and(e)))
    }

    /// Filters a tagged relation to the rows meeting this profile's
    /// standards. The unconstrained profile passes everything.
    pub fn filter(&self, rel: &TaggedRelation) -> DbResult<TaggedRelation> {
        match self.to_predicate() {
            None => Ok(rel.clone()),
            Some(p) => algebra::select(rel, &p),
        }
    }

    /// The profile's default `WITH QUALITY` predicate *for one table*:
    /// the conjunction of standards whose column exists in `schema`.
    /// Standards over columns the table does not have are skipped —
    /// a profile spans every table its user touches, and a session
    /// applying it to `stocks` must not fail because the profile also
    /// constrains `addresses.address`. Returns `None` when no standard
    /// applies (the mass-mailing grade for this table).
    pub fn default_quality_for(&self, schema: &relstore::Schema) -> Option<Expr> {
        let mut it = self
            .standards
            .iter()
            .filter(|s| schema.index_of(&s.column).is_some())
            .map(QualityStandard::to_expr);
        let first = it.next()?;
        Some(it.fold(first, |acc, e| acc.and(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::{DataType, Date, Schema};
    use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell};

    fn addresses() -> TaggedRelation {
        let schema = Schema::of(&[("person", DataType::Text), ("address", DataType::Text)]);
        let dict = IndicatorDictionary::with_paper_defaults();
        let d = |s: &str| Value::Date(Date::parse(s).unwrap());
        let mk = |p: &str, a: &str, ct: &str, src: &str| {
            vec![
                QualityCell::bare(p),
                QualityCell::bare(a)
                    .with_tag(IndicatorValue::new("creation_time", d(ct)))
                    .with_tag(IndicatorValue::new("source", src)),
            ]
        };
        TaggedRelation::new(
            schema,
            dict,
            vec![
                mk("Ann", "1 Elm St", "10-20-91", "change-of-address form"),
                mk("Bob", "9 Oak Av", "1-2-88", "purchased list"),
                mk("Cyd", "3 Fir Rd", "10-1-91", "purchased list"),
            ],
        )
        .unwrap()
    }

    #[test]
    fn mass_mailing_profile_passes_everything() {
        // §4: "For a mass mailing application there may be no need to reach
        // the correct individual ... a query with no constraints over
        // quality indicators may be appropriate."
        let p = UserProfile::new("mass_mailing", "bulk flyers");
        assert!(p.to_predicate().is_none());
        assert_eq!(p.filter(&addresses()).unwrap().len(), 3);
    }

    #[test]
    fn fund_raising_profile_constrains_quality() {
        // §4: "For more sensitive applications, such as fund raising, the
        // user may query over and constrain quality indicator values."
        let p = UserProfile::new("fund_raising", "solicit major donors")
            .with_standard(QualityStandard::new(
                "address",
                "creation_time",
                StandardOp::Ge,
                Value::Date(Date::parse("1-1-91").unwrap()),
            ))
            .with_standard(QualityStandard::new(
                "address",
                "source",
                StandardOp::Ne,
                "purchased list",
            ));
        let out = p.filter(&addresses()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "person").unwrap().value, Value::text("Ann"));
    }

    #[test]
    fn different_users_different_standards() {
        // Premise 2.2: investor tolerates 10-day-old data, trader does not.
        let mut rel = addresses();
        tagstore::algebra::derive_age(&mut rel, "address", Date::parse("10-24-91").unwrap())
            .unwrap();
        let investor = UserProfile::new("investor", "loosely following")
            .with_standard(QualityStandard::new("address", "age", StandardOp::Le, 30i64));
        let trader = UserProfile::new("trader", "needs real time")
            .with_standard(QualityStandard::new("address", "age", StandardOp::Le, 5i64));
        assert_eq!(investor.filter(&rel).unwrap().len(), 2);
        assert_eq!(trader.filter(&rel).unwrap().len(), 1);
    }

    #[test]
    fn one_of_standard() {
        let p = UserProfile::new("u", "").with_standard(QualityStandard::new(
            "address",
            "source",
            StandardOp::OneOf(vec![
                Value::text("change-of-address form"),
                Value::text("registry"),
            ]),
            Value::Null,
        ));
        assert_eq!(p.filter(&addresses()).unwrap().len(), 1);
    }

    #[test]
    fn scoped_standard_premise_3() {
        // Premise 3: higher standards only for companies of interest —
        // here, strict freshness only for Bob's record.
        let strict_for_bob = QualityStandard::new(
            "address",
            "creation_time",
            StandardOp::Ge,
            Value::Date(Date::parse("1-1-91").unwrap()),
        )
        .scoped(Expr::col("person").eq(Expr::lit("Bob")));
        let p = UserProfile::new("analyst", "").with_standard(strict_for_bob);
        let out = p.filter(&addresses()).unwrap();
        // Bob fails the scoped standard; Ann and Cyd are out of scope → pass
        assert_eq!(out.len(), 2);
        assert!(out
            .iter()
            .all(|r| r[0].value != Value::text("Bob")));
    }

    #[test]
    fn standards_conjoin() {
        let p = UserProfile::new("u", "")
            .with_standard(QualityStandard::new(
                "address",
                "source",
                StandardOp::Eq,
                "purchased list",
            ))
            .with_standard(QualityStandard::new(
                "address",
                "creation_time",
                StandardOp::Ge,
                Value::Date(Date::parse("1-1-91").unwrap()),
            ));
        let out = p.filter(&addresses()).unwrap();
        assert_eq!(out.len(), 1);
        assert_eq!(out.cell(0, "person").unwrap().value, Value::text("Cyd"));
    }

    #[test]
    fn default_quality_skips_foreign_columns() {
        let p = UserProfile::new("trader", "multi-table profile")
            .with_standard(QualityStandard::new("address", "age", StandardOp::Le, 5i64))
            .with_standard(QualityStandard::new(
                "share_price",
                "age",
                StandardOp::Le,
                1i64,
            ));
        let addr_schema =
            Schema::of(&[("person", DataType::Text), ("address", DataType::Text)]);
        let stock_schema =
            Schema::of(&[("ticker", DataType::Text), ("share_price", DataType::Float)]);
        let unrelated = Schema::of(&[("id", DataType::Int)]);
        // only the standard over a column the table actually has applies
        assert_eq!(
            p.default_quality_for(&addr_schema),
            Some(Expr::col("address@age").le(Expr::lit(5i64)))
        );
        assert_eq!(
            p.default_quality_for(&stock_schema),
            Some(Expr::col("share_price@age").le(Expr::lit(1i64)))
        );
        assert_eq!(p.default_quality_for(&unrelated), None);
        assert_eq!(
            UserProfile::new("mass_mailing", "").default_quality_for(&addr_schema),
            None
        );
    }

    #[test]
    fn untagged_rows_fail_standards() {
        let mut rel = addresses();
        rel.push(vec![QualityCell::bare("Dee"), QualityCell::bare("7 Ash Ln")])
            .unwrap();
        let p = UserProfile::new("u", "").with_standard(QualityStandard::new(
            "address",
            "source",
            StandardOp::Ne,
            "nowhere",
        ));
        // Dee's address has no source tag → cannot satisfy any standard
        assert_eq!(p.filter(&rel).unwrap().len(), 3);
    }
}

/// A persistent registry of stored quality profiles, keyed by name —
/// §4: "Data quality profiles may be stored for different applications."
/// Serializable, so the registry itself is part of the quality
/// requirements documentation.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProfileRegistry {
    profiles: std::collections::BTreeMap<String, UserProfile>,
}

impl ProfileRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Stores (or replaces) a profile under its own user/application name.
    pub fn store(&mut self, profile: UserProfile) {
        self.profiles.insert(profile.user.clone(), profile);
    }

    /// Looks up a profile by name.
    pub fn get(&self, name: &str) -> Option<&UserProfile> {
        self.profiles.get(name)
    }

    /// Removes a profile, returning it.
    pub fn remove(&mut self, name: &str) -> Option<UserProfile> {
        self.profiles.remove(name)
    }

    /// All stored profile names, sorted.
    pub fn names(&self) -> Vec<&str> {
        self.profiles.keys().map(String::as_str).collect()
    }

    /// Applies the named profile to a relation.
    pub fn filter_as(&self, name: &str, rel: &TaggedRelation) -> DbResult<TaggedRelation> {
        let p = self.get(name).ok_or_else(|| {
            relstore::DbError::InvalidExpression(format!("no stored profile `{name}`"))
        })?;
        p.filter(rel)
    }

    /// JSON export of the whole registry.
    pub fn to_json(&self) -> DbResult<String> {
        serde_json::to_string_pretty(self)
            .map_err(|e| relstore::DbError::ParseError(e.to_string()))
    }

    /// Parses a registry back from JSON.
    pub fn from_json(json: &str) -> DbResult<Self> {
        serde_json::from_str(json).map_err(|e| relstore::DbError::ParseError(e.to_string()))
    }
}

#[cfg(test)]
mod registry_tests {
    use super::*;
    use relstore::{DataType, Schema};
    use tagstore::{IndicatorDictionary, IndicatorValue, QualityCell};

    fn rel() -> TaggedRelation {
        let schema = Schema::of(&[("address", DataType::Text)]);
        TaggedRelation::new(
            schema,
            IndicatorDictionary::with_paper_defaults(),
            vec![
                vec![QualityCell::bare("1 Elm St")
                    .with_tag(IndicatorValue::new("source", "registry"))],
                vec![QualityCell::bare("9 Oak Av")
                    .with_tag(IndicatorValue::new("source", "purchased list"))],
            ],
        )
        .unwrap()
    }

    #[test]
    fn store_lookup_apply() {
        let mut reg = ProfileRegistry::new();
        reg.store(UserProfile::new("mass_mailing", "no constraints"));
        reg.store(
            UserProfile::new("fund_raising", "strict").with_standard(QualityStandard::new(
                "address",
                "source",
                StandardOp::Ne,
                "purchased list",
            )),
        );
        assert_eq!(reg.names(), vec!["fund_raising", "mass_mailing"]);
        assert_eq!(reg.filter_as("mass_mailing", &rel()).unwrap().len(), 2);
        assert_eq!(reg.filter_as("fund_raising", &rel()).unwrap().len(), 1);
        assert!(reg.filter_as("ghost", &rel()).is_err());
    }

    #[test]
    fn replace_and_remove() {
        let mut reg = ProfileRegistry::new();
        reg.store(UserProfile::new("app", "v1"));
        reg.store(UserProfile::new("app", "v2"));
        assert_eq!(reg.get("app").unwrap().description, "v2");
        assert!(reg.remove("app").is_some());
        assert!(reg.get("app").is_none());
    }

    #[test]
    fn json_roundtrip() {
        let mut reg = ProfileRegistry::new();
        reg.store(
            UserProfile::new("trader", "fresh quotes only").with_standard(
                QualityStandard::new("share_price", "age", StandardOp::Le, 1i64),
            ),
        );
        let json = reg.to_json().unwrap();
        let back = ProfileRegistry::from_json(&json).unwrap();
        assert_eq!(back, reg);
        assert!(ProfileRegistry::from_json("{bad").is_err());
    }
}
