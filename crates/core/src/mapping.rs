//! Parameter value derivation: mapping objective indicator values to
//! subjective parameter values.
//!
//! §1.3: "User-defined functions may be used to map quality indicator
//! values to quality parameter values. For example, because the source is
//! Wall Street Journal, an investor may conclude that data credibility is
//! high." A [`ParameterMapper`] is such a function; this module supplies
//! the three the paper's examples need (credibility-from-source,
//! timeliness-from-age, accuracy-from-collection-method) plus the ordinal
//! [`QualityLevel`] scale parameter values are reported on.

use relstore::{Date, Value};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;
use tagstore::QualityCell;

/// Ordinal quality-parameter value scale.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Serialize, Deserialize)]
pub enum QualityLevel {
    /// score < 0.2
    VeryLow,
    /// 0.2 ≤ score < 0.4
    Low,
    /// 0.4 ≤ score < 0.6
    Medium,
    /// 0.6 ≤ score < 0.8
    High,
    /// score ≥ 0.8
    VeryHigh,
}

impl QualityLevel {
    /// Quantizes a score in `[0, 1]` to the ordinal scale.
    pub fn from_score(score: f64) -> Self {
        let s = score.clamp(0.0, 1.0);
        if s < 0.2 {
            QualityLevel::VeryLow
        } else if s < 0.4 {
            QualityLevel::Low
        } else if s < 0.6 {
            QualityLevel::Medium
        } else if s < 0.8 {
            QualityLevel::High
        } else {
            QualityLevel::VeryHigh
        }
    }
}

impl fmt::Display for QualityLevel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            QualityLevel::VeryLow => "very low",
            QualityLevel::Low => "low",
            QualityLevel::Medium => "medium",
            QualityLevel::High => "high",
            QualityLevel::VeryHigh => "very high",
        };
        f.write_str(s)
    }
}

/// Ambient context for mapping functions (the current date, for
/// age-from-creation-time derivation).
#[derive(Debug, Clone, Copy)]
pub struct MappingContext {
    /// "Now" for age computations.
    pub today: Date,
}

/// A user-defined function from a cell's indicator values to a parameter
/// score in `[0, 1]`. Returns `None` when the required indicators are
/// missing — an unmapped cell has *unknown* (not zero) parameter value.
pub trait ParameterMapper {
    /// The subjective parameter this mapper evaluates.
    fn parameter(&self) -> &str;
    /// Evaluates the cell. `None` when the needed tags are absent.
    fn score(&self, cell: &QualityCell, ctx: &MappingContext) -> Option<f64>;

    /// Ordinal form of [`ParameterMapper::score`].
    fn level(&self, cell: &QualityCell, ctx: &MappingContext) -> Option<QualityLevel> {
        self.score(cell, ctx).map(QualityLevel::from_score)
    }
}

/// Credibility from the `source` indicator via a lookup table
/// ("because the source is Wall Street Journal ... credibility is high").
#[derive(Debug, Clone, Default)]
pub struct CredibilityFromSource {
    table: BTreeMap<String, f64>,
    /// Score for sources absent from the table; `None` → unknown.
    pub default: Option<f64>,
}

impl CredibilityFromSource {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rates a source (builder style).
    pub fn rate(mut self, source: impl Into<String>, score: f64) -> Self {
        self.table.insert(source.into(), score.clamp(0.0, 1.0));
        self
    }

    /// Sets the default score for unknown sources.
    pub fn with_default(mut self, score: f64) -> Self {
        self.default = Some(score.clamp(0.0, 1.0));
        self
    }
}

impl ParameterMapper for CredibilityFromSource {
    fn parameter(&self) -> &str {
        "credibility"
    }

    fn score(&self, cell: &QualityCell, _ctx: &MappingContext) -> Option<f64> {
        match cell.tag_value("source") {
            Value::Text(s) => self.table.get(&s).copied().or(self.default),
            _ => None,
        }
    }
}

/// Timeliness from the `age` indicator (or `creation_time` + today),
/// using the Ballou–Pazer form
/// `timeliness = max(0, 1 − currency/volatility)^sensitivity`.
#[derive(Debug, Clone)]
pub struct TimelinessFromAge {
    /// Shelf life of the data in days (volatility).
    pub volatility_days: f64,
    /// Exponent controlling how sharply timeliness decays.
    pub sensitivity: f64,
}

impl ParameterMapper for TimelinessFromAge {
    fn parameter(&self) -> &str {
        "timeliness"
    }

    fn score(&self, cell: &QualityCell, ctx: &MappingContext) -> Option<f64> {
        let age_days: f64 = match cell.tag_value("age") {
            Value::Int(a) => a as f64,
            Value::Float(a) => a,
            _ => match cell.tag_value("creation_time") {
                Value::Date(d) => ctx.today.days_between(&d) as f64,
                _ => return None,
            },
        };
        if self.volatility_days <= 0.0 {
            return Some(0.0);
        }
        let base = (1.0 - age_days / self.volatility_days).max(0.0);
        Some(base.powf(self.sensitivity))
    }
}

/// Accuracy from the `collection_method` indicator — "different means of
/// capturing data ... each has inherent accuracy implications. Error
/// rates may differ from device to device."
#[derive(Debug, Clone, Default)]
pub struct AccuracyFromCollectionMethod {
    table: BTreeMap<String, f64>,
}

impl AccuracyFromCollectionMethod {
    /// Empty table.
    pub fn new() -> Self {
        Self::default()
    }

    /// Rates a collection method (builder style).
    pub fn rate(mut self, method: impl Into<String>, score: f64) -> Self {
        self.table.insert(method.into(), score.clamp(0.0, 1.0));
        self
    }
}

impl ParameterMapper for AccuracyFromCollectionMethod {
    fn parameter(&self) -> &str {
        "accuracy"
    }

    fn score(&self, cell: &QualityCell, _ctx: &MappingContext) -> Option<f64> {
        match cell.tag_value("collection_method") {
            Value::Text(m) => self.table.get(&m).copied(),
            _ => None,
        }
    }
}

/// Combines several mappers; overall quality is the *minimum* score across
/// parameters that could be evaluated (weakest-dimension semantics),
/// `None` if no mapper applied.
pub struct CompositeMapper {
    mappers: Vec<Box<dyn ParameterMapper>>,
}

impl CompositeMapper {
    /// Builds from boxed mappers.
    pub fn new(mappers: Vec<Box<dyn ParameterMapper>>) -> Self {
        CompositeMapper { mappers }
    }

    /// Minimum score across applicable mappers.
    pub fn overall_score(&self, cell: &QualityCell, ctx: &MappingContext) -> Option<f64> {
        let scores: Vec<f64> = self
            .mappers
            .iter()
            .filter_map(|m| m.score(cell, ctx))
            .collect();
        scores.into_iter().fold(None, |acc, s| {
            Some(match acc {
                None => s,
                Some(a) => a.min(s),
            })
        })
    }

    /// Per-parameter breakdown `(parameter, score)`.
    pub fn breakdown(&self, cell: &QualityCell, ctx: &MappingContext) -> Vec<(&str, f64)> {
        self.mappers
            .iter()
            .filter_map(|m| m.score(cell, ctx).map(|s| (m.parameter(), s)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tagstore::IndicatorValue;

    fn ctx() -> MappingContext {
        MappingContext {
            today: Date::parse("10-24-91").unwrap(),
        }
    }

    #[test]
    fn quality_level_quantization() {
        assert_eq!(QualityLevel::from_score(0.0), QualityLevel::VeryLow);
        assert_eq!(QualityLevel::from_score(0.3), QualityLevel::Low);
        assert_eq!(QualityLevel::from_score(0.5), QualityLevel::Medium);
        assert_eq!(QualityLevel::from_score(0.7), QualityLevel::High);
        assert_eq!(QualityLevel::from_score(1.0), QualityLevel::VeryHigh);
        assert_eq!(QualityLevel::from_score(7.0), QualityLevel::VeryHigh); // clamped
        assert!(QualityLevel::Low < QualityLevel::High);
    }

    #[test]
    fn wsj_is_highly_credible() {
        // the paper's own example
        let m = CredibilityFromSource::new()
            .rate("Wall Street Journal", 0.95)
            .rate("estimate", 0.30);
        let cell = QualityCell::bare(700i64)
            .with_tag(IndicatorValue::new("source", "Wall Street Journal"));
        assert_eq!(m.level(&cell, &ctx()), Some(QualityLevel::VeryHigh));
        let cell =
            QualityCell::bare(700i64).with_tag(IndicatorValue::new("source", "estimate"));
        assert_eq!(m.level(&cell, &ctx()), Some(QualityLevel::Low));
        // unknown source without default → unknown
        let cell = QualityCell::bare(700i64).with_tag(IndicatorValue::new("source", "rumor"));
        assert_eq!(m.score(&cell, &ctx()), None);
        // with default
        let m = m.with_default(0.1);
        assert_eq!(m.score(&cell, &ctx()), Some(0.1));
        // untagged cell → unknown
        assert_eq!(m.score(&QualityCell::bare(1i64), &ctx()), None);
    }

    #[test]
    fn timeliness_decays_with_age() {
        let m = TimelinessFromAge {
            volatility_days: 30.0,
            sensitivity: 1.0,
        };
        let fresh = QualityCell::bare(1i64).with_tag(IndicatorValue::new("age", 0i64));
        let stale = QualityCell::bare(1i64).with_tag(IndicatorValue::new("age", 15i64));
        let dead = QualityCell::bare(1i64).with_tag(IndicatorValue::new("age", 60i64));
        assert_eq!(m.score(&fresh, &ctx()), Some(1.0));
        assert_eq!(m.score(&stale, &ctx()), Some(0.5));
        assert_eq!(m.score(&dead, &ctx()), Some(0.0));
    }

    #[test]
    fn timeliness_falls_back_to_creation_time() {
        let m = TimelinessFromAge {
            volatility_days: 42.0,
            sensitivity: 1.0,
        };
        let cell = QualityCell::bare(1i64).with_tag(IndicatorValue::new(
            "creation_time",
            Value::Date(Date::parse("10-3-91").unwrap()),
        ));
        // 21 days old on 10-24-91 → 1 - 21/42 = 0.5
        assert_eq!(m.score(&cell, &ctx()), Some(0.5));
        assert_eq!(m.score(&QualityCell::bare(1i64), &ctx()), None);
    }

    #[test]
    fn sensitivity_sharpens_decay() {
        let lo = TimelinessFromAge {
            volatility_days: 30.0,
            sensitivity: 1.0,
        };
        let hi = TimelinessFromAge {
            volatility_days: 30.0,
            sensitivity: 3.0,
        };
        let cell = QualityCell::bare(1i64).with_tag(IndicatorValue::new("age", 15i64));
        assert!(hi.score(&cell, &ctx()).unwrap() < lo.score(&cell, &ctx()).unwrap());
    }

    #[test]
    fn accuracy_by_collection_method() {
        let m = AccuracyFromCollectionMethod::new()
            .rate("bar code scanner", 0.99)
            .rate("over the phone", 0.80)
            .rate("voice decoder", 0.70);
        let cell = QualityCell::bare("555-0100")
            .with_tag(IndicatorValue::new("collection_method", "over the phone"));
        assert_eq!(m.score(&cell, &ctx()), Some(0.80));
        assert_eq!(m.parameter(), "accuracy");
    }

    #[test]
    fn composite_weakest_dimension() {
        let comp = CompositeMapper::new(vec![
            Box::new(CredibilityFromSource::new().rate("NYSE", 0.9)),
            Box::new(TimelinessFromAge {
                volatility_days: 10.0,
                sensitivity: 1.0,
            }),
        ]);
        let cell = QualityCell::bare(10.0)
            .with_tag(IndicatorValue::new("source", "NYSE"))
            .with_tag(IndicatorValue::new("age", 5i64));
        assert_eq!(comp.overall_score(&cell, &ctx()), Some(0.5)); // timeliness is weaker
        let bd = comp.breakdown(&cell, &ctx());
        assert_eq!(bd.len(), 2);
        // only one applicable
        let cell = QualityCell::bare(10.0).with_tag(IndicatorValue::new("age", 5i64));
        assert_eq!(comp.overall_score(&cell, &ctx()), Some(0.5));
        // none applicable
        assert_eq!(comp.overall_score(&QualityCell::bare(1i64), &ctx()), None);
    }
}
