//! `dq-core` — Data Quality Requirements Analysis and Modeling
//! (Wang, Kon & Madnick, ICDE 1993), as an executable methodology.
//!
//! The paper's contribution is a four-step requirements-analysis process
//! that turns an ER application view into an ER-based **quality schema**
//! whose quality indicators become cell-level tags in the database:
//!
//! 1. [`methodology::step1_application_view`] — traditional ER modeling;
//! 2. [`methodology::Step2`] — attach subjective *quality parameters*
//!    (from the Appendix-A [`catalog::CandidateCatalog`]) to entities,
//!    attributes, and relationships;
//! 3. [`methodology::Step3`] — operationalize parameters into objective
//!    *quality indicators* (with the paper's suggestion table in
//!    [`methodology::suggest_indicators`]);
//! 4. [`methodology::step4_integrate`] — integrate quality views into the
//!    global [`views::QualitySchema`], collapsing derivable indicators
//!    ([`mod@derive`]) and supporting structural re-examination
//!    ([`methodology::promote_indicator_to_attribute`]).
//!
//! Around the pipeline: [`taxonomy`] encodes Figure 1, [`mapping`] the
//! indicator→parameter value functions of §1.3, [`profiles`] the per-user
//! quality standards of Premises 2.1–3, [`premises`] the premise analyses,
//! and [`spec`] the required requirements-specification documentation.

#![warn(missing_docs)]

pub mod catalog;
pub mod derive;
pub mod mapping;
pub mod methodology;
pub mod premises;
pub mod profiles;
pub mod spec;
pub mod taxonomy;
pub mod views;

pub use catalog::CandidateCatalog;
pub use derive::{default_rules, DerivabilityRule};
pub use mapping::{
    AccuracyFromCollectionMethod, CompositeMapper, CredibilityFromSource, MappingContext,
    ParameterMapper, QualityLevel, TimelinessFromAge,
};
pub use methodology::{
    promote_indicator_to_attribute, step1_application_view, step4_integrate, suggest_indicators,
    Step2, Step3,
};
pub use profiles::{ProfileRegistry, QualityStandard, StandardOp, UserProfile};
pub use taxonomy::{AttributeKind, ConcernScope, QualityAttribute};
pub use views::{
    ApplicationView, IndicatorAnnotation, IntegrationNote, ParameterAnnotation, ParameterView,
    QualitySchema, QualityView, Target, INSPECTION,
};
