//! Polygen relations and the source-propagating algebra.
//!
//! Propagation rules (reconstructed from the polygen model, Wang & Madnick
//! VLDB'90 — documented here because the exact operator table is the
//! model's core):
//!
//! | operator | originating | intermediate |
//! |---|---|---|
//! | retrieve | the local source | ∅ |
//! | project π | unchanged | unchanged |
//! | restrict σ | unchanged | + originating sources of the cells the predicate examined in that tuple |
//! | product × | unchanged | unchanged |
//! | join ⋈ | unchanged | + originating sources of both join-key cells |
//! | union ∪ | duplicates coalesce, source sets merge | merged |
//! | difference − | unchanged | + originating sources of the subtrahend's corresponding column cells (non-membership consulted them) |

use crate::cell::{PolyCell, SourceSet};
use crate::source::SourceId;
use relstore::{DbError, DbResult, Expr, Relation, Row, Schema, Value};
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;

/// A row of polygen cells.
pub type PolyRow = Vec<PolyCell>;

/// A relation whose cells carry polygen provenance.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PolyRelation {
    schema: Schema,
    rows: Vec<PolyRow>,
}

impl PolyRelation {
    /// Empty polygen relation.
    pub fn empty(schema: Schema) -> Self {
        PolyRelation {
            schema,
            rows: Vec::new(),
        }
    }

    /// **retrieve** — lifts a local relation into the polygen algebra with
    /// every cell originating from `source`. All cells share **one**
    /// originating-set allocation.
    pub fn retrieve(rel: &Relation, source: SourceId) -> Self {
        let shared = std::sync::Arc::new(SourceSet::from([source]));
        let rows = rel
            .iter()
            .map(|r| {
                r.iter()
                    .map(|v| {
                        PolyCell::originated_shared(v.clone(), std::sync::Arc::clone(&shared))
                    })
                    .collect()
            })
            .collect();
        PolyRelation {
            schema: rel.schema().clone(),
            rows,
        }
    }

    /// Builds from parts, validating values against the schema.
    pub fn new(schema: Schema, rows: Vec<PolyRow>) -> DbResult<Self> {
        for r in &rows {
            let values: Row = r.iter().map(|c| c.value.clone()).collect();
            schema.check_row(&values)?;
        }
        Ok(PolyRelation { schema, rows })
    }

    fn from_parts(schema: Schema, rows: Vec<PolyRow>) -> Self {
        PolyRelation { schema, rows }
    }

    /// Schema accessor.
    pub fn schema(&self) -> &Schema {
        &self.schema
    }

    /// Rows accessor.
    pub fn rows(&self) -> &[PolyRow] {
        &self.rows
    }

    /// Row count.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// True iff empty.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Iterator over rows.
    pub fn iter(&self) -> std::slice::Iter<'_, PolyRow> {
        self.rows.iter()
    }

    /// Drops provenance, returning the plain relation.
    pub fn strip(&self) -> Relation {
        let rows = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.value.clone()).collect())
            .collect();
        Relation::new(self.schema.clone(), rows).expect("poly rows conform by construction")
    }

    /// The cell at `(row, column)`.
    pub fn cell(&self, row: usize, column: &str) -> DbResult<&PolyCell> {
        let c = self.schema.resolve(column)?;
        self.rows
            .get(row)
            .map(|r| &r[c])
            .ok_or_else(|| DbError::InvalidExpression(format!("row index {row} out of range")))
    }

    /// Every source appearing anywhere in the relation's provenance.
    pub fn all_sources(&self) -> SourceSet {
        let mut out = SourceSet::new();
        for row in &self.rows {
            for cell in row {
                out.extend(cell.originating().iter().cloned());
                out.extend(cell.intermediate().iter().cloned());
            }
        }
        out
    }

    /// σ — restrict. Retained tuples' cells gain, as intermediate sources,
    /// the originating sources of the cells the predicate examined.
    pub fn restrict(&self, predicate: &Expr) -> DbResult<PolyRelation> {
        let examined: Vec<usize> = predicate
            .referenced_columns()
            .iter()
            .map(|c| self.schema.resolve(c))
            .collect::<DbResult<_>>()?;
        let mut rows = Vec::new();
        for row in &self.rows {
            let values: Row = row.iter().map(|c| c.value.clone()).collect();
            if predicate.eval_predicate(&self.schema, &values)? {
                let mut consulted = SourceSet::new();
                for &i in &examined {
                    consulted.extend(row[i].originating().iter().cloned());
                }
                // One shared consulted-set per tuple: cells with no prior
                // intermediate sources adopt the Arc instead of copying.
                let consulted = std::sync::Arc::new(consulted);
                let mut out = row.clone();
                for cell in &mut out {
                    cell.consult_shared(&consulted);
                }
                rows.push(out);
            }
        }
        Ok(PolyRelation::from_parts(self.schema.clone(), rows))
    }

    /// σ — batched restrict. Propagation semantics are identical to
    /// [`PolyRelation::restrict`]; the predicate is compiled once and
    /// evaluated straight over the polygen cells (no per-row `Row`
    /// materialization), processing `batch_size`-row windows at a time.
    /// Survivors are tracked in a [`tagstore::Bitset`] selection vector
    /// (one word per 64 rows, dead words skipped wholesale) and gathered
    /// run-at-a-time. Consecutive retained tuples whose examined cells
    /// carry the same originating sources share one consulted-set
    /// allocation. Reports under the `vector.poly.*` metrics.
    pub fn restrict_vectorized(
        &self,
        predicate: &Expr,
        batch_size: usize,
    ) -> DbResult<PolyRelation> {
        use relstore::expr::ValueSource;
        /// Positional predicate access over polygen cells.
        struct CellRow<'a>(&'a [PolyCell]);
        impl ValueSource for CellRow<'_> {
            fn value_at(&self, idx: usize) -> &Value {
                &self.0[idx].value
            }
        }
        let examined: Vec<usize> = predicate
            .referenced_columns()
            .iter()
            .map(|c| self.schema.resolve(c))
            .collect::<DbResult<_>>()?;
        let compiled = predicate.compile(&self.schema)?;
        let batch_size = batch_size.max(1);
        let mut out_rows: Vec<PolyRow> = Vec::new();
        let mut batches = 0usize;
        let mut rows_in = 0usize;
        let mut cached: Option<std::sync::Arc<SourceSet>> = None;
        for window in self.rows.chunks(batch_size) {
            batches += 1;
            rows_in += window.len();
            // Selection vector: one bit per window row, filtered with
            // word-granular loops so fully-dead words cost one compare.
            let mut sel = tagstore::Bitset::full(window.len());
            for (wi, word) in sel.words_mut().iter_mut().enumerate() {
                let mut bits = *word;
                let mut keep = bits;
                while bits != 0 {
                    let tz = bits.trailing_zeros();
                    bits &= bits - 1;
                    let i = wi * 64 + tz as usize;
                    if !compiled.eval_predicate(&CellRow(&window[i]))? {
                        keep &= !(1u64 << tz);
                    }
                }
                *word = keep;
            }
            // Run-at-a-time gather over maximal survivor runs.
            let mut run: Option<(usize, usize)> = None;
            let flush = |run: (usize, usize),
                         out_rows: &mut Vec<PolyRow>,
                         cached: &mut Option<std::sync::Arc<SourceSet>>| {
                for row in &window[run.0..run.1] {
                    let mut consulted = SourceSet::new();
                    for &c in &examined {
                        consulted.extend(row[c].originating().iter().cloned());
                    }
                    let shared = if cached.as_ref().is_some_and(|a| **a == consulted) {
                        std::sync::Arc::clone(cached.as_ref().expect("just checked"))
                    } else {
                        let a = std::sync::Arc::new(consulted);
                        *cached = Some(std::sync::Arc::clone(&a));
                        a
                    };
                    let mut out = row.clone();
                    for cell in &mut out {
                        cell.consult_shared(&shared);
                    }
                    out_rows.push(out);
                }
            };
            for i in sel.iter_ones() {
                match run {
                    Some((s, e)) if e == i => run = Some((s, i + 1)),
                    Some(done) => {
                        flush(done, &mut out_rows, &mut cached);
                        run = Some((i, i + 1));
                    }
                    None => run = Some((i, i + 1)),
                }
            }
            if let Some(done) = run {
                flush(done, &mut out_rows, &mut cached);
            }
        }
        dq_obs::counter!("vector.poly.batches").add(batches as u64);
        dq_obs::counter!("vector.poly.rows_in").add(rows_in as u64);
        dq_obs::counter!("vector.poly.rows_out").add(out_rows.len() as u64);
        Ok(PolyRelation::from_parts(self.schema.clone(), out_rows))
    }

    /// π — project.
    pub fn project(&self, columns: &[&str]) -> DbResult<PolyRelation> {
        let indices: Vec<usize> = columns
            .iter()
            .map(|c| self.schema.resolve(c))
            .collect::<DbResult<_>>()?;
        let schema = self.schema.project(&indices)?;
        let rows = self
            .rows
            .iter()
            .map(|r| indices.iter().map(|&i| r[i].clone()).collect())
            .collect();
        Ok(PolyRelation::from_parts(schema, rows))
    }

    /// ρ — renames one column (provenance is untouched).
    pub fn rename(&self, from: &str, to: &str) -> DbResult<PolyRelation> {
        let schema = self.schema.rename(from, to)?;
        Ok(PolyRelation::from_parts(schema, self.rows.clone()))
    }

    /// × — Cartesian product.
    pub fn product(&self, other: &PolyRelation) -> DbResult<PolyRelation> {
        let schema = self.schema.join(&other.schema, "l", "r")?;
        let mut rows = Vec::with_capacity(self.len() * other.len());
        for lr in &self.rows {
            for rr in &other.rows {
                let mut row = lr.clone();
                row.extend(rr.iter().cloned());
                rows.push(row);
            }
        }
        Ok(PolyRelation::from_parts(schema, rows))
    }

    /// ⋈ — equi-join. Every output cell gains the originating sources of
    /// both join-key cells as intermediate sources: the match *consulted*
    /// both sides' keys.
    pub fn join(
        &self,
        other: &PolyRelation,
        left_key: &str,
        right_key: &str,
    ) -> DbResult<PolyRelation> {
        let li = self.schema.resolve(left_key)?;
        let ri = other.schema.resolve(right_key)?;
        let schema = self.schema.join(&other.schema, "l", "r")?;
        let mut table: HashMap<&Value, Vec<&PolyRow>> = HashMap::with_capacity(other.len());
        for rr in &other.rows {
            if !rr[ri].value.is_null() {
                table.entry(&rr[ri].value).or_default().push(rr);
            }
        }
        let mut rows = Vec::new();
        for lr in &self.rows {
            if lr[li].value.is_null() {
                continue;
            }
            if let Some(matches) = table.get(&lr[li].value) {
                for rr in matches {
                    let mut consulted = SourceSet::new();
                    consulted.extend(lr[li].originating().iter().cloned());
                    consulted.extend(rr[ri].originating().iter().cloned());
                    let consulted = std::sync::Arc::new(consulted);
                    let mut row = lr.clone();
                    row.extend(rr.iter().cloned());
                    for cell in &mut row {
                        cell.consult_shared(&consulted);
                    }
                    rows.push(row);
                }
            }
        }
        Ok(PolyRelation::from_parts(schema, rows))
    }

    /// ∪ — union with duplicate coalescing: tuples equal on values merge
    /// into one tuple whose cells absorb both tuples' provenance.
    pub fn union(&self, other: &PolyRelation) -> DbResult<PolyRelation> {
        if !self.schema.union_compatible(&other.schema) {
            return Err(DbError::TypeMismatch {
                expected: format!("union-compatible schemas ({})", self.schema),
                found: other.schema.to_string(),
            });
        }
        let mut index: HashMap<Row, usize> = HashMap::new();
        let mut out: Vec<PolyRow> = Vec::new();
        for row in self.rows.iter().chain(other.rows.iter()) {
            let key: Row = row.iter().map(|c| c.value.clone()).collect();
            match index.get(&key) {
                Some(&pos) => {
                    for (mine, theirs) in out[pos].iter_mut().zip(row.iter()) {
                        mine.absorb(theirs);
                    }
                }
                None => {
                    index.insert(key, out.len());
                    out.push(row.clone());
                }
            }
        }
        Ok(PolyRelation::from_parts(self.schema.clone(), out))
    }

    /// − — difference. Kept tuples gain, as intermediate sources, the
    /// originating sources present in the subtrahend's matching columns
    /// (deciding non-membership consulted the subtrahend).
    pub fn difference(&self, other: &PolyRelation) -> DbResult<PolyRelation> {
        if !self.schema.union_compatible(&other.schema) {
            return Err(DbError::TypeMismatch {
                expected: format!("union-compatible schemas ({})", self.schema),
                found: other.schema.to_string(),
            });
        }
        // Sources of the whole subtrahend, per column.
        let arity = self.schema.arity();
        let mut col_sources: Vec<SourceSet> = vec![SourceSet::new(); arity];
        let mut other_values: std::collections::HashSet<Row> = std::collections::HashSet::new();
        for row in &other.rows {
            for (i, cell) in row.iter().enumerate() {
                col_sources[i].extend(cell.originating().iter().cloned());
            }
            other_values.insert(row.iter().map(|c| c.value.clone()).collect());
        }
        let mut rows = Vec::new();
        for row in &self.rows {
            let key: Row = row.iter().map(|c| c.value.clone()).collect();
            if !other_values.contains(&key) {
                let mut out = row.clone();
                for (i, cell) in out.iter_mut().enumerate() {
                    cell.consult(&col_sources[i]);
                }
                rows.push(out);
            }
        }
        Ok(PolyRelation::from_parts(self.schema.clone(), rows))
    }

    /// Renders with provenance, `value <originating; intermediate>`.
    pub fn to_ascii_table(&self) -> String {
        let names = self.schema.names();
        let rendered: Vec<Vec<String>> = self
            .rows
            .iter()
            .map(|r| r.iter().map(|c| c.to_string()).collect())
            .collect();
        let mut widths: Vec<usize> = names.iter().map(|n| n.len()).collect();
        for row in &rendered {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push('|');
        for (n, w) in names.iter().zip(&widths) {
            out.push_str(&format!(" {n:<w$} |"));
        }
        out.push('\n');
        for row in &rendered {
            out.push('|');
            for (cell, w) in row.iter().zip(&widths) {
                out.push_str(&format!(" {cell:<w$} |"));
            }
            out.push('\n');
        }
        out
    }
}

impl fmt::Display for PolyRelation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_ascii_table())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use relstore::DataType;

    fn src(s: &str) -> SourceId {
        SourceId::new(s)
    }

    fn stocks() -> PolyRelation {
        let schema = Schema::of(&[("ticker", DataType::Text), ("price", DataType::Float)]);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::text("FRT"), Value::Float(10.0)],
                vec![Value::text("NUT"), Value::Float(20.0)],
            ],
        )
        .unwrap();
        PolyRelation::retrieve(&rel, src("NYSE"))
    }

    fn reports() -> PolyRelation {
        let schema = Schema::of(&[("ticker", DataType::Text), ("rating", DataType::Text)]);
        let rel = Relation::new(
            schema,
            vec![
                vec![Value::text("FRT"), Value::text("buy")],
                vec![Value::text("ZZZ"), Value::text("sell")],
            ],
        )
        .unwrap();
        PolyRelation::retrieve(&rel, src("WSJ"))
    }

    #[test]
    fn retrieve_tags_every_cell() {
        let s = stocks();
        for row in s.iter() {
            for cell in row {
                assert!(cell.originating().contains(&src("NYSE")));
                assert!(cell.intermediate().is_empty());
            }
        }
    }

    #[test]
    fn restrict_adds_intermediate_sources() {
        let s = stocks();
        let r = s.restrict(&Expr::col("price").gt(Expr::lit(15.0))).unwrap();
        assert_eq!(r.len(), 1);
        // every retained cell consulted the price cell's source
        for cell in &r.rows()[0] {
            assert!(cell.intermediate().contains(&src("NYSE")));
        }
    }

    #[test]
    fn restrict_vectorized_matches_restrict() {
        let s = stocks();
        let p = Expr::col("price").gt(Expr::lit(15.0));
        let row_wise = s.restrict(&p).unwrap();
        for bs in [1, 2, 7, 1024] {
            assert_eq!(row_wise, s.restrict_vectorized(&p, bs).unwrap(), "batch={bs}");
        }
        // mixed multi-source provenance (post-join) propagates identically
        let j = stocks().join(&reports(), "ticker", "ticker").unwrap();
        let p = Expr::col("rating").eq(Expr::lit(Value::text("buy")));
        assert_eq!(j.restrict(&p).unwrap(), j.restrict_vectorized(&p, 1).unwrap());
        // errors surface on both paths
        let bad = Expr::col("ticker").gt(Expr::lit(1.0));
        assert!(s.restrict(&bad).is_err());
        assert!(s.restrict_vectorized(&bad, 8).is_err());
        let ghost = Expr::col("ghost").gt(Expr::lit(1.0));
        assert!(s.restrict(&ghost).is_err());
        assert!(s.restrict_vectorized(&ghost, 8).is_err());
    }

    #[test]
    fn project_preserves_provenance() {
        let p = stocks().project(&["price"]).unwrap();
        assert_eq!(p.schema().names(), vec!["price"]);
        assert!(p.rows()[0][0].originating().contains(&src("NYSE")));
    }

    #[test]
    fn join_consults_both_key_sources() {
        let j = stocks().join(&reports(), "ticker", "ticker").unwrap();
        assert_eq!(j.len(), 1); // only FRT matches
        for cell in &j.rows()[0] {
            assert!(cell.intermediate().contains(&src("NYSE")), "{cell}");
            assert!(cell.intermediate().contains(&src("WSJ")), "{cell}");
        }
        // originating sources stay with their side
        let rating = j.cell(0, "rating").unwrap();
        assert!(rating.originating().contains(&src("WSJ")));
        assert!(!rating.originating().contains(&src("NYSE")));
    }

    #[test]
    fn union_coalesces_duplicates_merging_sources() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rel = Relation::new(schema.clone(), vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        let a = PolyRelation::retrieve(&rel, src("A"));
        let rel2 = Relation::new(schema, vec![vec![Value::Int(1)]]).unwrap();
        let b = PolyRelation::retrieve(&rel2, src("B"));
        let u = a.union(&b).unwrap();
        assert_eq!(u.len(), 2);
        let one = u
            .iter()
            .find(|r| r[0].value == Value::Int(1))
            .unwrap();
        assert!(one[0].originating().contains(&src("A")));
        assert!(one[0].originating().contains(&src("B")));
    }

    #[test]
    fn difference_consults_subtrahend() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let rel = Relation::new(schema.clone(), vec![vec![Value::Int(1)], vec![Value::Int(2)]])
            .unwrap();
        let a = PolyRelation::retrieve(&rel, src("A"));
        let rel2 = Relation::new(schema, vec![vec![Value::Int(1)]]).unwrap();
        let b = PolyRelation::retrieve(&rel2, src("B"));
        let d = a.difference(&b).unwrap();
        assert_eq!(d.len(), 1);
        assert_eq!(d.rows()[0][0].value, Value::Int(2));
        assert!(d.rows()[0][0].intermediate().contains(&src("B")));
    }

    #[test]
    fn product_concatenates() {
        let p = stocks().product(&reports()).unwrap();
        assert_eq!(p.len(), 4);
        assert_eq!(p.schema().arity(), 4);
    }

    #[test]
    fn incompatible_set_ops_rejected() {
        assert!(stocks().union(&reports()).is_err());
        assert!(stocks().difference(&reports()).is_err());
    }

    #[test]
    fn all_sources_reports_lineage() {
        let j = stocks().join(&reports(), "ticker", "ticker").unwrap();
        let sources = j.all_sources();
        assert!(sources.contains(&src("NYSE")));
        assert!(sources.contains(&src("WSJ")));
    }

    #[test]
    fn strip_drops_provenance() {
        let plain = stocks().strip();
        assert_eq!(plain.len(), 2);
        assert_eq!(plain.value_at(0, "ticker").unwrap(), &Value::text("FRT"));
    }

    #[test]
    fn display_contains_provenance() {
        let s = stocks().to_ascii_table();
        assert!(s.contains("<NYSE; >"), "got\n{s}");
    }
}
