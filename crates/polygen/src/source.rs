//! Data sources and the source registry.
//!
//! In a polygen ("multiple-origin") system, data is composed from many
//! autonomous databases. Each contributing database is a source ([`SourceId`]); the
//! registry records source metadata that quality-parameter mapping
//! functions consume (e.g. *source → credibility*: "because the source is
//! Wall Street Journal, an investor may conclude that data credibility is
//! high", §1.3).

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::fmt;

/// Identifier of a contributing database/source. Cheap to clone and
/// totally ordered so source sets are deterministic.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct SourceId(pub String);

impl SourceId {
    /// Constructor from anything string-like.
    pub fn new(s: impl Into<String>) -> Self {
        SourceId(s.into())
    }

    /// The identifier text.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for SourceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for SourceId {
    fn from(s: &str) -> Self {
        SourceId(s.to_owned())
    }
}

/// Metadata about one source.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct SourceInfo {
    /// The source's identifier.
    pub id: SourceId,
    /// Human-readable description (institution, feed, department).
    pub description: String,
    /// Credibility score in `[0, 1]` assigned by the quality administrator;
    /// consumed by parameter mapping functions.
    pub credibility: f64,
}

/// Registry of known sources.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct SourceRegistry {
    sources: BTreeMap<SourceId, SourceInfo>,
}

impl SourceRegistry {
    /// Empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Registers (or updates) a source.
    pub fn register(
        &mut self,
        id: impl Into<SourceId>,
        description: impl Into<String>,
        credibility: f64,
    ) -> SourceId {
        let id = id.into();
        self.sources.insert(
            id.clone(),
            SourceInfo {
                id: id.clone(),
                description: description.into(),
                credibility: credibility.clamp(0.0, 1.0),
            },
        );
        id
    }

    /// Looks up a source.
    pub fn get(&self, id: &SourceId) -> Option<&SourceInfo> {
        self.sources.get(id)
    }

    /// Credibility of a source; unknown sources score 0 (untrusted until
    /// registered — conservative, matching the paper's administrator role).
    pub fn credibility(&self, id: &SourceId) -> f64 {
        self.get(id).map(|s| s.credibility).unwrap_or(0.0)
    }

    /// The minimum credibility across a set of sources — the weakest link
    /// determines the credibility of composed data.
    pub fn min_credibility<'a>(&self, ids: impl IntoIterator<Item = &'a SourceId>) -> Option<f64> {
        ids.into_iter()
            .map(|id| self.credibility(id))
            .fold(None, |acc, c| {
                Some(match acc {
                    None => c,
                    Some(a) => a.min(c),
                })
            })
    }

    /// All registered sources, ordered by id.
    pub fn all(&self) -> impl Iterator<Item = &SourceInfo> {
        self.sources.values()
    }

    /// Number of registered sources.
    pub fn len(&self) -> usize {
        self.sources.len()
    }

    /// True iff no sources are registered.
    pub fn is_empty(&self) -> bool {
        self.sources.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_and_lookup() {
        let mut r = SourceRegistry::new();
        let wsj = r.register("WSJ", "Wall Street Journal", 0.95);
        assert_eq!(r.get(&wsj).unwrap().description, "Wall Street Journal");
        assert_eq!(r.credibility(&wsj), 0.95);
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn credibility_clamped_and_conservative() {
        let mut r = SourceRegistry::new();
        let s = r.register("x", "", 7.0);
        assert_eq!(r.credibility(&s), 1.0);
        assert_eq!(r.credibility(&SourceId::new("unknown")), 0.0);
    }

    #[test]
    fn min_credibility_weakest_link() {
        let mut r = SourceRegistry::new();
        let a = r.register("a", "", 0.9);
        let b = r.register("b", "", 0.4);
        assert_eq!(r.min_credibility([&a, &b]), Some(0.4));
        assert_eq!(r.min_credibility([] as [&SourceId; 0]), None);
    }

    #[test]
    fn reregister_updates() {
        let mut r = SourceRegistry::new();
        let a = r.register("a", "old", 0.5);
        r.register("a", "new", 0.6);
        assert_eq!(r.get(&a).unwrap().description, "new");
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn ordering_deterministic() {
        let mut r = SourceRegistry::new();
        r.register("z", "", 0.1);
        r.register("a", "", 0.2);
        let ids: Vec<&str> = r.all().map(|s| s.id.as_str()).collect();
        assert_eq!(ids, vec!["a", "z"]);
    }
}
