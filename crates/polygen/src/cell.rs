//! Polygen cells: a value plus its originating and intermediate source sets.
//!
//! Following the polygen model (Wang & Madnick, VLDB'90), each datum in a
//! composed (heterogeneous) database carries
//!
//! * **originating sources** — the local databases the *value itself* came
//!   from, and
//! * **intermediate sources** — the local databases *consulted* in
//!   producing/selecting it (e.g. the side of a join predicate the value
//!   was matched against).
//!
//! Both sets only ever grow through the algebra — provenance is monotone.
//!
//! Source sets are stored behind `Arc`s with copy-on-write: in the common
//! case — every cell of a retrieved relation originates from the same
//! source, a whole join consults one key's sources — thousands of cells
//! share a handful of allocations, and σ/π/⋈ propagate provenance by
//! refcount bump.

use crate::source::SourceId;
use relstore::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A set of sources, ordered for deterministic display and comparison.
pub type SourceSet = BTreeSet<SourceId>;

fn empty_set() -> &'static Arc<SourceSet> {
    static EMPTY: OnceLock<Arc<SourceSet>> = OnceLock::new();
    EMPTY.get_or_init(|| Arc::new(SourceSet::new()))
}

/// A value with polygen provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolyCell {
    /// The application value.
    pub value: Value,
    originating: Arc<SourceSet>,
    intermediate: Arc<SourceSet>,
}

impl PolyCell {
    /// A cell originating from a single source.
    pub fn originated(value: impl Into<Value>, source: SourceId) -> Self {
        let mut originating = SourceSet::new();
        originating.insert(source);
        PolyCell {
            value: value.into(),
            originating: Arc::new(originating),
            intermediate: Arc::clone(empty_set()),
        }
    }

    /// A cell whose originating set is an existing shared `Arc` — bulk
    /// retrieval points every cell of a relation at one allocation.
    pub fn originated_shared(value: impl Into<Value>, sources: Arc<SourceSet>) -> Self {
        PolyCell {
            value: value.into(),
            originating: sources,
            intermediate: Arc::clone(empty_set()),
        }
    }

    /// A cell with no provenance (e.g. a computed literal).
    pub fn bare(value: impl Into<Value>) -> Self {
        PolyCell {
            value: value.into(),
            originating: Arc::clone(empty_set()),
            intermediate: Arc::clone(empty_set()),
        }
    }

    /// Where the value originated.
    pub fn originating(&self) -> &SourceSet {
        &self.originating
    }

    /// What was consulted to produce/select it.
    pub fn intermediate(&self) -> &SourceSet {
        &self.intermediate
    }

    /// Adds one originating source (un-shares first if needed).
    pub fn add_originating(&mut self, source: SourceId) {
        if !self.originating.contains(&source) {
            Arc::make_mut(&mut self.originating).insert(source);
        }
    }

    /// Adds one intermediate source (un-shares first if needed).
    pub fn add_intermediate(&mut self, source: SourceId) {
        if !self.intermediate.contains(&source) {
            Arc::make_mut(&mut self.intermediate).insert(source);
        }
    }

    /// Adds intermediate sources. No-op (and no un-share) when `sources`
    /// is already a subset of the current intermediate set.
    pub fn consult(&mut self, sources: &SourceSet) {
        if sources.is_empty() || sources.is_subset(&self.intermediate) {
            return;
        }
        Arc::make_mut(&mut self.intermediate).extend(sources.iter().cloned());
    }

    /// Like [`PolyCell::consult`] with a shared set: when the cell has no
    /// intermediate sources yet, it adopts the `Arc` itself — the whole
    /// relation ends up sharing one consulted-set allocation.
    pub fn consult_shared(&mut self, sources: &Arc<SourceSet>) {
        if sources.is_empty() {
            return;
        }
        if self.intermediate.is_empty() {
            self.intermediate = Arc::clone(sources);
        } else {
            self.consult(sources);
        }
    }

    /// Merges another cell's provenance into this one (used when duplicate
    /// tuples coalesce under union). Pointer-equal sets skip the merge.
    pub fn absorb(&mut self, other: &PolyCell) {
        if !Arc::ptr_eq(&self.originating, &other.originating)
            && !other.originating.is_subset(&self.originating)
        {
            Arc::make_mut(&mut self.originating).extend(other.originating.iter().cloned());
        }
        if !Arc::ptr_eq(&self.intermediate, &other.intermediate)
            && !other.intermediate.is_subset(&self.intermediate)
        {
            Arc::make_mut(&mut self.intermediate).extend(other.intermediate.iter().cloned());
        }
    }

    /// All sources that touched this cell (originating ∪ intermediate).
    pub fn lineage(&self) -> SourceSet {
        self.originating
            .union(&self.intermediate)
            .cloned()
            .collect()
    }

    /// True iff both cells share the same physical originating set — the
    /// zero-copy propagation tests assert on this.
    pub fn shares_originating_with(&self, other: &PolyCell) -> bool {
        Arc::ptr_eq(&self.originating, &other.originating)
    }
}

impl fmt::Display for PolyCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)?;
        let fmt_set = |set: &SourceSet| -> String {
            set.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(",")
        };
        if !self.originating.is_empty() || !self.intermediate.is_empty() {
            write!(
                f,
                " <{}; {}>",
                fmt_set(&self.originating),
                fmt_set(&self.intermediate)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originated_has_single_source() {
        let c = PolyCell::originated(42i64, SourceId::new("db1"));
        assert_eq!(c.originating().len(), 1);
        assert!(c.intermediate().is_empty());
        assert_eq!(c.value, Value::Int(42));
    }

    #[test]
    fn consult_grows_intermediate_only() {
        let mut c = PolyCell::originated("x", SourceId::new("a"));
        let mut consulted = SourceSet::new();
        consulted.insert(SourceId::new("b"));
        consulted.insert(SourceId::new("a")); // overlap fine
        c.consult(&consulted);
        assert_eq!(c.originating().len(), 1);
        assert_eq!(c.intermediate().len(), 2);
    }

    #[test]
    fn absorb_merges_both_sets() {
        let mut a = PolyCell::originated(1i64, SourceId::new("a"));
        let mut b = PolyCell::originated(1i64, SourceId::new("b"));
        b.add_intermediate(SourceId::new("c"));
        a.absorb(&b);
        assert_eq!(a.originating().len(), 2);
        assert_eq!(a.intermediate().len(), 1);
    }

    #[test]
    fn lineage_is_union() {
        let mut c = PolyCell::originated(1i64, SourceId::new("a"));
        c.add_intermediate(SourceId::new("b"));
        let l = c.lineage();
        assert!(l.contains(&SourceId::new("a")));
        assert!(l.contains(&SourceId::new("b")));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn display_format() {
        let mut c = PolyCell::originated(7i64, SourceId::new("a"));
        c.add_intermediate(SourceId::new("b"));
        assert_eq!(c.to_string(), "7 <a; b>");
        assert_eq!(PolyCell::bare(7i64).to_string(), "7");
    }

    #[test]
    fn shared_origins_are_one_allocation() {
        let shared = Arc::new(SourceSet::from([SourceId::new("a")]));
        let x = PolyCell::originated_shared(1i64, Arc::clone(&shared));
        let y = PolyCell::originated_shared(2i64, Arc::clone(&shared));
        assert!(x.shares_originating_with(&y));
        // clones still share
        assert!(x.clone().shares_originating_with(&y));
        // mutation un-shares only the mutated cell
        let mut z = x.clone();
        z.add_originating(SourceId::new("b"));
        assert!(!z.shares_originating_with(&x));
        assert_eq!(x.originating().len(), 1);
        assert_eq!(z.originating().len(), 2);
    }

    #[test]
    fn consult_shared_adopts_arc() {
        let consulted = Arc::new(SourceSet::from([SourceId::new("a"), SourceId::new("b")]));
        let mut c = PolyCell::bare(1i64);
        c.consult_shared(&consulted);
        assert_eq!(c.intermediate().len(), 2);
        let mut d = PolyCell::bare(2i64);
        d.consult_shared(&consulted);
        assert!(Arc::ptr_eq(&c.intermediate, &d.intermediate));
        // subset consult is a no-op that keeps sharing
        c.consult(&SourceSet::from([SourceId::new("a")]));
        assert!(Arc::ptr_eq(&c.intermediate, &d.intermediate));
    }
}
