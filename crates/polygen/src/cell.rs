//! Polygen cells: a value plus its originating and intermediate source sets.
//!
//! Following the polygen model (Wang & Madnick, VLDB'90), each datum in a
//! composed (heterogeneous) database carries
//!
//! * **originating sources** — the local databases the *value itself* came
//!   from, and
//! * **intermediate sources** — the local databases *consulted* in
//!   producing/selecting it (e.g. the side of a join predicate the value
//!   was matched against).
//!
//! Both sets only ever grow through the algebra — provenance is monotone.

use crate::source::SourceId;
use relstore::Value;
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use std::fmt;

/// A set of sources, ordered for deterministic display and comparison.
pub type SourceSet = BTreeSet<SourceId>;

/// A value with polygen provenance.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PolyCell {
    /// The application value.
    pub value: Value,
    /// Where the value originated.
    pub originating: SourceSet,
    /// What was consulted to produce/select it.
    pub intermediate: SourceSet,
}

impl PolyCell {
    /// A cell originating from a single source.
    pub fn originated(value: impl Into<Value>, source: SourceId) -> Self {
        let mut originating = SourceSet::new();
        originating.insert(source);
        PolyCell {
            value: value.into(),
            originating,
            intermediate: SourceSet::new(),
        }
    }

    /// A cell with no provenance (e.g. a computed literal).
    pub fn bare(value: impl Into<Value>) -> Self {
        PolyCell {
            value: value.into(),
            originating: SourceSet::new(),
            intermediate: SourceSet::new(),
        }
    }

    /// Adds intermediate sources.
    pub fn consult(&mut self, sources: &SourceSet) {
        self.intermediate.extend(sources.iter().cloned());
    }

    /// Merges another cell's provenance into this one (used when duplicate
    /// tuples coalesce under union).
    pub fn absorb(&mut self, other: &PolyCell) {
        self.originating.extend(other.originating.iter().cloned());
        self.intermediate.extend(other.intermediate.iter().cloned());
    }

    /// All sources that touched this cell (originating ∪ intermediate).
    pub fn lineage(&self) -> SourceSet {
        self.originating
            .union(&self.intermediate)
            .cloned()
            .collect()
    }
}

impl fmt::Display for PolyCell {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.value)?;
        let fmt_set = |set: &SourceSet| -> String {
            set.iter().map(|s| s.as_str()).collect::<Vec<_>>().join(",")
        };
        if !self.originating.is_empty() || !self.intermediate.is_empty() {
            write!(
                f,
                " <{}; {}>",
                fmt_set(&self.originating),
                fmt_set(&self.intermediate)
            )?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn originated_has_single_source() {
        let c = PolyCell::originated(42i64, SourceId::new("db1"));
        assert_eq!(c.originating.len(), 1);
        assert!(c.intermediate.is_empty());
        assert_eq!(c.value, Value::Int(42));
    }

    #[test]
    fn consult_grows_intermediate_only() {
        let mut c = PolyCell::originated("x", SourceId::new("a"));
        let mut consulted = SourceSet::new();
        consulted.insert(SourceId::new("b"));
        consulted.insert(SourceId::new("a")); // overlap fine
        c.consult(&consulted);
        assert_eq!(c.originating.len(), 1);
        assert_eq!(c.intermediate.len(), 2);
    }

    #[test]
    fn absorb_merges_both_sets() {
        let mut a = PolyCell::originated(1i64, SourceId::new("a"));
        let mut b = PolyCell::originated(1i64, SourceId::new("b"));
        b.intermediate.insert(SourceId::new("c"));
        a.absorb(&b);
        assert_eq!(a.originating.len(), 2);
        assert_eq!(a.intermediate.len(), 1);
    }

    #[test]
    fn lineage_is_union() {
        let mut c = PolyCell::originated(1i64, SourceId::new("a"));
        c.intermediate.insert(SourceId::new("b"));
        let l = c.lineage();
        assert!(l.contains(&SourceId::new("a")));
        assert!(l.contains(&SourceId::new("b")));
        assert_eq!(l.len(), 2);
    }

    #[test]
    fn display_format() {
        let mut c = PolyCell::originated(7i64, SourceId::new("a"));
        c.intermediate.insert(SourceId::new("b"));
        assert_eq!(c.to_string(), "7 <a; b>");
        assert_eq!(PolyCell::bare(7i64).to_string(), "7");
    }
}
