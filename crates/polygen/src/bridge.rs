//! Bridge between the paper's two cited tagging models: polygen source
//! sets ⇄ attribute-based quality indicator tags.
//!
//! The ICDE'93 paper treats both as substrates for the same quality
//! schema ("the attribute-based model \[28\] and the polygen source-tagging
//! model \[24\]\[25\] have been developed elsewhere"); this module lets data
//! composed in the polygen algebra flow into the tagged store (and its
//! quality query language) with its provenance intact:
//!
//! * `originating` sources become a `source` indicator tag (sorted,
//!   `+`-joined — the same convention the tagged aggregate's
//!   [`MergeText`](tagstore::algebra::TagRule) rule uses), and
//! * `intermediate` sources become an `intermediate_sources` tag.

use crate::cell::SourceSet;
use crate::relation::PolyRelation;
use crate::source::SourceRegistry;
use relstore::{DataType, DbResult, Value};
use tagstore::{IndicatorDef, IndicatorDictionary, IndicatorValue, QualityCell, TaggedRelation};

/// Indicator used for intermediate sources on bridged cells.
pub const INTERMEDIATE_INDICATOR: &str = "intermediate_sources";

/// An indicator dictionary covering everything bridging produces: the
/// paper defaults plus `intermediate_sources` and `credibility`.
pub fn polygen_dictionary() -> IndicatorDictionary {
    let mut d = IndicatorDictionary::with_paper_defaults();
    d.declare(IndicatorDef::new(
        INTERMEDIATE_INDICATOR,
        DataType::Text,
        "polygen intermediate source set (databases consulted)",
    ))
    .expect("fresh declaration");
    d.declare(IndicatorDef::new(
        "credibility",
        DataType::Float,
        "weakest-link credibility over the originating sources",
    ))
    .expect("fresh declaration");
    d
}

fn join_sources(set: &SourceSet) -> Option<Value> {
    if set.is_empty() {
        return None;
    }
    Some(Value::Text(
        set.iter().map(|s| s.as_str()).collect::<Vec<_>>().join("+"),
    ))
}

/// Converts a polygen relation into a tagged relation. Each cell's
/// originating set becomes its `source` tag and its intermediate set its
/// `intermediate_sources` tag; when a registry is supplied, a
/// `credibility` tag carries the weakest-link score of the originating
/// sources — the §1.3 indicator→parameter mapping, precomputed.
pub fn to_tagged(
    poly: &PolyRelation,
    registry: Option<&SourceRegistry>,
) -> DbResult<TaggedRelation> {
    let dict = polygen_dictionary();
    let mut out = TaggedRelation::empty(poly.schema().clone(), dict);
    for row in poly.iter() {
        let mut tagged_row = Vec::with_capacity(row.len());
        for cell in row {
            let mut qc = QualityCell::bare(cell.value.clone());
            if let Some(src) = join_sources(cell.originating()) {
                qc.set_tag(IndicatorValue::new("source", src));
            }
            if let Some(mid) = join_sources(cell.intermediate()) {
                qc.set_tag(IndicatorValue::new(INTERMEDIATE_INDICATOR, mid));
            }
            if let Some(reg) = registry {
                if let Some(cred) = reg.min_credibility(cell.originating().iter()) {
                    qc.set_tag(IndicatorValue::new("credibility", Value::Float(cred)));
                }
            }
            tagged_row.push(qc);
        }
        out.push(tagged_row)?;
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::source::SourceId;
    use relstore::{Expr, Relation, Schema};

    fn two_source_join() -> PolyRelation {
        let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
        let a = Relation::new(
            schema.clone(),
            vec![vec![Value::Int(1), Value::Int(10)], vec![Value::Int(2), Value::Int(20)]],
        )
        .unwrap();
        let b = Relation::new(
            schema,
            vec![vec![Value::Int(1), Value::Int(100)]],
        )
        .unwrap();
        let pa = PolyRelation::retrieve(&a, SourceId::new("A"));
        let pb = PolyRelation::retrieve(&b, SourceId::new("B"));
        pa.join(&pb, "k", "k").unwrap()
    }

    #[test]
    fn bridging_preserves_values_and_sources() {
        let poly = two_source_join();
        let tagged = to_tagged(&poly, None).unwrap();
        assert_eq!(tagged.strip(), poly.strip());
        // left value cell: originates from A, consulted both keys
        let cell = tagged.cell(0, "l.v").unwrap();
        assert_eq!(cell.tag_value("source"), Value::text("A"));
        assert_eq!(
            cell.tag_value(INTERMEDIATE_INDICATOR),
            Value::text("A+B")
        );
    }

    #[test]
    fn bridged_data_is_quality_queryable() {
        let poly = two_source_join();
        let tagged = to_tagged(&poly, None).unwrap();
        // filter by provenance through the standard quality predicate path
        let p = Expr::col("l.v@source").eq(Expr::lit("A"));
        let r = tagstore::algebra::select(&tagged, &p).unwrap();
        assert_eq!(r.len(), 1);
        // intermediate sources are queryable too
        let p = Expr::Like(
            Box::new(Expr::col("l.v@intermediate_sources")),
            "%B%".into(),
        );
        let r = tagstore::algebra::select(&tagged, &p).unwrap();
        assert_eq!(r.len(), 1);
    }

    #[test]
    fn credibility_precomputed_from_registry() {
        let mut reg = SourceRegistry::new();
        reg.register("A", "", 0.9);
        reg.register("B", "", 0.4);
        let poly = two_source_join();
        let tagged = to_tagged(&poly, Some(&reg)).unwrap();
        // single-origin cell: its own credibility
        assert_eq!(
            tagged.cell(0, "l.v").unwrap().tag_value("credibility"),
            Value::Float(0.9)
        );
        // union-merged cells would take the min; simulate via union
        let u = {
            let schema = Schema::of(&[("x", DataType::Int)]);
            let r = Relation::new(schema, vec![vec![Value::Int(1)]]).unwrap();
            let pa = PolyRelation::retrieve(&r, SourceId::new("A"));
            let pb = PolyRelation::retrieve(&r.clone(), SourceId::new("B"));
            pa.union(&pb).unwrap()
        };
        let tagged = to_tagged(&u, Some(&reg)).unwrap();
        assert_eq!(
            tagged.cell(0, "x").unwrap().tag_value("credibility"),
            Value::Float(0.4) // weakest link of A+B
        );
        assert_eq!(
            tagged.cell(0, "x").unwrap().tag_value("source"),
            Value::text("A+B")
        );
    }

    #[test]
    fn bare_cells_stay_bare() {
        let schema = Schema::of(&[("x", DataType::Int)]);
        let poly = PolyRelation::new(
            schema,
            vec![vec![crate::PolyCell::bare(1i64)]],
        )
        .unwrap();
        let tagged = to_tagged(&poly, None).unwrap();
        assert_eq!(tagged.cell(0, "x").unwrap().tag_count(), 0);
    }
}
