//! `polygen` — the source-tagging model for heterogeneous database systems
//! (Wang & Madnick, VLDB'90), the second formal substrate the ICDE'93
//! paper cites for cell-level quality tagging.
//!
//! Where `tagstore` attaches *arbitrary* quality indicators to cells, the
//! polygen model tracks exactly one dimension — *which local databases a
//! composed datum came from and which were consulted along the way* — and
//! defines how those source sets propagate through every relational
//! operator. See [`relation::PolyRelation`] for the operator table.
//!
//! ```
//! use polygen::{PolyRelation, SourceId, SourceRegistry};
//! use relstore::{Relation, Schema, DataType, Value, Expr};
//!
//! let schema = Schema::of(&[("ticker", DataType::Text)]);
//! let local = Relation::new(schema, vec![vec![Value::text("FRT")]]).unwrap();
//! let poly = PolyRelation::retrieve(&local, SourceId::new("NYSE"));
//! let filtered = poly.restrict(&Expr::col("ticker").eq(Expr::lit("FRT"))).unwrap();
//! assert!(filtered.cell(0, "ticker").unwrap().intermediate().contains(&SourceId::new("NYSE")));
//! ```

#![warn(missing_docs)]

pub mod bridge;
pub mod cell;
pub mod relation;
pub mod source;

pub use bridge::{polygen_dictionary, to_tagged, INTERMEDIATE_INDICATOR};
pub use cell::{PolyCell, SourceSet};
pub use relation::{PolyRelation, PolyRow};
pub use source::{SourceId, SourceInfo, SourceRegistry};

#[cfg(test)]
mod proptests {
    use crate::{PolyRelation, SourceId};
    use proptest::prelude::*;
    use relstore::{DataType, Expr, Relation, Schema, Value};

    fn arb_poly(source: &'static str) -> impl Strategy<Value = PolyRelation> {
        prop::collection::vec((0i64..15, 0i64..15), 0..25).prop_map(move |rows| {
            let schema = Schema::of(&[("k", DataType::Int), ("v", DataType::Int)]);
            let rel = Relation::new(
                schema,
                rows.into_iter()
                    .map(|(k, v)| vec![Value::Int(k), Value::Int(v)])
                    .collect(),
            )
            .unwrap();
            PolyRelation::retrieve(&rel, SourceId::new(source))
        })
    }

    proptest! {
        /// Provenance is monotone: restrict never shrinks any surviving
        /// cell's source sets.
        #[test]
        fn restrict_monotone(rel in arb_poly("A"), c in 0i64..15) {
            let out = rel.restrict(&Expr::col("k").lt(Expr::lit(c))).unwrap();
            for row in out.iter() {
                for cell in row {
                    prop_assert!(cell.originating().contains(&SourceId::new("A")));
                }
            }
        }

        /// Batched σ is indistinguishable from row-at-a-time σ —
        /// provenance (originating and intermediate source sets)
        /// included — at every batch width.
        #[test]
        fn restrict_vectorized_equals_restrict(rel in arb_poly("A"), c in 0i64..15) {
            let p = Expr::col("v").lt(Expr::lit(c));
            let row_wise = rel.restrict(&p).unwrap();
            for bs in [1usize, 7, 1024] {
                let batched = rel.restrict_vectorized(&p, bs).unwrap();
                prop_assert_eq!(&row_wise, &batched);
            }
        }

        /// strip ∘ restrict = select ∘ strip.
        #[test]
        fn strip_commutes_with_restrict(rel in arb_poly("A"), c in 0i64..15) {
            let p = Expr::col("v").ge(Expr::lit(c));
            let lhs = rel.restrict(&p).unwrap().strip();
            let rhs = relstore::algebra::select(&rel.strip(), &p).unwrap();
            prop_assert_eq!(lhs, rhs);
        }

        /// Union is commutative on values and total sources.
        #[test]
        fn union_commutative(a in arb_poly("A"), b in arb_poly("B")) {
            let ab = a.union(&b).unwrap();
            let ba = b.union(&a).unwrap();
            prop_assert_eq!(ab.len(), ba.len());
            prop_assert_eq!(ab.all_sources(), ba.all_sources());
            let mut x = ab.strip().into_rows();
            let mut y = ba.strip().into_rows();
            x.sort(); y.sort();
            prop_assert_eq!(x, y);
        }

        /// Join result sources are bounded by the union of input sources,
        /// and every output tuple's cells consulted both key sources when
        /// both sides are single-source.
        #[test]
        fn join_source_bounds(a in arb_poly("A"), b in arb_poly("B")) {
            let j = a.join(&b, "k", "k").unwrap();
            let total = j.all_sources();
            prop_assert!(total.len() <= 2);
            for row in j.iter() {
                for cell in row {
                    if !j.is_empty() {
                        prop_assert!(cell.intermediate().contains(&SourceId::new("A")));
                        prop_assert!(cell.intermediate().contains(&SourceId::new("B")));
                    }
                }
            }
        }

        /// difference(A, A) is empty; difference(A, ∅) = A on values.
        #[test]
        fn difference_laws(a in arb_poly("A")) {
            prop_assert!(a.difference(&a).unwrap().is_empty());
            let empty = PolyRelation::empty(a.schema().clone());
            let d = a.difference(&empty).unwrap();
            let mut x = d.strip().into_rows();
            let mut y = relstore::algebra::distinct(&a.strip()).into_rows();
            // difference dedups? ours keeps bag of A's tuples not in B
            x.sort(); y.sort();
            // every value row of d appears in a
            let a_rows = a.strip().into_rows();
            for r in &x { prop_assert!(a_rows.contains(r)); }
            prop_assert!(x.len() >= y.len().min(x.len()));
        }
    }
}
