//! Integrity constraints.
//!
//! The paper motivates these directly: "research has been conducted on how
//! to prevent data inconsistencies (integrity constraints and normalization
//! theory)" — and Step 3's `✓ inspection` indicator turns into "front-end
//! rules to enforce domain or update constraints". This module supplies
//! those front-end rules for the base engine; the `dq-admin` crate layers
//! inspection *procedures* on top.

use crate::error::{DbError, DbResult};
use crate::expr::Expr;
use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use std::collections::HashSet;

/// A declarative constraint attached to a table.
#[derive(Debug, Clone)]
pub enum Constraint {
    /// Named primary key over a set of columns: unique and NOT NULL.
    PrimaryKey {
        /// Constraint name (for error messages / audit).
        name: String,
        /// Key column names.
        columns: Vec<String>,
    },
    /// Uniqueness over columns (NULLs exempt, SQL-style).
    Unique {
        /// Constraint name.
        name: String,
        /// Key column names.
        columns: Vec<String>,
    },
    /// Row-level boolean expression that must not evaluate to `false`.
    Check {
        /// Constraint name.
        name: String,
        /// Predicate; `NULL` results are treated as pass (SQL semantics).
        predicate: Expr,
    },
    /// Column value must be within an explicit domain (enumerated set) —
    /// e.g. the `collection_method` indicator limited to
    /// {"over the phone", "from an information service"}.
    Domain {
        /// Constraint name.
        name: String,
        /// Constrained column.
        column: String,
        /// Admissible values (NULL always admissible; nullability is
        /// governed separately).
        allowed: Vec<Value>,
    },
    /// Column value must lie in an inclusive range.
    Range {
        /// Constraint name.
        name: String,
        /// Constrained column.
        column: String,
        /// Lower bound (inclusive), if any.
        min: Option<Value>,
        /// Upper bound (inclusive), if any.
        max: Option<Value>,
    },
}

impl Constraint {
    /// The constraint's name.
    pub fn name(&self) -> &str {
        match self {
            Constraint::PrimaryKey { name, .. }
            | Constraint::Unique { name, .. }
            | Constraint::Check { name, .. }
            | Constraint::Domain { name, .. }
            | Constraint::Range { name, .. } => name,
        }
    }

    /// Validates the constraint definition against a schema
    /// (columns exist etc.).
    pub fn validate_against(&self, schema: &Schema) -> DbResult<()> {
        match self {
            Constraint::PrimaryKey { columns, .. } | Constraint::Unique { columns, .. } => {
                if columns.is_empty() {
                    return Err(DbError::InvalidExpression(format!(
                        "constraint `{}` has no columns",
                        self.name()
                    )));
                }
                for c in columns {
                    schema.resolve(c)?;
                }
                Ok(())
            }
            Constraint::Check { predicate, .. } => {
                for c in predicate.referenced_columns() {
                    schema.resolve(c)?;
                }
                Ok(())
            }
            Constraint::Domain { column, .. } | Constraint::Range { column, .. } => {
                schema.resolve(column)?;
                Ok(())
            }
        }
    }

    /// Checks a single row in isolation (Check/Domain/Range).
    /// Key constraints need table context; see [`Constraint::check_key_against`].
    pub fn check_row(&self, schema: &Schema, row: &Row) -> DbResult<()> {
        match self {
            Constraint::PrimaryKey { columns, .. } => {
                // NOT NULL half of PK; uniqueness is checked with context.
                for c in columns {
                    let i = schema.resolve(c)?;
                    if row[i].is_null() {
                        return Err(DbError::ConstraintViolation {
                            constraint: self.name().to_owned(),
                            detail: format!("primary-key column `{c}` is NULL"),
                        });
                    }
                }
                Ok(())
            }
            Constraint::Unique { .. } => Ok(()),
            Constraint::Check { predicate, name } => {
                match predicate.eval(schema, row)? {
                    Value::Bool(false) => Err(DbError::ConstraintViolation {
                        constraint: name.clone(),
                        detail: "check predicate evaluated to false".into(),
                    }),
                    // NULL or true passes; non-bool is a definition error.
                    Value::Bool(true) | Value::Null => Ok(()),
                    other => Err(DbError::InvalidExpression(format!(
                        "check `{name}` returned {}, expected Bool",
                        other.type_name()
                    ))),
                }
            }
            Constraint::Domain {
                name,
                column,
                allowed,
            } => {
                let i = schema.resolve(column)?;
                if row[i].is_null() || allowed.contains(&row[i]) {
                    Ok(())
                } else {
                    Err(DbError::ConstraintViolation {
                        constraint: name.clone(),
                        detail: format!("value `{}` not in domain of `{column}`", row[i]),
                    })
                }
            }
            Constraint::Range {
                name,
                column,
                min,
                max,
            } => {
                let i = schema.resolve(column)?;
                let v = &row[i];
                if v.is_null() {
                    return Ok(());
                }
                if let Some(lo) = min {
                    if v < lo {
                        return Err(DbError::ConstraintViolation {
                            constraint: name.clone(),
                            detail: format!("`{v}` below minimum `{lo}` for `{column}`"),
                        });
                    }
                }
                if let Some(hi) = max {
                    if v > hi {
                        return Err(DbError::ConstraintViolation {
                            constraint: name.clone(),
                            detail: format!("`{v}` above maximum `{hi}` for `{column}`"),
                        });
                    }
                }
                Ok(())
            }
        }
    }

    /// For key constraints: checks the candidate row's key against the
    /// existing rows (excluding `skip`, used when updating a row in place).
    pub fn check_key_against(
        &self,
        schema: &Schema,
        row: &Row,
        existing: &[Row],
        skip: Option<usize>,
    ) -> DbResult<()> {
        let columns = match self {
            Constraint::PrimaryKey { columns, .. } => columns,
            Constraint::Unique { columns, .. } => columns,
            _ => return Ok(()),
        };
        let idx: Vec<usize> = columns
            .iter()
            .map(|c| schema.resolve(c))
            .collect::<DbResult<_>>()?;
        // SQL-style: UNIQUE ignores rows with any NULL key component.
        let any_null = idx.iter().any(|&i| row[i].is_null());
        if any_null {
            return if matches!(self, Constraint::PrimaryKey { .. }) {
                Err(DbError::ConstraintViolation {
                    constraint: self.name().to_owned(),
                    detail: "primary-key component is NULL".into(),
                })
            } else {
                Ok(())
            };
        }
        for (pos, other) in existing.iter().enumerate() {
            if Some(pos) == skip {
                continue;
            }
            if idx.iter().all(|&i| !other[i].is_null() && other[i] == row[i]) {
                return Err(DbError::ConstraintViolation {
                    constraint: self.name().to_owned(),
                    detail: format!(
                        "duplicate key ({})",
                        idx.iter()
                            .map(|&i| row[i].to_string())
                            .collect::<Vec<_>>()
                            .join(", ")
                    ),
                });
            }
        }
        Ok(())
    }
}

/// A foreign-key constraint referencing another table; enforced by the
/// catalog because it needs access to two tables.
#[derive(Debug, Clone)]
pub struct ForeignKey {
    /// Constraint name.
    pub name: String,
    /// Referencing table.
    pub table: String,
    /// Referencing columns.
    pub columns: Vec<String>,
    /// Referenced table.
    pub ref_table: String,
    /// Referenced columns (typically that table's PK).
    pub ref_columns: Vec<String>,
}

impl ForeignKey {
    /// Checks one referencing row against the referenced rows.
    /// Rows with any NULL FK component pass (SQL MATCH SIMPLE).
    pub fn check_row(
        &self,
        child_schema: &Schema,
        row: &Row,
        parent_schema: &Schema,
        parent_rows: &[Row],
    ) -> DbResult<()> {
        let ci: Vec<usize> = self
            .columns
            .iter()
            .map(|c| child_schema.resolve(c))
            .collect::<DbResult<_>>()?;
        let pi: Vec<usize> = self
            .ref_columns
            .iter()
            .map(|c| parent_schema.resolve(c))
            .collect::<DbResult<_>>()?;
        if ci.len() != pi.len() {
            return Err(DbError::InvalidExpression(format!(
                "foreign key `{}` column count mismatch",
                self.name
            )));
        }
        if ci.iter().any(|&i| row[i].is_null()) {
            return Ok(());
        }
        let key: Vec<&Value> = ci.iter().map(|&i| &row[i]).collect();
        let found = parent_rows
            .iter()
            .any(|p| pi.iter().zip(&key).all(|(&i, k)| &&p[i] == k));
        if found {
            Ok(())
        } else {
            Err(DbError::ConstraintViolation {
                constraint: self.name.clone(),
                detail: format!(
                    "no row in `{}` matches key ({})",
                    self.ref_table,
                    key.iter().map(|v| v.to_string()).collect::<Vec<_>>().join(", ")
                ),
            })
        }
    }

    /// Returns positions in the parent that are referenced; used to block
    /// deletes that would orphan children (RESTRICT semantics).
    pub fn children_of(
        &self,
        child_schema: &Schema,
        child_rows: &[Row],
        parent_schema: &Schema,
        parent_row: &Row,
    ) -> DbResult<Vec<usize>> {
        let ci: Vec<usize> = self
            .columns
            .iter()
            .map(|c| child_schema.resolve(c))
            .collect::<DbResult<_>>()?;
        let pi: Vec<usize> = self
            .ref_columns
            .iter()
            .map(|c| parent_schema.resolve(c))
            .collect::<DbResult<_>>()?;
        let key: Vec<&Value> = pi.iter().map(|&i| &parent_row[i]).collect();
        let mut out = Vec::new();
        for (pos, ch) in child_rows.iter().enumerate() {
            let matches = ci
                .iter()
                .zip(&key)
                .all(|(&i, k)| !ch[i].is_null() && &&ch[i] == k);
            if matches {
                out.push(pos);
            }
        }
        Ok(out)
    }
}

/// Checks a batch of rows for internal key duplicates (bulk load path).
pub fn check_bulk_unique(schema: &Schema, rows: &[Row], columns: &[String]) -> DbResult<()> {
    let idx: Vec<usize> = columns
        .iter()
        .map(|c| schema.resolve(c))
        .collect::<DbResult<_>>()?;
    let mut seen: HashSet<Vec<&Value>> = HashSet::with_capacity(rows.len());
    for row in rows {
        if idx.iter().any(|&i| row[i].is_null()) {
            continue;
        }
        let key: Vec<&Value> = idx.iter().map(|&i| &row[i]).collect();
        if !seen.insert(key) {
            return Err(DbError::ConstraintViolation {
                constraint: format!("unique({})", columns.join(",")),
                detail: "duplicate key in bulk load".into(),
            });
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("id", DataType::Int),
            ("name", DataType::Text),
            ("employees", DataType::Int),
        ])
    }

    #[test]
    fn pk_rejects_null_and_duplicates() {
        let pk = Constraint::PrimaryKey {
            name: "pk".into(),
            columns: vec!["id".into()],
        };
        let s = schema();
        let existing = vec![vec![Value::Int(1), Value::text("a"), Value::Int(10)]];
        // NULL key
        let row = vec![Value::Null, Value::text("b"), Value::Int(5)];
        assert!(pk.check_row(&s, &row).is_err());
        assert!(pk.check_key_against(&s, &row, &existing, None).is_err());
        // duplicate
        let row = vec![Value::Int(1), Value::text("b"), Value::Int(5)];
        assert!(pk.check_key_against(&s, &row, &existing, None).is_err());
        // fresh key
        let row = vec![Value::Int(2), Value::text("b"), Value::Int(5)];
        assert!(pk.check_key_against(&s, &row, &existing, None).is_ok());
        // updating the row itself (skip) is fine
        let row = vec![Value::Int(1), Value::text("a'"), Value::Int(10)];
        assert!(pk.check_key_against(&s, &row, &existing, Some(0)).is_ok());
    }

    #[test]
    fn unique_allows_nulls() {
        let u = Constraint::Unique {
            name: "u".into(),
            columns: vec!["name".into()],
        };
        let s = schema();
        let existing = vec![vec![Value::Int(1), Value::Null, Value::Int(10)]];
        let row = vec![Value::Int(2), Value::Null, Value::Int(5)];
        assert!(u.check_key_against(&s, &row, &existing, None).is_ok());
    }

    #[test]
    fn check_constraint_three_valued() {
        let c = Constraint::Check {
            name: "positive".into(),
            predicate: Expr::col("employees").gt(Expr::lit(0i64)),
        };
        let s = schema();
        assert!(c
            .check_row(&s, &vec![Value::Int(1), Value::text("a"), Value::Int(5)])
            .is_ok());
        assert!(c
            .check_row(&s, &vec![Value::Int(1), Value::text("a"), Value::Int(-5)])
            .is_err());
        // NULL employees → unknown → passes (SQL semantics)
        assert!(c
            .check_row(&s, &vec![Value::Int(1), Value::text("a"), Value::Null])
            .is_ok());
    }

    #[test]
    fn domain_constraint() {
        let d = Constraint::Domain {
            name: "method".into(),
            column: "name".into(),
            allowed: vec![Value::text("over the phone"), Value::text("info service")],
        };
        let s = schema();
        assert!(d
            .check_row(&s, &vec![Value::Int(1), Value::text("over the phone"), Value::Int(1)])
            .is_ok());
        assert!(d
            .check_row(&s, &vec![Value::Int(1), Value::text("telepathy"), Value::Int(1)])
            .is_err());
        assert!(d
            .check_row(&s, &vec![Value::Int(1), Value::Null, Value::Int(1)])
            .is_ok());
    }

    #[test]
    fn range_constraint() {
        let r = Constraint::Range {
            name: "emp_range".into(),
            column: "employees".into(),
            min: Some(Value::Int(0)),
            max: Some(Value::Int(1_000_000)),
        };
        let s = schema();
        assert!(r
            .check_row(&s, &vec![Value::Int(1), Value::text("a"), Value::Int(700)])
            .is_ok());
        assert!(r
            .check_row(&s, &vec![Value::Int(1), Value::text("a"), Value::Int(-1)])
            .is_err());
        assert!(r
            .check_row(&s, &vec![Value::Int(1), Value::text("a"), Value::Int(2_000_000)])
            .is_err());
    }

    #[test]
    fn validate_against_schema() {
        let s = schema();
        let ok = Constraint::Unique {
            name: "u".into(),
            columns: vec!["id".into()],
        };
        assert!(ok.validate_against(&s).is_ok());
        let bad = Constraint::Unique {
            name: "u".into(),
            columns: vec!["nope".into()],
        };
        assert!(bad.validate_against(&s).is_err());
        let empty = Constraint::PrimaryKey {
            name: "pk".into(),
            columns: vec![],
        };
        assert!(empty.validate_against(&s).is_err());
        let badcheck = Constraint::Check {
            name: "c".into(),
            predicate: Expr::col("ghost").gt(Expr::lit(1i64)),
        };
        assert!(badcheck.validate_against(&s).is_err());
    }

    #[test]
    fn foreign_key_matching() {
        let parent = Schema::of(&[("id", DataType::Int)]);
        let child = schema();
        let fk = ForeignKey {
            name: "fk".into(),
            table: "child".into(),
            columns: vec!["id".into()],
            ref_table: "parent".into(),
            ref_columns: vec!["id".into()],
        };
        let parents = vec![vec![Value::Int(1)], vec![Value::Int(2)]];
        let ok = vec![Value::Int(2), Value::text("x"), Value::Int(1)];
        assert!(fk.check_row(&child, &ok, &parent, &parents).is_ok());
        let orphan = vec![Value::Int(9), Value::text("x"), Value::Int(1)];
        assert!(fk.check_row(&child, &orphan, &parent, &parents).is_err());
        // NULL FK passes
        let nullfk = vec![Value::Null, Value::text("x"), Value::Int(1)];
        assert!(fk.check_row(&child, &nullfk, &parent, &parents).is_ok());
        // children_of finds referencing rows
        let kids = vec![ok.clone(), orphan.clone()];
        let hits = fk
            .children_of(&child, &kids, &parent, &vec![Value::Int(2)])
            .unwrap();
        assert_eq!(hits, vec![0]);
    }

    #[test]
    fn bulk_unique() {
        let s = schema();
        let rows = vec![
            vec![Value::Int(1), Value::text("a"), Value::Int(1)],
            vec![Value::Int(2), Value::text("b"), Value::Int(2)],
        ];
        assert!(check_bulk_unique(&s, &rows, &["id".into()]).is_ok());
        let dup = vec![
            vec![Value::Int(1), Value::text("a"), Value::Int(1)],
            vec![Value::Int(1), Value::text("b"), Value::Int(2)],
        ];
        assert!(check_bulk_unique(&s, &dup, &["id".into()]).is_err());
    }
}
