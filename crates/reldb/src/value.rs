//! Runtime values and their static types.
//!
//! [`Value`] is the single dynamic value representation used throughout the
//! suite — plain relations, tagged cells, quality indicator values and
//! quality parameter values all carry `Value`s. It deliberately implements
//! a *total* order (`Ord`) so values can key B-tree indexes; `Null` sorts
//! first and floats use an IEEE total order.

use crate::date::Date;
use crate::error::{DbError, DbResult};
use serde::{Deserialize, Serialize};
use std::cmp::Ordering;
use std::fmt;
use std::hash::{Hash, Hasher};

/// Static type of a column or expression.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum DataType {
    /// Boolean truth value.
    Bool,
    /// 64-bit signed integer.
    Int,
    /// 64-bit IEEE float.
    Float,
    /// UTF-8 string.
    Text,
    /// Calendar date (see [`Date`]).
    Date,
    /// Absence-of-constraint: any value is admissible. Used for quality
    /// indicator dictionaries where an indicator's domain is open.
    Any,
}

impl fmt::Display for DataType {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            DataType::Bool => "Bool",
            DataType::Int => "Int",
            DataType::Float => "Float",
            DataType::Text => "Text",
            DataType::Date => "Date",
            DataType::Any => "Any",
        };
        f.write_str(s)
    }
}

/// A dynamically typed value.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Value {
    /// SQL-style null / unknown.
    Null,
    /// Boolean.
    Bool(bool),
    /// 64-bit integer.
    Int(i64),
    /// 64-bit float.
    Float(f64),
    /// UTF-8 text.
    Text(String),
    /// Calendar date.
    Date(Date),
}

impl Value {
    /// Convenience constructor from `&str`.
    pub fn text(s: impl Into<String>) -> Self {
        Value::Text(s.into())
    }

    /// The value's runtime type, or `None` for `Null` (null is typeless).
    pub fn data_type(&self) -> Option<DataType> {
        match self {
            Value::Null => None,
            Value::Bool(_) => Some(DataType::Bool),
            Value::Int(_) => Some(DataType::Int),
            Value::Float(_) => Some(DataType::Float),
            Value::Text(_) => Some(DataType::Text),
            Value::Date(_) => Some(DataType::Date),
        }
    }

    /// True iff the value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Checks that this value may inhabit a column of type `ty`
    /// (`Null` inhabits every type; `Any` admits every value).
    pub fn conforms_to(&self, ty: DataType) -> bool {
        match (self, ty) {
            (Value::Null, _) => true,
            (_, DataType::Any) => true,
            (v, t) => v.data_type() == Some(t),
        }
    }

    /// Extracts an `i64`, accepting exact floats too.
    pub fn as_int(&self) -> DbResult<i64> {
        match self {
            Value::Int(i) => Ok(*i),
            Value::Float(f) if f.fract() == 0.0 => Ok(*f as i64),
            other => Err(DbError::TypeMismatch {
                expected: "Int".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extracts an `f64`, widening integers.
    pub fn as_float(&self) -> DbResult<f64> {
        match self {
            Value::Float(f) => Ok(*f),
            Value::Int(i) => Ok(*i as f64),
            other => Err(DbError::TypeMismatch {
                expected: "Float".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extracts a `bool`.
    pub fn as_bool(&self) -> DbResult<bool> {
        match self {
            Value::Bool(b) => Ok(*b),
            other => Err(DbError::TypeMismatch {
                expected: "Bool".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extracts a string slice.
    pub fn as_text(&self) -> DbResult<&str> {
        match self {
            Value::Text(s) => Ok(s),
            other => Err(DbError::TypeMismatch {
                expected: "Text".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Extracts a [`Date`].
    pub fn as_date(&self) -> DbResult<Date> {
        match self {
            Value::Date(d) => Ok(*d),
            other => Err(DbError::TypeMismatch {
                expected: "Date".into(),
                found: other.type_name().into(),
            }),
        }
    }

    /// Short name of the runtime type, for error messages.
    pub fn type_name(&self) -> &'static str {
        match self {
            Value::Null => "Null",
            Value::Bool(_) => "Bool",
            Value::Int(_) => "Int",
            Value::Float(_) => "Float",
            Value::Text(_) => "Text",
            Value::Date(_) => "Date",
        }
    }

    /// Attempts to coerce this value to `ty`. Numeric widening/narrowing
    /// (when lossless) and text→date/number parsing are supported; this is
    /// how CSV import and user input enter the typed engine.
    pub fn coerce_to(&self, ty: DataType) -> DbResult<Value> {
        if self.conforms_to(ty) {
            return Ok(self.clone());
        }
        let err = || DbError::TypeMismatch {
            expected: ty.to_string(),
            found: self.type_name().into(),
        };
        match (self, ty) {
            (Value::Int(i), DataType::Float) => Ok(Value::Float(*i as f64)),
            (Value::Float(f), DataType::Int) if f.fract() == 0.0 => Ok(Value::Int(*f as i64)),
            (Value::Text(s), DataType::Int) => s
                .trim()
                .replace(',', "")
                .parse::<i64>()
                .map(Value::Int)
                .map_err(|_| err()),
            (Value::Text(s), DataType::Float) => s
                .trim()
                .replace(',', "")
                .parse::<f64>()
                .map(Value::Float)
                .map_err(|_| err()),
            (Value::Text(s), DataType::Date) => Date::parse(s).map(Value::Date),
            (Value::Text(s), DataType::Bool) => match s.trim().to_ascii_lowercase().as_str() {
                "true" | "t" | "yes" | "1" => Ok(Value::Bool(true)),
                "false" | "f" | "no" | "0" => Ok(Value::Bool(false)),
                _ => Err(err()),
            },
            _ => Err(err()),
        }
    }

    /// Rank used to order values of *different* types in the total order:
    /// Null < Bool < numeric < Text < Date.
    fn type_rank(&self) -> u8 {
        match self {
            Value::Null => 0,
            Value::Bool(_) => 1,
            Value::Int(_) | Value::Float(_) => 2,
            Value::Text(_) => 3,
            Value::Date(_) => 4,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.cmp(other) == Ordering::Equal
    }
}
impl Eq for Value {}

impl Ord for Value {
    fn cmp(&self, other: &Self) -> Ordering {
        use Value::*;
        match (self, other) {
            (Null, Null) => Ordering::Equal,
            (Bool(a), Bool(b)) => a.cmp(b),
            (Int(a), Int(b)) => a.cmp(b),
            (Float(a), Float(b)) => a.total_cmp(b),
            (Int(a), Float(b)) => (*a as f64).total_cmp(b),
            (Float(a), Int(b)) => a.total_cmp(&(*b as f64)),
            (Text(a), Text(b)) => a.cmp(b),
            (Date(a), Date(b)) => a.cmp(b),
            _ => self.type_rank().cmp(&other.type_rank()),
        }
    }
}
impl PartialOrd for Value {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Hash for Value {
    fn hash<H: Hasher>(&self, state: &mut H) {
        match self {
            Value::Null => 0u8.hash(state),
            Value::Bool(b) => {
                1u8.hash(state);
                b.hash(state);
            }
            // Int and Float hash identically when numerically equal with
            // integral float, to stay consistent with Eq across the
            // Int/Float comparison above. Integral floats hash as ints.
            Value::Int(i) => {
                2u8.hash(state);
                (*i as f64).to_bits().hash(state);
            }
            Value::Float(f) => {
                2u8.hash(state);
                f.to_bits().hash(state);
            }
            Value::Text(s) => {
                3u8.hash(state);
                s.hash(state);
            }
            Value::Date(d) => {
                4u8.hash(state);
                d.hash(state);
            }
        }
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => f.write_str("NULL"),
            Value::Bool(b) => write!(f, "{b}"),
            Value::Int(i) => write!(f, "{i}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Text(s) => f.write_str(s),
            Value::Date(d) => write!(f, "{d}"),
        }
    }
}

impl From<bool> for Value {
    fn from(b: bool) -> Self {
        Value::Bool(b)
    }
}
impl From<i64> for Value {
    fn from(i: i64) -> Self {
        Value::Int(i)
    }
}
impl From<i32> for Value {
    fn from(i: i32) -> Self {
        Value::Int(i as i64)
    }
}
impl From<f64> for Value {
    fn from(f: f64) -> Self {
        Value::Float(f)
    }
}
impl From<&str> for Value {
    fn from(s: &str) -> Self {
        Value::Text(s.to_owned())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Self {
        Value::Text(s)
    }
}
impl From<Date> for Value {
    fn from(d: Date) -> Self {
        Value::Date(d)
    }
}
impl<T: Into<Value>> From<Option<T>> for Value {
    fn from(o: Option<T>) -> Self {
        match o {
            Some(v) => v.into(),
            None => Value::Null,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn type_names_and_types() {
        assert_eq!(Value::Int(1).data_type(), Some(DataType::Int));
        assert_eq!(Value::Null.data_type(), None);
        assert_eq!(Value::text("x").type_name(), "Text");
    }

    #[test]
    fn null_conforms_to_everything() {
        for ty in [
            DataType::Bool,
            DataType::Int,
            DataType::Float,
            DataType::Text,
            DataType::Date,
            DataType::Any,
        ] {
            assert!(Value::Null.conforms_to(ty));
        }
    }

    #[test]
    fn any_admits_everything() {
        assert!(Value::Int(3).conforms_to(DataType::Any));
        assert!(Value::text("x").conforms_to(DataType::Any));
    }

    #[test]
    fn cross_numeric_comparison() {
        assert_eq!(Value::Int(2), Value::Float(2.0));
        assert!(Value::Int(2) < Value::Float(2.5));
        assert!(Value::Float(1.5) < Value::Int(2));
    }

    #[test]
    fn total_order_across_types() {
        let mut vals = [Value::text("b"),
            Value::Null,
            Value::Int(1),
            Value::Bool(true),
            Value::Date(Date::from_days(10)),
            Value::Float(0.5)];
        vals.sort();
        assert_eq!(vals[0], Value::Null);
        assert_eq!(vals[1], Value::Bool(true));
        assert_eq!(vals[2], Value::Float(0.5));
        assert_eq!(vals[3], Value::Int(1));
        assert_eq!(vals[4], Value::text("b"));
        assert_eq!(vals[5], Value::Date(Date::from_days(10)));
    }

    #[test]
    fn nan_has_a_place_in_the_order() {
        // total_cmp puts NaN above +inf; what matters is sort doesn't panic.
        let mut vals = [Value::Float(f64::NAN), Value::Float(1.0), Value::Float(-1.0)];
        vals.sort();
        assert_eq!(vals[0], Value::Float(-1.0));
    }

    #[test]
    fn hash_consistent_with_eq_for_int_float() {
        use std::collections::hash_map::DefaultHasher;
        fn h(v: &Value) -> u64 {
            let mut s = DefaultHasher::new();
            v.hash(&mut s);
            s.finish()
        }
        assert_eq!(h(&Value::Int(7)), h(&Value::Float(7.0)));
        assert_eq!(Value::Int(7), Value::Float(7.0));
    }

    #[test]
    fn extraction_errors() {
        assert!(Value::text("x").as_int().is_err());
        assert!(Value::Int(1).as_text().is_err());
        assert!(Value::Null.as_bool().is_err());
        assert_eq!(Value::Float(3.0).as_int().unwrap(), 3);
        assert!(Value::Float(3.5).as_int().is_err());
        assert_eq!(Value::Int(3).as_float().unwrap(), 3.0);
    }

    #[test]
    fn coercions() {
        assert_eq!(
            Value::text("4,004").coerce_to(DataType::Int).unwrap(),
            Value::Int(4004)
        );
        assert_eq!(
            Value::text("10-24-91").coerce_to(DataType::Date).unwrap(),
            Value::Date(Date::new(1991, 10, 24).unwrap())
        );
        assert_eq!(
            Value::Int(2).coerce_to(DataType::Float).unwrap(),
            Value::Float(2.0)
        );
        assert_eq!(
            Value::text("yes").coerce_to(DataType::Bool).unwrap(),
            Value::Bool(true)
        );
        assert!(Value::text("abc").coerce_to(DataType::Int).is_err());
        assert!(Value::Bool(true).coerce_to(DataType::Date).is_err());
    }

    #[test]
    fn display() {
        assert_eq!(Value::Null.to_string(), "NULL");
        assert_eq!(Value::Int(42).to_string(), "42");
        assert_eq!(Value::text("Fruit Co").to_string(), "Fruit Co");
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(Some(3i64)), Value::Int(3));
        assert_eq!(Value::from(None::<i64>), Value::Null);
        assert_eq!(Value::from("s"), Value::text("s"));
    }
}
