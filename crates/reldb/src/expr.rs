//! Scalar expression AST and evaluator.
//!
//! Expressions are evaluated against a `(Schema, Row)` pair. Three-valued
//! logic is implemented for comparisons and boolean connectives: any
//! comparison with `NULL` yields `NULL`, `NULL AND false = false`,
//! `NULL OR true = true`, and a filter keeps a row only when its predicate
//! evaluates to `true` (not `NULL`).

use crate::error::{DbError, DbResult};
use crate::relation::Row;
use crate::schema::Schema;
use crate::value::Value;
use serde::{Deserialize, Serialize};
use std::borrow::Cow;
use std::fmt;

/// Binary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum BinOp {
    /// `+` (Int, Float, Date+Int days)
    Add,
    /// `-` (Int, Float, Date-Int, Date-Date → days)
    Sub,
    /// `*`
    Mul,
    /// `/` (errors on division by zero)
    Div,
    /// `%` (integers only)
    Mod,
    /// `=`
    Eq,
    /// `<>`
    Ne,
    /// `<`
    Lt,
    /// `<=`
    Le,
    /// `>`
    Gt,
    /// `>=`
    Ge,
    /// Logical AND (3-valued).
    And,
    /// Logical OR (3-valued).
    Or,
    /// String concatenation.
    Concat,
}

impl fmt::Display for BinOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BinOp::Add => "+",
            BinOp::Sub => "-",
            BinOp::Mul => "*",
            BinOp::Div => "/",
            BinOp::Mod => "%",
            BinOp::Eq => "=",
            BinOp::Ne => "<>",
            BinOp::Lt => "<",
            BinOp::Le => "<=",
            BinOp::Gt => ">",
            BinOp::Ge => ">=",
            BinOp::And => "AND",
            BinOp::Or => "OR",
            BinOp::Concat => "||",
        };
        f.write_str(s)
    }
}

/// Unary operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum UnOp {
    /// Logical NOT (3-valued: NOT NULL = NULL).
    Not,
    /// Arithmetic negation.
    Neg,
}

/// Built-in scalar functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Func {
    /// Absolute value of a number.
    Abs,
    /// Lower-case a string.
    Lower,
    /// Upper-case a string.
    Upper,
    /// Length of a string in chars.
    Length,
    /// First non-null argument.
    Coalesce,
    /// `substr(s, start, len)` — 1-based start.
    Substr,
    /// Minimum of the arguments (ignores NULLs; NULL if all NULL).
    Least,
    /// Maximum of the arguments (ignores NULLs; NULL if all NULL).
    Greatest,
}

impl Func {
    /// Parses a function name (case-insensitive).
    pub fn from_name(name: &str) -> Option<Func> {
        match name.to_ascii_lowercase().as_str() {
            "abs" => Some(Func::Abs),
            "lower" => Some(Func::Lower),
            "upper" => Some(Func::Upper),
            "length" => Some(Func::Length),
            "coalesce" => Some(Func::Coalesce),
            "substr" => Some(Func::Substr),
            "least" => Some(Func::Least),
            "greatest" => Some(Func::Greatest),
            _ => None,
        }
    }
}

impl fmt::Display for Expr {
    /// SQL-ish rendering for EXPLAIN output and diagnostics. Binary and
    /// compound forms parenthesize so precedence is unambiguous without
    /// re-implementing the parser's precedence table.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Expr::Lit(Value::Text(s)) => write!(f, "'{s}'"),
            Expr::Lit(v) => write!(f, "{v}"),
            Expr::Col(c) => f.write_str(c),
            Expr::Bin(l, op, r) => write!(f, "({l} {op} {r})"),
            Expr::Un(UnOp::Not, e) => write!(f, "(NOT {e})"),
            Expr::Un(UnOp::Neg, e) => write!(f, "(-{e})"),
            Expr::IsNull(e) => write!(f, "({e} IS NULL)"),
            Expr::IsNotNull(e) => write!(f, "({e} IS NOT NULL)"),
            Expr::Between(x, lo, hi) => write!(f, "({x} BETWEEN {lo} AND {hi})"),
            Expr::InList(x, items) => {
                write!(f, "({x} IN (")?;
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{item}")?;
                }
                write!(f, "))")
            }
            Expr::Like(x, pat) => write!(f, "({x} LIKE '{pat}')"),
            Expr::Call(func, args) => {
                write!(f, "{}(", format!("{func:?}").to_ascii_lowercase())?;
                for (i, a) in args.iter().enumerate() {
                    if i > 0 {
                        write!(f, ", ")?;
                    }
                    write!(f, "{a}")?;
                }
                write!(f, ")")
            }
            Expr::Case(whens, else_) => {
                write!(f, "(CASE")?;
                for (c, v) in whens {
                    write!(f, " WHEN {c} THEN {v}")?;
                }
                if let Some(e) = else_ {
                    write!(f, " ELSE {e}")?;
                }
                write!(f, " END)")
            }
        }
    }
}

/// Scalar expression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Expr {
    /// A literal value.
    Lit(Value),
    /// Reference to a column by name, resolved at evaluation time.
    Col(String),
    /// Binary operation.
    Bin(Box<Expr>, BinOp, Box<Expr>),
    /// Unary operation.
    Un(UnOp, Box<Expr>),
    /// `expr IS NULL` — never returns NULL itself.
    IsNull(Box<Expr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<Expr>),
    /// `expr BETWEEN low AND high` (inclusive).
    Between(Box<Expr>, Box<Expr>, Box<Expr>),
    /// `expr IN (v1, v2, ...)`.
    InList(Box<Expr>, Vec<Expr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<Expr>, String),
    /// Function call.
    Call(Func, Vec<Expr>),
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case(Vec<(Expr, Expr)>, Option<Box<Expr>>),
}

impl Expr {
    /// Literal shorthand.
    pub fn lit(v: impl Into<Value>) -> Expr {
        Expr::Lit(v.into())
    }

    /// Column-reference shorthand.
    pub fn col(name: impl Into<String>) -> Expr {
        Expr::Col(name.into())
    }

    /// `self = other`.
    pub fn eq(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Eq, Box::new(other))
    }
    /// `self <> other`.
    pub fn ne(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Ne, Box::new(other))
    }
    /// `self < other`.
    pub fn lt(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Lt, Box::new(other))
    }
    /// `self <= other`.
    pub fn le(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Le, Box::new(other))
    }
    /// `self > other`.
    pub fn gt(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Gt, Box::new(other))
    }
    /// `self >= other`.
    pub fn ge(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Ge, Box::new(other))
    }
    /// `self AND other`.
    pub fn and(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::And, Box::new(other))
    }
    /// `self OR other`.
    pub fn or(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Or, Box::new(other))
    }
    /// `NOT self`.
    #[allow(clippy::should_implement_trait)] // builder DSL, not operator overloading
    pub fn not(self) -> Expr {
        Expr::Un(UnOp::Not, Box::new(self))
    }
    /// `self + other`.
    #[allow(clippy::should_implement_trait)]
    pub fn add(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Add, Box::new(other))
    }
    /// `self - other`.
    #[allow(clippy::should_implement_trait)]
    pub fn sub(self, other: Expr) -> Expr {
        Expr::Bin(Box::new(self), BinOp::Sub, Box::new(other))
    }

    /// Set of column names referenced by this expression.
    pub fn referenced_columns(&self) -> Vec<&str> {
        let mut out = Vec::new();
        self.collect_columns(&mut out);
        out.sort_unstable();
        out.dedup();
        out
    }

    fn collect_columns<'a>(&'a self, out: &mut Vec<&'a str>) {
        match self {
            Expr::Lit(_) => {}
            Expr::Col(c) => out.push(c),
            Expr::Bin(l, _, r) => {
                l.collect_columns(out);
                r.collect_columns(out);
            }
            Expr::Un(_, e) | Expr::IsNull(e) | Expr::IsNotNull(e) | Expr::Like(e, _) => {
                e.collect_columns(out)
            }
            Expr::Between(e, lo, hi) => {
                e.collect_columns(out);
                lo.collect_columns(out);
                hi.collect_columns(out);
            }
            Expr::InList(e, list) => {
                e.collect_columns(out);
                for i in list {
                    i.collect_columns(out);
                }
            }
            Expr::Call(_, args) => {
                for a in args {
                    a.collect_columns(out);
                }
            }
            Expr::Case(arms, els) => {
                for (c, v) in arms {
                    c.collect_columns(out);
                    v.collect_columns(out);
                }
                if let Some(e) = els {
                    e.collect_columns(out);
                }
            }
        }
    }

    /// Compiles against a schema, resolving every column reference to its
    /// position once. Operators call this once per relation and evaluate
    /// the result per row.
    pub fn compile(&self, schema: &Schema) -> DbResult<CompiledExpr> {
        self.compile_with(&mut |name| schema.resolve(name))
    }

    /// Like [`Expr::compile`] with a caller-supplied column resolver —
    /// the tagged layer uses this to map `col@indicator` pseudo-columns
    /// onto extraction-plan slots beyond the base schema.
    pub fn compile_with(
        &self,
        resolve: &mut dyn FnMut(&str) -> DbResult<usize>,
    ) -> DbResult<CompiledExpr> {
        Ok(match self {
            Expr::Lit(v) => CompiledExpr::Lit(v.clone()),
            Expr::Col(name) => CompiledExpr::Col(resolve(name)?),
            Expr::Bin(l, op, r) => CompiledExpr::Bin(
                Box::new(l.compile_with(resolve)?),
                *op,
                Box::new(r.compile_with(resolve)?),
            ),
            Expr::Un(op, e) => CompiledExpr::Un(*op, Box::new(e.compile_with(resolve)?)),
            Expr::IsNull(e) => CompiledExpr::IsNull(Box::new(e.compile_with(resolve)?)),
            Expr::IsNotNull(e) => CompiledExpr::IsNotNull(Box::new(e.compile_with(resolve)?)),
            Expr::Between(e, lo, hi) => CompiledExpr::Between(
                Box::new(e.compile_with(resolve)?),
                Box::new(lo.compile_with(resolve)?),
                Box::new(hi.compile_with(resolve)?),
            ),
            Expr::InList(e, list) => CompiledExpr::InList(
                Box::new(e.compile_with(resolve)?),
                list.iter()
                    .map(|i| i.compile_with(resolve))
                    .collect::<DbResult<_>>()?,
            ),
            Expr::Like(e, pattern) => {
                CompiledExpr::Like(Box::new(e.compile_with(resolve)?), pattern.clone())
            }
            Expr::Call(f, args) => CompiledExpr::Call(
                *f,
                args.iter()
                    .map(|a| a.compile_with(resolve))
                    .collect::<DbResult<_>>()?,
            ),
            Expr::Case(arms, els) => CompiledExpr::Case(
                arms.iter()
                    .map(|(c, v)| Ok((c.compile_with(resolve)?, v.compile_with(resolve)?)))
                    .collect::<DbResult<_>>()?,
                match els {
                    Some(e) => Some(Box::new(e.compile_with(resolve)?)),
                    None => None,
                },
            ),
        })
    }

    /// Evaluates against a row under a schema. One-shot convenience:
    /// compiles and evaluates. Loops should [`Expr::compile`] once and
    /// evaluate the [`CompiledExpr`] per row instead.
    pub fn eval(&self, schema: &Schema, row: &Row) -> DbResult<Value> {
        Ok(self.compile(schema)?.eval(row)?.into_owned())
    }

    /// Evaluates as a filter predicate: `true` keeps the row, `false`
    /// or `NULL` drops it, non-boolean results are errors.
    pub fn eval_predicate(&self, schema: &Schema, row: &Row) -> DbResult<bool> {
        self.compile(schema)?.eval_predicate(row)
    }
}

/// Positional access to the values an expression reads. `Row` evaluates
/// directly; the tagged layer implements this over `&[QualityCell]` so
/// quality predicates run without materializing an owned row per tuple.
pub trait ValueSource {
    /// The value at position `idx`. Positions are whatever the resolver
    /// passed to [`Expr::compile_with`] handed out.
    fn value_at(&self, idx: usize) -> &Value;
}

impl ValueSource for [Value] {
    #[inline]
    fn value_at(&self, idx: usize) -> &Value {
        &self[idx]
    }
}

impl ValueSource for Vec<Value> {
    #[inline]
    fn value_at(&self, idx: usize) -> &Value {
        &self[idx]
    }
}

/// An [`Expr`] with every column reference resolved to a position.
///
/// Evaluation borrows literals and source values (`Cow::Borrowed`) and
/// only allocates when an operator actually computes something, so a
/// predicate like `employees > 25000` evaluates a 100k-row scan without
/// a single per-row clone of the row's cells.
#[derive(Debug, Clone, PartialEq)]
pub enum CompiledExpr {
    /// A literal value.
    Lit(Value),
    /// Column reference, pre-resolved to a source position.
    Col(usize),
    /// Binary operation.
    Bin(Box<CompiledExpr>, BinOp, Box<CompiledExpr>),
    /// Unary operation.
    Un(UnOp, Box<CompiledExpr>),
    /// `expr IS NULL`.
    IsNull(Box<CompiledExpr>),
    /// `expr IS NOT NULL`.
    IsNotNull(Box<CompiledExpr>),
    /// `expr BETWEEN low AND high` (inclusive).
    Between(Box<CompiledExpr>, Box<CompiledExpr>, Box<CompiledExpr>),
    /// `expr IN (v1, v2, ...)`.
    InList(Box<CompiledExpr>, Vec<CompiledExpr>),
    /// SQL LIKE with `%` and `_` wildcards.
    Like(Box<CompiledExpr>, String),
    /// Function call.
    Call(Func, Vec<CompiledExpr>),
    /// `CASE WHEN c1 THEN v1 ... ELSE e END`.
    Case(Vec<(CompiledExpr, CompiledExpr)>, Option<Box<CompiledExpr>>),
}

impl CompiledExpr {
    /// Evaluates against a value source, borrowing wherever possible.
    pub fn eval<'a, S: ValueSource + ?Sized>(&'a self, src: &'a S) -> DbResult<Cow<'a, Value>> {
        match self {
            CompiledExpr::Lit(v) => Ok(Cow::Borrowed(v)),
            CompiledExpr::Col(idx) => Ok(Cow::Borrowed(src.value_at(*idx))),
            CompiledExpr::Bin(l, op, r) => {
                let lv = l.eval(src)?;
                // Short-circuit 3VL for AND/OR before evaluating rhs is not
                // done: rhs may still decide the result when lhs is NULL.
                let rv = r.eval(src)?;
                eval_binop(&lv, *op, &rv).map(Cow::Owned)
            }
            CompiledExpr::Un(op, e) => {
                let v = e.eval(src)?;
                let out = match op {
                    UnOp::Not => match v.as_ref() {
                        Value::Null => Value::Null,
                        Value::Bool(b) => Value::Bool(!b),
                        other => {
                            return Err(DbError::TypeMismatch {
                                expected: "Bool".into(),
                                found: other.type_name().into(),
                            })
                        }
                    },
                    UnOp::Neg => match v.as_ref() {
                        Value::Null => Value::Null,
                        Value::Int(i) => Value::Int(-i),
                        Value::Float(f) => Value::Float(-f),
                        other => {
                            return Err(DbError::TypeMismatch {
                                expected: "numeric".into(),
                                found: other.type_name().into(),
                            })
                        }
                    },
                };
                Ok(Cow::Owned(out))
            }
            CompiledExpr::IsNull(e) => Ok(Cow::Owned(Value::Bool(e.eval(src)?.is_null()))),
            CompiledExpr::IsNotNull(e) => Ok(Cow::Owned(Value::Bool(!e.eval(src)?.is_null()))),
            CompiledExpr::Between(e, lo, hi) => {
                let v = e.eval(src)?;
                let lov = lo.eval(src)?;
                let hiv = hi.eval(src)?;
                if v.is_null() || lov.is_null() || hiv.is_null() {
                    return Ok(Cow::Owned(Value::Null));
                }
                Ok(Cow::Owned(Value::Bool(
                    v.as_ref() >= lov.as_ref() && v.as_ref() <= hiv.as_ref(),
                )))
            }
            CompiledExpr::InList(e, list) => {
                let v = e.eval(src)?;
                if v.is_null() {
                    return Ok(Cow::Owned(Value::Null));
                }
                let mut saw_null = false;
                for item in list {
                    let iv = item.eval(src)?;
                    if iv.is_null() {
                        saw_null = true;
                    } else if iv.as_ref() == v.as_ref() {
                        return Ok(Cow::Owned(Value::Bool(true)));
                    }
                }
                Ok(Cow::Owned(if saw_null {
                    Value::Null
                } else {
                    Value::Bool(false)
                }))
            }
            CompiledExpr::Like(e, pattern) => {
                let v = e.eval(src)?;
                match v.as_ref() {
                    Value::Null => Ok(Cow::Owned(Value::Null)),
                    Value::Text(s) => Ok(Cow::Owned(Value::Bool(like_match(s, pattern)))),
                    other => Err(DbError::TypeMismatch {
                        expected: "Text".into(),
                        found: other.type_name().into(),
                    }),
                }
            }
            CompiledExpr::Call(f, args) => {
                let vals: Vec<Value> = args
                    .iter()
                    .map(|a| a.eval(src).map(Cow::into_owned))
                    .collect::<DbResult<_>>()?;
                eval_func(*f, &vals).map(Cow::Owned)
            }
            CompiledExpr::Case(arms, els) => {
                for (cond, out) in arms {
                    if let Value::Bool(true) = cond.eval(src)?.as_ref() {
                        return out.eval(src);
                    }
                }
                match els {
                    Some(e) => e.eval(src),
                    None => Ok(Cow::Owned(Value::Null)),
                }
            }
        }
    }

    /// Evaluates to an owned value.
    pub fn eval_value<S: ValueSource + ?Sized>(&self, src: &S) -> DbResult<Value> {
        Ok(self.eval(src)?.into_owned())
    }

    /// Evaluates as a filter predicate: `true` keeps the row, `false`
    /// or `NULL` drops it, non-boolean results are errors.
    pub fn eval_predicate<S: ValueSource + ?Sized>(&self, src: &S) -> DbResult<bool> {
        match self.eval(src)?.as_ref() {
            Value::Bool(b) => Ok(*b),
            Value::Null => Ok(false),
            other => Err(DbError::TypeMismatch {
                expected: "Bool predicate".into(),
                found: other.type_name().into(),
            }),
        }
    }
}

/// SQL LIKE matcher: `%` matches any run, `_` matches one char.
fn like_match(s: &str, pattern: &str) -> bool {
    fn rec(s: &[char], p: &[char]) -> bool {
        match p.first() {
            None => s.is_empty(),
            Some('%') => {
                // Try consuming 0..=len chars.
                (0..=s.len()).any(|k| rec(&s[k..], &p[1..]))
            }
            Some('_') => !s.is_empty() && rec(&s[1..], &p[1..]),
            Some(c) => s.first() == Some(c) && rec(&s[1..], &p[1..]),
        }
    }
    let sc: Vec<char> = s.chars().collect();
    let pc: Vec<char> = pattern.chars().collect();
    rec(&sc, &pc)
}

fn eval_binop(l: &Value, op: BinOp, r: &Value) -> DbResult<Value> {
    use BinOp::*;
    match op {
        And => return eval_and(l, r),
        Or => return eval_or(l, r),
        _ => {}
    }
    if l.is_null() || r.is_null() {
        return Ok(Value::Null);
    }
    match op {
        Eq => Ok(Value::Bool(l == r)),
        Ne => Ok(Value::Bool(l != r)),
        Lt => cmp_check(l, r).map(|_| Value::Bool(l < r)),
        Le => cmp_check(l, r).map(|_| Value::Bool(l <= r)),
        Gt => cmp_check(l, r).map(|_| Value::Bool(l > r)),
        Ge => cmp_check(l, r).map(|_| Value::Bool(l >= r)),
        Add | Sub | Mul | Div | Mod => eval_arith(l, op, r),
        Concat => match (l, r) {
            (Value::Text(a), Value::Text(b)) => Ok(Value::Text(format!("{a}{b}"))),
            _ => Err(DbError::TypeMismatch {
                expected: "Text || Text".into(),
                found: format!("{} || {}", l.type_name(), r.type_name()),
            }),
        },
        And | Or => unreachable!("handled above"),
    }
}

/// Ordering comparisons across unrelated types are almost always schema
/// mistakes in quality predicates, so we reject them instead of using the
/// arbitrary cross-type total order. Public so vectorized comparison
/// kernels can reproduce the evaluator's `<`-family type errors exactly.
pub fn cmp_check(l: &Value, r: &Value) -> DbResult<()> {
    let ok = matches!(
        (l, r),
        (Value::Int(_) | Value::Float(_), Value::Int(_) | Value::Float(_))
            | (Value::Text(_), Value::Text(_))
            | (Value::Date(_), Value::Date(_))
            | (Value::Bool(_), Value::Bool(_))
    );
    if ok {
        Ok(())
    } else {
        Err(DbError::TypeMismatch {
            expected: "comparable values of the same type".into(),
            found: format!("{} vs {}", l.type_name(), r.type_name()),
        })
    }
}

fn eval_and(l: &Value, r: &Value) -> DbResult<Value> {
    let lb = tribool(l)?;
    let rb = tribool(r)?;
    Ok(match (lb, rb) {
        (Some(false), _) | (_, Some(false)) => Value::Bool(false),
        (Some(true), Some(true)) => Value::Bool(true),
        _ => Value::Null,
    })
}

fn eval_or(l: &Value, r: &Value) -> DbResult<Value> {
    let lb = tribool(l)?;
    let rb = tribool(r)?;
    Ok(match (lb, rb) {
        (Some(true), _) | (_, Some(true)) => Value::Bool(true),
        (Some(false), Some(false)) => Value::Bool(false),
        _ => Value::Null,
    })
}

fn tribool(v: &Value) -> DbResult<Option<bool>> {
    match v {
        Value::Null => Ok(None),
        Value::Bool(b) => Ok(Some(*b)),
        other => Err(DbError::TypeMismatch {
            expected: "Bool".into(),
            found: other.type_name().into(),
        }),
    }
}

fn eval_arith(l: &Value, op: BinOp, r: &Value) -> DbResult<Value> {
    use BinOp::*;
    use Value::*;
    match (l, r) {
        (Int(a), Int(b)) => match op {
            Add => Ok(Int(a.wrapping_add(*b))),
            Sub => Ok(Int(a.wrapping_sub(*b))),
            Mul => Ok(Int(a.wrapping_mul(*b))),
            Div => {
                if *b == 0 {
                    Err(DbError::Arithmetic("division by zero".into()))
                } else {
                    Ok(Int(a / b))
                }
            }
            Mod => {
                if *b == 0 {
                    Err(DbError::Arithmetic("modulo by zero".into()))
                } else {
                    Ok(Int(a % b))
                }
            }
            _ => unreachable!(),
        },
        (Int(_) | Float(_), Int(_) | Float(_)) => {
            let a = l.as_float()?;
            let b = r.as_float()?;
            match op {
                Add => Ok(Float(a + b)),
                Sub => Ok(Float(a - b)),
                Mul => Ok(Float(a * b)),
                Div => {
                    if b == 0.0 {
                        Err(DbError::Arithmetic("division by zero".into()))
                    } else {
                        Ok(Float(a / b))
                    }
                }
                Mod => Err(DbError::TypeMismatch {
                    expected: "Int % Int".into(),
                    found: "Float".into(),
                }),
                _ => unreachable!(),
            }
        }
        // Date arithmetic: Date ± days, Date - Date → days.
        (Date(d), Int(n)) if matches!(op, Add | Sub) => {
            let delta = if op == Add { *n } else { -*n };
            Ok(Date(d.plus_days(delta)))
        }
        (Date(a), Date(b)) if op == Sub => Ok(Int(a.days_between(b))),
        _ => Err(DbError::TypeMismatch {
            expected: "numeric (or date) operands".into(),
            found: format!("{} {op} {}", l.type_name(), r.type_name()),
        }),
    }
}

fn eval_func(f: Func, args: &[Value]) -> DbResult<Value> {
    let need = |n: usize| -> DbResult<()> {
        if args.len() == n {
            Ok(())
        } else {
            Err(DbError::InvalidExpression(format!(
                "{f:?} expects {n} arguments, got {}",
                args.len()
            )))
        }
    };
    match f {
        Func::Abs => {
            need(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Int(i) => Ok(Value::Int(i.abs())),
                Value::Float(x) => Ok(Value::Float(x.abs())),
                other => Err(DbError::TypeMismatch {
                    expected: "numeric".into(),
                    found: other.type_name().into(),
                }),
            }
        }
        Func::Lower => {
            need(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_lowercase())),
                other => Err(DbError::TypeMismatch {
                    expected: "Text".into(),
                    found: other.type_name().into(),
                }),
            }
        }
        Func::Upper => {
            need(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Text(s.to_uppercase())),
                other => Err(DbError::TypeMismatch {
                    expected: "Text".into(),
                    found: other.type_name().into(),
                }),
            }
        }
        Func::Length => {
            need(1)?;
            match &args[0] {
                Value::Null => Ok(Value::Null),
                Value::Text(s) => Ok(Value::Int(s.chars().count() as i64)),
                other => Err(DbError::TypeMismatch {
                    expected: "Text".into(),
                    found: other.type_name().into(),
                }),
            }
        }
        Func::Coalesce => Ok(args
            .iter()
            .find(|v| !v.is_null())
            .cloned()
            .unwrap_or(Value::Null)),
        Func::Substr => {
            need(3)?;
            match (&args[0], &args[1], &args[2]) {
                (Value::Null, _, _) => Ok(Value::Null),
                (Value::Text(s), Value::Int(start), Value::Int(len)) => {
                    let start = (*start).max(1) as usize - 1;
                    let len = (*len).max(0) as usize;
                    Ok(Value::Text(s.chars().skip(start).take(len).collect()))
                }
                _ => Err(DbError::TypeMismatch {
                    expected: "substr(Text, Int, Int)".into(),
                    found: "other".into(),
                }),
            }
        }
        Func::Least => Ok(args
            .iter()
            .filter(|v| !v.is_null())
            .min()
            .cloned()
            .unwrap_or(Value::Null)),
        Func::Greatest => Ok(args
            .iter()
            .filter(|v| !v.is_null())
            .max()
            .cloned()
            .unwrap_or(Value::Null)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::date::Date;
    use crate::value::DataType;

    fn ctx() -> (Schema, Row) {
        let schema = Schema::of(&[
            ("name", DataType::Text),
            ("employees", DataType::Int),
            ("price", DataType::Float),
            ("created", DataType::Date),
            ("note", DataType::Text),
        ]);
        let row = vec![
            Value::text("Fruit Co"),
            Value::Int(4004),
            Value::Float(12.5),
            Value::Date(Date::parse("10-3-91").unwrap()),
            Value::Null,
        ];
        (schema, row)
    }

    fn eval(e: &Expr) -> Value {
        let (s, r) = ctx();
        e.eval(&s, &r).unwrap()
    }

    #[test]
    fn literals_and_columns() {
        assert_eq!(eval(&Expr::lit(5i64)), Value::Int(5));
        assert_eq!(eval(&Expr::col("employees")), Value::Int(4004));
        let (s, r) = ctx();
        assert!(Expr::col("bogus").eval(&s, &r).is_err());
    }

    #[test]
    fn comparisons() {
        assert_eq!(
            eval(&Expr::col("employees").gt(Expr::lit(1000i64))),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&Expr::col("name").eq(Expr::lit("Fruit Co"))),
            Value::Bool(true)
        );
        assert_eq!(
            eval(&Expr::col("price").le(Expr::lit(12.5))),
            Value::Bool(true)
        );
    }

    #[test]
    fn three_valued_logic() {
        // NULL comparisons are NULL
        assert_eq!(eval(&Expr::col("note").eq(Expr::lit("x"))), Value::Null);
        // NULL AND false = false
        let e = Expr::col("note")
            .eq(Expr::lit("x"))
            .and(Expr::lit(false));
        assert_eq!(eval(&e), Value::Bool(false));
        // NULL OR true = true
        let e = Expr::col("note").eq(Expr::lit("x")).or(Expr::lit(true));
        assert_eq!(eval(&e), Value::Bool(true));
        // NOT NULL = NULL
        let e = Expr::col("note").eq(Expr::lit("x")).not();
        assert_eq!(eval(&e), Value::Null);
        // predicate drops NULL
        let (s, r) = ctx();
        assert!(!Expr::col("note")
            .eq(Expr::lit("x"))
            .eval_predicate(&s, &r)
            .unwrap());
    }

    #[test]
    fn is_null_family() {
        assert_eq!(eval(&Expr::IsNull(Box::new(Expr::col("note")))), Value::Bool(true));
        assert_eq!(
            eval(&Expr::IsNotNull(Box::new(Expr::col("name")))),
            Value::Bool(true)
        );
    }

    #[test]
    fn arithmetic() {
        assert_eq!(
            eval(&Expr::col("employees").add(Expr::lit(1i64))),
            Value::Int(4005)
        );
        assert_eq!(
            eval(&Expr::lit(5i64).sub(Expr::lit(2.0))),
            Value::Float(3.0)
        );
        let (s, r) = ctx();
        let div0 = Expr::lit(1i64).eval(&s, &r).unwrap(); // warm-up
        assert_eq!(div0, Value::Int(1));
        assert!(matches!(
            Expr::Bin(Box::new(Expr::lit(1i64)), BinOp::Div, Box::new(Expr::lit(0i64)))
                .eval(&s, &r),
            Err(DbError::Arithmetic(_))
        ));
    }

    #[test]
    fn date_arithmetic() {
        // created + 6 days = 10-9-91
        let e = Expr::col("created").add(Expr::lit(6i64));
        assert_eq!(
            eval(&e),
            Value::Date(Date::parse("10-9-91").unwrap())
        );
        // date difference in days (the paper's `age` indicator is
        // `current_time - creation_time`)
        let now = Expr::lit(Value::Date(Date::parse("10-24-91").unwrap()));
        let e = now.sub(Expr::col("created"));
        assert_eq!(eval(&e), Value::Int(21));
    }

    #[test]
    fn between_and_in() {
        let e = Expr::Between(
            Box::new(Expr::col("employees")),
            Box::new(Expr::lit(1000i64)),
            Box::new(Expr::lit(5000i64)),
        );
        assert_eq!(eval(&e), Value::Bool(true));
        let e = Expr::InList(
            Box::new(Expr::col("name")),
            vec![Expr::lit("Nut Co"), Expr::lit("Fruit Co")],
        );
        assert_eq!(eval(&e), Value::Bool(true));
        // IN with only non-matching + NULL → NULL
        let e = Expr::InList(
            Box::new(Expr::col("name")),
            vec![Expr::lit("Nut Co"), Expr::lit(Value::Null)],
        );
        assert_eq!(eval(&e), Value::Null);
    }

    #[test]
    fn like_patterns() {
        assert!(like_match("Fruit Co", "Fruit%"));
        assert!(like_match("Fruit Co", "%Co"));
        assert!(like_match("Fruit Co", "F_uit Co"));
        assert!(!like_match("Fruit Co", "Nut%"));
        assert!(like_match("", "%"));
        assert!(!like_match("", "_"));
        assert_eq!(
            eval(&Expr::Like(Box::new(Expr::col("name")), "%Co".into())),
            Value::Bool(true)
        );
    }

    #[test]
    fn functions() {
        assert_eq!(
            eval(&Expr::Call(Func::Upper, vec![Expr::col("name")])),
            Value::text("FRUIT CO")
        );
        assert_eq!(
            eval(&Expr::Call(Func::Length, vec![Expr::col("name")])),
            Value::Int(8)
        );
        assert_eq!(
            eval(&Expr::Call(
                Func::Coalesce,
                vec![Expr::col("note"), Expr::lit("fallback")]
            )),
            Value::text("fallback")
        );
        assert_eq!(
            eval(&Expr::Call(
                Func::Substr,
                vec![Expr::col("name"), Expr::lit(1i64), Expr::lit(5i64)]
            )),
            Value::text("Fruit")
        );
        assert_eq!(
            eval(&Expr::Call(
                Func::Least,
                vec![Expr::lit(3i64), Expr::lit(Value::Null), Expr::lit(1i64)]
            )),
            Value::Int(1)
        );
        assert_eq!(
            eval(&Expr::Call(
                Func::Greatest,
                vec![Expr::lit(3i64), Expr::lit(7i64)]
            )),
            Value::Int(7)
        );
        assert_eq!(Func::from_name("COALESCE"), Some(Func::Coalesce));
        assert_eq!(Func::from_name("nope"), None);
    }

    #[test]
    fn case_expression() {
        // The paper's credibility mapping: source → credibility level.
        let e = Expr::Case(
            vec![
                (
                    Expr::col("name").eq(Expr::lit("Fruit Co")),
                    Expr::lit("high"),
                ),
                (Expr::col("name").eq(Expr::lit("Nut Co")), Expr::lit("low")),
            ],
            Some(Box::new(Expr::lit("unknown"))),
        );
        assert_eq!(eval(&e), Value::text("high"));
        let e = Expr::Case(vec![(Expr::lit(false), Expr::lit(1i64))], None);
        assert_eq!(eval(&e), Value::Null);
    }

    #[test]
    fn cross_type_ordering_is_rejected() {
        let (s, r) = ctx();
        let e = Expr::col("name").lt(Expr::lit(5i64));
        assert!(e.eval(&s, &r).is_err());
    }

    #[test]
    fn referenced_columns() {
        let e = Expr::col("a")
            .gt(Expr::lit(1i64))
            .and(Expr::col("b").eq(Expr::col("a")));
        assert_eq!(e.referenced_columns(), vec!["a", "b"]);
    }

    #[test]
    fn concat() {
        let e = Expr::Bin(
            Box::new(Expr::col("name")),
            BinOp::Concat,
            Box::new(Expr::lit("!")),
        );
        assert_eq!(eval(&e), Value::text("Fruit Co!"));
    }
}
