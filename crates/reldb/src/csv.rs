//! Minimal CSV import/export (RFC-4180 quoting), typed through the schema.
//!
//! Used by the workload crates to persist generated datasets and by the
//! exhibit regenerator. Implemented by hand — the engine takes no external
//! parsing dependencies.

use crate::error::{DbError, DbResult};
use crate::relation::Relation;
use crate::schema::Schema;
use crate::value::Value;

/// Serializes a relation to CSV with a header row.
pub fn to_csv(rel: &Relation) -> String {
    let mut out = String::new();
    let names = rel.schema().names();
    out.push_str(&names.iter().map(|n| quote(n)).collect::<Vec<_>>().join(","));
    out.push('\n');
    for row in rel.iter() {
        let line = row
            .iter()
            .map(|v| match v {
                Value::Null => String::new(),
                other => quote(&other.to_string()),
            })
            .collect::<Vec<_>>()
            .join(",");
        out.push_str(&line);
        out.push('\n');
    }
    out
}

fn quote(s: &str) -> String {
    if s.contains([',', '"', '\n', '\r']) {
        format!("\"{}\"", s.replace('"', "\"\""))
    } else {
        s.to_owned()
    }
}

/// Parses CSV text (with header) into a relation over `schema`,
/// coercing fields to column types. Empty fields become `NULL`.
pub fn from_csv(schema: &Schema, text: &str) -> DbResult<Relation> {
    let mut records = parse_records(text)?;
    if records.is_empty() {
        return Ok(Relation::empty(schema.clone()));
    }
    let header = records.remove(0);
    if header.len() != schema.arity() {
        return Err(DbError::CsvError(format!(
            "header has {} fields, schema has {}",
            header.len(),
            schema.arity()
        )));
    }
    for (h, c) in header.iter().zip(schema.columns()) {
        if h != &c.name {
            return Err(DbError::CsvError(format!(
                "header field `{h}` does not match schema column `{}`",
                c.name
            )));
        }
    }
    let mut rel = Relation::empty(schema.clone());
    for (lineno, rec) in records.into_iter().enumerate() {
        if rec.len() != schema.arity() {
            return Err(DbError::CsvError(format!(
                "record {} has {} fields, expected {}",
                lineno + 2,
                rec.len(),
                schema.arity()
            )));
        }
        let mut row = Vec::with_capacity(rec.len());
        for (field, col) in rec.into_iter().zip(schema.columns()) {
            let v = if field.is_empty() {
                Value::Null
            } else {
                Value::Text(field).coerce_to(col.dtype)?
            };
            row.push(v);
        }
        rel.push(row)?;
    }
    Ok(rel)
}

/// Splits CSV text into records of fields, honoring quotes.
fn parse_records(text: &str) -> DbResult<Vec<Vec<String>>> {
    let mut records = Vec::new();
    let mut record = Vec::new();
    let mut field = String::new();
    let mut chars = text.chars().peekable();
    let mut in_quotes = false;
    let mut any = false;
    while let Some(c) = chars.next() {
        any = true;
        if in_quotes {
            match c {
                '"' => {
                    if chars.peek() == Some(&'"') {
                        chars.next();
                        field.push('"');
                    } else {
                        in_quotes = false;
                    }
                }
                other => field.push(other),
            }
        } else {
            match c {
                '"' => in_quotes = true,
                ',' => {
                    record.push(std::mem::take(&mut field));
                }
                '\r' => {} // swallow; \n terminates
                '\n' => {
                    record.push(std::mem::take(&mut field));
                    records.push(std::mem::take(&mut record));
                }
                other => field.push(other),
            }
        }
    }
    if in_quotes {
        return Err(DbError::CsvError("unterminated quoted field".into()));
    }
    if any && (!field.is_empty() || !record.is_empty()) {
        record.push(field);
        records.push(record);
    }
    Ok(records)
}

#[cfg(test)]
mod proptests {
    //! Export/import is lossless for anything CSV can carry: quoting,
    //! embedded commas, newlines, carriage returns, and NULLs.
    use super::*;
    use crate::date::Date;
    use crate::value::DataType;
    use proptest::prelude::*;

    fn csv_schema() -> Schema {
        Schema::of(&[
            ("note", DataType::Text),
            ("n", DataType::Int),
            ("d", DataType::Date),
        ])
    }

    /// Non-empty text over an alphabet that exercises every quoting
    /// path. Empty text is excluded on purpose: an empty CSV field
    /// decodes as NULL, so `Text("")` does not survive the trip by
    /// design.
    fn arb_text() -> impl Strategy<Value = Value> {
        "[a-z ,\"\n\r]{1,8}".prop_map(Value::Text)
    }

    fn arb_row() -> impl Strategy<Value = Vec<Value>> {
        (
            prop::option::of(arb_text()),
            prop::option::of(-10_000i64..10_000),
            prop::option::of(0i64..40_000),
        )
            .prop_map(|(t, n, d)| {
                vec![
                    t.unwrap_or(Value::Null),
                    n.map_or(Value::Null, Value::Int),
                    d.map_or(Value::Null, |days| Value::Date(Date::from_days(days))),
                ]
            })
    }

    proptest! {
        #[test]
        fn roundtrip_is_lossless(rows in prop::collection::vec(arb_row(), 0..20)) {
            let rel = Relation::new(csv_schema(), rows).unwrap();
            let back = from_csv(&csv_schema(), &to_csv(&rel)).unwrap();
            prop_assert_eq!(back, rel);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::value::DataType;

    fn schema() -> Schema {
        Schema::of(&[
            ("co_name", DataType::Text),
            ("employees", DataType::Int),
            ("created", DataType::Date),
        ])
    }

    #[test]
    fn roundtrip() {
        let rel = Relation::new(
            schema(),
            vec![
                vec![
                    Value::text("Fruit Co"),
                    Value::Int(4004),
                    Value::Date(crate::date::Date::parse("1991-01-02").unwrap()),
                ],
                vec![Value::text("Nut, \"Co\""), Value::Null, Value::Null],
            ],
        )
        .unwrap();
        let csv = to_csv(&rel);
        let back = from_csv(&schema(), &csv).unwrap();
        assert_eq!(back, rel);
    }

    #[test]
    fn quoting() {
        assert_eq!(quote("plain"), "plain");
        assert_eq!(quote("a,b"), "\"a,b\"");
        assert_eq!(quote("say \"hi\""), "\"say \"\"hi\"\"\"");
    }

    #[test]
    fn header_mismatch_rejected() {
        let bad = "wrong,employees,created\nX,1,1991-01-01\n";
        assert!(from_csv(&schema(), bad).is_err());
        let short = "co_name,employees\nX,1\n";
        assert!(from_csv(&schema(), short).is_err());
    }

    #[test]
    fn field_count_mismatch_rejected() {
        let bad = "co_name,employees,created\nX,1\n";
        assert!(from_csv(&schema(), bad).is_err());
    }

    #[test]
    fn type_coercion_from_text() {
        let csv = "co_name,employees,created\nFruit Co,\"4,004\",10-24-91\n";
        let rel = from_csv(&schema(), csv).unwrap();
        assert_eq!(rel.rows()[0][1], Value::Int(4004));
        assert_eq!(
            rel.rows()[0][2],
            Value::Date(crate::date::Date::parse("10-24-91").unwrap())
        );
    }

    #[test]
    fn bad_typed_field_rejected() {
        let csv = "co_name,employees,created\nX,notanumber,\n";
        assert!(from_csv(&schema(), csv).is_err());
    }

    #[test]
    fn empty_input() {
        let rel = from_csv(&schema(), "").unwrap();
        assert!(rel.is_empty());
    }

    #[test]
    fn no_trailing_newline() {
        let csv = "co_name,employees,created\nX,1,";
        let rel = from_csv(&schema(), csv).unwrap();
        assert_eq!(rel.len(), 1);
        assert!(rel.rows()[0][2].is_null());
    }

    #[test]
    fn unterminated_quote_rejected() {
        assert!(parse_records("a,\"b\n").is_err());
    }
}
